// Package slpdas reproduces "Source Location Privacy-Aware Data
// Aggregation Scheduling for Wireless Sensor Networks" (Kirton, Bradbury,
// Jhumka — ICDCS 2017) as a complete, self-contained Go system:
//
//   - a deterministic discrete-event WSN simulator (TOSSIM substitute)
//     with a unit-disk radio, loss models and a TDMA MAC
//     (internal/des, internal/radio, internal/mac);
//   - the paper's guarded-command program model (internal/gcn) running
//     the protectionless DAS protocol (Figure 2) and the 3-phase
//     SLP-aware DAS protocol (Figures 2–4) (internal/core);
//   - the parameterised (R, H, M, s0, D) eavesdropper (internal/attacker)
//     and the VerifySchedule decision procedure, Algorithm 1
//     (internal/verify);
//   - the formal schedule properties of Definitions 1–3
//     (internal/schedule) and the evaluation harness reproducing
//     Figure 5, Table I and the message-overhead claim
//     (internal/experiment);
//   - a campaign engine (internal/campaign) that expands declarative
//     axes — topologies, protocols, search distances, attackers, loss
//     models, collisions — into the full Cartesian job matrix, runs it
//     through one shared worker pool and streams per-cell rows to JSONL
//     or CSV sinks with durable checkpoints; campaigns resume after a
//     kill and shard across processes or machines with byte-identical
//     output, driven from the command line by cmd/slpsweep (-resume,
//     -shard) and reassembled by cmd/slpmerge.
//
// This package is the stable facade: simulation entry points, the
// per-figure reproduction helpers used by cmd/slpsim, campaign execution
// (RunCampaign), and schedule verification. The examples/ directory shows
// typical use; DESIGN.md maps every paper artefact to the module
// implementing it and EXPERIMENTS.md records reproduced-versus-published
// numbers with the commands that regenerate them.
package slpdas
