package slpdas_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"slpdas"
)

// TestFig5aBackwardCompatible pins the acceptance criterion of the
// attacker-subsystem rebuild: default single-attacker first-heard results
// must be byte-identical to the pre-rebuild `slpsim fig5a` pipeline. The
// golden file was generated at the last commit before the strategy
// registry and multi-attacker support landed; it captures the rendered
// figure table plus every per-run capture outcome and attacker walk.
// A diff here means the refactor perturbed the paper's evaluation.
func TestFig5aBackwardCompatible(t *testing.T) {
	want, err := os.ReadFile("testdata/fig5a_compat.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var buf bytes.Buffer
	tbl, fig, err := slpdas.Figure5(3, 5, 1, 7, 11)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	buf.WriteString(tbl)
	for _, p := range fig.Points {
		for _, r := range p.ProtectionlessAgg.Results {
			fmt.Fprintf(&buf, "prot size=%d seed=%d captured=%v capAt=%v path=%v\n", p.GridSize, r.Seed, r.Captured, r.CaptureAt, r.AttackerPath)
		}
		for _, r := range p.SLPAgg.Results {
			fmt.Fprintf(&buf, "slp size=%d seed=%d captured=%v capAt=%v path=%v\n", p.GridSize, r.Seed, r.Captured, r.CaptureAt, r.AttackerPath)
		}
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("fig5a output diverged from the pre-rebuild golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
