package slpdas_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"slpdas"
	"slpdas/internal/experiment"
	"slpdas/internal/lint"
)

// TestLintCleanBeforeGoldens runs the slplint suite over the module before
// the golden comparisons below. The goldens catch a determinism break only
// on the exact configurations they replay; the analyzers prove the
// underlying invariants — no unsorted map iteration, no unseeded
// randomness, complete arena Resets — for every configuration at once, so
// a violation fails fast here with a source location instead of as an
// inscrutable golden byte diff.
func TestLintCleanBeforeGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module closure; skipped in -short")
	}
	findings, err := lint.Run(lint.Config{Dir: ".", Patterns: []string{"./..."}})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("slplint: %s", f)
	}
	if t.Failed() {
		t.Fatal("fix or annotate the findings above before trusting the golden comparisons")
	}
}

// renderFig5a serialises a Figure 5 result the way the pre-rebuild
// `slpsim fig5a` pipeline did: the rendered table followed by every
// per-run capture outcome and attacker walk, in deterministic order.
func renderFig5a(tbl string, fig *experiment.Figure5) []byte {
	var buf bytes.Buffer
	buf.WriteString(tbl)
	for _, p := range fig.Points {
		for _, r := range p.ProtectionlessAgg.Results {
			fmt.Fprintf(&buf, "prot size=%d seed=%d captured=%v capAt=%v path=%v\n", p.GridSize, r.Seed, r.Captured, r.CaptureAt, r.AttackerPath)
		}
		for _, r := range p.SLPAgg.Results {
			fmt.Fprintf(&buf, "slp size=%d seed=%d captured=%v capAt=%v path=%v\n", p.GridSize, r.Seed, r.Captured, r.CaptureAt, r.AttackerPath)
		}
	}
	return buf.Bytes()
}

// TestFig5aBackwardCompatible pins the acceptance criterion of the
// attacker-subsystem rebuild: default single-attacker first-heard results
// must be byte-identical to the pre-rebuild `slpsim fig5a` pipeline. The
// golden file was generated at the last commit before the strategy
// registry and multi-attacker support landed; it captures the rendered
// figure table plus every per-run capture outcome and attacker walk.
// A diff here means the refactor perturbed the paper's evaluation.
func TestFig5aBackwardCompatible(t *testing.T) {
	want, err := os.ReadFile("testdata/fig5a_compat.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	tbl, fig, err := slpdas.Figure5(3, 5, 1, 7, 11)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if got := renderFig5a(tbl, fig); !bytes.Equal(got, want) {
		t.Errorf("fig5a output diverged from the pre-rebuild golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestFig5aDeterministicAcrossWorkers pins the intra-cell parallel path
// on the figure pipeline: the Figure 5 evaluation must render
// byte-identical to the unchanged golden at 1, 2 and 8 workers, where
// each worker count partitions the per-size repeats differently across
// arenas. The facade leaves Workers at GOMAXPROCS, so this drives the
// experiment spec directly.
func TestFig5aDeterministicAcrossWorkers(t *testing.T) {
	want, err := os.ReadFile("testdata/fig5a_compat.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	for _, workers := range []int{1, 2, 8} {
		fig, err := experiment.RunFigure5(experiment.Figure5Spec{
			GridSizes:      []int{7, 11},
			SearchDistance: 3,
			Repeats:        5,
			BaseSeed:       1,
			Workers:        workers,
		})
		if err != nil {
			t.Fatalf("RunFigure5(workers=%d): %v", workers, err)
		}
		if got := renderFig5a(fig.Table().String(), fig); !bytes.Equal(got, want) {
			t.Errorf("workers=%d fig5a output diverged from the golden:\n--- got ---\n%s\n--- want ---\n%s", workers, got, want)
		}
	}
}
