package slpdas

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (Section VI), plus the ablations called out in
// DESIGN.md. Each bench both measures the runtime of the regeneration and
// reports the reproduced quantities through b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the experiment driver:
//
//	BenchmarkFigure5a          capture ratio vs size, SD=3  (Figure 5a)
//	BenchmarkFigure5b          capture ratio vs size, SD=5  (Figure 5b)
//	BenchmarkTableI            parameter table               (Table I)
//	BenchmarkMessageOverhead   "negligible overhead" claim   (§VI / abstract)
//	BenchmarkAblation*         design-choice sweeps          (DESIGN.md A1–A4)
//
// Repetition counts are sized for minutes-scale runs; cmd/slpsim runs the
// same experiments with arbitrary repeats for tighter confidence
// intervals.

import (
	"fmt"
	"testing"

	"slpdas/internal/core"
	"slpdas/internal/experiment"
	"slpdas/internal/schedule"
	"slpdas/internal/topo"
	"slpdas/internal/verify"
	"slpdas/internal/wire"
)

const benchSeed = 40_000

func reportFigure5(b *testing.B, fig *experiment.Figure5) {
	b.Helper()
	for _, p := range fig.Points {
		b.ReportMetric(p.Protectionless.Percent(), fmt.Sprintf("prot%%@%d", p.GridSize))
		b.ReportMetric(p.SLP.Percent(), fmt.Sprintf("slp%%@%d", p.GridSize))
	}
}

// BenchmarkFigure5a regenerates Figure 5(a): capture ratio for network
// sizes 11, 15, 21 with search distance 3.
func BenchmarkFigure5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure5(experiment.Figure5Spec{
			GridSizes:      []int{11, 15, 21},
			SearchDistance: 3,
			Repeats:        25,
			BaseSeed:       benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportFigure5(b, fig)
	}
}

// BenchmarkFigure5b regenerates Figure 5(b): search distance 5.
func BenchmarkFigure5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure5(experiment.Figure5Spec{
			GridSizes:      []int{11, 15, 21},
			SearchDistance: 5,
			Repeats:        25,
			BaseSeed:       benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportFigure5(b, fig)
	}
}

// BenchmarkTableI regenerates Table I from the live configuration.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := TableI(); len(tbl) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkMessageOverhead regenerates the message-overhead comparison
// behind the abstract's "negligible message overhead" claim.
func BenchmarkMessageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiment.RunOverhead(11, 3, 10, benchSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		extra := o.SLP.ControlMessages.Mean - o.Protectionless.ControlMessages.Mean
		b.ReportMetric(extra, "extra-ctrl-msgs")
		b.ReportMetric(100*extra/o.Protectionless.TotalMessages.Mean, "extra-ctrl-%")
	}
}

// BenchmarkAblationSearchDistance sweeps SD (DESIGN.md A1): the paper
// only evaluates 3 and 5; this measures the full range on the 11×11 grid.
func BenchmarkAblationSearchDistance(b *testing.B) {
	for _, sd := range []int{1, 2, 3, 4, 5, 6, 7} {
		sd := sd
		b.Run(fmt.Sprintf("sd=%d", sd), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := experiment.SearchDistanceSweep(11, []int{sd}, 20, benchSeed, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(points[0].CaptureRatio.Percent(), "capture%")
				b.ReportMetric(points[0].ChangedNodes.Mean, "changed-nodes")
			}
		})
	}
}

// BenchmarkAblationAttacker sweeps attacker strength (DESIGN.md A2) with
// the decision procedure over a fixed settled schedule: stronger
// (R, M)-attackers explore more of the slot landscape.
func BenchmarkAblationAttacker(b *testing.B) {
	params := []verify.Params{
		{R: 1, H: 0, M: 1},
		{R: 2, H: 0, M: 1},
		{R: 2, H: 0, M: 2},
		{R: 3, H: 1, M: 2},
	}
	for i := range params {
		p := params[i]
		b.Run(fmt.Sprintf("R%d_H%d_M%d", p.R, p.H, p.M), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := experiment.AttackerSweep(11, core.DefaultSLP(3), benchSeed, []verify.Params{p})
				if err != nil {
					b.Fatal(err)
				}
				captured := 0.0
				if points[0].Captured {
					captured = 1
				}
				b.ReportMetric(captured, "captured")
				b.ReportMetric(float64(points[0].StatesExplored), "states")
			}
		})
	}
}

// BenchmarkAblationLossModel compares channel models (DESIGN.md A3): the
// paper evaluates the ideal channel; this quantifies robustness under the
// casino-lab substitute and Bernoulli loss.
func BenchmarkAblationLossModel(b *testing.B) {
	for _, loss := range []string{"ideal", "bernoulli:0.05", "rssi"} {
		loss := loss
		b.Run(loss, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sum, err := Run(SimConfig{
					GridSize:  11,
					Protocol:  SLPAware,
					Repeats:   15,
					Seed:      benchSeed,
					LossModel: loss,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(sum.CaptureRatio*100, "capture%")
				b.ReportMetric(sum.ScheduleValidRatio*100, "valid%")
			}
		})
	}
}

// BenchmarkVerifySchedule measures the decision procedure itself
// (DESIGN.md A4) on greedy reference schedules of the paper's sizes.
func BenchmarkVerifySchedule(b *testing.B) {
	for _, side := range []int{11, 15, 21} {
		side := side
		b.Run(fmt.Sprintf("grid=%d", side), func(b *testing.B) {
			g, err := topo.DefaultGrid(side)
			if err != nil {
				b.Fatal(err)
			}
			sink, source := topo.GridCentre(side), topo.GridTopLeft()
			a, err := schedule.GreedyDAS(g, sink, 200)
			if err != nil {
				b.Fatal(err)
			}
			delta := 2 * side
			p := verify.Params{R: 2, H: 0, M: 1, Start: sink}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := verify.VerifySchedule(g, a, p, verify.AnyHeardD, delta, source, verify.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSingleRun measures one full simulated lifecycle (setup + data
// phase + attacker) per grid size — the unit cost behind every experiment.
// Allocation counts are reported because the des/radio hot path underneath
// is held to zero steady-state allocations (see the bench files in
// internal/des, internal/radio and internal/core, and cmd/slpbench for the
// recorded BENCH_*.json baselines).
func BenchmarkSingleRun(b *testing.B) {
	for _, side := range []int{11, 15, 21} {
		side := side
		b.Run(fmt.Sprintf("grid=%d", side), func(b *testing.B) {
			g, err := topo.DefaultGrid(side)
			if err != nil {
				b.Fatal(err)
			}
			sink, source := topo.GridCentre(side), topo.GridTopLeft()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net, err := core.NewNetwork(g, sink, source, core.DefaultSLP(3), uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := net.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhase1Setup measures the distributed slot-assignment protocol
// alone.
func BenchmarkPhase1Setup(b *testing.B) {
	g, err := topo.DefaultGrid(11)
	if err != nil {
		b.Fatal(err)
	}
	sink, source := topo.GridCentre(11), topo.GridTopLeft()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := core.NewNetwork(g, sink, source, core.Default(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.RunSetup(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyDAS measures the centralized reference generator.
func BenchmarkGreedyDAS(b *testing.B) {
	g, err := topo.DefaultGrid(21)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.GreedyDAS(g, topo.GridCentre(21), 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRoundTrip measures the frame codec.
func BenchmarkWireRoundTrip(b *testing.B) {
	msg := &wire.Dissem{
		From:   7,
		Normal: true,
		Parent: 3,
		Infos: []wire.NodeInfo{
			{Node: 1, Hop: 2, Slot: 90, Version: 4},
			{Node: 2, Hop: 3, Slot: 88, Version: 2},
			{Node: 3, Hop: 1, Slot: 95, Version: 9},
			{Node: 4, Hop: 2, Slot: 89, Version: 1},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame := wire.Marshal(msg)
		if _, err := wire.Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}
