// Command slplint runs the repository's custom static-analysis suite: the
// four analyzers of internal/lint (mapiter, seedpurity, resetcomplete,
// hotpath) that machine-check the determinism, seed-purity,
// reset-completeness and zero-alloc contracts every PR must preserve. CI
// runs it beside go vet; the tree must stay clean.
//
// Usage:
//
//	slplint [flags] [packages]
//
//	-json                emit findings as a JSON array instead of text
//	-enable a,b          run only the named analyzers
//	-disable a,b         run all but the named analyzers
//	-annotate-immutable  rewrite sources, tagging every field resetcomplete
//	                     flags with a // lint:immutable: TODO(reason)
//	                     annotation for human review (see DESIGN.md)
//
// Exit status: 0 when clean, 1 when findings exist, 2 on usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"slpdas/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	enable := flag.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	annotate := flag.Bool("annotate-immutable", false,
		"insert // lint:immutable: TODO(reason) on fields resetcomplete flags, for review")
	flag.Parse()

	enabled, err := chooseAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slplint:", err)
		os.Exit(2)
	}
	if *annotate {
		// The annotation helper is resetcomplete-only by construction.
		enabled = map[string]bool{lint.ResetComplete.Name: true}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(lint.Config{Dir: ".", Patterns: patterns, Enabled: enabled})
	if err != nil {
		fmt.Fprintln(os.Stderr, "slplint:", err)
		os.Exit(2)
	}

	if *annotate {
		n, err := annotateImmutable(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slplint:", err)
			os.Exit(2)
		}
		fmt.Printf("slplint: annotated %d field(s); replace each TODO(reason) with why the field is exempt from Reset\n", n)
		return
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "slplint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// chooseAnalyzers folds -enable/-disable into the runner's Enabled set.
func chooseAnalyzers(enable, disable string) (map[string]bool, error) {
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("use -enable or -disable, not both")
	}
	if enable != "" {
		return lint.ParseEnabled(enable)
	}
	if disable != "" {
		skip, err := lint.ParseEnabled(disable)
		if err != nil {
			return nil, err
		}
		out := map[string]bool{}
		for _, a := range lint.Analyzers() {
			if !skip[a.Name] {
				out[a.Name] = true
			}
		}
		return out, nil
	}
	return nil, nil
}

// annotateImmutable appends the immutable annotation to each flagged
// field's line. The tool never invents a justification: it writes
// TODO(reason) and leaves the reason — the part with information content —
// to the author, which is the whole -fix workflow documented in DESIGN.md.
func annotateImmutable(findings []lint.Finding) (int, error) {
	byFile := map[string][]int{}
	for _, f := range findings {
		if f.Analyzer == lint.ResetComplete.Name {
			byFile[f.File] = append(byFile[f.File], f.Line)
		}
	}
	total := 0
	for file, lines := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return total, err
		}
		text := strings.Split(string(src), "\n")
		tagged := map[int]bool{}
		for _, line := range lines {
			if line < 1 || line > len(text) || tagged[line] {
				continue
			}
			if strings.Contains(text[line-1], "lint:immutable") {
				continue
			}
			text[line-1] += " // lint:immutable: TODO(reason)"
			tagged[line] = true
			total++
		}
		if len(tagged) == 0 {
			continue
		}
		if err := os.WriteFile(file, []byte(strings.Join(text, "\n")), 0o644); err != nil {
			return total, err
		}
	}
	return total, nil
}
