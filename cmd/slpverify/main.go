// Command slpverify runs the paper's decision procedure (Algorithm 1)
// against a schedule produced by the distributed protocol: it builds a
// grid network, executes the setup phases, and decides whether the
// resulting slot assignment is δ-SLP-aware, printing the violating
// attacker trace when it is not — like a model checker's counterexample.
//
// Usage:
//
//	slpverify [-size N] [-protocol protectionless|slp] [-sd D] [-seed S]
//	          [-attacker R,H,M] [-decision first|any|unvisited]
//	          [-delta P] [-allow-wait] [-map]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"slpdas/internal/core"
	"slpdas/internal/schedule"
	"slpdas/internal/topo"
	"slpdas/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("slpverify", flag.ContinueOnError)
	size := fs.Int("size", 11, "grid size")
	protocol := fs.String("protocol", "slp", "protectionless or slp")
	sd := fs.Int("sd", 3, "search distance (slp only)")
	seed := fs.Uint64("seed", 1, "random seed for the schedule-building run")
	atk := fs.String("attacker", "1,0,1", "attacker parameters R,H,M")
	decision := fs.String("decision", "first", "attacker decision set: first, any or unvisited")
	delta := fs.Int("delta", 0, "safety period in TDMA periods (0 = paper's 1.5·(Δss+1))")
	allowWait := fs.Bool("allow-wait", false, "let the attacker defer moves past its per-period budget")
	showMap := fs.Bool("map", false, "print the slot assignment and counterexample as an ASCII map")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var r, h, m int
	if _, err := fmt.Sscanf(*atk, "%d,%d,%d", &r, &h, &m); err != nil {
		fmt.Fprintf(os.Stderr, "slpverify: bad -attacker %q (want R,H,M)\n", *atk)
		return 2
	}
	var d verify.DecisionSet
	switch *decision {
	case "first":
		d = verify.FirstHeardD
	case "any":
		d = verify.AnyHeardD
	case "unvisited":
		d = verify.UnvisitedD
	default:
		fmt.Fprintf(os.Stderr, "slpverify: unknown decision %q\n", *decision)
		return 2
	}

	var cfg core.Config
	switch *protocol {
	case "protectionless":
		cfg = core.Default()
	case "slp":
		cfg = core.DefaultSLP(*sd)
	default:
		fmt.Fprintf(os.Stderr, "slpverify: unknown protocol %q\n", *protocol)
		return 2
	}

	if err := verifyRun(*size, cfg, *seed, verify.Params{R: r, H: h, M: m}, d, *delta, *allowWait, *showMap); err != nil {
		fmt.Fprintf(os.Stderr, "slpverify: %v\n", err)
		return 1
	}
	return 0
}

func verifyRun(size int, cfg core.Config, seed uint64, p verify.Params, d verify.DecisionSet, delta int, allowWait, showMap bool) error {
	g, err := topo.DefaultGrid(size)
	if err != nil {
		return err
	}
	sink, source := topo.GridCentre(size), topo.GridTopLeft()
	net, err := core.NewNetwork(g, sink, source, cfg, seed)
	if err != nil {
		return err
	}
	assignment, err := net.RunSetup()
	if err != nil {
		return err
	}

	fmt.Printf("schedule: %d×%d grid, seed %d, sink %d, source %d, Δss %d\n",
		size, size, seed, sink, source, net.DeltaSS())
	fmt.Printf("  weak DAS      : %v\n", describe(schedule.CheckWeakDAS(g, assignment)))
	fmt.Printf("  strong DAS    : %v\n", describe(schedule.CheckStrongDAS(g, assignment)))
	fmt.Printf("  non-colliding : %v\n", describe(schedule.CheckNonColliding(g, assignment)))

	if delta <= 0 {
		delta = int(net.SafetyPeriods())
	}
	p.Start = sink
	res, err := verify.VerifySchedule(g, assignment, p, d, delta, source, verify.Options{AllowWait: allowWait})
	if err != nil {
		return err
	}

	fmt.Printf("\nVerifySchedule((%d,%d,%d,sink,D), δ=%d): ", p.R, p.H, p.M, delta)
	onTrace := map[topo.NodeID]bool{}
	if res.SLPAware {
		fmt.Printf("(True, ⊥, %d) — the schedule is %d-SLP-aware for the source\n", delta, delta)
	} else {
		fmt.Printf("(False, pc, %d) — captured within the safety period\n", res.CapturePeriod)
		fmt.Printf("  counterexample pc (%d steps): %v\n", len(res.Counterexample)-1, res.Counterexample)
		for _, n := range res.Counterexample {
			onTrace[n] = true
		}
	}
	fmt.Printf("  states explored: %d\n", res.StatesExplored)

	if showMap {
		fmt.Println("\nslot map ('*' marks the counterexample trace, K sink, S source):")
		fmt.Print(topo.RenderGrid(size, func(n topo.NodeID) string {
			label := ""
			switch {
			case n == sink:
				label = "K"
			case n == source:
				label = "S"
			}
			slot := "·"
			if assignment.Assigned(n) {
				slot = strconv.Itoa(assignment.Slot(n))
			}
			if onTrace[n] {
				return label + slot + "*"
			}
			return label + slot
		}))
	}
	return nil
}

func describe(violations []schedule.Violation) string {
	if len(violations) == 0 {
		return "ok"
	}
	max := 3
	if len(violations) < max {
		max = len(violations)
	}
	return fmt.Sprintf("%d violations, e.g. %v", len(violations), violations[:max])
}
