// Command slpsweep runs a full experimental campaign — the Cartesian
// product of topology, protocol, search-distance, attacker, loss-model,
// collision and fault-injection axes — through one shared worker pool, streaming one
// result row per cell to a JSONL or CSV sink. The paper's whole
// evaluation is one invocation:
//
//	slpsweep -sizes 11,15,21 -protocols protectionless,slp -sd 3 \
//	         -repeats 100 -out fig5a.jsonl
//
// Output is deterministic: the same flags and seed produce byte-identical
// rows, regardless of -workers. Progress goes to stderr; suppress it with
// -quiet.
//
// Long campaigns survive interruption and split across machines:
//
//	-resume    scans -out for already-completed cells (dropping any torn
//	           final line a kill left behind), then appends only the
//	           missing rows — the finished file is byte-identical to an
//	           uninterrupted run;
//	-shard i/n runs the i-th of n deterministic stride slices of the cell
//	           matrix; merge the per-shard outputs with slpmerge.
//
// Usage:
//
//	slpsweep [-sizes 7,11] [-topologies grid|line:<n>|ring:<n>|rgg:<n>#<seed>,...]
//	         [-protocols protectionless,slp-das,phantom,fake-source,tier] [-sd 1,3]
//	         [-attackers R,H,M[;R,H,M...]] [-strategies first-heard,cautious,...]
//	         [-nattackers 1,2,3] [-shared-history false,true]
//	         [-loss ideal,bernoulli:<p>,rssi]
//	         [-channels ideal,logdist:<n>:<sigma>[@sinr:<t>],...]
//	         [-collisions false,true]
//	         [-faults none,crash:<rate>,churn:<rate>:<mttr>,link:<rate>,blackout:<r>@<p>]
//	         [-energy none,battery:<capacity>[:<tx>:<rx>:<idle>]]
//	         [-repeats N] [-seed S] [-workers W]
//	         [-path-cap off|full|N] [-out results.jsonl] [-format jsonl|csv]
//	         [-resume] [-shard i/n] [-checkpoint N] [-quiet]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"slpdas"
	"slpdas/internal/attacker"
	"slpdas/internal/campaign"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("slpsweep", flag.ContinueOnError)
	sizesArg := fs.String("sizes", "11", "comma-separated grid sides for the topology axis")
	topoArg := fs.String("topologies", "", "explicit topology axis overriding -sizes: grid, line:<n>, ring:<n>, rgg:<n>#<seed> (comma-separated; plain \"grid\" expands -sizes)")
	protoArg := fs.String("protocols", "protectionless,slp",
		"comma-separated protocol axis: "+strings.Join(campaign.ProtocolNames(), ", ")+" (plus the \"slp\" alias)")
	sdArg := fs.String("sd", "3", "comma-separated search distances")
	atkArg := fs.String("attackers", "1,0,1", "semicolon-separated attacker R,H,M tuples")
	stratArg := fs.String("strategies", attacker.DefaultStrategy,
		"comma-separated attacker strategies: "+strings.Join(attacker.StrategyNames(), ", "))
	countArg := fs.String("nattackers", "1", "comma-separated eavesdropper team sizes")
	sharedArg := fs.String("shared-history", "false", "comma-separated shared-H-window settings: false, true")
	lossArg := fs.String("loss", "ideal", "comma-separated channel models: ideal, bernoulli:<p> with p in [0,1], rssi")
	channelsArg := fs.String("channels", "", "comma-separated channel axis superseding -loss: ideal, bernoulli:<p>, rssi, logdist:<n>:<sigma>[@sinr:<threshold>]")
	collArg := fs.String("collisions", "false", "comma-separated collision settings: false, true")
	faultsArg := fs.String("faults", "none", "comma-separated fault-injection axis: none, crash:<rate>, churn:<rate>:<mttr>, link:<rate>, blackout:<r>@<p>")
	energyArg := fs.String("energy", "none", "comma-separated energy axis: none, battery:<capacity>[:<tx>:<rx>:<idle>] (mJ)")
	repeats := fs.Int("repeats", 10, "simulation repetitions per cell")
	pathCapArg := fs.String("path-cap", "off", "attacker-walk recording per run: off (default; rows never render walks), full, or N to keep the first N locations")
	seed := fs.Uint64("seed", 1, "base random seed")
	workers := fs.Int("workers", 0, "total concurrent simulations (0 = GOMAXPROCS)")
	out := fs.String("out", "", "output file (empty = stdout)")
	format := fs.String("format", "", "jsonl or csv (default: from -out extension, else jsonl)")
	resume := fs.Bool("resume", false, "resume an interrupted campaign: scan -out for completed cells, truncate any torn final line, append only the missing rows")
	shardArg := fs.String("shard", "", "run one stride slice i/n of the cell matrix (e.g. 1/3); merge shard outputs with slpmerge")
	checkpointEvery := fs.Int("checkpoint", 16, "flush sinks to disk every N completed cells (0 = only at exit)")
	quiet := fs.Bool("quiet", false, "suppress progress reporting on stderr")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	spec, err := buildSpec(*sizesArg, *topoArg, *protoArg, *sdArg, *atkArg, *stratArg, *countArg, *sharedArg, *lossArg, *channelsArg, *collArg, *faultsArg, *energyArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slpsweep: %v\n", err)
		return 2
	}
	spec.Repeats = *repeats
	spec.BaseSeed = *seed
	spec.Workers = *workers
	spec.CheckpointEvery = *checkpointEvery
	if spec.PathCap, err = parsePathCap(*pathCapArg); err != nil {
		fmt.Fprintf(os.Stderr, "slpsweep: -path-cap: %v\n", err)
		return 2
	}
	if *shardArg != "" {
		sh, err := parseShard(*shardArg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slpsweep: -shard: %v\n", err)
			return 2
		}
		spec.Shard = sh
	}
	if !*quiet {
		spec.Progress = func(done, total int, row campaign.Row) {
			fmt.Fprintf(os.Stderr, "slpsweep: cell %d/%d %s %s sd=%d %s x%d: capture %.1f%% (%d/%d runs)\n",
				done, total, row.Topology, row.Protocol, row.SearchDistance,
				row.Strategy, row.Attackers,
				row.CaptureRatio*100, row.Captures, row.Runs)
		}
	}

	formatName := resolveFormat(*format, *out)
	if formatName != "jsonl" && formatName != "csv" {
		fmt.Fprintf(os.Stderr, "slpsweep: unknown -format %q (want jsonl or csv)\n", *format)
		return 2
	}
	var w io.Writer = os.Stdout
	var outFile *os.File
	csvAppend := false
	if *resume {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "slpsweep: -resume requires -out")
			return 2
		}
		f, completed, hasHeader, err := openResume(spec, *out, formatName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slpsweep: -resume: %v\n", err)
			return 1
		}
		outFile, w = f, f
		csvAppend = hasHeader
		spec.Skip = func(cell int) bool { return completed[cell] }
		if !*quiet {
			fmt.Fprintf(os.Stderr, "slpsweep: resuming %s: %d cells already complete\n", *out, len(completed))
		}
	} else if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slpsweep: %v\n", err)
			return 1
		}
		outFile = f
		w = f
	}
	var sink campaign.Sink
	switch {
	case formatName == "csv" && csvAppend:
		// The resumed file already carries the header; appending must not
		// duplicate it.
		sink = campaign.NewCSVAppend(w)
	case formatName == "csv":
		sink = campaign.NewCSV(w)
	default:
		sink = campaign.NewJSONL(w)
	}

	sum, err := slpdas.RunCampaign(spec, sink)
	if cerr := sink.Close(); cerr != nil && err == nil {
		err = cerr
	}
	// A failed close can drop buffered rows; it must fail the run.
	if outFile != nil {
		if cerr := outFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "slpsweep: %v\n", err)
		return 1
	}
	if !*quiet {
		if sum.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "slpsweep: %d/%d cells done (%d skipped: already complete or out of shard), %d run failures\n",
				sum.Cells-sum.Skipped, sum.Cells, sum.Skipped, sum.Failures)
		} else {
			fmt.Fprintf(os.Stderr, "slpsweep: %d cells done, %d run failures\n", sum.Cells, sum.Failures)
		}
	}
	return 0
}

// parsePathCap maps the -path-cap flag onto campaign.Spec.PathCap: "off"
// (or 0) disables walk recording, "full" records every visited location,
// and a positive N keeps the first N locations per attacker per run.
func parsePathCap(s string) (int, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "0", "":
		return 0, nil
	case "full":
		return campaign.PathFull, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad value %q (want off, full, or a positive integer)", s)
	}
	return n, nil
}

// parseShard parses "i/n" into a campaign.Shard; range validation is the
// engine's job.
func parseShard(s string) (campaign.Shard, error) {
	idxStr, cntStr, ok := strings.Cut(s, "/")
	if !ok {
		return campaign.Shard{}, fmt.Errorf("bad shard %q (want i/n, e.g. 1/3)", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
	if err != nil {
		return campaign.Shard{}, fmt.Errorf("bad shard index in %q", s)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(cntStr))
	if err != nil {
		return campaign.Shard{}, fmt.Errorf("bad shard count in %q", s)
	}
	if cnt < 1 {
		// An explicit -shard flag always intends sharding; a zero count
		// would silently run the whole matrix.
		return campaign.Shard{}, fmt.Errorf("shard count must be at least 1, got %q", s)
	}
	return campaign.Shard{Index: idx, Count: cnt}, nil
}

// openResume opens path for appending the missing cells of an interrupted
// campaign: it scans the format-appropriate completed-cell set — refusing
// rows that do not belong to spec's matrix and seed layout, so resuming
// with mismatched flags fails instead of mixing two campaigns — truncates
// any torn final line so appended rows start at a clean boundary, and
// leaves the write offset at the end. hasHeader reports whether a CSV
// header is already durable in the file.
func openResume(spec campaign.Spec, path, format string) (f *os.File, completed map[int]bool, hasHeader bool, err error) {
	f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, false, err
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	var valid int64
	completed, valid, err = spec.ScanResumable(f, format)
	if err != nil {
		return nil, nil, false, err
	}
	if err = f.Truncate(valid); err != nil {
		return nil, nil, false, err
	}
	if _, err = f.Seek(valid, io.SeekStart); err != nil {
		return nil, nil, false, err
	}
	return f, completed, format == "csv" && valid > 0, nil
}

func resolveFormat(format, out string) string {
	if format != "" {
		return format
	}
	if strings.HasSuffix(out, ".csv") {
		return "csv"
	}
	return "jsonl"
}

func buildSpec(sizes, topologies, protocols, sds, attackers, strategies, counts, shared, losses, channels, collisions, faults, energy string) (campaign.Spec, error) {
	var spec campaign.Spec
	var err error
	if spec.GridSizes, err = parseInts(sizes); err != nil {
		return spec, fmt.Errorf("-sizes: %w", err)
	}
	if spec.Topologies, err = parseTopologies(topologies, spec.GridSizes); err != nil {
		return spec, fmt.Errorf("-topologies: %w", err)
	}
	spec.Protocols = splitList(protocols)
	if spec.SearchDistances, err = parseInts(sds); err != nil {
		return spec, fmt.Errorf("-sd: %w", err)
	}
	if spec.Attackers, err = parseAttackers(attackers); err != nil {
		return spec, fmt.Errorf("-attackers: %w", err)
	}
	spec.Strategies = splitList(strategies)
	if spec.AttackerCounts, err = parseInts(counts); err != nil {
		return spec, fmt.Errorf("-nattackers: %w", err)
	}
	if spec.SharedHistories, err = parseBools(shared); err != nil {
		return spec, fmt.Errorf("-shared-history: %w", err)
	}
	spec.LossModels = splitList(losses)
	spec.Channels = splitList(channels)
	if spec.Collisions, err = parseBools(collisions); err != nil {
		return spec, fmt.Errorf("-collisions: %w", err)
	}
	spec.Faults = splitList(faults)
	spec.Energy = splitList(energy)
	return spec, nil
}

func parseBools(s string) ([]bool, error) {
	var out []bool
	for _, p := range splitList(s) {
		b, err := strconv.ParseBool(p)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, b)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseAttackers parses "R,H,M" tuples separated by semicolons.
func parseAttackers(s string) ([]attacker.Params, error) {
	var out []attacker.Params
	for _, tuple := range strings.Split(s, ";") {
		if tuple = strings.TrimSpace(tuple); tuple == "" {
			continue
		}
		fields, err := parseInts(tuple)
		if err != nil || len(fields) != 3 {
			return nil, fmt.Errorf("bad attacker tuple %q (want R,H,M)", tuple)
		}
		out = append(out, attacker.Params{R: fields[0], H: fields[1], M: fields[2]})
	}
	return out, nil
}

// parseTopologies parses the explicit topology axis. Plain "grid" expands
// to one grid per -sizes entry; other entries are kind:<n> with an
// optional #<seed> placement seed for rgg.
func parseTopologies(s string, gridSizes []int) ([]campaign.TopologySpec, error) {
	if s == "" {
		return nil, nil // let the spec derive the axis from GridSizes
	}
	var out []campaign.TopologySpec
	for _, p := range splitList(s) {
		if p == "grid" {
			for _, size := range gridSizes {
				out = append(out, campaign.TopologySpec{Kind: campaign.KindGrid, Size: size})
			}
			continue
		}
		kind, rest, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("bad topology %q (want kind:<n>)", p)
		}
		sizeStr, seedStr, hasSeed := strings.Cut(rest, "#")
		size, err := strconv.Atoi(sizeStr)
		if err != nil {
			return nil, fmt.Errorf("bad topology size in %q", p)
		}
		ts := campaign.TopologySpec{Kind: campaign.TopologyKind(kind), Size: size}
		if hasSeed {
			if ts.Seed, err = strconv.ParseUint(seedStr, 10, 64); err != nil {
				return nil, fmt.Errorf("bad topology seed in %q", p)
			}
		}
		out = append(out, ts)
	}
	return out, nil
}
