package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"slpdas/internal/campaign"
)

// sweepArgs is a tiny real campaign (4 cells, 2 repeats of a 5×5 grid)
// used by every CLI test; extra holds the per-test flags.
func sweepArgs(out string, extra ...string) []string {
	args := []string{"-sizes", "5", "-sd", "1,2", "-repeats", "2", "-seed", "3", "-quiet", "-out", out}
	return append(args, extra...)
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return b
}

func TestCLIResumeAfterTornWrite(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.jsonl")
	if code := run(sweepArgs(single)); code != 0 {
		t.Fatalf("full run exited %d", code)
	}
	want := readFile(t, single)

	// Tear at several points, including cutting the whole file away.
	for _, cut := range []int{0, 25, len(want) / 2, len(want) - 3} {
		torn := filepath.Join(dir, "torn.jsonl")
		if err := os.WriteFile(torn, want[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if code := run(sweepArgs(torn, "-resume")); code != 0 {
			t.Fatalf("cut %d: resume exited %d", cut, code)
		}
		if got := readFile(t, torn); !bytes.Equal(got, want) {
			t.Errorf("cut %d: resumed file differs from uninterrupted run:\n%s\nvs\n%s", cut, got, want)
		}
	}

	// Resuming a finished file is a no-op that leaves it untouched.
	if code := run(sweepArgs(single, "-resume")); code != 0 {
		t.Fatalf("no-op resume exited %d", code)
	}
	if got := readFile(t, single); !bytes.Equal(got, want) {
		t.Error("no-op resume modified a complete file")
	}

	// Resuming with mismatched flags must refuse the file rather than
	// silently mix two campaigns, and must leave it untouched.
	for name, args := range map[string][]string{
		"wrong seed":    {"-sizes", "5", "-sd", "1,2", "-repeats", "2", "-seed", "99", "-quiet", "-resume", "-out", single},
		"wrong repeats": {"-sizes", "5", "-sd", "1,2", "-repeats", "7", "-seed", "3", "-quiet", "-resume", "-out", single},
		"changed axes":  {"-sizes", "5", "-sd", "1", "-repeats", "2", "-seed", "3", "-quiet", "-resume", "-out", single},
	} {
		if code := run(args); code == 0 {
			t.Errorf("%s: resume exited 0, want refusal", name)
		}
		if got := readFile(t, single); !bytes.Equal(got, want) {
			t.Fatalf("%s: refused resume modified the file", name)
		}
	}
}

func TestCLIResumeCSVKeepsSingleHeader(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.csv")
	if code := run(sweepArgs(single)); code != 0 {
		t.Fatalf("full run exited %d", code)
	}
	want := readFile(t, single)

	// Cut mid-way through the third line (header + 1 complete record +
	// torn record); resume must not write a second header.
	lines := bytes.SplitAfter(want, []byte("\n"))
	cut := len(lines[0]) + len(lines[1]) + 7
	torn := filepath.Join(dir, "torn.csv")
	if err := os.WriteFile(torn, want[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(sweepArgs(torn, "-resume")); code != 0 {
		t.Fatalf("resume exited %d", code)
	}
	if got := readFile(t, torn); !bytes.Equal(got, want) {
		t.Errorf("resumed csv differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	// Torn before the header completes: the fresh header must be written.
	if err := os.WriteFile(torn, want[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(sweepArgs(torn, "-resume")); code != 0 {
		t.Fatalf("resume exited %d", code)
	}
	if got := readFile(t, torn); !bytes.Equal(got, want) {
		t.Errorf("header-torn resume differs from uninterrupted run")
	}
}

func TestCLIShardsTileTheMatrix(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.jsonl")
	if code := run(sweepArgs(single)); code != 0 {
		t.Fatalf("full run exited %d", code)
	}
	var shards [][]campaign.Row
	seen := 0
	for i := 0; i < 3; i++ {
		out := filepath.Join(dir, "shard.jsonl")
		if code := run(sweepArgs(out, "-shard", string(rune('0'+i))+"/3")); code != 0 {
			t.Fatalf("shard %d exited %d", i, code)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		rows, _, err := campaign.LoadRows(f)
		f.Close()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		for _, r := range rows {
			if r.Cell%3 != i {
				t.Errorf("shard %d emitted cell %d", i, r.Cell)
			}
		}
		seen += len(rows)
		shards = append(shards, rows)
	}
	if seen != 4 {
		t.Errorf("%d cells across shards, want 4", seen)
	}
}

func TestCLIFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"resume without out": {"-resume", "-quiet"},
		"bad shard syntax":   {"-shard", "3", "-quiet"},
		"bad shard index":    {"-shard", "x/3", "-quiet"},
		"shard out of range": {"-shard", "3/3", "-quiet"},
		"shard count zero":   {"-shard", "2/0", "-quiet"},
		"bad loss nan":       {"-loss", "bernoulli:NaN", "-quiet"},
		"bad path cap":       {"-path-cap", "sometimes", "-quiet"},
		"negative path cap":  {"-path-cap", "-3", "-quiet"},
	} {
		if code := run(args); code == 0 {
			t.Errorf("%s: exited 0, want failure", name)
		}
	}
	// bernoulli:1 (total loss) is legal and must run to completion.
	if code := run([]string{"-sizes", "5", "-sd", "1", "-repeats", "1", "-loss", "bernoulli:1", "-quiet", "-out", filepath.Join(t.TempDir(), "x.jsonl")}); code != 0 {
		t.Error("bernoulli:1 rejected, want success")
	}
}

// TestCLIPathCapDoesNotChangeRows pins the memory-vs-output contract of
// -path-cap: rows are byte-identical whether walks are recorded in full,
// capped, or (the default) not at all.
func TestCLIPathCapDoesNotChangeRows(t *testing.T) {
	dir := t.TempDir()
	outs := map[string]string{}
	for _, cap := range []string{"off", "full", "5"} {
		out := filepath.Join(dir, "cap-"+cap+".jsonl")
		if code := run(sweepArgs(out, "-path-cap", cap)); code != 0 {
			t.Fatalf("-path-cap %s: exit %d", cap, code)
		}
		outs[cap] = out
	}
	want := readFile(t, outs["off"])
	for _, cap := range []string{"full", "5"} {
		if got := readFile(t, outs[cap]); !bytes.Equal(got, want) {
			t.Errorf("-path-cap %s rows differ from -path-cap off:\n%s\nvs\n%s", cap, got, want)
		}
	}
}

// TestParsePathCap pins the flag grammar.
func TestParsePathCap(t *testing.T) {
	cases := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"off", 0, false}, {"OFF", 0, false}, {"0", 0, false}, {"", 0, false},
		{"full", campaign.PathFull, false}, {"Full", campaign.PathFull, false},
		{"7", 7, false},
		{"-1", 0, true}, {"nope", 0, true}, {"1.5", 0, true},
	}
	for _, tc := range cases {
		got, err := parsePathCap(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parsePathCap(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("parsePathCap(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
