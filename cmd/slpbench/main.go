// Command slpbench runs the repository's hot-path benchmark suite outside
// `go test` and records the results as one JSON document, so a benchmark
// baseline can be committed (BENCH_<n>.json), diffed in review, and
// uploaded from CI as an artifact.
//
// The suite covers the layers of the simulation hot path: the
// discrete-event scheduler (internal/des), the radio broadcast→delivery
// fan-out (internal/radio), the full per-run lifecycle and its memoized
// setup path (internal/core NewNetwork vs Reset) and the campaign engine
// above them, including a repeat-heavy 11×11 sweep — the workload the
// arena-style run construction exists for. Timings are machine-dependent;
// allocs/op and bytes/op are stable across machines and are the numbers
// the zero-allocation hot path is held to.
//
// The large-topology tier sizes the scale path: spatial-hash graph
// construction at 10⁵ (RGG) and 10⁶ (grid) nodes, and a full 2·10⁴-node
// lifecycle under the scale-test configuration (free-slot collision
// resolution, walk recording off). These entries carry a per-op unit
// count — nodes for builds, node·periods for the run — and the report
// derives ns/unit and bytes/unit from it, the per-node numbers that stay
// comparable as topology sizes change between baselines.
//
// With -check, the freshly measured results are compared against a
// committed baseline: any allocs/op regression in a suite the baseline
// holds at zero allocs fails the run (exit 1); other allocs growth and all
// ns/op movement is reported as warnings only, since wall-clock numbers do
// not transfer between machines.
//
// Usage:
//
//	slpbench [-out BENCH_10.json] [-check BENCH_10.json] [-quiet]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"slpdas/internal/campaign"
	"slpdas/internal/channel"
	"slpdas/internal/core"
	"slpdas/internal/des"
	"slpdas/internal/energy"
	"slpdas/internal/fault"
	"slpdas/internal/protocol"
	"slpdas/internal/radio"
	"slpdas/internal/topo"
)

// Result is one benchmark's outcome in the emitted JSON.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Units is the benchmark's self-reported work-unit count per op
	// (b.ReportMetric(…, "units")): nodes for topology builds,
	// node·periods for large simulated runs. Zero when the benchmark
	// reports none.
	Units float64 `json:"units,omitempty"`
	// NsPerUnit and BytesPerUnit are NsPerOp and BytesPerOp normalised by
	// Units — the size-independent series (ns/node·period, bytes/node)
	// the large-topology tier is tracked by.
	NsPerUnit    float64 `json:"ns_per_unit,omitempty"`
	BytesPerUnit float64 `json:"bytes_per_unit,omitempty"`
}

// Report is the whole document: enough provenance to interpret the
// numbers, then one entry per benchmark.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPU is the host CPU model (from /proc/cpuinfo where available) —
	// the provenance needed to compare ns/op numbers at all.
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("slpbench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_10.json", "output JSON file (empty = stdout)")
	check := fs.String("check", "", "baseline JSON to compare against; allocs/op regressions in zero-alloc suites fail the run")
	quiet := fs.Bool("quiet", false, "suppress per-benchmark progress on stderr")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	report := Report{
		Schema:    "slpdas-bench/3",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpuModel(),
	}
	for _, bench := range suite() {
		r := testing.Benchmark(bench.fn)
		res := Result{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if units := r.Extra["units"]; units > 0 {
			res.Units = units
			res.NsPerUnit = res.NsPerOp / units
			res.BytesPerUnit = float64(res.BytesPerOp) / units
		}
		report.Results = append(report.Results, res)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "slpbench: %-28s %14.1f ns/op %8d allocs/op %10d B/op",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
			if res.Units > 0 {
				fmt.Fprintf(os.Stderr, " %10.1f ns/unit %8.1f B/unit", res.NsPerUnit, res.BytesPerUnit)
			}
			fmt.Fprintln(os.Stderr)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "slpbench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "slpbench: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "slpbench: wrote %s\n", *out)
		}
	}

	if *check != "" {
		if !compareBaseline(*check, report) {
			return 1
		}
	}
	return 0
}

// cpuModel best-effort-identifies the host CPU. Linux exposes the model
// name in /proc/cpuinfo; elsewhere the field is left empty rather than
// guessed.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// compareBaseline reports whether the fresh results hold the committed
// baseline's allocation guarantees. The contract, per the CI gate: a suite
// the baseline records at 0 allocs/op must stay at 0 (hard failure —
// allocs/op is machine-independent, so growth is a real regression);
// non-zero alloc suites warn when allocs grow (campaign-level counts can
// wiggle with worker scheduling); ns/op is always warn-only.
func compareBaseline(path string, fresh Report) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slpbench: read baseline: %v\n", err)
		return false
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "slpbench: parse baseline: %v\n", err)
		return false
	}
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	covered := make(map[string]bool, len(fresh.Results))
	ok := true
	for _, r := range fresh.Results {
		covered[r.Name] = true
		b, found := baseline[r.Name]
		if !found {
			fmt.Fprintf(os.Stderr, "slpbench: NOTE  %s: not in baseline %s\n", r.Name, path)
			continue
		}
		switch {
		case b.AllocsPerOp == 0 && r.AllocsPerOp > 0:
			fmt.Fprintf(os.Stderr, "slpbench: FAIL  %s: %d allocs/op, baseline holds this suite at 0\n",
				r.Name, r.AllocsPerOp)
			ok = false
		case r.AllocsPerOp > b.AllocsPerOp:
			fmt.Fprintf(os.Stderr, "slpbench: WARN  %s: allocs/op %d -> %d\n",
				r.Name, b.AllocsPerOp, r.AllocsPerOp)
		}
		if b.NsPerOp > 0 && r.NsPerOp > 1.2*b.NsPerOp {
			fmt.Fprintf(os.Stderr, "slpbench: WARN  %s: ns/op %.1f -> %.1f (+%.0f%%; machine-dependent, not gating)\n",
				r.Name, b.NsPerOp, r.NsPerOp, 100*(r.NsPerOp/b.NsPerOp-1))
		}
	}
	// A baseline entry with no fresh counterpart means a suite was renamed
	// or deleted without updating the committed baseline — the guarantee it
	// carried would otherwise vanish from CI silently.
	for _, b := range base.Results {
		if !covered[b.Name] {
			fmt.Fprintf(os.Stderr, "slpbench: FAIL  %s: in baseline %s but not in the fresh run; update the baseline alongside suite changes\n",
				b.Name, path)
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(os.Stderr, "slpbench: baseline check against %s passed\n", path)
	}
	return ok
}

type benchmark struct {
	name string
	fn   func(b *testing.B)
}

// suite returns the hot-path benchmarks, cheapest layer first.
func suite() []benchmark {
	return []benchmark{
		{"des/schedule-closure", benchScheduleClosure},
		{"des/schedule-runner", benchScheduleRunner},
		{"radio/broadcast", benchBroadcast(false, false)},
		{"radio/broadcast-collisions", benchBroadcast(true, false)},
		{"radio/broadcast-observed", benchBroadcast(false, true)},
		{"radio/sinr-delivery", benchSINRDelivery},
		{"core/setup-new-11", benchSetupNew},
		{"core/setup-reset-11", benchSetupReset},
		{"core/single-run-11", benchSingleRun(11)},
		{"core/single-run-21", benchSingleRun(21)},
		{"core/churn-run", benchChurnRun},
		{"core/energy-run", benchEnergyRun},
		{"protocol/dispatch", benchProtocolDispatch},
		{"campaign/cell-5x5", benchCampaignCell},
		{"campaign/sweep-11x11-x100", benchRepeatHeavySweep},
		{"topo/build-rgg-100k", benchBuildRGG(100_000)},
		{"topo/build-grid-1M", benchBuildGrid(1000)},
		{"core/large-run-rgg-20k", benchLargeRun(20_000)},
	}
}

// benchScheduleClosure measures the steady-state schedule→execute cycle
// with a reused closure body.
func benchScheduleClosure(b *testing.B) {
	s := des.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.ScheduleAfter(time.Millisecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.ScheduleAfter(0, tick)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

type chainRunner struct {
	s *des.Simulator
	n int
	b *testing.B
}

func (r *chainRunner) Run() {
	r.n++
	if r.n < r.b.N {
		r.s.ScheduleRunnerAfter(time.Millisecond, r)
	}
}

// benchScheduleRunner is the same cycle through the closure-free Runner
// path — the hot path the radio and MAC layers use.
func benchScheduleRunner(b *testing.B) {
	s := des.New()
	r := &chainRunner{s: s, b: b}
	b.ReportAllocs()
	b.ResetTimer()
	s.ScheduleRunnerAfter(0, r)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

type still struct{ pos topo.Point }

func (o still) Location() topo.Point       { return o.pos }
func (o still) Overhear(radio.Observation) {}

// benchBroadcast measures one broadcast→delivery fan-out at the centre of
// an 11×11 grid.
func benchBroadcast(collisions, observed bool) func(b *testing.B) {
	return func(b *testing.B) {
		g, err := topo.DefaultGrid(11)
		if err != nil {
			b.Fatal(err)
		}
		sim := des.New()
		m := radio.New(sim, g, 1, radio.WithCollisions(collisions))
		for n := topo.NodeID(0); int(n) < g.Len(); n++ {
			m.SetReceiver(n, func(topo.NodeID, []byte) {})
		}
		centre := topo.GridCentre(11)
		if observed {
			m.AddObserver(still{pos: g.Position(centre)})
		}
		payload := make([]byte, 32)
		fire := func() { m.Broadcast(centre, payload) }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.ScheduleAfter(0, fire)
			if err := sim.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSINRDelivery measures the broadcast→delivery fan-out under the
// shadowed log-distance channel with SINR capture: two overlapping
// transmissions per op, so every delivery runs the contention fold and the
// capture verdict. The baseline holds this at 0 allocs/op — the SINR
// accumulator must keep the pooled-delivery discipline (the per-link
// shadowing cache is warmed before timing; steady state it is read-only).
func benchSINRDelivery(b *testing.B) {
	g, err := topo.DefaultGrid(11)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := channel.Parse("logdist:2.4:4@sinr:3")
	if err != nil {
		b.Fatal(err)
	}
	sim := des.New()
	m := radio.New(sim, g, 1, radio.WithChannel(ch))
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		m.SetReceiver(n, func(topo.NodeID, []byte) {})
	}
	centre := topo.GridCentre(11)
	rival := g.Neighbors(centre)[0]
	payload := make([]byte, 32)
	fire := func() {
		m.Broadcast(centre, payload)
		m.Broadcast(rival, payload)
	}
	// Warm the pools and the per-link shadowing cache.
	sim.ScheduleAfter(0, fire)
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ScheduleAfter(0, fire)
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSetupNew measures cold run construction: one full NewNetwork wiring
// per op — what every campaign repeat paid before the arena split.
func benchSetupNew(b *testing.B) {
	g, err := topo.DefaultGrid(11)
	if err != nil {
		b.Fatal(err)
	}
	sink, source := topo.GridCentre(11), topo.GridTopLeft()
	cfg := core.DefaultSLP(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewNetwork(g, sink, source, cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSetupReset measures warm run construction: rewinding one wired
// network with Reset — what a campaign repeat pays on the arena path.
func benchSetupReset(b *testing.B) {
	g, err := topo.DefaultGrid(11)
	if err != nil {
		b.Fatal(err)
	}
	sink, source := topo.GridCentre(11), topo.GridTopLeft()
	cfg := core.DefaultSLP(3)
	net, err := core.NewNetwork(g, sink, source, cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Reset(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSingleRun measures one complete simulated lifecycle (setup + data
// phase + attacker) — the unit of work behind every campaign repeat.
func benchSingleRun(side int) func(b *testing.B) {
	return func(b *testing.B) {
		g, err := topo.DefaultGrid(side)
		if err != nil {
			b.Fatal(err)
		}
		sink, source := topo.GridCentre(side), topo.GridTopLeft()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net, err := core.NewNetwork(g, sink, source, core.DefaultSLP(3), uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := net.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchChurnRun measures one complete lifecycle with the fault-injection
// subsystem live: churn crashes nodes mid-data-phase and rejoins them
// after the MTTR, exercising plan minting, crash/recover event handling,
// re-discovery and slot re-acquisition on top of the single-run cost.
func benchChurnRun(b *testing.B) {
	g, err := topo.DefaultGrid(11)
	if err != nil {
		b.Fatal(err)
	}
	sink, source := topo.GridCentre(11), topo.GridTopLeft()
	cfg := core.DefaultSLP(3)
	cfg.Faults = fault.Spec{Kind: fault.Churn, Rate: 0.15, MTTR: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := core.NewNetwork(g, sink, source, cfg, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEnergyRun measures one complete lifecycle with the physical layer
// fully live: shadowed SINR channel, per-node battery accounting, idle
// charging each TDMA period and depletion deaths rewiring the network —
// the marginal cost of energy realism over core/single-run-11.
func benchEnergyRun(b *testing.B) {
	g, err := topo.DefaultGrid(11)
	if err != nil {
		b.Fatal(err)
	}
	sink, source := topo.GridCentre(11), topo.GridTopLeft()
	cfg := core.DefaultSLP(3)
	cfg.Channel = "logdist:2.4:4@sinr:3"
	es, err := energy.Parse("battery:25")
	if err != nil {
		b.Fatal(err)
	}
	cfg.Energy = es
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := core.NewNetwork(g, sink, source, cfg, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProtocolDispatch measures the protocol-registry indirection the
// run hot path pays per Reset: name resolution through ByName (alias
// included) plus the static shape queries the network consults. The
// baseline holds this at 0 allocs/op — the registry must stay a map
// lookup away from the hardwired bool it replaced.
func benchProtocolDispatch(b *testing.B) {
	names := [...]string{
		protocol.NameProtectionless,
		protocol.NameSLPDAS,
		protocol.AliasSLP,
		protocol.NamePhantom,
		protocol.NameFakeSource,
		protocol.NameTier,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		fam, err := protocol.ByName(names[i%len(names)])
		if err != nil {
			b.Fatal(err)
		}
		sink += len(fam.Name()) + len(fam.Label())
		if fam.SearchPhase() {
			sink++
		}
		if fam.TDMAData() {
			sink++
		}
		if fam.UsesSearchDistance() {
			sink++
		}
	}
	if sink == 0 {
		b.Fatal("dispatch loop optimised away")
	}
}

// benchCampaignCell measures a small campaign end to end through the
// worker pool, sinks included.
func benchCampaignCell(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mem := &campaign.Memory{}
		if _, err := campaign.Run(campaign.Spec{
			GridSizes:       []int{5},
			SearchDistances: []int{2},
			Repeats:         2,
			BaseSeed:        uint64(i),
			Workers:         2,
		}, mem); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBuildRGG measures spatial-hash topology construction on a random
// geometric graph: placement, bucket-grid neighbour discovery, CSR
// assembly and the union-find connectivity check, at the density the
// scale tests use. Units are nodes, so the report's derived columns are
// build ns/node and resident bytes/node.
func benchBuildRGG(n int) func(b *testing.B) {
	return func(b *testing.B) {
		side := math.Sqrt(float64(n)) * topo.DefaultSpacing
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := topo.RandomGeometric(n, side, side, 2.2*topo.DefaultSpacing, 61+uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			if g.Len() != n {
				b.Fatalf("built %d nodes, want %d", g.Len(), n)
			}
		}
		b.ReportMetric(float64(n), "units")
	}
}

// benchBuildGrid measures spatial-hash construction on a square grid —
// side 1000 is the million-node topology the scale path is sized for.
// Units are nodes.
func benchBuildGrid(side int) func(b *testing.B) {
	return func(b *testing.B) {
		n := side * side
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := topo.DefaultGrid(side)
			if err != nil {
				b.Fatal(err)
			}
			if g.Len() != n {
				b.Fatalf("built %d nodes, want %d", g.Len(), n)
			}
		}
		b.ReportMetric(float64(n), "units")
	}
}

// benchLargeRun measures one full lifecycle on a large random geometric
// graph under the scale-test configuration: free-slot collision
// resolution, one HELLO round, walk recording off, source pinned a fixed
// hop count from the sink so the safety period — and with it the simulated
// work — is topology-size-independent. Units are node·periods, making the
// derived ns/unit the scale path's headline number: nanoseconds to carry
// one node through one TDMA period.
func benchLargeRun(n int) func(b *testing.B) {
	return func(b *testing.B) {
		side := math.Sqrt(float64(n)) * topo.DefaultSpacing
		g, err := topo.RandomGeometric(n, side, side, 2.2*topo.DefaultSpacing, 61)
		if err != nil {
			b.Fatal(err)
		}
		sink := topo.NodeID(0)
		centre := topo.Point{X: side / 2, Y: side / 2}
		for id := topo.NodeID(1); int(id) < g.Len(); id++ {
			if g.Position(id).DistanceTo(centre) < g.Position(sink).DistanceTo(centre) {
				sink = id
			}
		}
		dists := g.BFSFrom(sink)
		source, sourceDist := sink, 0
		for id, d := range dists {
			if d <= 12 && d > sourceDist {
				source, sourceDist = topo.NodeID(id), d
			}
		}
		if sourceDist == 0 {
			b.Fatal("no source candidate within 12 hops of the sink")
		}

		cfg := core.Default()
		cfg.Slots = 2000
		cfg.SlotPeriod = 10 * time.Millisecond
		cfg.MinimumSetupPeriods = 5
		cfg.NeighbourDiscoveryPeriods = 1
		cfg.DisseminationTimeout = 1
		cfg.SafetyFactor = 1.1
		cfg.FastCollisionResolve = true
		cfg.EventBudget = 200_000_000
		cfg.PathCap = core.PathRecordingOff

		nodePeriods := 0.0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net, err := core.NewNetwork(g, sink, source, cfg, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			res, err := net.Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.PeriodsRun <= 0 {
				b.Fatal("no data periods simulated")
			}
			nodePeriods += float64(n) * res.PeriodsRun
		}
		b.ReportMetric(nodePeriods/float64(b.N), "units")
	}
}

// benchRepeatHeavySweep is the acceptance workload of the arena layer: the
// paper's 11×11 grid at 100 repeats per cell with default axes (both
// protocols), through the shared pool with per-worker network reuse. This
// is wall-clock dominated, so expect a single iteration.
func benchRepeatHeavySweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mem := &campaign.Memory{}
		if _, err := campaign.Run(campaign.Spec{
			GridSizes: []int{11},
			Repeats:   100,
			BaseSeed:  1,
			Workers:   4,
		}, mem); err != nil {
			b.Fatal(err)
		}
	}
}
