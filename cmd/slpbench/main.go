// Command slpbench runs the repository's hot-path benchmark suite outside
// `go test` and records the results as one JSON document, so a benchmark
// baseline can be committed (BENCH_<n>.json), diffed in review, and
// uploaded from CI as an artifact.
//
// The suite covers the layers of the simulation hot path: the
// discrete-event scheduler (internal/des), the radio broadcast→delivery
// fan-out (internal/radio), the full per-run lifecycle (internal/core) and
// the campaign engine above them. Timings are machine-dependent;
// allocs/op and bytes/op are stable across machines and are the numbers
// the zero-allocation hot path is held to.
//
// Usage:
//
//	slpbench [-out BENCH_2.json] [-quiet]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"slpdas/internal/campaign"
	"slpdas/internal/core"
	"slpdas/internal/des"
	"slpdas/internal/radio"
	"slpdas/internal/topo"
)

// Result is one benchmark's outcome in the emitted JSON.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the whole document: enough provenance to interpret the
// numbers, then one entry per benchmark.
type Report struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("slpbench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_2.json", "output JSON file (empty = stdout)")
	quiet := fs.Bool("quiet", false, "suppress per-benchmark progress on stderr")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	report := Report{
		Schema:    "slpdas-bench/1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, bench := range suite() {
		r := testing.Benchmark(bench.fn)
		res := Result{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		report.Results = append(report.Results, res)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "slpbench: %-28s %12.1f ns/op %6d allocs/op %8d B/op\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "slpbench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "slpbench: %v\n", err)
		return 1
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "slpbench: wrote %s\n", *out)
	}
	return 0
}

type benchmark struct {
	name string
	fn   func(b *testing.B)
}

// suite returns the hot-path benchmarks, cheapest layer first.
func suite() []benchmark {
	return []benchmark{
		{"des/schedule-closure", benchScheduleClosure},
		{"des/schedule-runner", benchScheduleRunner},
		{"radio/broadcast", benchBroadcast(false, false)},
		{"radio/broadcast-collisions", benchBroadcast(true, false)},
		{"radio/broadcast-observed", benchBroadcast(false, true)},
		{"core/single-run-11", benchSingleRun(11)},
		{"core/single-run-21", benchSingleRun(21)},
		{"campaign/cell-5x5", benchCampaignCell},
	}
}

// benchScheduleClosure measures the steady-state schedule→execute cycle
// with a reused closure body.
func benchScheduleClosure(b *testing.B) {
	s := des.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.ScheduleAfter(time.Millisecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.ScheduleAfter(0, tick)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

type chainRunner struct {
	s *des.Simulator
	n int
	b *testing.B
}

func (r *chainRunner) Run() {
	r.n++
	if r.n < r.b.N {
		r.s.ScheduleRunnerAfter(time.Millisecond, r)
	}
}

// benchScheduleRunner is the same cycle through the closure-free Runner
// path — the hot path the radio and MAC layers use.
func benchScheduleRunner(b *testing.B) {
	s := des.New()
	r := &chainRunner{s: s, b: b}
	b.ReportAllocs()
	b.ResetTimer()
	s.ScheduleRunnerAfter(0, r)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

type still struct{ pos topo.Point }

func (o still) Location() topo.Point       { return o.pos }
func (o still) Overhear(radio.Observation) {}

// benchBroadcast measures one broadcast→delivery fan-out at the centre of
// an 11×11 grid.
func benchBroadcast(collisions, observed bool) func(b *testing.B) {
	return func(b *testing.B) {
		g, err := topo.DefaultGrid(11)
		if err != nil {
			b.Fatal(err)
		}
		sim := des.New()
		m := radio.New(sim, g, 1, radio.WithCollisions(collisions))
		for n := topo.NodeID(0); int(n) < g.Len(); n++ {
			m.SetReceiver(n, func(topo.NodeID, []byte) {})
		}
		centre := topo.GridCentre(11)
		if observed {
			m.AddObserver(still{pos: g.Position(centre)})
		}
		payload := make([]byte, 32)
		fire := func() { m.Broadcast(centre, payload) }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.ScheduleAfter(0, fire)
			if err := sim.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSingleRun measures one complete simulated lifecycle (setup + data
// phase + attacker) — the unit of work behind every campaign repeat.
func benchSingleRun(side int) func(b *testing.B) {
	return func(b *testing.B) {
		g, err := topo.DefaultGrid(side)
		if err != nil {
			b.Fatal(err)
		}
		sink, source := topo.GridCentre(side), topo.GridTopLeft()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net, err := core.NewNetwork(g, sink, source, core.DefaultSLP(3), uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := net.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchCampaignCell measures a small campaign end to end through the
// worker pool, sinks included.
func benchCampaignCell(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mem := &campaign.Memory{}
		if _, err := campaign.Run(campaign.Spec{
			GridSizes:       []int{5},
			SearchDistances: []int{2},
			Repeats:         2,
			BaseSeed:        uint64(i),
			Workers:         2,
		}, mem); err != nil {
			b.Fatal(err)
		}
	}
}
