// Command slpsim drives the paper's evaluation (Section VI): it
// regenerates Figure 5(a), Figure 5(b), Table I and the message-overhead
// comparison, and runs custom simulation batches.
//
// Usage:
//
//	slpsim fig5a    [-repeats N] [-seed S] [-sizes 11,15,21] [-csv out.csv]
//	slpsim fig5b    [-repeats N] [-seed S] [-sizes 11,15,21] [-csv out.csv]
//	slpsim table1
//	slpsim overhead [-size N] [-sd D] [-repeats N] [-seed S]
//	slpsim run      [-size N] [-protocol NAME] [-sd D]
//	                [-repeats N] [-seed S] [-loss ideal|bernoulli:p|rssi]
//	                [-channel logdist:<n>:<sigma>[@sinr:<t>]]
//	                [-attacker R,H,M] [-strategy NAME] [-nattackers K]
//	                [-shared-history] [-collisions]
//	                [-faults none|crash:<rate>|churn:<rate>:<mttr>|link:<rate>|blackout:<r>@<p>]
//	                [-energy none|battery:<capacity>[:<tx>:<rx>:<idle>]]
//	slpsim protocols
//	slpsim strategies
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"slpdas"
	"slpdas/internal/core"
	"slpdas/internal/experiment"
	"slpdas/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "fig5a":
		err = runFigure5(3, args[1:])
	case "fig5b":
		err = runFigure5(5, args[1:])
	case "table1":
		fmt.Println("Table I: parameters for protectionless and SLP DAS")
		fmt.Println()
		fmt.Print(slpdas.TableI())
	case "overhead":
		err = runOverhead(args[1:])
	case "run":
		err = runCustom(args[1:])
	case "sweep":
		err = runSweep(args[1:])
	case "protocols":
		fmt.Println("registered protocols:")
		fmt.Println()
		for _, p := range slpdas.Protocols() {
			fmt.Printf("  %-16s %s\n", p.Name, p.Summary)
		}
	case "strategies":
		fmt.Println("registered attacker strategies:")
		fmt.Println()
		for _, s := range slpdas.Strategies() {
			fmt.Printf("  %-16s %s\n", s.Name, s.Summary)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "slpsim: unknown command %q\n", args[0])
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "slpsim: %v\n", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `slpsim — SLP-aware DAS evaluation driver (ICDCS 2017 reproduction)

commands:
  fig5a     capture ratio vs network size, search distance 3 (Figure 5a)
  fig5b     capture ratio vs network size, search distance 5 (Figure 5b)
  table1    print the protocol parameter table (Table I)
  overhead  message overhead of SLP DAS vs protectionless DAS
  run       custom simulation batch
  sweep     ablations: -what sd | attacker | strategy | loss
  protocols   list the registered routing protocols
  strategies  list the registered attacker strategies

run 'slpsim <command> -h' for the command's flags.`)
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", p)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}

func runFigure5(searchDistance int, args []string) error {
	fs := flag.NewFlagSet(fmt.Sprintf("fig5-sd%d", searchDistance), flag.ContinueOnError)
	repeats := fs.Int("repeats", 100, "simulation repetitions per cell")
	seed := fs.Uint64("seed", 1, "base random seed")
	sizesArg := fs.String("sizes", "11,15,21", "comma-separated grid sizes")
	csvPath := fs.String("csv", "", "also write the series as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesArg)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 5(%s): capture ratio, search distance %d, %d repeats/cell\n\n",
		map[int]string{3: "a", 5: "b"}[searchDistance], searchDistance, *repeats)
	tbl, fig, err := slpdas.Figure5(searchDistance, *repeats, *seed, sizes...)
	if err != nil {
		return err
	}
	fmt.Print(tbl)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fig.Table().WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	for _, p := range fig.Points {
		fmt.Printf("\nsize %d detail: prot valid=%s, slp valid=%s, changed=%.1f nodes, search ok=%s\n",
			p.GridSize, p.ProtectionlessAgg.ScheduleValid, p.SLPAgg.ScheduleValid,
			p.SLPAgg.ChangedNodes.Mean, p.SLPAgg.SearchSucceeded)
	}
	return nil
}

func runOverhead(args []string) error {
	fs := flag.NewFlagSet("overhead", flag.ContinueOnError)
	size := fs.Int("size", 11, "grid size")
	sd := fs.Int("sd", 3, "search distance")
	repeats := fs.Int("repeats", 50, "simulation repetitions per protocol")
	seed := fs.Uint64("seed", 1, "base random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("Message overhead, %d×%d grid, SD=%d, %d repeats/protocol\n\n", *size, *size, *sd, *repeats)
	tbl, _, err := slpdas.Overhead(*size, *sd, *repeats, *seed)
	if err != nil {
		return err
	}
	fmt.Print(tbl)
	return nil
}

func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	what := fs.String("what", "sd", "ablation to run: sd, attacker or loss")
	size := fs.Int("size", 11, "grid size")
	sd := fs.Int("sd", 3, "search distance (attacker/loss sweeps)")
	repeats := fs.Int("repeats", 30, "simulation repetitions per cell")
	seed := fs.Uint64("seed", 1, "base random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *what {
	case "sd":
		fmt.Printf("search-distance ablation, %d×%d grid, %d repeats/cell\n\n", *size, *size, *repeats)
		points, err := experiment.SearchDistanceSweep(*size, nil, *repeats, *seed, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiment.SearchDistanceTable(points))
	case "attacker":
		fmt.Printf("attacker-strength ablation (exhaustive worst case), %d×%d grid, seed %d\n\n", *size, *size, *seed)
		points, err := experiment.AttackerSweep(*size, core.DefaultSLP(*sd), *seed, []verify.Params{
			{R: 1, H: 0, M: 1},
			{R: 2, H: 0, M: 1},
			{R: 2, H: 0, M: 2},
			{R: 3, H: 0, M: 2},
			{R: 3, H: 1, M: 2},
		})
		if err != nil {
			return err
		}
		fmt.Print(experiment.AttackerTable(points))
	case "strategy":
		// R=2, H=2 rather than the paper's (1,0,1): patient needs R >= 2 to
		// ever corroborate and unvisited-first needs H > 0 to differ from
		// first-heard, so the (1,0,1) default would compare strategies that
		// cannot express their behaviour.
		base := core.DefaultSLP(*sd)
		base.Attacker.R = 2
		base.Attacker.H = 2
		fmt.Printf("attacker-strategy ablation (simulated), %d×%d grid, SD=%d, attacker (%d,%d,%d), %d repeats/cell\n\n",
			*size, *size, *sd, base.Attacker.R, base.Attacker.H, base.Attacker.M, *repeats)
		points, err := experiment.StrategySweep(*size, base, nil, []int{1, 2}, *repeats, *seed, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiment.StrategyTable(points))
	case "loss":
		fmt.Printf("channel-model ablation, %d×%d grid, SD=%d, %d repeats/cell\n\n", *size, *size, *sd, *repeats)
		points, err := experiment.LossModelSweep(*size, *sd, *repeats, *seed, 0, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiment.LossModelTable(points))
	default:
		return fmt.Errorf("unknown -what %q", *what)
	}
	return nil
}

func runCustom(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	size := fs.Int("size", 11, "grid size")
	protocol := fs.String("protocol", "protectionless", "routing protocol (see 'slpsim protocols')")
	sd := fs.Int("sd", 3, "search distance (slp-das search / phantom walk length)")
	repeats := fs.Int("repeats", 20, "simulation repetitions")
	seed := fs.Uint64("seed", 1, "base random seed")
	loss := fs.String("loss", "ideal", "channel model: ideal, bernoulli:<p>, rssi")
	channel := fs.String("channel", "", "full channel spec overriding -loss: ideal, bernoulli:<p>, rssi, logdist:<n>:<sigma>[@sinr:<threshold>]")
	atk := fs.String("attacker", "1,0,1", "attacker parameters R,H,M")
	strategy := fs.String("strategy", "", "attacker strategy (see 'slpsim strategies'; default first-heard)")
	nattackers := fs.Int("nattackers", 1, "eavesdropper team size")
	sharedHistory := fs.Bool("shared-history", false, "pool one H-window across the team")
	collisions := fs.Bool("collisions", false, "enable receiver-side collisions")
	faults := fs.String("faults", "none", "fault injection: none, crash:<rate>, churn:<rate>:<mttr>, link:<rate>, blackout:<r>@<p>")
	energy := fs.String("energy", "none", "energy model: none, battery:<capacity>[:<tx>:<rx>:<idle>] (mJ)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r, h, m int
	if _, err := fmt.Sscanf(*atk, "%d,%d,%d", &r, &h, &m); err != nil {
		return fmt.Errorf("bad -attacker %q (want R,H,M)", *atk)
	}
	channelSpec := *loss
	if *channel != "" {
		channelSpec = *channel
	}
	cfg := slpdas.SimConfig{
		GridSize:       *size,
		Protocol:       slpdas.Protocol(*protocol),
		SearchDistance: *sd,
		Repeats:        *repeats,
		Seed:           *seed,
		AttackerR:      r,
		AttackerH:      h,
		AttackerM:      m,
		Strategy:       *strategy,
		Attackers:      *nattackers,
		SharedHistory:  *sharedHistory,
		LossModel:      channelSpec,
		Collisions:     *collisions,
		Faults:         *faults,
		Energy:         *energy,
	}
	sum, err := slpdas.Run(cfg)
	if err != nil {
		return err
	}
	atkDesc := fmt.Sprintf("attacker %d,%d,%d", r, h, m)
	if *strategy != "" || *nattackers > 1 {
		name := *strategy
		if name == "" {
			name = "first-heard"
		}
		atkDesc = fmt.Sprintf("%s %s x%d", atkDesc, name, *nattackers)
		if *sharedHistory {
			atkDesc += " shared-history"
		}
	}
	fmt.Printf("%s on %d×%d grid, %d runs (seed %d, loss %s, %s)\n",
		sum.Protocol, *size, *size, sum.Runs, *seed, channelSpec, atkDesc)
	fmt.Printf("  capture ratio     : %.1f%% ±%.1f (%d/%d)\n",
		sum.CaptureRatio*100, sum.CaptureRatioCI95*100, sum.Captures, sum.Runs)
	if sum.Captures > 0 {
		fmt.Printf("  mean capture time : %.1f periods\n", sum.MeanCapturePeriods)
	}
	fmt.Printf("  valid schedules   : %.0f%%\n", sum.ScheduleValidRatio*100)
	fmt.Printf("  control traffic   : %.1f msgs (%.0f bytes) per run\n", sum.ControlMessages, sum.ControlBytes)
	if cfg.Protocol == slpdas.SLPAware || cfg.Protocol == slpdas.SLPDAS {
		fmt.Printf("  slots changed     : %.1f nodes per run\n", sum.ChangedNodes)
	}
	return nil
}
