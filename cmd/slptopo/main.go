// Command slptopo inspects topologies and the schedules the distributed
// protocol builds on them: node/edge statistics, hop distances, slot maps
// and the attacker's walk.
//
// Usage:
//
//	slptopo [-size N] [-protocol protectionless|slp] [-sd D] [-seed S]
//	        [-show slots|hops|walk|stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"slpdas/internal/core"
	"slpdas/internal/topo"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("slptopo", flag.ContinueOnError)
	size := fs.Int("size", 11, "grid size")
	protocol := fs.String("protocol", "protectionless", "protectionless or slp")
	sd := fs.Int("sd", 3, "search distance (slp only)")
	seed := fs.Uint64("seed", 1, "random seed")
	show := fs.String("show", "stats", "what to render: stats, slots, hops or walk")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := inspect(*size, *protocol, *sd, *seed, *show); err != nil {
		fmt.Fprintf(os.Stderr, "slptopo: %v\n", err)
		return 1
	}
	return 0
}

func inspect(size int, protocol string, sd int, seed uint64, show string) error {
	g, err := topo.DefaultGrid(size)
	if err != nil {
		return err
	}
	sink, source := topo.GridCentre(size), topo.GridTopLeft()

	switch show {
	case "stats":
		fmt.Printf("%s: %d nodes, %d edges, radio range %.1f m\n", g.Name(), g.Len(), g.EdgeCount(), g.RadioRange())
		fmt.Printf("sink %d (centre), source %d (top-left), Δss = %d hops, diameter = %d\n",
			sink, source, g.HopDistance(sink, source), g.Diameter())
		return nil
	case "hops":
		dist := g.BFSFrom(sink)
		fmt.Printf("hop distances from the sink (%d):\n", sink)
		fmt.Print(topo.RenderGrid(size, func(n topo.NodeID) string {
			return strconv.Itoa(dist[n])
		}))
		return nil
	case "slots", "walk":
		var cfg core.Config
		switch protocol {
		case "protectionless":
			cfg = core.Default()
		case "slp":
			cfg = core.DefaultSLP(sd)
		default:
			return fmt.Errorf("unknown protocol %q", protocol)
		}
		net, err := core.NewNetwork(g, sink, source, cfg, seed)
		if err != nil {
			return err
		}
		res, err := net.Run()
		if err != nil {
			return err
		}
		if show == "slots" {
			fmt.Printf("%s slot assignment (seed %d; K sink, S source, ! changed by Phase 3):\n", res.Protocol, seed)
			fmt.Print(topo.RenderGrid(size, func(n topo.NodeID) string {
				label := ""
				switch {
				case n == sink:
					label = "K"
				case n == source:
					label = "S"
				}
				if net.NodeState(n).Changed {
					label += "!"
				}
				if !res.Assignment.Assigned(n) {
					return label + "·"
				}
				return label + strconv.Itoa(res.Assignment.Slot(n))
			}))
			return nil
		}
		onPath := map[topo.NodeID]int{}
		for i, n := range res.AttackerPath {
			onPath[n] = i
		}
		fmt.Printf("%s attacker walk (seed %d): %v\n", res.Protocol, seed, res.AttackerPath)
		if res.Captured {
			fmt.Printf("captured after %.1f periods (safety period %.1f)\n", res.CapturePeriods, res.SafetyPeriod)
		} else {
			fmt.Printf("not captured within the safety period (%.1f periods)\n", res.SafetyPeriod)
		}
		fmt.Print(topo.RenderGrid(size, func(n topo.NodeID) string {
			if i, ok := onPath[n]; ok {
				return strconv.Itoa(i)
			}
			switch n {
			case sink:
				return "K"
			case source:
				return "S"
			}
			return "·"
		}))
		return nil
	default:
		return fmt.Errorf("unknown -show %q", show)
	}
}
