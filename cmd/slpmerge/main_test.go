package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"slpdas/internal/campaign"
)

// writeShards runs one small real campaign single-process and as n
// shards, writing each shard's JSONL next to the returned single output.
func writeShards(t *testing.T, dir string, n int) (single string, shards []string) {
	t.Helper()
	spec := campaign.Spec{GridSizes: []int{5}, SearchDistances: []int{1, 2}, Repeats: 2, BaseSeed: 3}
	render := func(path string, s campaign.Spec) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sink := campaign.NewJSONL(f)
		if _, err := campaign.Run(s, sink); err != nil {
			t.Fatalf("campaign: %v", err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("close sink: %v", err)
		}
	}
	single = filepath.Join(dir, "single.jsonl")
	render(single, spec)
	for i := 0; i < n; i++ {
		s := spec
		s.Shard = campaign.Shard{Index: i, Count: n}
		p := filepath.Join(dir, "shard"+string(rune('0'+i))+".jsonl")
		render(p, s)
		shards = append(shards, p)
	}
	return single, shards
}

func TestCLIMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	single, shards := writeShards(t, dir, 3)
	merged := filepath.Join(dir, "merged.jsonl")
	args := append([]string{"-quiet", "-out", merged, "-cells", "4"}, shards...)
	if code := run(args); code != 0 {
		t.Fatalf("slpmerge exited %d", code)
	}
	want, _ := os.ReadFile(single)
	got, _ := os.ReadFile(merged)
	if !bytes.Equal(got, want) {
		t.Errorf("merged differs from single-process output:\n%s\nvs\n%s", got, want)
	}
}

func TestCLIMergeFailures(t *testing.T) {
	dir := t.TempDir()
	_, shards := writeShards(t, dir, 3)
	merged := filepath.Join(dir, "merged.jsonl")
	for name, args := range map[string][]string{
		"no inputs":       {"-quiet"},
		"missing file":    {"-quiet", filepath.Join(dir, "nope.jsonl")},
		"gap":             {"-quiet", "-out", merged, shards[0], shards[2]},
		"cells shortfall": append([]string{"-quiet", "-out", merged, "-cells", "9"}, shards...),
		"duplicate":       append([]string{"-quiet", "-out", merged, shards[0]}, shards...),
	} {
		if code := run(args); code == 0 {
			t.Errorf("%s: exited 0, want failure", name)
		}
	}
}

// TestCLIMergeRefusesToClobberInput: -out naming an input shard must be
// refused before the output is truncated — os.Create would otherwise
// destroy that shard's rows.
func TestCLIMergeRefusesToClobberInput(t *testing.T) {
	dir := t.TempDir()
	_, shards := writeShards(t, dir, 2)
	before, err := os.ReadFile(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-quiet", "-out", shards[0], shards[0], shards[1]}); code == 0 {
		t.Error("merge over an input exited 0, want refusal")
	}
	after, err := os.ReadFile(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("refused merge still truncated the input shard")
	}
}
