// Command slpmerge reassembles the per-shard JSONL outputs of a sharded
// campaign (slpsweep -shard i/n) into one stream in canonical cell order,
// verifying the shards really partition a single campaign: no duplicate
// cells, no gaps, no coordinate conflicts (every row must agree on the
// repeat count and the campaign seed its base_seed implies), and no torn
// final lines. The merged file is byte-identical to what one slpsweep
// over the full matrix would have written.
//
// Usage:
//
//	slpmerge [-out merged.jsonl] [-cells N] [-quiet] shard0.jsonl shard1.jsonl ...
//
// -cells asserts the expected total cell count, catching the one failure
// the gap check cannot: a shard file that ends cleanly but was cut short
// at a row boundary after the highest cell index seen anywhere.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"slpdas/internal/campaign"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("slpmerge", flag.ContinueOnError)
	out := fs.String("out", "", "merged output file (empty = stdout)")
	cells := fs.Int("cells", 0, "expected total cell count; non-zero makes a shortfall an error")
	quiet := fs.Bool("quiet", false, "suppress the summary line on stderr")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "slpmerge: no shard files given")
		return 2
	}

	// Refuse to write over an input: os.Create truncates before a single
	// row is read, which would destroy that shard's data.
	if *out != "" {
		outInfo, outErr := os.Stat(*out)
		for _, p := range paths {
			same := samePath(*out, p)
			if !same && outErr == nil {
				if info, err := os.Stat(p); err == nil {
					same = os.SameFile(outInfo, info)
				}
			}
			if same {
				fmt.Fprintf(os.Stderr, "slpmerge: -out %s is also an input shard; merging would truncate it\n", *out)
				return 2
			}
		}
	}

	srcs := make([]io.Reader, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slpmerge: %v\n", err)
			return 1
		}
		defer f.Close()
		srcs[i] = f
	}

	var w io.Writer = os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slpmerge: %v\n", err)
			return 1
		}
		outFile = f
		w = f
	}

	n, err := campaign.MergeJSONL(w, srcs...)
	if err == nil && *cells != 0 && n != *cells {
		err = fmt.Errorf("merged %d cells, expected %d — a shard output is incomplete", n, *cells)
	}
	if outFile != nil {
		if cerr := outFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "slpmerge: %v\n", err)
		return 1
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "slpmerge: %d cells from %d shards\n", n, len(paths))
	}
	return 0
}

// samePath reports whether a and b name the same file lexically (the
// os.SameFile check beside it catches links and relative spellings of
// existing files; this one catches an output that does not exist yet).
func samePath(a, b string) bool {
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	if errA != nil || errB != nil {
		return filepath.Clean(a) == filepath.Clean(b)
	}
	return aa == bb
}
