package slpdas

import (
	"slpdas/internal/attacker"
	"slpdas/internal/campaign"
	"slpdas/internal/core"
	"slpdas/internal/experiment"
	"slpdas/internal/protocol"
	"slpdas/internal/radio"
	"slpdas/internal/topo"
	"slpdas/internal/verify"
)

// Protocol selects the routing family to simulate, by registry name (see
// Protocols for the full list).
type Protocol string

// Registered protocols; the names are shared with the campaign engine's
// protocol axis and the protocol registry.
const (
	// Protectionless is the baseline DAS of Figure 2.
	Protectionless Protocol = campaign.Protectionless
	// SLPAware is the 3-phase SLP-aware DAS of Figures 2-4 ("slp", the
	// registry alias of SLPDAS).
	SLPAware Protocol = campaign.SLPAware
	// SLPDAS is the canonical registry name of the SLP-aware DAS.
	SLPDAS Protocol = protocol.NameSLPDAS
	// Phantom is sector phantom routing (PSSPR): a directed random walk to
	// a phantom source, then shortest-path routing to the sink.
	Phantom Protocol = protocol.NamePhantom
	// FakeSource is fake-source scheduling: a decoy backbone away from the
	// real source broadcasting fake DATA early in each period.
	FakeSource Protocol = protocol.NameFakeSource
	// Tier is tier-based intermediary routing: each message detours via a
	// random node of a random sink-distance tier.
	Tier Protocol = protocol.NameTier
)

// SimConfig configures a batch of simulation runs through the facade.
// Zero values select the paper's defaults (Table I, 11×11 grid, the
// (1,0,1,sink,first-heard) attacker, ideal channel).
type SimConfig struct {
	GridSize       int      // grid side; default 11
	Protocol       Protocol // routing family by registry name; default Protectionless
	SearchDistance int      // SD; default 3 (slp-das search / phantom walk length)
	Repeats        int      // default 1
	Seed           uint64   // base seed; run r uses Seed + r
	AttackerR      int      // default 1
	AttackerH      int      // default 0
	AttackerM      int      // default 1
	// Strategy is the attacker decision behaviour by registry name (see
	// Strategies); default "first-heard", the paper's D.
	Strategy string
	// Attackers is the eavesdropper team size; capture is the first of
	// the team to reach the source. Default 1.
	Attackers int
	// SharedHistory pools one H-window across the team.
	SharedHistory bool
	// LossModel is the channel spec: "ideal" (default), "bernoulli:<p>",
	// "rssi" or "logdist:<n>:<sigma>[@sinr:<threshold>]" — log-distance
	// path loss with per-link shadowing, optionally with SINR capture
	// replacing the binary collision window.
	LossModel string
	// Collisions enables receiver-side collision corruption.
	Collisions bool
	// Faults is the deterministic fault-injection spec: "none" (default),
	// "crash:<rate>", "churn:<rate>:<mttr>", "link:<rate>" or
	// "blackout:<r>@<p>". The plan is a pure function of (spec, seed).
	Faults string
	// Energy is the per-node energy model: "none" (default) or
	// "battery:<capacity>[:<tx>:<rx>:<idle>]" in mJ — nodes that exhaust
	// their budget crash-stop permanently.
	Energy  string
	Workers int // parallel runs; default GOMAXPROCS
}

func (c SimConfig) withDefaults() SimConfig {
	if c.GridSize == 0 {
		c.GridSize = 11
	}
	if c.Protocol == "" {
		c.Protocol = Protectionless
	}
	if c.SearchDistance == 0 {
		c.SearchDistance = 3
	}
	if c.Repeats == 0 {
		c.Repeats = 1
	}
	if c.AttackerR == 0 {
		c.AttackerR = 1
	}
	if c.AttackerM == 0 {
		c.AttackerM = 1
	}
	if c.LossModel == "" {
		c.LossModel = "ideal"
	}
	return c
}

func (c SimConfig) coreConfig() (core.Config, error) {
	return campaign.BuildConfig(string(c.Protocol), c.SearchDistance,
		campaign.AttackerSetup{
			Params:        attacker.Params{R: c.AttackerR, H: c.AttackerH, M: c.AttackerM},
			Strategy:      c.Strategy,
			Count:         c.Attackers,
			SharedHistory: c.SharedHistory,
		},
		c.LossModel, c.Collisions, c.Faults, c.Energy)
}

// ProtocolInfo describes one registered routing family.
type ProtocolInfo struct {
	Name    string
	Summary string
}

// Protocols lists the registered routing families, sorted by name — the
// values accepted by SimConfig.Protocol and the campaign Protocols axis.
func Protocols() []ProtocolInfo {
	infos := protocol.Protocols()
	out := make([]ProtocolInfo, len(infos))
	for i, in := range infos {
		out[i] = ProtocolInfo{Name: in.Name, Summary: in.Summary}
	}
	return out
}

// StrategyInfo describes one registered attacker strategy.
type StrategyInfo struct {
	Name    string
	Summary string
}

// Strategies lists the registered attacker strategies, sorted by name —
// the values accepted by SimConfig.Strategy and the campaign Strategies
// axis.
func Strategies() []StrategyInfo {
	infos := attacker.Strategies()
	out := make([]StrategyInfo, len(infos))
	for i, in := range infos {
		out[i] = StrategyInfo{Name: in.Name, Summary: in.Summary}
	}
	return out
}

// ParseLossModel parses "ideal", "bernoulli:<p>" or "rssi".
func ParseLossModel(s string) (radio.LossModel, error) {
	return radio.ParseLossModel(s)
}

// CaptureSummary is the aggregate outcome of a batch of runs.
type CaptureSummary struct {
	Protocol           Protocol
	GridSize           int
	Runs               int
	Captures           int
	CaptureRatio       float64 // in [0, 1]
	CaptureRatioCI95   float64 // half-width
	MeanCapturePeriods float64 // over captured runs
	ScheduleValidRatio float64
	ControlMessages    float64 // mean per run
	ControlBytes       float64 // mean per run
	ChangedNodes       float64 // mean per run (SLP)
}

// Run executes cfg.Repeats independent simulations and aggregates them.
func Run(cfg SimConfig) (CaptureSummary, error) {
	cfg = cfg.withDefaults()
	coreCfg, err := cfg.coreConfig()
	if err != nil {
		return CaptureSummary{}, err
	}
	agg, err := experiment.Run(experiment.Spec{
		GridSize: cfg.GridSize,
		Config:   coreCfg,
		Repeats:  cfg.Repeats,
		BaseSeed: cfg.Seed,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return CaptureSummary{}, err
	}
	return CaptureSummary{
		Protocol:           cfg.Protocol,
		GridSize:           cfg.GridSize,
		Runs:               agg.CaptureRatio.Trials,
		Captures:           agg.CaptureRatio.Successes,
		CaptureRatio:       agg.CaptureRatio.Value(),
		CaptureRatioCI95:   agg.CaptureRatio.CI95(),
		MeanCapturePeriods: agg.CapturePeriods.Mean,
		ScheduleValidRatio: agg.ScheduleValid.Value(),
		ControlMessages:    agg.ControlMessages.Mean,
		ControlBytes:       agg.ControlBytes.Mean,
		ChangedNodes:       agg.ChangedNodes.Mean,
	}, nil
}

// RunCampaign expands a declarative campaign.Spec into its full Cartesian
// job matrix (topologies × protocols × search distances × attackers ×
// loss models × collisions) and executes every cell through one shared
// worker pool, streaming a summary row per cell to the given sinks as
// cells complete. The whole of the paper's evaluation is one such spec;
// see cmd/slpsweep for the command-line front end and examples/campaign
// for reproducing Figure 5 this way.
//
// Campaigns are restartable and horizontally shardable: Spec.Skip /
// Spec.CompletedCells resume an interrupted campaign from the cells
// already durable in its output (campaign.ScanCompleted recovers them,
// tolerating a torn final line), Spec.Shard runs one deterministic slice
// of the matrix per process, and campaign.MergeJSONL (cmd/slpmerge)
// reassembles shard outputs. All three paths produce byte-identical rows
// for the same Spec; Spec.CheckpointEvery bounds how much of a long run a
// crash can cost.
func RunCampaign(spec campaign.Spec, sinks ...campaign.Sink) (*campaign.Summary, error) {
	return campaign.Run(spec, sinks...)
}

// Figure5 reproduces Figure 5 for the given search distance: capture
// ratio vs network size for both protocols, rendered as a table.
func Figure5(searchDistance, repeats int, seed uint64, sizes ...int) (string, *experiment.Figure5, error) {
	fig, err := experiment.RunFigure5(experiment.Figure5Spec{
		GridSizes:      sizes,
		SearchDistance: searchDistance,
		Repeats:        repeats,
		BaseSeed:       seed,
	})
	if err != nil {
		return "", nil, err
	}
	return fig.Table().String(), fig, nil
}

// TableI renders the paper's parameter table from the live defaults.
func TableI() string {
	return experiment.TableI().String()
}

// Overhead reproduces the message-overhead comparison on one grid size.
func Overhead(gridSize, searchDistance, repeats int, seed uint64) (string, *experiment.OverheadComparison, error) {
	o, err := experiment.RunOverhead(gridSize, searchDistance, repeats, seed, 0)
	if err != nil {
		return "", nil, err
	}
	return o.Table().String(), o, nil
}

// VerifyOutcome is the result of checking a simulated schedule with the
// paper's Algorithm 1.
type VerifyOutcome struct {
	SLPAware       bool
	Counterexample []int // node IDs of the violating attacker trace
	CapturePeriod  int
	SafetyPeriod   int // δ in periods
	StatesExplored int
}

// VerifyGrid runs the distributed protocol's setup phases on a grid, then
// decides δ-SLP-awareness of the resulting schedule for the paper's
// placement (source top-left, sink centre) against a (R,H,M,sink)
// attacker with the first-heard decision rule.
func VerifyGrid(cfg SimConfig) (VerifyOutcome, error) {
	cfg = cfg.withDefaults()
	coreCfg, err := cfg.coreConfig()
	if err != nil {
		return VerifyOutcome{}, err
	}
	g, err := topo.DefaultGrid(cfg.GridSize)
	if err != nil {
		return VerifyOutcome{}, err
	}
	sink, source := topo.GridCentre(cfg.GridSize), topo.GridTopLeft()
	net, err := core.NewNetwork(g, sink, source, coreCfg, cfg.Seed)
	if err != nil {
		return VerifyOutcome{}, err
	}
	assignment, err := net.RunSetup()
	if err != nil {
		return VerifyOutcome{}, err
	}
	delta := int(net.SafetyPeriods())
	res, err := verify.VerifySchedule(g, assignment,
		verify.Params{R: cfg.AttackerR, H: cfg.AttackerH, M: cfg.AttackerM, Start: sink},
		verify.FirstHeardD, delta, source, verify.Options{})
	if err != nil {
		return VerifyOutcome{}, err
	}
	out := VerifyOutcome{
		SLPAware:       res.SLPAware,
		CapturePeriod:  res.CapturePeriod,
		SafetyPeriod:   delta,
		StatesExplored: res.StatesExplored,
	}
	for _, n := range res.Counterexample {
		out.Counterexample = append(out.Counterexample, int(n))
	}
	return out, nil
}
