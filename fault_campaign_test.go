package slpdas_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"slpdas"
	"slpdas/internal/campaign"
)

// faultCampaignSpec is a small campaign with the fault axis live: one grid,
// both protocols, a churn and a crash cell per protocol. Fault plans are
// minted per repeat from the cell seed, so any leak of worker scheduling or
// arena reuse into plan minting would diverge here.
func faultCampaignSpec(workers int) campaign.Spec {
	return campaign.Spec{
		GridSizes:       []int{5},
		SearchDistances: []int{2},
		Faults:          []string{"churn:0.25:2", "crash:0.2"},
		Repeats:         6,
		BaseSeed:        11,
		Workers:         workers,
	}
}

func renderFaultCampaign(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := campaign.NewJSONL(&buf)
	if _, err := slpdas.RunCampaign(spec, sink); err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// TestFaultAxisCampaignDeterministic pins the tentpole determinism
// criterion for faulted campaigns: byte-identical JSONL across 1, 2, 4 and
// 8 workers, across a 3-way shard+merge, and across a kill+resume — all
// against the single-worker reference.
func TestFaultAxisCampaignDeterministic(t *testing.T) {
	want := renderFaultCampaign(t, faultCampaignSpec(1))
	if !strings.Contains(string(want), `"faults":"churn:0.25:2"`) {
		t.Fatalf("rows do not carry the canonical fault coordinate:\n%s", want)
	}
	// Churn at rate 0.25 over 23 eligible nodes across 6 repeats must
	// actually inject faults — a silently fault-free run would make this
	// test vacuous.
	if strings.Contains(string(want), `"nodes_failed":0,"nodes_recovered":0`) {
		t.Fatalf("fault cells report zero failures:\n%s", want)
	}

	for _, workers := range []int{2, 4, 8} {
		if got := renderFaultCampaign(t, faultCampaignSpec(workers)); !bytes.Equal(got, want) {
			t.Errorf("workers=%d output diverged:\n--- got ---\n%s\n--- want ---\n%s", workers, got, want)
		}
	}

	// Shard 3 ways under different worker counts, merge, compare.
	srcs := make([]io.Reader, 3)
	for i := range srcs {
		spec := faultCampaignSpec(1 + i*2)
		spec.Shard = campaign.Shard{Index: i, Count: 3}
		srcs[i] = bytes.NewReader(renderFaultCampaign(t, spec))
	}
	var merged bytes.Buffer
	if _, err := campaign.MergeJSONL(&merged, srcs...); err != nil {
		t.Fatalf("MergeJSONL: %v", err)
	}
	if !bytes.Equal(merged.Bytes(), want) {
		t.Errorf("3-shard merged output diverged:\n--- got ---\n%s\n--- want ---\n%s", merged.Bytes(), want)
	}

	// Kill mid-file and resume: recover completed cells from the torn
	// prefix, append the rest, and the file must match the reference.
	for _, cut := range []int{0, len(want) / 2, len(want) - 2} {
		completed, valid, err := campaign.ScanCompleted(bytes.NewReader(want[:cut]))
		if err != nil {
			t.Fatalf("cut %d: ScanCompleted: %v", cut, err)
		}
		file := bytes.NewBuffer(append([]byte(nil), want[:valid]...))
		spec := faultCampaignSpec(4)
		spec.Skip = func(cell int) bool { return completed[cell] }
		sink := campaign.NewJSONL(file)
		if _, err := slpdas.RunCampaign(spec, sink); err != nil {
			t.Fatalf("cut %d: resume: %v", cut, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		if !bytes.Equal(file.Bytes(), want) {
			t.Errorf("cut %d: resumed file diverged:\n--- got ---\n%s\n--- want ---\n%s", cut, file.Bytes(), want)
		}
	}
}

// TestFaultAxisResumeVerification: ScanResumable accepts the very file a
// faulted spec produced, and rejects it under a different fault axis — the
// faults coordinate is part of resume verification.
func TestFaultAxisResumeVerification(t *testing.T) {
	out := renderFaultCampaign(t, faultCampaignSpec(2))
	completed, _, err := faultCampaignSpec(2).ScanResumable(bytes.NewReader(out), "jsonl")
	if err != nil {
		t.Fatalf("ScanResumable rejected its own output: %v", err)
	}
	if len(completed) != 4 {
		t.Errorf("recovered %d cells, want 4", len(completed))
	}
	other := faultCampaignSpec(2)
	other.Faults = []string{"crash:0.5", "link:0.1"}
	if _, _, err := other.ScanResumable(bytes.NewReader(out), "jsonl"); err == nil {
		t.Error("ScanResumable accepted a file with a different fault axis")
	} else if !strings.Contains(err.Error(), "faults") {
		t.Errorf("mismatch error does not name the faults coordinate: %v", err)
	}
}
