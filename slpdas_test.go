package slpdas

import (
	"strings"
	"testing"

	"slpdas/internal/campaign"
)

func TestRunDefaults(t *testing.T) {
	sum, err := Run(SimConfig{GridSize: 5, Repeats: 3, Seed: 9})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Runs != 3 {
		t.Errorf("Runs = %d", sum.Runs)
	}
	if sum.Protocol != Protectionless {
		t.Errorf("Protocol = %q", sum.Protocol)
	}
	if sum.ScheduleValidRatio != 1 {
		t.Errorf("ScheduleValidRatio = %v", sum.ScheduleValidRatio)
	}
	if sum.ControlMessages <= 0 {
		t.Error("no control messages accounted")
	}
}

func TestRunSLP(t *testing.T) {
	sum, err := Run(SimConfig{GridSize: 5, Protocol: SLPAware, SearchDistance: 2, Repeats: 3, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.ChangedNodes <= 0 {
		t.Error("SLP runs changed no slots")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(SimConfig{GridSize: 5, Protocol: "bogus", Repeats: 1}); err == nil {
		t.Error("bogus protocol accepted")
	}
	if _, err := Run(SimConfig{GridSize: 5, Repeats: 1, LossModel: "bernoulli:2"}); err == nil {
		t.Error("bad loss probability accepted")
	}
	if _, err := Run(SimConfig{GridSize: 5, Repeats: 1, LossModel: "wat"}); err == nil {
		t.Error("unknown loss model accepted")
	}
}

func TestParseLossModel(t *testing.T) {
	for _, s := range []string{"", "ideal", "rssi", "bernoulli:0.25"} {
		if _, err := ParseLossModel(s); err != nil {
			t.Errorf("ParseLossModel(%q): %v", s, err)
		}
	}
}

func TestTableIRendered(t *testing.T) {
	tbl := TableI()
	if !strings.Contains(tbl, "Psrc") || !strings.Contains(tbl, "5.5s") {
		t.Errorf("Table I = %q", tbl)
	}
}

func TestVerifyGrid(t *testing.T) {
	out, err := VerifyGrid(SimConfig{GridSize: 7, Seed: 3})
	if err != nil {
		t.Fatalf("VerifyGrid: %v", err)
	}
	if out.SafetyPeriod <= 0 || out.StatesExplored <= 0 {
		t.Errorf("outcome = %+v", out)
	}
	if !out.SLPAware {
		// A counterexample must be a real trace ending at the source.
		if len(out.Counterexample) == 0 || out.Counterexample[len(out.Counterexample)-1] != 0 {
			t.Errorf("counterexample = %v", out.Counterexample)
		}
	}
}

func TestFigure5Facade(t *testing.T) {
	tbl, fig, err := Figure5(2, 4, 17, 5)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if !strings.Contains(tbl, "network size") {
		t.Errorf("table = %q", tbl)
	}
	if len(fig.Points) != 1 || fig.Points[0].GridSize != 5 {
		t.Errorf("points = %+v", fig.Points)
	}
}

func TestRunCampaignFacade(t *testing.T) {
	mem := &campaign.Memory{}
	sum, err := RunCampaign(campaign.Spec{
		GridSizes:       []int{5},
		SearchDistances: []int{2},
		Repeats:         2,
		BaseSeed:        7,
	}, mem)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if sum.Cells != 2 || sum.Failures != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	rows := mem.Rows()
	if len(rows) != 2 || rows[0].Protocol != string(Protectionless) || rows[1].Protocol != string(SLPAware) {
		t.Errorf("rows = %+v", rows)
	}
}

func TestOverheadFacade(t *testing.T) {
	tbl, o, err := Overhead(5, 2, 3, 23)
	if err != nil {
		t.Fatalf("Overhead: %v", err)
	}
	if !strings.Contains(tbl, "CONTROL TOTAL") || o == nil {
		t.Errorf("table = %q", tbl)
	}
}
