module slpdas

go 1.22
