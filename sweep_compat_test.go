package slpdas_test

import (
	"bytes"
	"io"
	"os"
	"testing"

	"slpdas"
	"slpdas/internal/campaign"
)

// sweepCompatSpec is the repeat-heavy campaign pinned by the golden: two
// grids × two collision settings × both protocols, 12 repeats per cell, so
// every worker's arena rewinds one network many times across repeats AND
// across config cells (protocol and collision model change between cells
// sharing a topology).
func sweepCompatSpec(workers int) campaign.Spec {
	return campaign.Spec{
		GridSizes:       []int{5, 7},
		SearchDistances: []int{2},
		Collisions:      []bool{false, true},
		Repeats:         12,
		BaseSeed:        7,
		Workers:         workers,
	}
}

// TestSweepBackwardCompatible pins the acceptance criterion of the
// memoized-setup/arena rebuild: campaign JSONL output must be
// byte-identical to the pre-arena engine, which re-resolved the topology
// and rebuilt a fresh core.Network for every single repeat. The golden was
// generated at the last commit before the arena landed. A diff here means
// Network.Reset does not perfectly rewind some piece of run state.
func TestSweepBackwardCompatible(t *testing.T) {
	want, err := os.ReadFile("testdata/sweep_compat.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var buf bytes.Buffer
	sink := campaign.NewJSONL(&buf)
	if _, err := slpdas.RunCampaign(sweepCompatSpec(4), sink); err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("sweep output diverged from the pre-arena golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSweepDeterministicAcrossWorkersAndCacheWarmth proves the topology
// cache, per-worker arenas and intra-cell repeat splitting never leak
// into results: the same spec yields rows byte-identical to the
// pre-arena golden at 1, 2, 4 and 8 workers (different arena reuse and
// repeat-partition patterns), and with a cold vs warm process-wide
// topology cache. Pinning every worker count to the golden — not just
// to each other — rules out a deterministic-but-wrong reduction.
func TestSweepDeterministicAcrossWorkersAndCacheWarmth(t *testing.T) {
	want, err := os.ReadFile("testdata/sweep_compat.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		sink := campaign.NewJSONL(&buf)
		if _, err := slpdas.RunCampaign(sweepCompatSpec(workers), sink); err != nil {
			t.Fatalf("RunCampaign(workers=%d): %v", workers, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	campaign.ResetTopologyCache()
	cold := render(1)
	warm := render(1)
	if !bytes.Equal(cold, warm) {
		t.Errorf("cache-cold vs cache-warm output differs:\n%s\nvs\n%s", cold, warm)
	}
	if !bytes.Equal(cold, want) {
		t.Errorf("workers=1 output diverged from the golden:\n--- got ---\n%s\n--- want ---\n%s", cold, want)
	}
	for _, workers := range []int{2, 4, 8} {
		if got := render(workers); !bytes.Equal(want, got) {
			t.Errorf("workers=%d output diverged from the golden:\n--- got ---\n%s\n--- want ---\n%s", workers, got, want)
		}
	}
}

// TestShardMergeBackwardCompatible pins the tentpole invariant on the
// real simulator: the sweep-compat campaign run as n independent shards
// — each shard under a different worker count, so arena reuse and
// scheduling differ per shard — merges back byte-identical to the
// pre-arena golden, i.e. to a single-process run.
func TestShardMergeBackwardCompatible(t *testing.T) {
	want, err := os.ReadFile("testdata/sweep_compat.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	for _, shardCount := range []int{2, 3} {
		srcs := make([]io.Reader, shardCount)
		for i := 0; i < shardCount; i++ {
			spec := sweepCompatSpec(1 + i*2) // workers 1, 3, 5, ...
			spec.Shard = campaign.Shard{Index: i, Count: shardCount}
			var buf bytes.Buffer
			sink := campaign.NewJSONL(&buf)
			sum, err := slpdas.RunCampaign(spec, sink)
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, shardCount, err)
			}
			if err := sink.Close(); err != nil {
				t.Fatalf("shard %d/%d Close: %v", i, shardCount, err)
			}
			if got := sum.Cells - sum.Skipped; got != len(sum.Rows) {
				t.Errorf("shard %d/%d: %d executed cells but %d rows", i, shardCount, got, len(sum.Rows))
			}
			srcs[i] = bytes.NewReader(buf.Bytes())
		}
		var merged bytes.Buffer
		n, err := campaign.MergeJSONL(&merged, srcs...)
		if err != nil {
			t.Fatalf("merge %d shards: %v", shardCount, err)
		}
		if n != 8 {
			t.Errorf("merged %d cells, want 8", n)
		}
		if !bytes.Equal(merged.Bytes(), want) {
			t.Errorf("%d-shard merged output diverged from the golden:\n--- got ---\n%s\n--- want ---\n%s", shardCount, merged.Bytes(), want)
		}
	}
}

// TestKillAndResumeBackwardCompatible is the kill-and-resume round trip
// on the real simulator: tear the golden mid-row (exactly what a kill
// during a buffered write leaves behind), recover the completed cells,
// truncate to the last complete row and append a resumed run — the file
// must come back byte-identical to the uninterrupted golden.
func TestKillAndResumeBackwardCompatible(t *testing.T) {
	want, err := os.ReadFile("testdata/sweep_compat.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	for _, cut := range []int{0, 40, len(want) / 2, len(want) - 2} {
		completed, valid, err := campaign.ScanCompleted(bytes.NewReader(want[:cut]))
		if err != nil {
			t.Fatalf("cut %d: ScanCompleted: %v", cut, err)
		}
		file := bytes.NewBuffer(append([]byte(nil), want[:valid]...))
		spec := sweepCompatSpec(4)
		spec.Skip = func(cell int) bool { return completed[cell] }
		sink := campaign.NewJSONL(file)
		sum, err := slpdas.RunCampaign(spec, sink)
		if err != nil {
			t.Fatalf("cut %d: resume: %v", cut, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		if sum.Skipped != len(completed) {
			t.Errorf("cut %d: skipped %d cells, want %d", cut, sum.Skipped, len(completed))
		}
		if !bytes.Equal(file.Bytes(), want) {
			t.Errorf("cut %d: resumed file diverged from the golden:\n--- got ---\n%s\n--- want ---\n%s", cut, file.Bytes(), want)
		}
	}
}
