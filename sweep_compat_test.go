package slpdas_test

import (
	"bytes"
	"os"
	"testing"

	"slpdas"
	"slpdas/internal/campaign"
)

// sweepCompatSpec is the repeat-heavy campaign pinned by the golden: two
// grids × two collision settings × both protocols, 12 repeats per cell, so
// every worker's arena rewinds one network many times across repeats AND
// across config cells (protocol and collision model change between cells
// sharing a topology).
func sweepCompatSpec(workers int) campaign.Spec {
	return campaign.Spec{
		GridSizes:       []int{5, 7},
		SearchDistances: []int{2},
		Collisions:      []bool{false, true},
		Repeats:         12,
		BaseSeed:        7,
		Workers:         workers,
	}
}

// TestSweepBackwardCompatible pins the acceptance criterion of the
// memoized-setup/arena rebuild: campaign JSONL output must be
// byte-identical to the pre-arena engine, which re-resolved the topology
// and rebuilt a fresh core.Network for every single repeat. The golden was
// generated at the last commit before the arena landed. A diff here means
// Network.Reset does not perfectly rewind some piece of run state.
func TestSweepBackwardCompatible(t *testing.T) {
	want, err := os.ReadFile("testdata/sweep_compat.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var buf bytes.Buffer
	sink := campaign.NewJSONL(&buf)
	if _, err := slpdas.RunCampaign(sweepCompatSpec(4), sink); err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("sweep output diverged from the pre-arena golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSweepDeterministicAcrossWorkersAndCacheWarmth proves the topology
// cache and per-worker arenas never leak into results: the same spec
// yields byte-identical rows at 1, 4 and 8 workers (different arena
// reuse patterns), and with a cold vs warm process-wide topology cache.
func TestSweepDeterministicAcrossWorkersAndCacheWarmth(t *testing.T) {
	render := func(workers int) []byte {
		var buf bytes.Buffer
		sink := campaign.NewJSONL(&buf)
		if _, err := slpdas.RunCampaign(sweepCompatSpec(workers), sink); err != nil {
			t.Fatalf("RunCampaign(workers=%d): %v", workers, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	campaign.ResetTopologyCache()
	cold := render(1)
	warm := render(1)
	if !bytes.Equal(cold, warm) {
		t.Errorf("cache-cold vs cache-warm output differs:\n%s\nvs\n%s", cold, warm)
	}
	for _, workers := range []int{4, 8} {
		if got := render(workers); !bytes.Equal(cold, got) {
			t.Errorf("workers=%d output differs from workers=1:\n%s\nvs\n%s", workers, cold, got)
		}
	}
}
