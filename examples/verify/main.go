// Verification — using the paper's Algorithm 1 as a library. The example
// hand-crafts two schedules on a 3×3 grid: a gradient that leads the
// eavesdropper straight to the source (the decision procedure returns a
// counterexample trace) and a refined schedule with a decoy local minimum
// that is still a weak DAS (verified δ-SLP-aware), demonstrating
// Definitions 3, 5 and 6.
package main

import (
	"fmt"
	"log"
	"strconv"

	"slpdas/internal/schedule"
	"slpdas/internal/topo"
	"slpdas/internal/verify"
)

func main() {
	// 3×3 grid, node IDs row-major: sink 4 (centre), source 0 (corner).
	g, err := topo.DefaultGrid(3)
	if err != nil {
		log.Fatalf("grid topology: %v", err)
	}
	const (
		source = topo.NodeID(0)
		sink   = topo.NodeID(4)
		delta  = 10 // safety period in TDMA periods
	)
	attacker := verify.Params{R: 1, H: 0, M: 1, Start: sink}

	// Schedule F: a slot gradient pulling the eavesdropper 4→1→0. It is a
	// valid weak DAS — and a homing beacon.
	f := schedule.New(g.Len(), sink)
	for n, s := range map[topo.NodeID]int{0: 10, 1: 20, 2: 30, 3: 21, 5: 40, 6: 31, 7: 41, 8: 39} {
		f.Set(n, s)
	}
	f.Set(sink, 100) // the sink's Δ slot: it never transmits

	show(g, "schedule F (gradient)", f)
	fmt.Println("  weak DAS:", len(schedule.CheckWeakDAS(g, f)) == 0)
	res, err := verify.VerifySchedule(g, f, attacker, verify.FirstHeardD, delta, source, verify.Options{})
	if err != nil {
		log.Fatalf("verify F: %v", err)
	}
	fmt.Printf("  VerifySchedule → SLP-aware=%v", res.SLPAware)
	if !res.SLPAware {
		fmt.Printf(", counterexample %v captures in %d periods", res.Counterexample, res.CapturePeriod)
	}
	fmt.Println()

	// Schedule Fs: slots 5 and 8 re-assigned into a decoy chain; the
	// first-heard attacker walks 4→5→8 and is absorbed at the corner
	// opposite the source. Every node still has a later-slot route to the
	// sink, so Fs remains a weak DAS: routing and luring use different
	// neighbours — the heart of the paper's Phase 3.
	fs := schedule.New(g.Len(), sink)
	for n, s := range map[topo.NodeID]int{0: 10, 1: 20, 2: 14, 3: 21, 5: 15, 6: 31, 7: 41, 8: 12} {
		fs.Set(n, s)
	}
	fs.Set(sink, 100)

	fmt.Println()
	show(g, "schedule Fs (decoy)", fs)
	fmt.Println("  weak DAS:", len(schedule.CheckWeakDAS(g, fs)) == 0)
	res, err = verify.VerifySchedule(g, fs, attacker, verify.FirstHeardD, delta, source, verify.Options{})
	if err != nil {
		log.Fatalf("verify Fs: %v", err)
	}
	fmt.Printf("  VerifySchedule → SLP-aware=%v (states explored: %d)\n", res.SLPAware, res.StatesExplored)

	// Definition 5: Fs is an SLP-aware DAS relative to F.
	aware, err := verify.IsSLPAwareDAS(g, fs, f, attacker, verify.FirstHeardD, source, 100, verify.Options{})
	if err != nil {
		log.Fatalf("IsSLPAwareDAS: %v", err)
	}
	fmt.Printf("\nDefinition 5: Fs is an SLP-aware DAS w.r.t. F: %v\n", aware)

	// A stronger attacker (R=3, M=2) may climb out of the decoy basin.
	strong := verify.Params{R: 3, H: 0, M: 2, Start: sink}
	res, err = verify.VerifySchedule(g, fs, strong, verify.AnyHeardD, delta, source, verify.Options{})
	if err != nil {
		log.Fatalf("verify Fs vs strong attacker: %v", err)
	}
	fmt.Printf("against a (3,0,2) attacker: SLP-aware=%v", res.SLPAware)
	if !res.SLPAware {
		fmt.Printf(" — trace %v in %d periods", res.Counterexample, res.CapturePeriod)
	}
	fmt.Println()
}

func show(g *topo.Graph, name string, a *schedule.Assignment) {
	fmt.Printf("%s:\n", name)
	fmt.Print(topo.RenderGrid(3, func(n topo.NodeID) string {
		return strconv.Itoa(a.Slot(n))
	}))
}
