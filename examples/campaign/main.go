// Campaign example: the Figure 5 sweep — capture ratio vs network size
// for both protocols — expressed as one declarative campaign.Spec instead
// of nested loops. Rows stream to a buffered JSONL sink as cells finish
// (durable once the sink is closed); the in-memory sink renders the
// paper's table at the end from the same stream.
package main

import (
	"fmt"
	"log"
	"os"

	"slpdas"
	"slpdas/internal/campaign"
)

func main() {
	const repeats = 20

	out, err := os.Create("results.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()

	mem := &campaign.Memory{}
	jsonl := campaign.NewJSONL(out)
	sum, err := slpdas.RunCampaign(campaign.Spec{
		GridSizes:       []int{11, 15, 21}, // Figure 5's x-axis
		SearchDistances: []int{3},          // Figure 5(a)
		Repeats:         repeats,
		BaseSeed:        1,
		// Checkpoint the sinks every other cell: if this process dies,
		// everything up to the last checkpoint is already durable in
		// results.jsonl, and re-running with the completed cells skipped
		// (campaign.ScanCompleted + Spec.Skip, or slpsweep -resume)
		// appends only what is missing.
		CheckpointEvery: 2,
		Progress: func(done, total int, row campaign.Row) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %s done\n", done, total, row.Topology, row.Protocol)
		},
	}, jsonl, mem)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}
	// Sinks buffer: rows reach results.jsonl on Close.
	if err := jsonl.Close(); err != nil {
		log.Fatalf("close sink: %v", err)
	}

	fmt.Printf("Figure 5(a) as one campaign: %d cells, %d runs, wrote results.jsonl\n\n",
		sum.Cells, sum.Cells*repeats)
	fmt.Println("size  protectionless  slp-das  reduction")
	rowsBySize := map[int]map[string]campaign.Row{}
	for _, r := range mem.Rows() {
		if rowsBySize[r.GridSize] == nil {
			rowsBySize[r.GridSize] = map[string]campaign.Row{}
		}
		rowsBySize[r.GridSize][r.Protocol] = r
	}
	for _, size := range []int{11, 15, 21} {
		prot, slp := rowsBySize[size][campaign.Protectionless], rowsBySize[size][campaign.SLPAware]
		reduction := "n/a"
		if prot.CaptureRatio > 0 {
			reduction = fmt.Sprintf("%.0f%%", (1-slp.CaptureRatio/prot.CaptureRatio)*100)
		}
		fmt.Printf("%4d  %13.1f%%  %6.1f%%  %9s\n",
			size, prot.CaptureRatio*100, slp.CaptureRatio*100, reduction)
	}
}
