// Energy panel — the privacy/lifetime trade under a realistic physical
// layer, as ONE campaign spec. The channel axis swaps the ideal disc for
// a log-distance path-loss channel with per-link shadowing and SINR
// capture; the energy axis puts every relay on a battery. The columns
// show what the physics costs: capture ratio (privacy), deliveries
// (utility), energy spent, and how many nodes the battery kills — the
// SLP-aware schedule pays for its privacy in joules as well as latency.
// The whole panel is a pure function of the spec — re-running this
// program reproduces every number byte-for-byte (seed 2017).
package main

import (
	"fmt"
	"log"

	"slpdas"
	"slpdas/internal/campaign"
	"slpdas/internal/metrics"
)

func main() {
	const (
		size    = 9
		repeats = 20
	)

	// The channel axis: ideal disc, then log-distance path loss (exponent
	// 2.4) with 4 dB log-normal shadowing per link, without and with SINR
	// capture at a 3 dB threshold.
	channels := []string{"ideal", "logdist:2.4:4", "logdist:2.4:4@sinr:3"}
	// The energy axis: mains-powered, then batteries small enough that
	// relay duty on a 9×9 grid can exhaust them mid-run.
	energies := []string{"none", "battery:4"}
	spec := campaign.Spec{
		GridSizes:       []int{size},
		Protocols:       []string{campaign.Protectionless, campaign.SLPAware},
		SearchDistances: []int{3},
		Channels:        channels,
		Energy:          energies,
		Repeats:         repeats,
		BaseSeed:        2017,
	}

	mem := &campaign.Memory{}
	sum, err := slpdas.RunCampaign(spec, mem)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Printf("energy panel on a %d×%d grid: %d cells, %d seeds each, SD 3\n\n",
		size, size, sum.Cells, repeats)

	type key struct{ protocol, channel, energy string }
	byCell := make(map[key]campaign.Row, len(mem.Rows()))
	for _, r := range mem.Rows() {
		byCell[key{r.Protocol, r.LossModel, r.Energy}] = r
	}
	tbl := metrics.NewTable("protocol", "channel", "energy", "capture",
		"delivered/run", "captures won", "mJ total", "mJ max", "deaths", "lifetime")
	for _, p := range []string{campaign.Protectionless, campaign.SLPAware} {
		for _, ch := range channels {
			for _, en := range energies {
				r := byCell[key{p, ch, en}]
				wins := "-"
				if r.CaptureWins > 0 {
					wins = fmt.Sprintf("%.1f", r.CaptureWins)
				}
				deaths, lifetime := "-", "-"
				if en != "none" {
					deaths = fmt.Sprintf("%.1f", r.EnergyDeaths)
					if r.EnergyDeaths > 0 {
						lifetime = fmt.Sprintf("%.1f", r.Lifetime)
					} else {
						lifetime = "full"
					}
				}
				tbl.AddRow(
					p, ch, en,
					fmt.Sprintf("%.0f%% (%d/%d)", r.CaptureRatio*100, r.Captures, r.Runs),
					fmt.Sprintf("%.1f", r.SourceDeliveries),
					wins,
					fmt.Sprintf("%.1f", r.EnergyTotal),
					fmt.Sprintf("%.2f", r.EnergyMax),
					deaths, lifetime,
				)
			}
		}
	}
	fmt.Print(tbl)
	fmt.Println("\ncaptures won = frames that survived interference through SINR capture")
	fmt.Println("per run (only the @sinr channel resolves contention by power; the")
	fmt.Println("others drop every overlap). mJ total/max = mean network-wide and")
	fmt.Println("hottest-node spend; deaths = battery-exhausted nodes per run;")
	fmt.Println("lifetime = data periods until the first death ('full' when no node")
	fmt.Println("dies). The hottest nodes sit on the sink's shortest-path trunk, so")
	fmt.Println("battery deaths hit delivery before they hit privacy — the attacker")
	fmt.Println("needs traffic to trace, and a starving trunk gives it less.")
}
