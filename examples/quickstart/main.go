// Quickstart: simulate both DAS protocols on the paper's 11×11 grid and
// compare capture ratios — the headline experiment in a dozen lines.
package main

import (
	"fmt"
	"log"

	"slpdas"
)

func main() {
	const repeats = 50

	protectionless, err := slpdas.Run(slpdas.SimConfig{
		GridSize: 11,
		Protocol: slpdas.Protectionless,
		Repeats:  repeats,
		Seed:     1,
	})
	if err != nil {
		log.Fatalf("protectionless runs: %v", err)
	}

	slp, err := slpdas.Run(slpdas.SimConfig{
		GridSize:       11,
		Protocol:       slpdas.SLPAware,
		SearchDistance: 3,
		Repeats:        repeats,
		Seed:           1,
	})
	if err != nil {
		log.Fatalf("slp runs: %v", err)
	}

	fmt.Println("Source location privacy on an 11×11 sensor grid")
	fmt.Printf("  protectionless DAS : captured %2d/%d runs (%.0f%%)\n",
		protectionless.Captures, protectionless.Runs, protectionless.CaptureRatio*100)
	fmt.Printf("  SLP-aware DAS      : captured %2d/%d runs (%.0f%%), %.1f slots re-assigned per run\n",
		slp.Captures, slp.Runs, slp.CaptureRatio*100, slp.ChangedNodes)
	if protectionless.CaptureRatio > 0 {
		fmt.Printf("  capture ratio reduced by %.0f%%\n",
			(1-slp.CaptureRatio/protectionless.CaptureRatio)*100)
	}
}
