// Protocol panel — every registered routing family against a spread of
// attacker strategies, as ONE campaign spec. The protocol registry makes
// the simulator an SLP benchmark rather than one paper's artefact: the
// paper's pair (protectionless GCN-DAS and the 3-phase SLP-aware variant)
// sit on the same axis as sector phantom routing, fake-source backbones
// and tier-based intermediary routing, and every cell is scored on the
// identical capture / latency / overhead metrics. The whole panel is a
// pure function of the spec — re-running this program reproduces every
// number byte-for-byte (seed 2017).
package main

import (
	"fmt"
	"log"

	"slpdas"
	"slpdas/internal/attacker"
	"slpdas/internal/campaign"
	"slpdas/internal/metrics"
)

func main() {
	const (
		size    = 9
		repeats = 20
	)

	protocols := campaign.ProtocolNames()
	// First-heard is the paper's D; unvisited-first (with H=2) represents
	// the history-driven hunters the SLP literature worries about.
	strategies := []string{"first-heard", "unvisited-first"}
	spec := campaign.Spec{
		GridSizes:       []int{size},
		Protocols:       protocols,
		SearchDistances: []int{3},
		Strategies:      strategies,
		Attackers:       []attacker.Params{{R: 1, H: 2, M: 1}},
		Repeats:         repeats,
		BaseSeed:        2017,
	}

	mem := &campaign.Memory{}
	sum, err := slpdas.RunCampaign(spec, mem)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Printf("protocol panel on a %d×%d grid: %d cells, %d seeds each, SD 3\n\n",
		size, size, sum.Cells, repeats)

	// Pivot the row stream into one line per family: capture ratio per
	// strategy, plus the latency and traffic columns shared by every cell
	// of the first strategy (the strategy axis only moves the attacker).
	type key struct{ protocol, strategy string }
	byCell := make(map[key]campaign.Row, len(mem.Rows()))
	for _, r := range mem.Rows() {
		byCell[key{r.Protocol, r.Strategy}] = r
	}
	tbl := metrics.NewTable("protocol", "capture (first-heard)", "capture (unvisited-first)",
		"latency (periods)", "deliveries/run", "msgs/run")
	for _, p := range protocols {
		fh, uv := byCell[key{p, strategies[0]}], byCell[key{p, strategies[1]}]
		tbl.AddRow(
			p,
			fmt.Sprintf("%.0f%% (%d/%d)", fh.CaptureRatio*100, fh.Captures, fh.Runs),
			fmt.Sprintf("%.0f%% (%d/%d)", uv.CaptureRatio*100, uv.Captures, uv.Runs),
			fmt.Sprintf("%.1f", fh.DeliveryLatency),
			fmt.Sprintf("%.1f", fh.SourceDeliveries),
			fmt.Sprintf("%.0f", fh.TotalMessages),
		)
	}
	fmt.Print(tbl)
	fmt.Println("\ncapture = attacker reaches the source within the safety period;")
	fmt.Println("latency and traffic are means over the first-heard cells.")
	fmt.Println("the DAS families aggregate (everyone transmits each period), so their")
	fmt.Println("per-hop traffic cannot be back-traced; phantom and tier route hop by")
	fmt.Println("hop and pay for it in capture ratio — the paper's thesis, on one axis.")
}
