// Attacker panel — the attacker-strength study as ONE campaign spec.
// Where examples/attackersweep hand-loops over (R, H, M) tuples, this
// example leans on the campaign engine's Cartesian expansion: every
// registered decision strategy × eavesdropper team size × both protocols,
// executed through one shared worker pool with the deterministic
// BaseSeed + cell·Repeats seed layout. The result is the panel the SLP
// literature reports — how much protection the scheme buys against a
// whole family of adversaries, not just the paper's (1,0,1) first-heard
// eavesdropper — reproducible byte-for-byte from this single spec.
package main

import (
	"fmt"
	"log"

	"slpdas"
	"slpdas/internal/attacker"
	"slpdas/internal/campaign"
	"slpdas/internal/metrics"
)

func main() {
	const (
		size    = 9
		repeats = 20
	)

	strategies := attacker.StrategyNames()
	spec := campaign.Spec{
		GridSizes:  []int{size},
		Protocols:  []string{campaign.Protectionless, campaign.SLPAware},
		Strategies: strategies,
		// Teams of 1 and 3: capture is the first eavesdropper to reach
		// the source, so bigger teams bound the scheme's protection from
		// above. R=2 lets patient corroborate; H=2 gives the
		// history-driven strategies something to use.
		AttackerCounts:  []int{1, 3},
		SharedHistories: []bool{true},
		Attackers:       []attacker.Params{{R: 2, H: 2, M: 1}},
		Repeats:         repeats,
		BaseSeed:        100,
	}

	mem := &campaign.Memory{}
	sum, err := slpdas.RunCampaign(spec, mem)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Printf("attacker panel on a %d×%d grid: %d cells, %d seeds each (shared-history teams)\n\n",
		size, size, sum.Cells, repeats)

	// Pivot the row stream into one line per strategy: capture ratio for
	// each (protocol, team size) column.
	type key struct {
		strategy string
		protocol string
		count    int
	}
	ratio := make(map[key]string, len(mem.Rows()))
	for _, r := range mem.Rows() {
		ratio[key{r.Strategy, r.Protocol, r.Attackers}] =
			fmt.Sprintf("%.0f%% (%d/%d)", r.CaptureRatio*100, r.Captures, r.Runs)
	}
	tbl := metrics.NewTable("strategy", "prot x1", "prot x3", "slp x1", "slp x3")
	for _, s := range strategies {
		tbl.AddRow(
			s,
			ratio[key{s, campaign.Protectionless, 1}],
			ratio[key{s, campaign.Protectionless, 3}],
			ratio[key{s, campaign.SLPAware, 1}],
			ratio[key{s, campaign.SLPAware, 3}],
		)
	}
	fmt.Print(tbl)
	fmt.Println("\ncapture = first of the team to reach the source within the safety period.")
	fmt.Println("note: patient needs an origin heard twice within one period's R-buffer;")
	fmt.Println("TDMA gives every node one slot per period, so it (honestly) stalls here.")
	fmt.Println("re-run me: every number above is a pure function of the spec (seed 100).")
}
