// Churn panel — graceful degradation under node churn, as ONE campaign
// spec. The fault-injection axis sweeps crash-with-recovery rates over
// both of the paper's protocols, and the degradation columns show the
// trade: capture ratio (privacy), delivery ratio through the churn window
// (utility), and schedule self-healing time (how many TDMA periods the
// network needs to re-acquire slots after a rejoin). The whole panel is a
// pure function of the spec — re-running this program reproduces every
// number byte-for-byte (seed 2017).
package main

import (
	"fmt"
	"log"

	"slpdas"
	"slpdas/internal/campaign"
	"slpdas/internal/metrics"
)

func main() {
	const (
		size    = 9
		repeats = 20
	)

	// The fault axis: from fault-free to one node in four cycling, all with
	// a mean-time-to-recovery of 2 TDMA periods.
	faults := []string{"none", "churn:0.05:2", "churn:0.15:2", "churn:0.25:2"}
	spec := campaign.Spec{
		GridSizes:       []int{size},
		Protocols:       []string{campaign.Protectionless, campaign.SLPAware},
		SearchDistances: []int{3},
		Faults:          faults,
		Repeats:         repeats,
		BaseSeed:        2017,
	}

	mem := &campaign.Memory{}
	sum, err := slpdas.RunCampaign(spec, mem)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Printf("churn panel on a %d×%d grid: %d cells, %d seeds each, SD 3, MTTR 2 periods\n\n",
		size, size, sum.Cells, repeats)

	type key struct{ protocol, faults string }
	byCell := make(map[key]campaign.Row, len(mem.Rows()))
	for _, r := range mem.Rows() {
		byCell[key{r.Protocol, r.Faults}] = r
	}
	tbl := metrics.NewTable("protocol", "faults", "capture", "failed/run",
		"delivery during", "delivery after", "repair (periods)")
	for _, p := range []string{campaign.Protectionless, campaign.SLPAware} {
		for _, f := range faults {
			r := byCell[key{p, f}]
			during, after, repair := "-", "-", "-"
			if f != "none" {
				during = fmt.Sprintf("%.0f%%", r.DeliveryDuring*100)
				after = fmt.Sprintf("%.0f%%", r.DeliveryAfter*100)
				repair = fmt.Sprintf("%.1f", r.RepairPeriods)
			}
			tbl.AddRow(
				p, f,
				fmt.Sprintf("%.0f%% (%d/%d)", r.CaptureRatio*100, r.Captures, r.Runs),
				fmt.Sprintf("%.1f", r.NodesFailed),
				during, after, repair,
			)
		}
	}
	fmt.Print(tbl)
	fmt.Println("\ndelivery during/after = unique source messages reaching the sink per")
	fmt.Println("data period inside and after the fault window; repair = periods from")
	fmt.Println("the first crash to the last slot re-acquisition. Rejoining nodes run")
	fmt.Println("neighbour discovery again and pull slots from their neighbours, so the")
	fmt.Println("schedule self-heals without a global restart. Churn events are spread")
	fmt.Println("across the whole data phase, so the 'after' window is only the few")
	fmt.Println("periods past the last rejoin — small, and empty for runs that end")
	fmt.Println("early on capture — which is why it reads low next to 'during'.")
}
