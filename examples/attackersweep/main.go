// Attacker sweep — the generality of the (R, H, M, s0, D) model. The
// paper evaluates the (1,0,1)-attacker; this example measures how capture
// ratio responds to attacker strength, both in full simulation (live
// attacker, many seeds) and with the exhaustive decision procedure over a
// fixed schedule (worst-case nondeterministic attacker).
package main

import (
	"fmt"
	"log"

	"slpdas"
	"slpdas/internal/core"
	"slpdas/internal/metrics"
	"slpdas/internal/topo"
	"slpdas/internal/verify"
)

func main() {
	const (
		size    = 9
		repeats = 30
	)

	fmt.Printf("simulated capture ratio on a %d×%d grid, SLP DAS, %d seeds per row\n\n", size, size, repeats)
	tbl := metrics.NewTable("attacker (R,H,M)", "capture ratio")
	for _, p := range [][3]int{{1, 0, 1}, {1, 1, 1}, {2, 0, 1}, {1, 0, 2}, {2, 1, 2}} {
		sum, err := slpdas.Run(slpdas.SimConfig{
			GridSize:       size,
			Protocol:       slpdas.SLPAware,
			SearchDistance: 3,
			Repeats:        repeats,
			Seed:           100,
			AttackerR:      p[0],
			AttackerH:      p[1],
			AttackerM:      p[2],
		})
		if err != nil {
			log.Fatalf("attacker %v: %v", p, err)
		}
		tbl.AddRow(
			fmt.Sprintf("(%d,%d,%d)", p[0], p[1], p[2]),
			fmt.Sprintf("%.1f%% (%d/%d)", sum.CaptureRatio*100, sum.Captures, sum.Runs),
		)
	}
	fmt.Print(tbl)

	// Worst case: the exhaustive nondeterministic attacker of Algorithm 1
	// over one settled SLP schedule.
	g, err := topo.DefaultGrid(size)
	if err != nil {
		log.Fatal(err)
	}
	sink, source := topo.GridCentre(size), topo.GridTopLeft()
	net, err := core.NewNetwork(g, sink, source, core.DefaultSLP(3), 100)
	if err != nil {
		log.Fatal(err)
	}
	assignment, err := net.RunSetup()
	if err != nil {
		log.Fatal(err)
	}
	delta := int(net.SafetyPeriods())

	fmt.Printf("\nexhaustive verification of one SLP schedule (δ=%d periods):\n\n", delta)
	vt := metrics.NewTable("attacker (R,H,M)", "verdict", "states explored")
	for _, p := range []verify.Params{
		{R: 1, H: 0, M: 1, Start: sink},
		{R: 2, H: 0, M: 1, Start: sink},
		{R: 2, H: 0, M: 2, Start: sink},
		{R: 3, H: 0, M: 2, Start: sink},
		{R: 4, H: 0, M: 3, Start: sink},
	} {
		res, err := verify.VerifySchedule(g, assignment, p, verify.AnyHeardD, delta, source, verify.Options{})
		if err != nil {
			log.Fatalf("verify %+v: %v", p, err)
		}
		verdict := "δ-SLP-aware"
		if !res.SLPAware {
			verdict = fmt.Sprintf("captured in %d periods", res.CapturePeriod)
		}
		vt.AddRow(
			fmt.Sprintf("(%d,%d,%d)", p.R, p.H, p.M),
			verdict,
			fmt.Sprintf("%d", res.StatesExplored),
		)
	}
	fmt.Print(vt)
}
