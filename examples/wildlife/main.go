// Wildlife monitoring — the paper's motivating scenario. A sensor grid
// watches a reserve; the node nearest a rhinoceros becomes the source and
// reports sightings towards the central base station. A poacher with a
// radio direction-finder starts at the base station and follows the first
// transmission it hears each TDMA period.
//
// The example runs the same hunt twice — over the protectionless schedule
// and over the SLP-aware schedule — and renders both walks, showing the
// poacher being led into the decoy region and the safety period expiring.
package main

import (
	"fmt"
	"log"
	"strconv"

	"slpdas/internal/core"
	"slpdas/internal/topo"
)

const (
	side = 11
	seed = 6 // a run where the protectionless poacher finds the rhino
)

func main() {
	g, err := topo.DefaultGrid(side)
	if err != nil {
		log.Fatalf("building the reserve grid: %v", err)
	}
	base := topo.GridCentre(side) // base station (sink)
	rhino := topo.GridTopLeft()   // the animal's position (source)

	fmt.Printf("reserve: %d sensors, base station at node %d, rhino near node %d (Δss=%d hops)\n\n",
		g.Len(), base, rhino, g.HopDistance(base, rhino))

	hunt(g, base, rhino, core.Default(), "protectionless DAS")
	fmt.Println()
	hunt(g, base, rhino, core.DefaultSLP(3), "SLP-aware DAS")
}

func hunt(g *topo.Graph, base, rhino topo.NodeID, cfg core.Config, name string) {
	net, err := core.NewNetwork(g, base, rhino, cfg, seed)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	res, err := net.Run()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}

	fmt.Printf("=== %s ===\n", name)
	if res.Captured {
		fmt.Printf("the poacher reached the rhino after %.0f periods (safety period %.1f) — POACHED\n",
			res.CapturePeriods, res.SafetyPeriod)
	} else {
		fmt.Printf("the safety period (%.1f periods) expired before the poacher arrived — rhino SAFE\n",
			res.SafetyPeriod)
	}
	if res.ChangedNodes > 0 {
		fmt.Printf("decoy: %d sensors re-assigned their TDMA slots\n", res.ChangedNodes)
	}

	step := map[topo.NodeID]int{}
	for i, n := range res.AttackerPath {
		step[n] = i
	}
	fmt.Println("poacher's walk (numbers are period indices; B base, R rhino, ! decoy):")
	fmt.Print(topo.RenderGrid(side, func(n topo.NodeID) string {
		if i, ok := step[n]; ok && n != base {
			return strconv.Itoa(i)
		}
		switch {
		case n == base:
			return "B"
		case n == rhino:
			return "R"
		case net.NodeState(n).Changed:
			return "!"
		}
		return "·"
	}))
}
