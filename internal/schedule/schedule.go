// Package schedule represents TDMA slot assignments and implements the
// formal schedule properties of Section IV-A of the paper:
//
//   - Definition 1 (non-colliding slot): no node in the 2-hop
//     neighbourhood CG(n) shares n's slot.
//   - Definition 2 (strong DAS): every neighbour on a shortest path
//     towards the sink transmits in a later slot (or is the sink).
//   - Definition 3 (weak DAS): data can always flow to the sink along
//     strictly later slots — implemented as reachability in the directed
//     graph with an edge n→m whenever m ∈ N(n) and (slot(m) > slot(n) or
//     m = sink).
//
// A schedule is a sequence of sender sets ⟨σ1, …, σl⟩; SenderSets recovers
// that form from the per-node assignment.
package schedule

import (
	"fmt"
	"sort"

	"slpdas/internal/topo"
)

// Unassigned is the ⊥ slot value.
const Unassigned = -1

// Assignment maps each node to a TDMA slot. The sink conventionally holds
// slot Δ (= the slot-space size), which is outside the transmittable range
// and therefore never fires.
type Assignment struct {
	slots []int
	sink  topo.NodeID
}

// New creates an all-unassigned schedule for n nodes with the given sink.
func New(n int, sink topo.NodeID) *Assignment {
	slots := make([]int, n)
	for i := range slots {
		slots[i] = Unassigned
	}
	return &Assignment{slots: slots, sink: sink}
}

// Len returns the number of nodes covered by the assignment.
func (a *Assignment) Len() int { return len(a.slots) }

// Sink returns the sink node.
func (a *Assignment) Sink() topo.NodeID { return a.sink }

// Set assigns slot to node n.
func (a *Assignment) Set(n topo.NodeID, slot int) { a.slots[n] = slot }

// Slot returns node n's slot (Unassigned if none).
func (a *Assignment) Slot(n topo.NodeID) int { return a.slots[n] }

// Assigned reports whether node n holds a slot.
func (a *Assignment) Assigned(n topo.NodeID) bool { return a.slots[n] != Unassigned }

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{slots: append([]int(nil), a.slots...), sink: a.sink}
}

// Equal reports whether two assignments are identical.
func (a *Assignment) Equal(b *Assignment) bool {
	if a.sink != b.sink || len(a.slots) != len(b.slots) {
		return false
	}
	for i := range a.slots {
		if a.slots[i] != b.slots[i] {
			return false
		}
	}
	return true
}

// MinSlot returns the smallest assigned slot, or Unassigned if none.
func (a *Assignment) MinSlot() int {
	min := Unassigned
	for n, s := range a.slots {
		if topo.NodeID(n) == a.sink || s == Unassigned {
			continue
		}
		if min == Unassigned || s < min {
			min = s
		}
	}
	return min
}

// SenderSets recovers the paper's ⟨σ1, σ2, …, σl⟩ form: sets of nodes
// grouped by slot, ordered by increasing slot value (transmission order).
// The sink is excluded. Unassigned nodes are skipped.
func (a *Assignment) SenderSets() [][]topo.NodeID {
	bySlot := make(map[int][]topo.NodeID)
	for n, s := range a.slots {
		if topo.NodeID(n) == a.sink || s == Unassigned {
			continue
		}
		bySlot[s] = append(bySlot[s], topo.NodeID(n))
	}
	slots := make([]int, 0, len(bySlot))
	for s := range bySlot {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	out := make([][]topo.NodeID, 0, len(slots))
	for _, s := range slots {
		set := bySlot[s]
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		out = append(out, set)
	}
	return out
}

// ViolationKind classifies schedule property violations.
type ViolationKind int

// Violation kinds.
const (
	// KindUnassigned: a non-sink node has no slot (Def. 2/3 condition 2).
	KindUnassigned ViolationKind = iota + 1
	// KindCollision: a 2-hop neighbour shares the node's slot (Def. 1).
	KindCollision
	// KindEarlierShortestParent: a shortest-path next hop towards the sink
	// transmits no later than the node (Def. 2 condition 3).
	KindEarlierShortestParent
	// KindNoRouteToSink: no strictly-later-slot path reaches the sink
	// (Def. 3 condition 3).
	KindNoRouteToSink
	// KindSlotOutOfRange: slot outside [0, slots) for a transmitter.
	KindSlotOutOfRange
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case KindUnassigned:
		return "unassigned"
	case KindCollision:
		return "collision"
	case KindEarlierShortestParent:
		return "earlier-shortest-parent"
	case KindNoRouteToSink:
		return "no-route-to-sink"
	case KindSlotOutOfRange:
		return "slot-out-of-range"
	default:
		return fmt.Sprintf("violation(%d)", int(k))
	}
}

// Violation describes one property violation.
type Violation struct {
	Kind  ViolationKind
	Node  topo.NodeID
	Other topo.NodeID // peer node where relevant, else topo.None
	Slot  int
}

// String renders the violation for reports.
func (v Violation) String() string {
	if v.Other != topo.None {
		return fmt.Sprintf("%s: node %d (slot %d) vs node %d", v.Kind, v.Node, v.Slot, v.Other)
	}
	return fmt.Sprintf("%s: node %d (slot %d)", v.Kind, v.Node, v.Slot)
}

// CheckAssigned verifies Def. 2/3 conditions 1–2: every non-sink node holds
// exactly one slot. (Uniqueness per node holds by construction of the map;
// this reports missing assignments.)
func CheckAssigned(g *topo.Graph, a *Assignment) []Violation {
	var out []Violation
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		if n == a.sink {
			continue
		}
		if !a.Assigned(n) {
			out = append(out, Violation{Kind: KindUnassigned, Node: n, Other: topo.None, Slot: Unassigned})
		}
	}
	return out
}

// CheckNonColliding verifies Definition 1 for every node: no member of the
// 2-hop neighbourhood shares its slot. Each colliding pair is reported
// once (from its lower-ID endpoint).
func CheckNonColliding(g *topo.Graph, a *Assignment) []Violation {
	var out []Violation
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		if n == a.sink || !a.Assigned(n) {
			continue
		}
		for _, m := range g.TwoHop(n) {
			if m == a.sink || m <= n || !a.Assigned(m) {
				continue
			}
			if a.Slot(m) == a.Slot(n) {
				out = append(out, Violation{Kind: KindCollision, Node: n, Other: m, Slot: a.Slot(n)})
			}
		}
	}
	return out
}

// CheckSlotRange verifies every non-sink slot is transmittable.
func CheckSlotRange(g *topo.Graph, a *Assignment, slots int) []Violation {
	var out []Violation
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		if n == a.sink || !a.Assigned(n) {
			continue
		}
		if s := a.Slot(n); s < 0 || s >= slots {
			out = append(out, Violation{Kind: KindSlotOutOfRange, Node: n, Other: topo.None, Slot: s})
		}
	}
	return out
}

// CheckStrongDAS verifies Definition 2: conditions 1–2 via CheckAssigned,
// condition 3 (every shortest-path next hop towards the sink transmits
// later or is the sink), and condition 4 via CheckNonColliding.
func CheckStrongDAS(g *topo.Graph, a *Assignment) []Violation {
	out := CheckAssigned(g, a)
	dist := g.BFSFrom(a.sink)
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		if n == a.sink || !a.Assigned(n) {
			continue
		}
		for _, m := range g.ShortestPathNextHops(n, dist) {
			if m == a.sink {
				continue
			}
			if !a.Assigned(m) || a.Slot(m) <= a.Slot(n) {
				out = append(out, Violation{Kind: KindEarlierShortestParent, Node: n, Other: m, Slot: a.Slot(n)})
			}
		}
	}
	out = append(out, CheckNonColliding(g, a)...)
	return out
}

// CheckWeakDAS verifies Definition 3: conditions 1–2 via CheckAssigned,
// condition 3 as sink reachability through strictly-later slots, and
// condition 4 via CheckNonColliding.
func CheckWeakDAS(g *topo.Graph, a *Assignment) []Violation {
	out := CheckAssigned(g, a)
	// Reverse reachability: start from the sink and walk edges backwards
	// (m reaches sink directly; n reaches sink if some neighbour m with
	// slot(m) > slot(n) reaches it).
	canReach := make([]bool, g.Len())
	canReach[a.sink] = true
	// Process nodes in decreasing slot order: a node's reachability only
	// depends on strictly-larger-slot neighbours (or sink adjacency), so a
	// single ordered pass suffices.
	order := make([]topo.NodeID, 0, g.Len())
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		if n != a.sink && a.Assigned(n) {
			order = append(order, n)
		}
	}
	sort.Slice(order, func(i, j int) bool { return a.Slot(order[i]) > a.Slot(order[j]) })
	for _, n := range order {
		for _, m := range g.Neighbors(n) {
			if m == a.sink || (a.Assigned(m) && a.Slot(m) > a.Slot(n) && canReach[m]) {
				canReach[n] = true
				break
			}
		}
	}
	for _, n := range order {
		if !canReach[n] {
			out = append(out, Violation{Kind: KindNoRouteToSink, Node: n, Other: topo.None, Slot: a.Slot(n)})
		}
	}
	out = append(out, CheckNonColliding(g, a)...)
	return out
}

// IsStrongDAS reports whether the assignment satisfies Definition 2.
func IsStrongDAS(g *topo.Graph, a *Assignment) bool {
	return len(CheckStrongDAS(g, a)) == 0
}

// IsWeakDAS reports whether the assignment satisfies Definition 3.
func IsWeakDAS(g *topo.Graph, a *Assignment) bool {
	return len(CheckWeakDAS(g, a)) == 0
}

// NonColliding reports whether slot i would be non-colliding for node n
// (Definition 1): no node in CG(n) currently holds slot i.
func NonColliding(g *topo.Graph, a *Assignment, n topo.NodeID, slot int) bool {
	for _, m := range g.TwoHop(n) {
		if a.Assigned(m) && a.Slot(m) == slot {
			return false
		}
	}
	return true
}
