package schedule

import (
	"testing"
	"testing/quick"

	"slpdas/internal/topo"
)

func line5(t *testing.T) *topo.Graph {
	t.Helper()
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	return g
}

// lineSchedule builds 0-1-2-3-4 with sink at 4 and slots 1,2,3,4 increasing
// towards the sink: a valid strong DAS.
func lineSchedule(t *testing.T) (*topo.Graph, *Assignment) {
	t.Helper()
	g := line5(t)
	a := New(g.Len(), 4)
	a.Set(0, 1)
	a.Set(1, 2)
	a.Set(2, 3)
	a.Set(3, 4)
	a.Set(4, 100)
	return g, a
}

func TestLineScheduleIsStrongAndWeakDAS(t *testing.T) {
	g, a := lineSchedule(t)
	if v := CheckStrongDAS(g, a); len(v) != 0 {
		t.Errorf("strong DAS violations: %v", v)
	}
	if v := CheckWeakDAS(g, a); len(v) != 0 {
		t.Errorf("weak DAS violations: %v", v)
	}
}

func TestUnassignedDetected(t *testing.T) {
	g, a := lineSchedule(t)
	a.Set(2, Unassigned)
	found := false
	for _, v := range CheckWeakDAS(g, a) {
		if v.Kind == KindUnassigned && v.Node == 2 {
			found = true
		}
	}
	if !found {
		t.Error("unassigned node 2 not reported")
	}
}

func TestCollisionDetected(t *testing.T) {
	g, a := lineSchedule(t)
	// Nodes 1 and 3 are two hops apart (via 2): same slot collides.
	a.Set(3, 2)
	violations := CheckNonColliding(g, a)
	if len(violations) != 1 {
		t.Fatalf("violations = %v, want exactly 1", violations)
	}
	v := violations[0]
	if v.Kind != KindCollision || v.Node != 1 || v.Other != 3 {
		t.Errorf("violation = %+v", v)
	}
	if v.String() == "" {
		t.Error("empty violation string")
	}
}

func TestCollisionBeyondTwoHopsAllowed(t *testing.T) {
	g, a := lineSchedule(t)
	// Nodes 0 and 3 are three hops apart: slot reuse is legal (Def. 1).
	a.Set(0, 4)
	a.Set(3, 4)
	if v := CheckNonColliding(g, a); len(v) != 0 {
		t.Errorf("3-hop reuse flagged: %v", v)
	}
}

func TestStrongViolationWhenParentEarlier(t *testing.T) {
	g, a := lineSchedule(t)
	// Node 2's shortest-path next hop is 3; give 3 an earlier slot.
	a.Set(3, 1)
	a.Set(0, 3) // keep 0 legal relative to 1
	var kinds []ViolationKind
	for _, v := range CheckStrongDAS(g, a) {
		kinds = append(kinds, v.Kind)
	}
	found := false
	for _, k := range kinds {
		if k == KindEarlierShortestParent {
			found = true
		}
	}
	if !found {
		t.Errorf("no earlier-shortest-parent violation in %v", kinds)
	}
}

func TestWeakHoldsWhereStrongFails(t *testing.T) {
	// Grid corner: two shortest-path next hops. Give one a later slot and
	// one an earlier slot: strong fails, weak holds.
	g, err := topo.DefaultGrid(3)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sink := topo.GridCentre(3) // node 4
	a := New(g.Len(), sink)
	a.Set(sink, 100)
	// Distances from sink: corners 2, edges 1.
	a.Set(1, 50)
	a.Set(3, 51)
	a.Set(5, 52)
	a.Set(7, 53)
	a.Set(0, 49) // corner 0: next hops 1 (50) and 3 (51) both later: fine
	a.Set(2, 30) // corner 2: next hops 1 (50), 5 (52) both later: fine
	a.Set(6, 29)
	// Corner 8: next hops 5 (52) and 7; set 8's slot between them.
	a.Set(8, 40)
	a.Set(7, 35) // now 7 < 8: strong violated at 8, but 5 (52) > 40 keeps weak
	if IsStrongDAS(g, a) {
		t.Error("strong DAS holds, want violation at corner 8")
	}
	if !IsWeakDAS(g, a) {
		t.Errorf("weak DAS violated: %v", CheckWeakDAS(g, a))
	}
}

func TestWeakViolationNoRoute(t *testing.T) {
	g, a := lineSchedule(t)
	// Node 0's only neighbour is 1; make 1 earlier than 0.
	a.Set(0, 3)
	a.Set(1, 2)
	found := false
	for _, v := range CheckWeakDAS(g, a) {
		if v.Kind == KindNoRouteToSink && v.Node == 0 {
			found = true
		}
	}
	if !found {
		t.Error("no-route-to-sink violation not reported for node 0")
	}
}

func TestWeakReachabilityIsTransitive(t *testing.T) {
	// 0 can only reach the sink through 1 and 2; breaking 2 strands both
	// 0 and 1 even though 1 has a later neighbour (2).
	g := line5(t)
	a := New(g.Len(), 4)
	a.Set(0, 1)
	a.Set(1, 2)
	a.Set(2, 1) // 2 earlier than 1: 1 cannot progress, so 0 cannot either
	a.Set(3, 4)
	a.Set(4, 100)
	stranded := map[topo.NodeID]bool{}
	for _, v := range CheckWeakDAS(g, a) {
		if v.Kind == KindNoRouteToSink {
			stranded[v.Node] = true
		}
	}
	if !stranded[0] || !stranded[1] {
		t.Errorf("stranded = %v, want nodes 0 and 1", stranded)
	}
}

func TestSenderSets(t *testing.T) {
	g, a := lineSchedule(t)
	_ = g
	a.Set(0, 2) // share slot 2 with node 1 (collision, but SenderSets is structural)
	sets := a.SenderSets()
	if len(sets) != 3 {
		t.Fatalf("sets = %v, want 3 slots", sets)
	}
	if len(sets[0]) != 2 || sets[0][0] != 0 || sets[0][1] != 1 {
		t.Errorf("σ1 = %v, want [0 1]", sets[0])
	}
	if sets[1][0] != 2 || sets[2][0] != 3 {
		t.Errorf("σ2, σ3 = %v %v", sets[1], sets[2])
	}
}

func TestSlotRange(t *testing.T) {
	g, a := lineSchedule(t)
	a.Set(0, -3)
	a.Set(1, 100)
	vs := CheckSlotRange(g, a, 100)
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want 2", vs)
	}
}

func TestCloneAndEqual(t *testing.T) {
	_, a := lineSchedule(t)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Set(0, 99)
	if a.Equal(b) {
		t.Error("mutated clone still equal")
	}
	if a.Slot(0) == 99 {
		t.Error("clone aliases original")
	}
}

func TestMinSlot(t *testing.T) {
	_, a := lineSchedule(t)
	if got := a.MinSlot(); got != 1 {
		t.Errorf("MinSlot = %d, want 1", got)
	}
	empty := New(5, 4)
	if got := empty.MinSlot(); got != Unassigned {
		t.Errorf("MinSlot on empty = %d, want Unassigned", got)
	}
}

func TestViolationKindStrings(t *testing.T) {
	kinds := []ViolationKind{KindUnassigned, KindCollision, KindEarlierShortestParent, KindNoRouteToSink, KindSlotOutOfRange, ViolationKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
}

func TestGreedyDASOnGridsIsStrongDAS(t *testing.T) {
	for _, side := range []int{3, 5, 11, 15, 21} {
		g, err := topo.DefaultGrid(side)
		if err != nil {
			t.Fatalf("grid %d: %v", side, err)
		}
		sink := topo.GridCentre(side)
		a, err := GreedyDAS(g, sink, 100)
		if err != nil {
			t.Fatalf("GreedyDAS %d: %v", side, err)
		}
		if vs := CheckStrongDAS(g, a); len(vs) != 0 {
			t.Errorf("grid %d: strong violations %v", side, vs[:min(3, len(vs))])
		}
		if vs := CheckSlotRange(g, a, 100); len(vs) != 0 {
			t.Errorf("grid %d: slot range violations %v", side, vs[:min(3, len(vs))])
		}
	}
}

func TestGreedyDASQuickRandomGeometric(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := topo.RandomGeometric(30, 40, 40, 13, seed)
		if err != nil {
			return true // could not build a connected graph; skip
		}
		a, err := GreedyDAS(g, 0, 200)
		if err != nil {
			return true // slot space too small for this layout; skip
		}
		return IsStrongDAS(g, a) && IsWeakDAS(g, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGreedyDASErrors(t *testing.T) {
	g := line5(t)
	if _, err := GreedyDAS(g, topo.NodeID(99), 100); err == nil {
		t.Error("invalid sink accepted")
	}
	if _, err := GreedyDAS(g, 4, 2); err == nil {
		t.Error("tiny slot space accepted for a 5-line")
	}
}
