package schedule

import (
	"fmt"

	"slpdas/internal/topo"
)

// GreedyDAS builds a centralized strong DAS by sweeping nodes in BFS order
// from the sink: each node takes a slot strictly below all of its
// shortest-path next hops towards the sink, lowered further until
// non-colliding in its 2-hop neighbourhood. It serves as the reference
// schedule "F" of Definition 5, as a test fixture, and as a converged
// ideal of the distributed Phase 1 protocol.
//
// slots is the slot-space size Δ; the sink is assigned Δ itself (it never
// transmits). Returns an error if the graph is disconnected or the slot
// space is too small for the topology.
func GreedyDAS(g *topo.Graph, sink topo.NodeID, slots int) (*Assignment, error) {
	if !g.Valid(sink) {
		return nil, fmt.Errorf("schedule: invalid sink %d", sink)
	}
	dist := g.BFSFrom(sink)
	a := New(g.Len(), sink)
	a.Set(sink, slots)

	// Nodes in increasing hop distance, ties by ID: parents first.
	order := make([]topo.NodeID, 0, g.Len()-1)
	maxDist := 0
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		if n == sink {
			continue
		}
		if dist[n] < 0 {
			return nil, fmt.Errorf("schedule: node %d unreachable from sink", n)
		}
		order = append(order, n)
		if dist[n] > maxDist {
			maxDist = dist[n]
		}
	}
	// Counting sort by distance keeps ID order within each level.
	byLevel := make([][]topo.NodeID, maxDist+1)
	for _, n := range order {
		byLevel[dist[n]] = append(byLevel[dist[n]], n)
	}

	for level := 1; level <= maxDist; level++ {
		for _, n := range byLevel[level] {
			slot := slots // upper bound: strictly below every next hop
			for _, m := range g.ShortestPathNextHops(n, dist) {
				if a.Slot(m) < slot {
					slot = a.Slot(m)
				}
			}
			slot--
			for slot >= 0 && !NonColliding(g, a, n, slot) {
				slot--
			}
			if slot < 0 {
				return nil, fmt.Errorf("schedule: slot space %d too small at node %d (distance %d)", slots, n, level)
			}
			a.Set(n, slot)
		}
	}
	return a, nil
}
