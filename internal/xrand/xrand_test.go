package xrand

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSplitMix64KnownVector(t *testing.T) {
	// First output of the SplitMix64 reference implementation seeded with 0.
	if got := SplitMix64(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("SplitMix64(0) = %#x, want 0xe220a8397b1dcdaf", got)
	}
	if SplitMix64(42) != SplitMix64(42) {
		t.Error("SplitMix64 not deterministic")
	}
	if SplitMix64(42) == SplitMix64(43) {
		t.Error("SplitMix64(42) == SplitMix64(43); no avalanche")
	}
}

func TestMixIndependence(t *testing.T) {
	a := Mix(1, 0)
	b := Mix(1, 1)
	c := Mix(2, 0)
	if a == b || a == c || b == c {
		t.Errorf("Mix collisions: %x %x %x", a, b, c)
	}
	// Label order matters.
	if Mix(1, 2, 3) == Mix(1, 3, 2) {
		t.Error("Mix is label-order-insensitive; want order sensitivity")
	}
}

func TestMixStringDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, s := range []string{"radio", "attacker", "node", "boot", "dissem", ""} {
		v := MixString(99, s)
		if prev, dup := seen[v]; dup {
			t.Errorf("MixString collision between %q and %q", prev, s)
		}
		seen[v] = s
	}
}

func TestNewDeterminism(t *testing.T) {
	r1 := New(7, 1, 2)
	r2 := New(7, 1, 2)
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	r3 := New(7, 1, 3)
	same := 0
	r1 = New(7, 1, 2)
	for i := 0; i < 100; i++ {
		if r1.Uint64() == r3.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different labels matched %d/100 draws", same)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewNamed(5, "jitter")
	for i := 0; i < 1000; i++ {
		d := Jitter(r, 100*time.Millisecond)
		if d < 0 || d >= 100*time.Millisecond {
			t.Fatalf("Jitter out of range: %v", d)
		}
	}
	if Jitter(r, 0) != 0 {
		t.Error("Jitter(0) != 0")
	}
	if Jitter(r, -time.Second) != 0 {
		t.Error("Jitter(negative) != 0")
	}
}

func TestJitterAroundBounds(t *testing.T) {
	r := NewNamed(5, "jitter-around")
	base := 500 * time.Millisecond
	spread := 200 * time.Millisecond
	for i := 0; i < 1000; i++ {
		d := JitterAround(r, base, spread)
		if d < base-spread/2 || d >= base+spread/2 {
			t.Fatalf("JitterAround out of range: %v", d)
		}
	}
	if JitterAround(r, base, 0) != base {
		t.Error("JitterAround with zero spread != base")
	}
	// A base smaller than spread/2 must clamp to zero, never go negative.
	for i := 0; i < 200; i++ {
		if d := JitterAround(r, time.Millisecond, time.Second); d < 0 {
			t.Fatalf("JitterAround returned negative %v", d)
		}
	}
}

func TestMixQuickNoTrivialFixedPoints(t *testing.T) {
	f := func(seed, label uint64) bool {
		return Mix(seed, label) != seed || seed == 0 && label == 0
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		// A fixed point is astronomically unlikely; treat as failure.
		t.Error(err)
	}
}
