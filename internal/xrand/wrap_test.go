package xrand

import (
	"math/rand/v2"
	"testing"
)

// TestWrapStreamIdentity pins Wrap ≡ rand.New: the seedpurity-blessed
// constructor must not perturb any stream, or every golden in the repo
// would shift.
func TestWrapStreamIdentity(t *testing.T) {
	var a, b rand.PCG
	a.Seed(Seeds(42, 7))
	b.Seed(Seeds(42, 7))
	wrapped := Wrap(&a)
	direct := rand.New(&b)
	for i := 0; i < 1000; i++ {
		if got, want := wrapped.Uint64(), direct.Uint64(); got != want {
			t.Fatalf("draw %d: Wrap=%d rand.New=%d", i, got, want)
		}
	}
}

// TestNewRawStreamIdentity pins NewRaw ≡ rand.New(rand.NewPCG(s1, s2)),
// the legacy raw-seed construction the topology builders used before
// seedpurity; the committed topology goldens depend on the stream staying
// byte-identical.
func TestNewRawStreamIdentity(t *testing.T) {
	const s1, s2 = 12345, 0x9e3779b97f4a7c15
	raw := NewRaw(s1, s2)
	legacy := rand.New(rand.NewPCG(s1, s2))
	for i := 0; i < 1000; i++ {
		if got, want := raw.Uint64(), legacy.Uint64(); got != want {
			t.Fatalf("draw %d: NewRaw=%d legacy=%d", i, got, want)
		}
	}
}
