// Package xrand provides deterministic random-number plumbing for the
// simulator: a SplitMix64 mixer for deriving independent per-component
// seeds from a single run seed, PCG-backed streams, and jitter helpers.
//
// Determinism contract: a simulation run is a pure function of its seed.
// Every component (node, radio, attacker) derives its own stream from the
// run seed and a stable component label, so adding a consumer never
// perturbs the draws seen by existing consumers.
package xrand

import (
	"math/rand/v2"
	"time"
)

// SplitMix64 advances the SplitMix64 sequence from state x and returns the
// next output. It is the standard seed-mixing function from Steele et al.,
// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix combines a run seed with component labels into a new seed. Each label
// is folded through SplitMix64 so that related labels produce unrelated
// streams.
func Mix(seed uint64, labels ...uint64) uint64 {
	out := SplitMix64(seed)
	for _, l := range labels {
		out = SplitMix64(out ^ SplitMix64(l))
	}
	return out
}

// MixString folds a string label into a seed. Used for named components
// ("radio", "attacker") whose draws must not depend on registration order.
func MixString(seed uint64, label string) uint64 {
	// FNV-1a over the label, then mixed.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return Mix(seed, h)
}

// Seeds returns the PCG seed pair New derives from seed and labels.
// Components that own their PCG state (so a run Reset can reseed the
// generator in place instead of allocating a fresh one) use this to stay
// stream-identical with New.
func Seeds(seed uint64, labels ...uint64) (uint64, uint64) {
	mixed := Mix(seed, labels...)
	return mixed, SplitMix64(mixed)
}

// SeedsNamed is Seeds for a named component, matching NewNamed.
func SeedsNamed(seed uint64, label string) (uint64, uint64) {
	mixed := MixString(seed, label)
	return mixed, SplitMix64(mixed)
}

// New returns a PCG-backed *rand.Rand seeded from seed and the given
// labels.
func New(seed uint64, labels ...uint64) *rand.Rand {
	return rand.New(rand.NewPCG(Seeds(seed, labels...)))
}

// Wrap returns a *rand.Rand drawing from src. Components that own their
// PCG state (seeded via Seeds/SeedsNamed so a run Reset can reseed the
// generator in place) wrap it here instead of calling rand.New directly:
// slplint's seedpurity analyzer keeps rand constructors out of simulation
// packages so that every stream provably passes through this package.
func Wrap(src rand.Source) *rand.Rand {
	return rand.New(src)
}

// NewRaw returns a PCG-backed *rand.Rand seeded with the given pair
// verbatim, without the SplitMix64 label mixing New applies. It exists for
// streams whose raw seeding predates this package and is pinned by
// committed goldens (the topology builders); new components must use
// New/NewNamed so their streams carry labels.
func NewRaw(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}

// NewNamed returns a PCG-backed *rand.Rand for a named component.
func NewNamed(seed uint64, label string) *rand.Rand {
	return rand.New(rand.NewPCG(SeedsNamed(seed, label)))
}

// Jitter returns a uniformly distributed duration in [0, max). A max of
// zero or less returns zero; used to de-synchronise broadcasts during the
// setup phases, as TOSSIM's boot-time randomisation does.
func Jitter(r *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.Int64N(int64(max)))
}

// JitterAround returns base perturbed by a uniform offset in
// [-spread/2, +spread/2), clamped to be non-negative.
func JitterAround(r *rand.Rand, base, spread time.Duration) time.Duration {
	if spread <= 0 {
		return base
	}
	d := base + time.Duration(r.Int64N(int64(spread))) - spread/2
	if d < 0 {
		return 0
	}
	return d
}
