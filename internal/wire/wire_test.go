package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"slpdas/internal/topo"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data := Marshal(m)
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m, err)
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	in := &Hello{From: 42}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDissemRoundTrip(t *testing.T) {
	in := &Dissem{
		From:   7,
		Normal: true,
		Parent: topo.None,
		Infos: []NodeInfo{
			{Node: 7, Hop: 2, Slot: 55, Version: 3},
			{Node: 8, Hop: NoSlot, Slot: NoSlot, Version: 0},
			{Node: 120, Hop: 19, Slot: 1, Version: 91},
		},
	}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDissemEmptyInfos(t *testing.T) {
	in := &Dissem{From: 1, Normal: false, Parent: 0, Infos: []NodeInfo{}}
	out := roundTrip(t, in).(*Dissem)
	if len(out.Infos) != 0 {
		t.Errorf("Infos = %v, want empty", out.Infos)
	}
	if out.Normal {
		t.Error("Normal = true, want false")
	}
}

func TestSearchChangeDataRoundTrip(t *testing.T) {
	msgs := []Message{
		&Search{From: 60, ANode: 49, Dist: 3, TTL: 20},
		&Search{From: 0, ANode: topo.None, Dist: 0, TTL: 0},
		&Change{From: 13, ANode: 14, NSlot: -5, Dist: 7},
		&Data{From: 3, Origin: 0, Seq: 4000000000, Count: 65535},
	}
	for _, in := range msgs {
		out := roundTrip(t, in)
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty frame: err = %v, want ErrTruncated", err)
	}
	if _, err := Unmarshal([]byte{0xEE, 1, 2}); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: err = %v, want ErrUnknownType", err)
	}
	// Truncate every valid frame at every length and require a clean error.
	frames := [][]byte{
		Marshal(&Hello{From: 300}),
		Marshal(&Dissem{From: 1, Normal: true, Parent: 2, Infos: []NodeInfo{{Node: 3, Hop: 4, Slot: 5, Version: 6}}}),
		Marshal(&Search{From: 1, ANode: 2, Dist: 3, TTL: 4}),
		Marshal(&Change{From: 1, ANode: 2, NSlot: 3, Dist: 4}),
		Marshal(&Data{From: 1, Origin: 2, Seq: 3, Count: 4}),
	}
	for _, frame := range frames {
		for cut := 1; cut < len(frame); cut++ {
			if _, err := Unmarshal(frame[:cut]); err == nil {
				t.Errorf("truncated frame %v at %d decoded without error", frame, cut)
			}
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	frame := Marshal(&Hello{From: 1})
	frame = append(frame, 0x00)
	if _, err := Unmarshal(frame); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("trailing bytes: err = %v, want ErrTrailingBytes", err)
	}
}

func TestCorruptInfoCountRejected(t *testing.T) {
	// Hand-craft a DISSEM with an absurd info count.
	buf := []byte{byte(TypeDissem)}
	buf = appendInt(buf, 1)      // from
	buf = appendBool(buf, true)  // normal
	buf = appendInt(buf, 2)      // parent
	buf = appendUint(buf, 1<<40) // count, way past sanity bound
	if _, err := Unmarshal(buf); err == nil {
		t.Error("absurd info count decoded without error")
	}
}

func TestSizeMatchesMarshal(t *testing.T) {
	m := &Dissem{From: 9, Infos: make([]NodeInfo, 10)}
	if Size(m) != len(Marshal(m)) {
		t.Errorf("Size = %d, Marshal len = %d", Size(m), len(Marshal(m)))
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		TypeHello:  "HELLO",
		TypeDissem: "DISSEM",
		TypeSearch: "SEARCH",
		TypeChange: "CHANGE",
		TypeData:   "DATA",
		Type(200):  "TYPE(200)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

// quick generators for property-based round-trip checks.

func randomNodeInfo(r *rand.Rand) NodeInfo {
	return NodeInfo{
		Node:    topo.NodeID(r.Int31n(1000) - 1),
		Hop:     r.Int31n(64) - 1,
		Slot:    r.Int31n(200) - 1,
		Version: r.Uint32(),
	}
}

func TestQuickDissemRoundTrip(t *testing.T) {
	f := func(from int32, normal bool, parent int32, nInfos uint8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := &Dissem{
			From:   topo.NodeID(from),
			Normal: normal,
			Parent: topo.NodeID(parent),
			Infos:  make([]NodeInfo, 0, nInfos%32),
		}
		for i := 0; i < int(nInfos%32); i++ {
			in.Infos = append(in.Infos, randomNodeInfo(r))
		}
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			return false
		}
		got := out.(*Dissem)
		if len(in.Infos) == 0 {
			// reflect.DeepEqual distinguishes nil and empty slices.
			return got.From == in.From && got.Normal == in.Normal &&
				got.Parent == in.Parent && len(got.Infos) == 0
		}
		return reflect.DeepEqual(in, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickScalarMessagesRoundTrip(t *testing.T) {
	f := func(a, b, c, d int32, seq uint32, count uint16) bool {
		msgs := []Message{
			&Hello{From: topo.NodeID(a)},
			&Search{From: topo.NodeID(a), ANode: topo.NodeID(b), Dist: c, TTL: d},
			&Change{From: topo.NodeID(a), ANode: topo.NodeID(b), NSlot: c, Dist: d},
			&Data{From: topo.NodeID(a), Origin: topo.NodeID(b), Seq: seq, Count: count},
		}
		for _, in := range msgs {
			out, err := Unmarshal(Marshal(in))
			if err != nil || !reflect.DeepEqual(in, out) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unmarshal(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
