// Package wire defines the over-the-air message formats exchanged by the
// DAS protocols and a compact binary codec for them. Frames carry their
// real encoded size so the radio can compute airtime and the experiment
// harness can report message overhead in both packets and bytes — the
// "negligible message overhead" claim of the paper is measured, not
// asserted.
//
// Frame layout: one type byte followed by the message fields, integers as
// (zig-zag) varints, slices length-prefixed. The codec never panics on
// malformed input; it returns ErrTruncated or ErrUnknownType.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"slpdas/internal/topo"
)

// Codec errors.
var (
	// ErrTruncated is returned when a frame ends mid-field.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrUnknownType is returned for an unregistered frame type byte.
	ErrUnknownType = errors.New("wire: unknown frame type")
	// ErrTrailingBytes is returned when a frame decodes but leaves data.
	ErrTrailingBytes = errors.New("wire: trailing bytes after frame")
)

// Type identifies a message kind on the wire.
type Type uint8

// Message kinds. Values are part of the wire format; do not reorder.
const (
	TypeHello  Type = iota + 1 // neighbour discovery beacon
	TypeDissem                 // Phase 1 state dissemination (Figure 2)
	TypeSearch                 // Phase 2 node locator (Figure 3)
	TypeChange                 // Phase 3 slot refinement (Figure 4)
	TypeData                   // data-phase payload broadcast
)

// String returns the protocol name of the message type.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeDissem:
		return "DISSEM"
	case TypeSearch:
		return "SEARCH"
	case TypeChange:
		return "CHANGE"
	case TypeData:
		return "DATA"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Message is any frame that can cross the radio.
type Message interface {
	// Kind returns the wire type tag.
	Kind() Type
	// appendBody encodes the fields (without the type byte) onto buf.
	appendBody(buf []byte) []byte
	// decodeBody parses the fields from data, returning leftover bytes.
	decodeBody(data []byte) ([]byte, error)
}

// NoSlot is the ⊥ slot/hop marker used inside messages.
const NoSlot int32 = -1

// NodeInfo is one entry of the 2-hop neighbourhood table carried in DISSEM
// messages: the (hop, slot) pair of Figure 2's Ninfo, plus a freshness
// version so receivers can discard stale relayed state (the pseudocode
// overwrites unconditionally, which thrashes under loss; versioning is the
// standard repair and preserves the semantics).
type NodeInfo struct {
	Node    topo.NodeID
	Hop     int32 // NoSlot (⊥) when unknown
	Slot    int32 // NoSlot (⊥) when unknown
	Version uint32
}

// Hello is the neighbour-discovery beacon.
type Hello struct {
	From topo.NodeID
}

// Kind implements Message.
func (*Hello) Kind() Type { return TypeHello }

// Dissem is the Phase 1 state dissemination message
// ⟨DISSEM, Normal, i, {Ninfo[j]}, par⟩ of Figure 2.
type Dissem struct {
	From   topo.NodeID
	Normal bool        // false marks an update-phase dissemination
	Parent topo.NodeID // topo.None when unassigned (⊥)
	Infos  []NodeInfo  // sender's view: itself plus its 1-hop neighbours
}

// Kind implements Message.
func (*Dissem) Kind() Type { return TypeDissem }

// Search is the Phase 2 node-locator message ⟨SEARCH, i, aNode, dist⟩ of
// Figure 3, extended with a TTL that bounds the d=0 wander (the pseudocode
// forwards indefinitely until a node with an alternative parent is found,
// which can circulate on unlucky topologies).
type Search struct {
	From  topo.NodeID
	ANode topo.NodeID // addressed walker target
	Dist  int32       // remaining hops of the search walk
	TTL   int32       // remaining total forwards before the search dies
}

// Kind implements Message.
func (*Search) Kind() Type { return TypeSearch }

// Change is the Phase 3 slot-refinement message ⟨CHANGE, i, aNode, nSlot,
// dist⟩ of Figure 4.
type Change struct {
	From  topo.NodeID
	ANode topo.NodeID
	NSlot int32 // minimum slot seen in the sender's closed neighbourhood
	Dist  int32 // remaining hops of the change walk
}

// Kind implements Message.
func (*Change) Kind() Type { return TypeChange }

// Data is the data-phase broadcast: both protocols flood, so every node
// broadcasts one Data frame per TDMA period in its slot (§VI-A).
type Data struct {
	From   topo.NodeID
	Origin topo.NodeID // node whose detection this aggregate includes
	Seq    uint32      // source sequence number
	Count  uint16      // number of reports aggregated into this frame
}

// Kind implements Message.
func (*Data) Kind() Type { return TypeData }

// Interface compliance.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*Dissem)(nil)
	_ Message = (*Search)(nil)
	_ Message = (*Change)(nil)
	_ Message = (*Data)(nil)
)

// Marshal encodes m into a fresh frame.
func Marshal(m Message) []byte {
	return AppendFrame(make([]byte, 0, 64), m)
}

// AppendFrame encodes m onto buf and returns the extended slice. Hot
// senders keep one scratch buffer and call AppendFrame(buf[:0], m) so
// steady-state framing allocates nothing (the radio copies payloads, so
// the buffer is free for reuse as soon as Broadcast returns).
//
//slp:hotpath
func AppendFrame(buf []byte, m Message) []byte {
	buf = append(buf, byte(m.Kind()))
	return m.appendBody(buf)
}

// Unmarshal decodes a frame produced by Marshal into a fresh message. The
// entire input must be consumed.
func Unmarshal(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	var m Message
	switch Type(data[0]) {
	case TypeHello:
		m = &Hello{}
	case TypeDissem:
		m = &Dissem{}
	case TypeSearch:
		m = &Search{}
	case TypeChange:
		m = &Change{}
	case TypeData:
		m = &Data{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, data[0])
	}
	rest, err := m.decodeBody(data[1:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(rest))
	}
	return m, nil
}

// Decoder decodes frames into per-type scratch messages it owns, so a hot
// receive path (one decode per radio delivery) allocates nothing in steady
// state. The returned Message is valid only until the next Unmarshal call
// on the same Decoder; receivers that retain messages must use the
// package-level Unmarshal instead. The zero Decoder is ready to use.
type Decoder struct {
	hello  Hello
	dissem Dissem
	search Search
	change Change
	data   Data
}

// Unmarshal decodes a frame into the decoder's scratch message for its
// type. Same validation as the package-level Unmarshal.
func (d *Decoder) Unmarshal(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	var m Message
	switch Type(data[0]) {
	case TypeHello:
		m = &d.hello
	case TypeDissem:
		m = &d.dissem
	case TypeSearch:
		m = &d.search
	case TypeChange:
		m = &d.change
	case TypeData:
		m = &d.data
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, data[0])
	}
	rest, err := m.decodeBody(data[1:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(rest))
	}
	return m, nil
}

// Size returns the encoded size of m in bytes.
func Size(m Message) int { return len(Marshal(m)) }

// --- field encoding helpers ---

func appendInt(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendUint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func readInt(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, data[n:], nil
}

func readUint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, data[n:], nil
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func readBool(data []byte) (bool, []byte, error) {
	if len(data) == 0 {
		return false, nil, ErrTruncated
	}
	return data[0] != 0, data[1:], nil
}

// --- per-message codecs ---

func (h *Hello) appendBody(buf []byte) []byte {
	return appendInt(buf, int64(h.From))
}

func (h *Hello) decodeBody(data []byte) ([]byte, error) {
	v, rest, err := readInt(data)
	if err != nil {
		return nil, err
	}
	h.From = topo.NodeID(v)
	return rest, nil
}

func (d *Dissem) appendBody(buf []byte) []byte {
	buf = appendInt(buf, int64(d.From))
	buf = appendBool(buf, d.Normal)
	buf = appendInt(buf, int64(d.Parent))
	buf = appendUint(buf, uint64(len(d.Infos)))
	for _, info := range d.Infos {
		buf = appendInt(buf, int64(info.Node))
		buf = appendInt(buf, int64(info.Hop))
		buf = appendInt(buf, int64(info.Slot))
		buf = appendUint(buf, uint64(info.Version))
	}
	return buf
}

func (d *Dissem) decodeBody(data []byte) ([]byte, error) {
	v, data, err := readInt(data)
	if err != nil {
		return nil, err
	}
	d.From = topo.NodeID(v)
	d.Normal, data, err = readBool(data)
	if err != nil {
		return nil, err
	}
	v, data, err = readInt(data)
	if err != nil {
		return nil, err
	}
	d.Parent = topo.NodeID(v)
	count, data, err := readUint(data)
	if err != nil {
		return nil, err
	}
	const maxInfos = 1 << 16 // sanity bound against corrupt length prefixes
	if count > maxInfos {
		return nil, fmt.Errorf("%w: info count %d", ErrTruncated, count)
	}
	// Reuse the Infos backing array when decoding into a recycled message
	// (Decoder scratch); fresh messages allocate exactly as before.
	if uint64(cap(d.Infos)) < count {
		d.Infos = make([]NodeInfo, 0, count)
	} else {
		d.Infos = d.Infos[:0]
	}
	for i := uint64(0); i < count; i++ {
		var info NodeInfo
		v, data, err = readInt(data)
		if err != nil {
			return nil, err
		}
		info.Node = topo.NodeID(v)
		v, data, err = readInt(data)
		if err != nil {
			return nil, err
		}
		info.Hop = int32(v)
		v, data, err = readInt(data)
		if err != nil {
			return nil, err
		}
		info.Slot = int32(v)
		u, rest, err := readUint(data)
		if err != nil {
			return nil, err
		}
		info.Version = uint32(u)
		data = rest
		d.Infos = append(d.Infos, info)
	}
	return data, nil
}

func (s *Search) appendBody(buf []byte) []byte {
	buf = appendInt(buf, int64(s.From))
	buf = appendInt(buf, int64(s.ANode))
	buf = appendInt(buf, int64(s.Dist))
	buf = appendInt(buf, int64(s.TTL))
	return buf
}

func (s *Search) decodeBody(data []byte) ([]byte, error) {
	v, data, err := readInt(data)
	if err != nil {
		return nil, err
	}
	s.From = topo.NodeID(v)
	v, data, err = readInt(data)
	if err != nil {
		return nil, err
	}
	s.ANode = topo.NodeID(v)
	v, data, err = readInt(data)
	if err != nil {
		return nil, err
	}
	s.Dist = int32(v)
	v, data, err = readInt(data)
	if err != nil {
		return nil, err
	}
	s.TTL = int32(v)
	return data, nil
}

func (c *Change) appendBody(buf []byte) []byte {
	buf = appendInt(buf, int64(c.From))
	buf = appendInt(buf, int64(c.ANode))
	buf = appendInt(buf, int64(c.NSlot))
	buf = appendInt(buf, int64(c.Dist))
	return buf
}

func (c *Change) decodeBody(data []byte) ([]byte, error) {
	v, data, err := readInt(data)
	if err != nil {
		return nil, err
	}
	c.From = topo.NodeID(v)
	v, data, err = readInt(data)
	if err != nil {
		return nil, err
	}
	c.ANode = topo.NodeID(v)
	v, data, err = readInt(data)
	if err != nil {
		return nil, err
	}
	c.NSlot = int32(v)
	v, data, err = readInt(data)
	if err != nil {
		return nil, err
	}
	c.Dist = int32(v)
	return data, nil
}

func (d *Data) appendBody(buf []byte) []byte {
	buf = appendInt(buf, int64(d.From))
	buf = appendInt(buf, int64(d.Origin))
	buf = appendUint(buf, uint64(d.Seq))
	buf = appendUint(buf, uint64(d.Count))
	return buf
}

func (d *Data) decodeBody(data []byte) ([]byte, error) {
	v, data, err := readInt(data)
	if err != nil {
		return nil, err
	}
	d.From = topo.NodeID(v)
	v, data, err = readInt(data)
	if err != nil {
		return nil, err
	}
	d.Origin = topo.NodeID(v)
	u, data, err := readUint(data)
	if err != nil {
		return nil, err
	}
	d.Seq = uint32(u)
	u, data, err = readUint(data)
	if err != nil {
		return nil, err
	}
	d.Count = uint16(u)
	return data, nil
}
