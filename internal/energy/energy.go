// Package energy defines the per-node energy accounting model: a battery
// capacity and the tx/rx/idle costs the radio medium and the TDMA slot
// machinery charge against it. Like internal/fault it is a declarative
// value Spec with a canonical textual grammar shared by the campaign
// engine, the facade and the CLIs:
//
//	none                                    accounting off (the default)
//	battery:<capacity>                      capacity in mJ, calibrated default costs
//	battery:<capacity>:<tx>:<rx>:<idle>     explicit costs: tx/rx in mJ per payload
//	                                        byte, idle in mJ per TDMA data period
//
// Charging is fully deterministic — a pure function of the run's event
// trace — so the model mints no random stream and fault-free defaults
// stay byte-identical. A node whose cumulative spend reaches capacity
// dies on the spot through the fault-injection fail-stop path (radio
// silent, computation stopped, TDMA slot skipped); the sink and the
// source are treated as mains-powered and never die of depletion, so the
// privacy question the simulator exists to answer stays well-posed.
package energy

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Default charge costs, CC2420-flavoured: ≈52 mW transmit and ≈59 mW
// receive at 250 kbit/s come to about 2 µJ per payload byte either way;
// idle listening between scheduled receptions is folded into one small
// per-period charge.
const (
	// DefaultTxCost is the transmit cost in mJ per payload byte.
	DefaultTxCost = 0.002
	// DefaultRxCost is the receive cost in mJ per payload byte.
	DefaultRxCost = 0.002
	// DefaultIdleCost is the idle-listening cost in mJ per TDMA data
	// period.
	DefaultIdleCost = 0.01
)

// Spec configures per-node energy accounting. The zero Spec disables it.
type Spec struct {
	// Capacity is the per-node battery in mJ; accounting is enabled iff
	// Capacity > 0.
	Capacity float64
	// TxCost is charged per payload byte transmitted.
	TxCost float64
	// RxCost is charged per payload byte received (corrupted receptions
	// included: the radio pays for listening whether or not the frame
	// survives).
	RxCost float64
	// IdleCost is charged once per TDMA data period a node is up (idle
	// listening); event-driven data phases accrue no idle charge.
	IdleCost float64
}

// Empty reports whether the spec disables energy accounting.
func (s Spec) Empty() bool { return s == Spec{} }

// Validate checks the spec's parameters.
func (s Spec) Validate() error {
	if s.Empty() {
		return nil
	}
	if !finite(s.Capacity) || s.Capacity <= 0 {
		return fmt.Errorf("energy: battery capacity must be a finite value > 0 mJ, got %v", s.Capacity)
	}
	for _, c := range [...]struct {
		name string
		v    float64
	}{{"tx", s.TxCost}, {"rx", s.RxCost}, {"idle", s.IdleCost}} {
		if !finite(c.v) || c.v < 0 {
			return fmt.Errorf("energy: %s cost must be a finite value >= 0 mJ, got %v", c.name, c.v)
		}
	}
	return nil
}

// String renders the canonical grammar form: Parse∘String is the
// identity. Default costs render in the short battery:<capacity> form.
func (s Spec) String() string {
	if s.Empty() {
		return "none"
	}
	b := "battery:" + formatFloat(s.Capacity)
	if s.TxCost == DefaultTxCost && s.RxCost == DefaultRxCost && s.IdleCost == DefaultIdleCost {
		return b
	}
	return b + ":" + formatFloat(s.TxCost) + ":" + formatFloat(s.RxCost) + ":" + formatFloat(s.IdleCost)
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Parse reads the textual grammar. The empty string and "none" disable
// accounting. Parsing is strict: trailing garbage after a valid prefix
// ("battery:8x", "battery:8:1") is an error, and Parse∘String is the
// identity on every canonical spec.
func Parse(s string) (Spec, error) {
	t := strings.TrimSpace(s)
	if t == "" || t == "none" {
		return Spec{}, nil
	}
	name, args, hasArgs := strings.Cut(t, ":")
	if name != "battery" {
		return Spec{}, fmt.Errorf("energy: unknown energy model %q (want none or battery:<capacity>[:<tx>:<rx>:<idle>])", s)
	}
	if !hasArgs || args == "" {
		return Spec{}, fmt.Errorf("energy: battery needs a capacity (battery:<capacity> mJ)")
	}
	parts := strings.Split(args, ":")
	if len(parts) != 1 && len(parts) != 4 {
		return Spec{}, fmt.Errorf("energy: battery wants 1 or 4 arguments (battery:<capacity>[:<tx>:<rx>:<idle>]), got %q", s)
	}
	vals := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || !finite(v) {
			return Spec{}, fmt.Errorf("energy: bad value %q in %q (want a finite number)", p, s)
		}
		vals[i] = v
	}
	spec := Spec{Capacity: vals[0], TxCost: DefaultTxCost, RxCost: DefaultRxCost, IdleCost: DefaultIdleCost}
	if len(vals) == 4 {
		spec.TxCost, spec.RxCost, spec.IdleCost = vals[1], vals[2], vals[3]
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
