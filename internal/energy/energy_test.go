package energy

import (
	"strings"
	"testing"
)

// TestParseStringIdentity pins Parse∘String as the identity on canonical
// specs, matching the fault.Spec contract.
func TestParseStringIdentity(t *testing.T) {
	for _, spec := range []string{
		"none",
		"battery:8",
		"battery:50",
		"battery:12.5",
		"battery:8:0.001:0.003:0.02",
		"battery:8:0:0:0.5",
	} {
		s, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if got := s.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q; Parse∘String must be the identity", spec, got)
		}
	}
}

// TestParseDefaults: the short form fills calibrated costs, renders back
// short, and non-canonical spellings normalise.
func TestParseDefaults(t *testing.T) {
	s, err := Parse("battery:8")
	if err != nil {
		t.Fatal(err)
	}
	if s.TxCost != DefaultTxCost || s.RxCost != DefaultRxCost || s.IdleCost != DefaultIdleCost {
		t.Errorf("short form did not fill default costs: %+v", s)
	}
	// Explicitly spelling the defaults is valid and canonicalises short.
	long, err := Parse("battery:8:0.002:0.002:0.01")
	if err != nil {
		t.Fatal(err)
	}
	if long != s {
		t.Errorf("explicit defaults differ from short form: %+v vs %+v", long, s)
	}
	if got := long.String(); got != "battery:8" {
		t.Errorf("explicit defaults render %q, want the short canonical form", got)
	}
	for _, tc := range []struct{ in, want string }{
		{"", "none"},
		{"  none  ", "none"},
		{"battery:8.0", "battery:8"},
	} {
		s, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := s.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestParseRejectsGarbage: missing, trailing, out-of-range and non-finite
// inputs are errors.
func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"nonex",
		"battery",
		"battery:",
		"battery:0",
		"battery:-5",
		"battery:8x",
		"battery:8:1",
		"battery:8:1:2",
		"battery:8:1:2:3:4",
		"battery:8:-1:2:3",
		"battery:NaN",
		"battery:+Inf",
		"battery:8:NaN:0:0",
		"solar:8",
	} {
		if s, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted garbage as %q", bad, s)
		}
	}
}

// TestValidate: the zero Spec is valid-and-off; hand-built specs are
// checked.
func TestValidate(t *testing.T) {
	var zero Spec
	if !zero.Empty() || zero.Validate() != nil {
		t.Error("zero Spec must be empty and valid")
	}
	if zero.String() != "none" {
		t.Errorf("zero Spec renders %q, want none", zero.String())
	}
	bad := Spec{Capacity: -1}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("negative capacity not rejected: %v", err)
	}
	bad = Spec{Capacity: 5, RxCost: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative rx cost not rejected")
	}
}
