package protocol

import (
	"time"

	"slpdas/internal/topo"
)

// Tunables of the fake-source family, per the backbone-scheduling
// exemplar (SNIPPETS.md Snippet 1): a node d hops down the backbone stays
// an active fake source while fakeAlpha^d >= fakeCaptureThreshold — the
// estimated probability that luring the attacker to depth d still risks
// capture. With alpha 0.5 and threshold 1e-4 the backbone carries at most
// 13 active fake sources.
const (
	fakeAlpha            = 0.5
	fakeCaptureThreshold = 1e-4
)

// fakeSourceProtocol is fake-source routing: the real traffic is the
// unmodified TDMA convergecast, but a backbone of nodes leading *away*
// from the real source broadcasts decoy DATA at the start of every
// period — before any real slot fires — so a traffic-tracing attacker at
// the sink hears the backbone first and is drawn outward along it,
// period by period, away from the source.
type fakeSourceProtocol struct{}

func (fakeSourceProtocol) Name() string { return NameFakeSource }
func (fakeSourceProtocol) Summary() string {
	return "TDMA convergecast plus a decoy backbone away from the source broadcasting fake DATA each period"
}
func (fakeSourceProtocol) Label() string            { return "fake-source" }
func (fakeSourceProtocol) UsesSearchDistance() bool { return false }
func (fakeSourceProtocol) SearchPhase() bool        { return false }
func (fakeSourceProtocol) TDMAData() bool           { return true }
func (fakeSourceProtocol) New() Instance            { return &fakeSourceInstance{} }

type fakeSourceInstance struct {
	env *Env
	p   Params
	// backbone holds the active fake sources, sink-adjacent first. It is a
	// pure function of the topology, so it is computed once per network
	// and shared across runs without risking fresh-vs-reset drift.
	backbone []topo.NodeID
}

// Reset implements Instance. The family is deterministic given the
// topology — backbone construction and scheduling use no randomness — so
// reset only rebinds the run parameters.
func (fi *fakeSourceInstance) Reset(env *Env, p Params, _ uint64) {
	if fi.env != env {
		fi.env = env
		fi.backbone = buildBackbone(env)
	}
	fi.p = p
}

// buildBackbone walks greedily from the sink towards the node farthest
// from the real source (the anti-source), keeping the nodes whose depth d
// satisfies alpha^d >= the capture threshold. Ties break towards the
// lowest node ID via the sorted neighbour order, so the backbone is
// deterministic.
func buildBackbone(env *Env) []topo.NodeID {
	g, srcDist := env.Graph, env.SourceDist()
	maxDepth := 0
	for p := fakeAlpha; p >= fakeCaptureThreshold; p *= fakeAlpha {
		maxDepth++
	}
	var backbone []topo.NodeID
	cur := env.Sink
	for d := 1; d <= maxDepth; d++ {
		next := topo.None
		for _, m := range g.Neighbors(cur) {
			if m == env.Source {
				continue
			}
			if next == topo.None || srcDist[m] > srcDist[next] {
				next = m
			}
		}
		// Stop at a local maximum: stepping back towards the source would
		// lure the attacker the wrong way.
		if next == topo.None || srcDist[next] <= srcDist[cur] {
			break
		}
		cur = next
		backbone = append(backbone, cur)
	}
	return backbone
}

// StartData implements Instance: every period, each backbone node
// broadcasts one fake DATA frame within the first slot, deepest node
// first — the attacker, wherever it stands on the backbone, hears its
// outward neighbour before its inward one, and before any real traffic.
// The decoys carry their own node as wire origin, so the sink never
// mistakes them for source deliveries.
func (fi *fakeSourceInstance) StartData(h Host) error {
	n := len(fi.backbone)
	if n == 0 {
		return nil
	}
	for k := 0; k < fi.p.Periods; k++ {
		seq := uint32(k)
		start := fi.p.DataStart + time.Duration(k)*fi.p.Period
		for idx, f := range fi.backbone {
			f := f
			// Offsets strictly inside slot 0, ordered deepest-first.
			at := start + fi.p.SlotDuration*time.Duration(n-idx)/time.Duration(n+1)
			if err := h.Schedule(at, func() {
				h.SendData(f, f, seq, 1)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func init() { Register(fakeSourceProtocol{}) }
