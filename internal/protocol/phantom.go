package protocol

import (
	"math"
	"math/rand/v2"
	"time"

	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// phantomProtocol is sector phantom routing (PSSPR, see PAPERS.md): every
// source message first random-walks SearchDistance hops *away* from the
// sink inside a per-message directed sector, reaching a phantom source,
// and only then follows the shortest path to the sink. An eavesdropper
// back-tracing the traffic converges on the phantom sources — scattered
// around the real source at walk-length radius — rather than the source
// itself.
//
// The data phase is event-driven: the TDMA schedule is still built (all
// families share the control plane) but slot tasks stay unarmed; the only
// DATA traffic is the per-period route broadcasts, spaced one slot apart
// hop by hop.
type phantomProtocol struct{}

func (phantomProtocol) Name() string { return NamePhantom }
func (phantomProtocol) Summary() string {
	return "sector phantom routing (PSSPR): directed random walk to a phantom source, then shortest path"
}
func (phantomProtocol) Label() string            { return "phantom" }
func (phantomProtocol) UsesSearchDistance() bool { return true }
func (phantomProtocol) SearchPhase() bool        { return false }
func (phantomProtocol) TDMAData() bool           { return false }
func (phantomProtocol) New() Instance            { return &phantomInstance{} }

type phantomInstance struct {
	env *Env
	p   Params
	pcg rand.PCG
	rng *rand.Rand
}

// Reset implements Instance: rebind the world and reseed the walk stream.
func (pi *phantomInstance) Reset(env *Env, p Params, seed uint64) {
	pi.env = env
	pi.p = p
	pi.pcg.Seed(xrand.Seeds(seed, 0x7068616e746f6d))
	if pi.rng == nil {
		pi.rng = xrand.Wrap(&pi.pcg)
	}
}

// StartData implements Instance: one source message per TDMA period.
func (pi *phantomInstance) StartData(h Host) error {
	for k := 0; k < pi.p.Periods; k++ {
		seq := uint32(k)
		at := pi.p.DataStart + time.Duration(k)*pi.p.Period
		if err := h.Schedule(at, func() {
			route := pi.buildRoute()
			_ = scheduleRoute(h, route, pi.env.Source, seq, pi.p.SlotDuration)
		}); err != nil {
			return err
		}
	}
	return nil
}

// buildRoute computes one message's transmitter chain: the directed random
// walk, then the descent to the sink. The sink itself never appears — it
// receives the final hop's broadcast.
func (pi *phantomInstance) buildRoute() []topo.NodeID {
	g, dist := pi.env.Graph, pi.env.SinkDist
	// The PSSPR sector: a per-message random direction; walk steps prefer
	// neighbours whose displacement projects positively onto it.
	theta := pi.rng.Float64() * 2 * math.Pi
	dx, dy := math.Cos(theta), math.Sin(theta)

	cur, prev := pi.env.Source, topo.None
	route := make([]topo.NodeID, 0, pi.p.SearchDistance+dist[pi.env.Source])
	route = append(route, cur)
	for i := 0; i < pi.p.SearchDistance; i++ {
		next := pi.walkStep(cur, prev, dx, dy)
		if next == topo.None {
			break
		}
		prev, cur = cur, next
		route = append(route, cur)
	}
	return descend(route, g, dist, cur)
}

// walkStep picks the next hop of the directed walk: among neighbours that
// do not step back towards the sink (hop distance non-decreasing) and are
// not the previous hop, prefer those inside the message's sector, chosen
// uniformly; fall back to any non-approaching neighbour, then stall.
func (pi *phantomInstance) walkStep(cur, prev topo.NodeID, dx, dy float64) topo.NodeID {
	g, dist := pi.env.Graph, pi.env.SinkDist
	pos := g.Position(cur)
	var away, sector []topo.NodeID
	for _, m := range g.Neighbors(cur) {
		if m == prev || dist[m] < dist[cur] {
			continue
		}
		away = append(away, m)
		q := g.Position(m)
		if (q.X-pos.X)*dx+(q.Y-pos.Y)*dy > 0 {
			sector = append(sector, m)
		}
	}
	cands := sector
	if len(cands) == 0 {
		cands = away
	}
	if len(cands) == 0 {
		return topo.None
	}
	return cands[pi.rng.IntN(len(cands))]
}

func init() { Register(phantomProtocol{}) }
