package protocol

import (
	"sort"
	"strings"
	"testing"
)

func TestByNameKnownFamilies(t *testing.T) {
	for _, name := range []string{NameProtectionless, NameSLPDAS, NamePhantom, NameFakeSource, NameTier} {
		fam, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if fam.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, fam.Name())
		}
		if fam.Summary() == "" || fam.Label() == "" {
			t.Errorf("%q: empty summary or label", name)
		}
		if fam.New() == nil {
			t.Errorf("%q: New returned nil", name)
		}
	}
}

func TestByNameResolvesAlias(t *testing.T) {
	fam, err := ByName(AliasSLP)
	if err != nil {
		t.Fatalf("ByName(%q): %v", AliasSLP, err)
	}
	if fam.Name() != NameSLPDAS {
		t.Errorf("alias %q resolved to %q, want %q", AliasSLP, fam.Name(), NameSLPDAS)
	}
}

func TestByNameUnknown(t *testing.T) {
	for _, name := range []string{"", "bogus", "SLP-DAS"} {
		fam, err := ByName(name)
		if err == nil {
			t.Fatalf("ByName(%q) = %v, want error", name, fam.Name())
		}
		// The error must teach: it lists the registered names.
		if !strings.Contains(err.Error(), NamePhantom) || !strings.Contains(err.Error(), NameProtectionless) {
			t.Errorf("ByName(%q) error %q does not list known names", name, err)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register of a duplicate name did not panic")
		}
	}()
	Register(dasProtocol{slp: false})
}

func TestRegisterAliasCollisionPanics(t *testing.T) {
	cases := map[string]func(){
		"alias over protocol": func() { RegisterAlias(NamePhantom, NameSLPDAS) },
		"duplicate alias":     func() { RegisterAlias(AliasSLP, NameProtectionless) },
		"dangling canonical":  func() { RegisterAlias("fresh-alias", "no-such-protocol") },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProtocolsDeterministicOrder(t *testing.T) {
	first := Protocols()
	if !sort.SliceIsSorted(first, func(i, j int) bool { return first[i].Name < first[j].Name }) {
		t.Errorf("Protocols() not sorted: %v", first)
	}
	for i := 0; i < 3; i++ {
		again := Protocols()
		if len(again) != len(first) {
			t.Fatalf("Protocols() length changed: %d vs %d", len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("Protocols() order changed at %d: %v vs %v", j, again[j], first[j])
			}
		}
	}
	names := Names()
	if len(names) != len(first) {
		t.Fatalf("Names() length %d, want %d", len(names), len(first))
	}
	for i, in := range first {
		if names[i] != in.Name {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], in.Name)
		}
	}
	// Aliases resolve but are not listed.
	for _, n := range names {
		if n == AliasSLP {
			t.Errorf("alias %q listed in Names()", AliasSLP)
		}
	}
}
