package protocol

import (
	"math/rand/v2"
	"time"

	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// tierDistCacheCap bounds the per-instance gradient cache: a gradient is a
// full BFS slice, so an unbounded cache on a large topology would hold
// O(n^2) ints. The cap only affects recomputation cost, never routing
// decisions, so it cannot drift results.
const tierDistCacheCap = 128

// tierProtocol is tier-based intermediary routing (GAPs-style): the
// topology is banded into tiers by sink hop distance, and every source
// message detours through a uniformly random node of a uniformly random
// tier before descending to the sink. Back-traced traffic therefore fans
// out over the whole network instead of converging on the source.
type tierProtocol struct{}

func (tierProtocol) Name() string { return NameTier }
func (tierProtocol) Summary() string {
	return "tier-based intermediary routing: each message detours via a random node of a random sink-distance tier"
}
func (tierProtocol) Label() string            { return "tier" }
func (tierProtocol) UsesSearchDistance() bool { return false }
func (tierProtocol) SearchPhase() bool        { return false }
func (tierProtocol) TDMAData() bool           { return false }
func (tierProtocol) New() Instance            { return &tierInstance{} }

type tierInstance struct {
	env *Env
	p   Params
	pcg rand.PCG
	rng *rand.Rand
	// tiers groups node IDs by sink hop distance (tiers[d] is ring d); a
	// pure function of the topology, built once per network.
	tiers [][]topo.NodeID
	// distCache memoizes BFS gradients rooted at recently used
	// intermediaries for the source→intermediary leg.
	distCache map[topo.NodeID][]int
}

// Reset implements Instance: rebind the world, reseed the tier stream, and
// rebuild the tier index only when the topology changed.
func (ti *tierInstance) Reset(env *Env, p Params, seed uint64) {
	if ti.env != env {
		ti.env = env
		ti.tiers = buildTiers(env)
		ti.distCache = make(map[topo.NodeID][]int)
	}
	ti.p = p
	ti.pcg.Seed(xrand.Seeds(seed, 0x74696572))
	if ti.rng == nil {
		ti.rng = xrand.Wrap(&ti.pcg)
	}
}

// buildTiers bands the nodes into rings by sink hop distance. Ring 0 (the
// sink itself) is kept empty: detouring through the sink is no detour.
func buildTiers(env *Env) [][]topo.NodeID {
	max := 0
	for _, d := range env.SinkDist {
		if d > max {
			max = d
		}
	}
	tiers := make([][]topo.NodeID, max+1)
	for id, d := range env.SinkDist {
		if d == 0 {
			continue
		}
		tiers[d] = append(tiers[d], topo.NodeID(id))
	}
	return tiers
}

// StartData implements Instance: one source message per TDMA period, each
// detouring through a freshly drawn intermediary.
func (ti *tierInstance) StartData(h Host) error {
	for k := 0; k < ti.p.Periods; k++ {
		seq := uint32(k)
		at := ti.p.DataStart + time.Duration(k)*ti.p.Period
		if err := h.Schedule(at, func() {
			route := ti.buildRoute()
			_ = scheduleRoute(h, route, ti.env.Source, seq, ti.p.SlotDuration)
		}); err != nil {
			return err
		}
	}
	return nil
}

// buildRoute draws the message's intermediary and assembles the two-leg
// transmitter chain: source→intermediary along the intermediary's own BFS
// gradient, then intermediary→sink along the sink gradient. The sink never
// appears in the route — it receives the final hop's broadcast.
func (ti *tierInstance) buildRoute() []topo.NodeID {
	g, sinkDist := ti.env.Graph, ti.env.SinkDist
	mid := ti.pickIntermediary()
	route := make([]topo.NodeID, 0, 16)
	route = append(route, ti.env.Source)
	if mid != topo.None && mid != ti.env.Source {
		// Leg 1: descend the gradient rooted at the intermediary.
		route = descend(route, g, ti.gradient(mid), ti.env.Source)
		route = append(route, mid)
	}
	cur := route[len(route)-1]
	if cur == ti.env.Sink {
		return route[:len(route)-1]
	}
	return descend(route, g, sinkDist, cur)
}

// pickIntermediary draws a uniformly random tier, then a uniformly random
// node of it, rejecting the source and empty rings (a handful of retries,
// then fall back to direct routing).
func (ti *tierInstance) pickIntermediary() topo.NodeID {
	if len(ti.tiers) <= 1 {
		return topo.None
	}
	for try := 0; try < 8; try++ {
		ring := ti.tiers[1+ti.rng.IntN(len(ti.tiers)-1)]
		if len(ring) == 0 {
			continue
		}
		mid := ring[ti.rng.IntN(len(ring))]
		if mid != ti.env.Source {
			return mid
		}
	}
	return topo.None
}

// gradient returns the BFS hop-distance slice rooted at the given node,
// memoized across messages and runs (topology-pure).
func (ti *tierInstance) gradient(root topo.NodeID) []int {
	if d, ok := ti.distCache[root]; ok {
		return d
	}
	if len(ti.distCache) >= tierDistCacheCap {
		clear(ti.distCache)
	}
	d := ti.env.Graph.BFSFrom(root)
	ti.distCache[root] = d
	return d
}

func init() { Register(tierProtocol{}) }
