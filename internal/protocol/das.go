package protocol

// dasProtocol re-expresses the paper's pair through the registry: the
// protectionless GCN-DAS of Figure 2 and the 3-phase SLP-aware variant of
// Figures 2-4. Both are pure-TDMA families — the data phase is the slot
// schedule the setup built — so their Instance holds no state and their
// registry entries reduce to the two booleans the network consults
// (SearchPhase and UsesSearchDistance). Their labels are pinned to the
// pre-registry Result strings, which is what keeps fig5a_compat.golden and
// sweep_compat.golden byte-identical across the refactor.
type dasProtocol struct {
	slp bool
}

func (d dasProtocol) Name() string {
	if d.slp {
		return NameSLPDAS
	}
	return NameProtectionless
}

func (d dasProtocol) Summary() string {
	if d.slp {
		return "the paper's 3-phase SLP-aware DAS: search, slot refinement, decoy-first TDMA (Figures 2-4)"
	}
	return "baseline GCN data aggregation scheduling with no SLP protection (Figure 2)"
}

func (d dasProtocol) Label() string {
	if d.slp {
		return "slp-das"
	}
	return "protectionless-das"
}

func (d dasProtocol) UsesSearchDistance() bool { return d.slp }
func (d dasProtocol) SearchPhase() bool        { return d.slp }
func (d dasProtocol) TDMAData() bool           { return true }
func (d dasProtocol) New() Instance            { return idleInstance{} }

// idleInstance is the no-op Instance of pure-TDMA families: all their
// behaviour lives in the slot schedule, so there is nothing to rewind and
// nothing to start.
type idleInstance struct{}

func (idleInstance) Reset(*Env, Params, uint64) {}
func (idleInstance) StartData(Host) error       { return nil }

func init() {
	Register(dasProtocol{slp: false})
	Register(dasProtocol{slp: true})
	RegisterAlias(AliasSLP, NameSLPDAS)
}
