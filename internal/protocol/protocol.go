// Package protocol is the named-factory registry of routing families the
// simulator can evaluate — the protocol-side mirror of the attacker
// strategy registry. The paper's pair (protectionless GCN-DAS and the
// 3-phase SLP-aware variant) are registry entries like any other; rival
// SLP families from the wider literature (sector phantom routing,
// fake-source backbones, tier-based intermediary routing) register beside
// them and automatically appear on every axis above: core.Config,
// experiment labels, the campaign protocol axis, the slpdas facade and the
// CLIs.
//
// A Protocol describes one family statically: its registry name, result
// label, whether it runs the SLP search phase during setup, whether the
// data phase is the TDMA convergecast or family-driven event traffic, and
// whether SearchDistance parameterises it. New mints one Instance per
// core.Network; the Instance is the per-run state holder, rewound by Reset
// on the arena path exactly like nodes and attackers — Network.Reset
// delegates the rewind, so the fresh-vs-reset no-drift invariant extends
// to protocol state by construction.
//
// All families share the same control plane: neighbour discovery,
// dissemination and DAS slot assignment always run, so every family is
// compared on identical schedule-quality and control-overhead axes. They
// differ only in Phase 2 (SearchPhase) and in how DATA traffic flows
// (TDMAData vs StartData).
package protocol

import (
	"fmt"
	"sort"
	"time"

	"slpdas/internal/topo"
)

// Canonical registry names, plus the campaign engine's historical alias.
const (
	// NameProtectionless is the baseline DAS of Figure 2.
	NameProtectionless = "protectionless"
	// NameSLPDAS is the paper's 3-phase SLP-aware DAS of Figures 2-4.
	NameSLPDAS = "slp-das"
	// NamePhantom is sector phantom routing (PSSPR): a directed random
	// walk to a phantom source, then shortest-path routing to the sink.
	NamePhantom = "phantom"
	// NameFakeSource is fake-source scheduling: a backbone away from the
	// real source whose nodes broadcast decoy DATA early in each period.
	NameFakeSource = "fake-source"
	// NameTier is tier-based intermediary routing (GAPs-style): each
	// message detours through a random node of a random sink-distance ring.
	NameTier = "tier"

	// AliasSLP is the campaign engine's historical name for the SLP-aware
	// protocol; it resolves to NameSLPDAS and stays valid on every axis so
	// pre-registry campaign files remain resumable.
	AliasSLP = "slp"

	// Default is the registry name selected when nothing names a protocol.
	Default = NameProtectionless
)

// Host is the slice of core.Network an Instance drives event traffic
// through: the simulator clock and one frame-accounted DATA broadcast.
// SendData routes through the network's outgoing wire scratch, so family
// traffic is counted in message stats and audible to attackers exactly
// like node traffic.
type Host interface {
	// Now returns the simulation clock.
	Now() time.Duration
	// Schedule runs fn at the absolute simulation time at.
	Schedule(at time.Duration, fn func()) error
	// SendData broadcasts one DATA frame from the given node. Origin is
	// the wire-level provenance: the sink records a source delivery when
	// it hears origin == source, so decoy traffic must carry a different
	// origin.
	SendData(from, origin topo.NodeID, seq uint32, count uint16)
}

// Env is the immutable world an Instance routes over: the topology, the
// endpoints, and the sink's hop gradient (computed once at network wiring).
// SourceDist is derived lazily and cached — it is a pure function of the
// topology, so sharing it across runs cannot drift results.
type Env struct {
	Graph  *topo.Graph
	Sink   topo.NodeID
	Source topo.NodeID
	// SinkDist is the hop distance from the sink, by node.
	SinkDist []int

	srcDist []int
}

// SourceDist returns the hop distance from the source, by node, computing
// it on first use.
func (e *Env) SourceDist() []int {
	if e.srcDist == nil {
		e.srcDist = e.Graph.BFSFrom(e.Source)
	}
	return e.srcDist
}

// Params carries the per-run coordinates an Instance needs to schedule its
// data phase.
type Params struct {
	// SearchDistance is the SD knob, reused by families that take a
	// distance parameter (the phantom walk length).
	SearchDistance int
	// DataStart is when the data phase begins.
	DataStart time.Duration
	// SlotDuration is one TDMA slot; event-driven families space their
	// hops by it so per-hop airtime matches the convergecast.
	SlotDuration time.Duration
	// Period is the TDMA superframe duration; one source message per
	// period, as in the paper's evaluation.
	Period time.Duration
	// Periods is how many data periods the run drives (safety period plus
	// margin) — the number of source messages an event-driven family emits.
	Periods int
}

// Instance is one family's per-network state: Reset rewinds it for a new
// (config, seed) on the arena path, StartData schedules the family's data
// phase traffic at the start of the data phase (a no-op for pure-TDMA
// families).
type Instance interface {
	Reset(env *Env, p Params, seed uint64)
	StartData(h Host) error
}

// Protocol describes one registered routing family. The boolean shape
// methods are static family properties consulted on the hot path, so
// implementations must be allocation-free.
type Protocol interface {
	// Name is the registry name (also the campaign axis value).
	Name() string
	// Summary is a one-line description for listings.
	Summary() string
	// Label names the family in Results and experiment aggregates
	// (e.g. "protectionless-das"); it may differ from Name for history.
	Label() string
	// UsesSearchDistance reports whether SearchDistance parameterises the
	// family (and so belongs in its experiment label).
	UsesSearchDistance() bool
	// SearchPhase reports whether setup schedules the sink's Phase 2
	// search (NSearch/SRefine of Figures 3-4).
	SearchPhase() bool
	// TDMAData reports whether the data phase is the TDMA convergecast
	// (every node broadcasts in its slot). Families returning false drive
	// all DATA traffic themselves via StartData.
	TDMAData() bool
	// New mints the per-network Instance.
	New() Instance
}

// Info describes one registered family for listings and documentation.
type Info struct {
	Name    string
	Summary string
}

var (
	registry = map[string]Protocol{}
	aliases  = map[string]string{}
)

// Register adds a family to the registry. It panics on a duplicate name:
// registration happens at init time and a collision is a programming
// error.
func Register(p Protocol) {
	name := p.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("protocol: duplicate protocol %q", name))
	}
	if _, dup := aliases[name]; dup {
		panic(fmt.Sprintf("protocol: protocol %q collides with a registered alias", name))
	}
	registry[name] = p
}

// RegisterAlias makes alias resolve to the registered family named
// canonical. It panics if the alias collides with an existing name or the
// canonical family does not exist.
func RegisterAlias(alias, canonical string) {
	if _, dup := registry[alias]; dup {
		panic(fmt.Sprintf("protocol: alias %q collides with a registered protocol", alias))
	}
	if _, dup := aliases[alias]; dup {
		panic(fmt.Sprintf("protocol: duplicate alias %q", alias))
	}
	if _, ok := registry[canonical]; !ok {
		panic(fmt.Sprintf("protocol: alias %q targets unregistered protocol %q", alias, canonical))
	}
	aliases[alias] = canonical
}

// ByName resolves a registry name (or alias) to its family.
func ByName(name string) (Protocol, error) {
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q (have %v)", name, Names())
	}
	return p, nil
}

// Protocols lists every registered family, sorted by name.
func Protocols() []Info {
	out := make([]Info, 0, len(registry))
	for _, p := range registry {
		out = append(out, Info{Name: p.Name(), Summary: p.Summary()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names lists the canonical registered names, sorted. Aliases are not
// listed; they resolve through ByName.
func Names() []string {
	infos := Protocols()
	out := make([]string, len(infos))
	for i, in := range infos {
		out[i] = in.Name
	}
	return out
}

// descend appends to route the shortest-path chain from cur towards the
// node dist was BFS'd from, excluding both cur and the destination (the
// destination receives; it does not forward). The next hop is the first
// strictly-closer neighbour in sorted order, so the chain is deterministic.
func descend(route []topo.NodeID, g *topo.Graph, dist []int, cur topo.NodeID) []topo.NodeID {
	for dist[cur] > 1 {
		next := topo.None
		for _, m := range g.Neighbors(cur) {
			if dist[m] == dist[cur]-1 {
				next = m
				break
			}
		}
		if next == topo.None {
			// Unreachable on a connected graph; bail rather than loop.
			return route
		}
		cur = next
		route = append(route, cur)
	}
	return route
}

// scheduleRoute broadcasts one message along route, one transmitter per
// slot starting now: route[j] transmits at now + j·slot, carrying the
// given wire origin. The route slice is captured by the scheduled
// closures, so callers must hand over a fresh slice per message.
func scheduleRoute(h Host, route []topo.NodeID, origin topo.NodeID, seq uint32, slot time.Duration) error {
	now := h.Now()
	for j, from := range route {
		from := from
		hop := uint16(j + 1)
		if err := h.Schedule(now+time.Duration(j)*slot, func() {
			h.SendData(from, origin, seq, hop)
		}); err != nil {
			return err
		}
	}
	return nil
}
