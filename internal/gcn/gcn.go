// Package gcn is a small runtime for programs written in the guarded
// command notation of Section III-A of the paper (after Dijkstra, 1974):
// actions of the form ⟨name⟩ :: ⟨guard⟩ → ⟨command⟩, a FIFO channel
// variable per process with rcv(sender, msg) guards, and timeout(timer)
// guards driven by the discrete-event simulator. The DAS, NSearch and
// SRefine protocols of Figures 2–4 are expressed as gcn programs.
//
// Execution semantics: whenever a process is stimulated (message delivery
// or timer expiry) it runs to quiescence — repeatedly executing the first
// enabled action in declaration priority order until none is enabled.
// Receive actions are enabled when the message at the head of the channel
// matches their pattern; a head message matched by no receive action is
// dropped (and counted). A per-stimulus step budget guards against
// non-terminating programs.
package gcn

import (
	"errors"
	"fmt"
	"time"

	"slpdas/internal/des"
	"slpdas/internal/topo"
)

// ErrStepBudget indicates a process failed to quiesce within its step
// budget — a protocol bug (e.g. two actions enabling each other forever).
var ErrStepBudget = errors.New("gcn: step budget exhausted; process did not quiesce")

// Message is an opaque protocol payload.
type Message any

// envelope is a queued channel entry.
type envelope struct {
	sender topo.NodeID
	msg    Message
}

// Timer is a named timer owned by a process. Set schedules expiry through
// the simulator; when it fires, the owning process is stimulated and the
// associated timeout action's guard becomes true.
type Timer struct {
	name    string
	proc    *Process
	event   des.Event
	expired bool
	// fire is the expiry body, built once at NewTimer so re-arming a timer
	// in the dissemination hot loop never allocates a fresh closure.
	fire func()
}

// Set (re-)arms the timer to fire after d, cancelling any pending expiry.
// This is the set(timer, value) command of the paper.
func (t *Timer) Set(d time.Duration) {
	t.event.Cancel()
	t.expired = false
	t.event = t.proc.engine.sim.ScheduleAfter(d, t.fire)
}

// Stop cancels the timer without expiring it.
func (t *Timer) Stop() {
	t.event.Cancel()
	t.event = des.Event{}
	t.expired = false
}

// Expired reports whether the timer has fired and not yet been consumed.
func (t *Timer) Expired() bool { return t.expired }

// Pending reports whether the timer is armed and counting down.
func (t *Timer) Pending() bool { return t.event.Pending() }

type actionKind int

const (
	kindGuard actionKind = iota + 1
	kindReceive
	kindTimeout
)

type action struct {
	name  string
	kind  actionKind
	guard func() bool
	// command for guard/timeout actions.
	command func()
	// match/handle for receive actions.
	match  func(Message) bool
	handle func(sender topo.NodeID, msg Message)
	timer  *Timer
}

// Process is a GCN process: an ordered action list, a channel variable and
// a set of timers. Create via Engine.NewProcess.
type Process struct {
	id     topo.NodeID // lint:immutable: identity, fixed at construction
	engine *Engine     // lint:immutable: back-pointer wiring, fixed at construction
	// inbox is the channel variable as a head-indexed queue: consumed
	// entries advance head instead of re-slicing, and once the queue
	// drains both reset to zero so the backing array is reused — Deliver
	// is allocation-free in steady state.
	inbox     []envelope
	inboxHead int
	actions   []*action // lint:immutable: the process program, fixed at construction
	// Dropped counts head-of-channel messages no receive action matched.
	dropped uint64
	failed  error
	// dead marks a crashed process (fault injection): it executes no
	// actions and accepts no messages until Revive.
	dead bool
}

// ID returns the process identifier.
func (p *Process) ID() topo.NodeID { return p.id }

// Dropped returns the number of unmatched messages discarded.
func (p *Process) Dropped() uint64 { return p.dropped }

// Err returns the sticky error if the process overran its step budget.
func (p *Process) Err() error { return p.failed }

// QueueLen returns the number of undelivered messages in the channel.
func (p *Process) QueueLen() int { return len(p.inbox) - p.inboxHead }

// Fail crashes the process: its channel variable is emptied, every timer
// is disarmed, and until Revive it executes no actions and silently drops
// anything Delivered to it. Volatile state dies with the node; the action
// list — the program in ROM — survives for a later Revive.
func (p *Process) Fail() {
	p.dead = true
	for i := range p.inbox {
		p.inbox[i] = envelope{}
	}
	p.inbox = p.inbox[:0]
	p.inboxHead = 0
	for _, a := range p.actions {
		if a.kind == kindTimeout {
			a.timer.Stop()
		}
	}
}

// Revive clears the dead flag set by Fail. The caller is responsible for
// re-initialising protocol state and re-stimulating the process; the
// runtime restarts it with an empty channel and no armed timers, like a
// node rebooting from ROM.
func (p *Process) Revive() { p.dead = false }

// Dead reports whether the process is crashed (Fail without Revive).
func (p *Process) Dead() bool { return p.dead }

// Reset rewinds the process for a fresh run: the channel variable is
// emptied, drop/failure accounting cleared and every timer disarmed. The
// action list — the program — is preserved, so one wired process serves
// many runs. The owning simulator must be Reset alongside (stale timer
// events are discarded there; handles here are zeroed to match).
func (p *Process) Reset() {
	for i := range p.inbox {
		p.inbox[i] = envelope{}
	}
	p.inbox = p.inbox[:0]
	p.inboxHead = 0
	p.dropped = 0
	p.failed = nil
	p.dead = false
	for _, a := range p.actions {
		if a.kind == kindTimeout {
			a.timer.event = des.Event{}
			a.timer.expired = false
		}
	}
}

// AddGuard appends a plain guarded action: when guard() is true and no
// earlier action is enabled, command() runs.
func (p *Process) AddGuard(name string, guard func() bool, command func()) {
	p.actions = append(p.actions, &action{name: name, kind: kindGuard, guard: guard, command: command})
}

// AddReceive appends a receive action rcv⟨pattern⟩ → handle. match
// inspects the head-of-channel message; nil match matches everything.
func (p *Process) AddReceive(name string, match func(Message) bool, handle func(sender topo.NodeID, msg Message)) {
	p.actions = append(p.actions, &action{name: name, kind: kindReceive, match: match, handle: handle})
}

// NewTimer creates a timer and appends its timeout(timer) → command action.
// The expired flag is consumed (cleared) when the action runs; the command
// may re-arm the timer with Set.
func (p *Process) NewTimer(name string, command func()) *Timer {
	t := &Timer{name: name, proc: p}
	t.fire = func() {
		// Clear the handle before stimulating: a fired event is no longer
		// armed, and the zero handle keeps Pending() honest.
		t.event = des.Event{}
		t.expired = true
		t.proc.engine.stimulate(t.proc)
	}
	p.actions = append(p.actions, &action{name: name, kind: kindTimeout, timer: t, command: command})
	return t
}

// Engine hosts processes on a simulator.
type Engine struct {
	sim        *des.Simulator // lint:immutable: simulator wiring, fixed at construction
	stepBudget int            // lint:immutable: configured budget, fixed at construction
	// OnAction, when non-nil, is invoked before every executed action —
	// a tracing hook used by tests and the debug tooling.
	// lint:immutable: observer hook owned by the caller, not run state
	OnAction func(p *Process, actionName string)
	procs    []*Process // lint:immutable: slice header fixed; processes reset individually
}

// NewEngine creates an engine. stepBudget bounds actions executed per
// stimulus per process (0 means the default of 10000).
func NewEngine(sim *des.Simulator, stepBudget int) *Engine {
	if stepBudget <= 0 {
		stepBudget = 10000
	}
	return &Engine{sim: sim, stepBudget: stepBudget}
}

// Sim returns the engine's simulator.
func (e *Engine) Sim() *des.Simulator { return e.sim }

// NewProcess creates an empty process with the given identifier.
func (e *Engine) NewProcess(id topo.NodeID) *Process {
	p := &Process{id: id, engine: e}
	e.procs = append(e.procs, p)
	return p
}

// Deliver enqueues msg from sender on p's channel variable and runs p to
// quiescence. This is how the radio hands received frames to a protocol.
//
//slp:hotpath
func (e *Engine) Deliver(p *Process, sender topo.NodeID, msg Message) {
	if p.dead {
		return
	}
	if p.inboxHead == len(p.inbox) {
		// Queue is drained: rewind so the backing array is reused.
		p.inbox = p.inbox[:0]
		p.inboxHead = 0
	}
	p.inbox = append(p.inbox, envelope{sender: sender, msg: msg})
	e.stimulate(p)
}

// Kickstart runs p to quiescence with no new stimulus — used once at boot
// so that initially-enabled actions (e.g. the sink's init) execute.
func (e *Engine) Kickstart(p *Process) { e.stimulate(p) }

// Reset rewinds every hosted process (see Process.Reset) for a fresh run
// on a Reset simulator. Processes, their action lists and the OnAction
// hook survive; only per-run channel/timer/failure state is cleared.
func (e *Engine) Reset() {
	for _, p := range e.procs {
		p.Reset()
	}
}

// Err returns the first process error encountered, if any.
func (e *Engine) Err() error {
	for _, p := range e.procs {
		if p.failed != nil {
			return p.failed
		}
	}
	return nil
}

// stimulate runs the process action loop until quiescence.
//
//slp:hotpath
func (e *Engine) stimulate(p *Process) {
	if p.failed != nil || p.dead {
		return
	}
	for steps := 0; ; steps++ {
		if steps >= e.stepBudget {
			//lint:ignore hotpath cold failure path, the process is dead after this
			p.failed = fmt.Errorf("%w (process %d, budget %d)", ErrStepBudget, p.id, e.stepBudget)
			return
		}
		if !p.stepOnce(e) {
			return
		}
	}
}

// stepOnce executes at most one enabled action; reports whether one ran.
// Consuming the channel head — whether a receive action handles it or no
// action matches and it is dropped — counts as one step, so a flood of
// unmatched messages is charged against the step budget instead of being
// discarded for free inside a single step.
//
//slp:hotpath
func (p *Process) stepOnce(e *Engine) bool {
	// Channel head first: receive actions have rcv guards that depend on
	// the head message, evaluated in declaration order.
	if p.inboxHead < len(p.inbox) {
		head := p.inbox[p.inboxHead]
		p.inbox[p.inboxHead] = envelope{} // release the message reference
		p.inboxHead++
		for _, a := range p.actions {
			if a.kind != kindReceive {
				continue
			}
			if a.match == nil || a.match(head.msg) {
				if e.OnAction != nil {
					e.OnAction(p, a.name)
				}
				a.handle(head.sender, head.msg)
				return true
			}
		}
		// No receive action matches: the message is consumed and lost,
		// mirroring an unhandled frame in a real stack.
		p.dropped++
		return true
	}
	// Then timeout and plain guard actions in declaration order.
	for _, a := range p.actions {
		switch a.kind {
		case kindTimeout:
			if a.timer.expired {
				a.timer.expired = false // consume
				if e.OnAction != nil {
					e.OnAction(p, a.name)
				}
				a.command()
				return true
			}
		case kindGuard:
			if a.guard() {
				if e.OnAction != nil {
					e.OnAction(p, a.name)
				}
				a.command()
				return true
			}
		case kindReceive:
			// handled above
		}
	}
	return false
}
