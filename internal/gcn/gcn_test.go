package gcn

import (
	"errors"
	"testing"
	"time"

	"slpdas/internal/des"
	"slpdas/internal/topo"
)

type ping struct{ n int }
type pong struct{ n int }

func TestReceiveActionMatchesByPattern(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	var pings, pongs []int
	p.AddReceive("rcvPing", func(m Message) bool { _, ok := m.(ping); return ok },
		func(_ topo.NodeID, m Message) { pings = append(pings, m.(ping).n) })
	p.AddReceive("rcvPong", func(m Message) bool { _, ok := m.(pong); return ok },
		func(_ topo.NodeID, m Message) { pongs = append(pongs, m.(pong).n) })

	e.Deliver(p, 2, ping{1})
	e.Deliver(p, 2, pong{2})
	e.Deliver(p, 2, ping{3})
	if len(pings) != 2 || pings[0] != 1 || pings[1] != 3 {
		t.Errorf("pings = %v", pings)
	}
	if len(pongs) != 1 || pongs[0] != 2 {
		t.Errorf("pongs = %v", pongs)
	}
}

func TestUnmatchedMessageDropped(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	p.AddReceive("rcvPing", func(m Message) bool { _, ok := m.(ping); return ok },
		func(topo.NodeID, Message) {})
	e.Deliver(p, 2, pong{9})
	if p.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", p.Dropped())
	}
	if p.QueueLen() != 0 {
		t.Errorf("QueueLen = %d, want 0", p.QueueLen())
	}
}

func TestUnmatchedFloodChargesStepBudget(t *testing.T) {
	// Regression: the drop loop in stepOnce used to consume every unmatched
	// inbox entry inside a single budgeted step, so a flood of garbage
	// frames bypassed the step budget entirely. Dropping now costs one step
	// per message: a flood larger than the budget must trip ErrStepBudget.
	sim := des.New()
	e := NewEngine(sim, 50)
	p := e.NewProcess(1)
	p.AddReceive("rcvPing", func(m Message) bool { _, ok := m.(ping); return ok },
		func(topo.NodeID, Message) {})
	// Enqueue the flood directly, then stimulate once so every drop lands
	// in the same budgeted run-to-quiescence.
	for i := 0; i < 60; i++ {
		p.inbox = append(p.inbox, envelope{sender: 2, msg: pong{i}})
	}
	e.Kickstart(p)
	if !errors.Is(p.Err(), ErrStepBudget) {
		t.Errorf("Err = %v, want ErrStepBudget (60 unmatched drops vs budget 50)", p.Err())
	}
	if p.Dropped() != 50 {
		t.Errorf("Dropped = %d, want 50 (one drop per budgeted step)", p.Dropped())
	}
	// A flood within budget drains cleanly, still counting every drop.
	sim2 := des.New()
	e2 := NewEngine(sim2, 50)
	p2 := e2.NewProcess(1)
	p2.AddReceive("rcvPing", func(m Message) bool { _, ok := m.(ping); return ok },
		func(topo.NodeID, Message) {})
	for i := 0; i < 40; i++ {
		p2.inbox = append(p2.inbox, envelope{sender: 2, msg: pong{i}})
	}
	e2.Kickstart(p2)
	if p2.Err() != nil {
		t.Errorf("Err = %v, want nil for a flood within budget", p2.Err())
	}
	if p2.Dropped() != 40 || p2.QueueLen() != 0 {
		t.Errorf("Dropped = %d QueueLen = %d, want 40 drained", p2.Dropped(), p2.QueueLen())
	}
}

func TestChannelFIFO(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	var got []int
	var deferDelivery bool
	p.AddReceive("rcv", nil, func(_ topo.NodeID, m Message) {
		got = append(got, m.(ping).n)
		if !deferDelivery {
			deferDelivery = true
			// Re-entrant sends from within a handler must keep FIFO order.
			p.inbox = append(p.inbox, envelope{sender: 5, msg: ping{99}})
		}
	})
	e.Deliver(p, 2, ping{1})
	e.Deliver(p, 2, ping{2})
	want := []int{1, 99, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestGuardActionRunsAfterChannelDrains(t *testing.T) {
	// Models Figure 2's "process:: rcv⟨⟩" action: runs only once the
	// channel has been fully consumed.
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	received := 0
	processed := false
	p.AddReceive("rcv", nil, func(topo.NodeID, Message) { received++ })
	p.AddGuard("process", func() bool { return received >= 2 && !processed }, func() {
		if p.QueueLen() != 0 {
			t.Error("guard ran with non-empty channel")
		}
		processed = true
	})
	e.Deliver(p, 2, ping{1})
	if processed {
		t.Fatal("guard fired before its condition held")
	}
	e.Deliver(p, 2, ping{2})
	if !processed {
		t.Fatal("guard did not fire after condition held")
	}
}

func TestActionPriorityOrder(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	var order []string
	a, b := true, true
	p.AddGuard("first", func() bool { return a }, func() { order = append(order, "first"); a = false })
	p.AddGuard("second", func() bool { return b }, func() { order = append(order, "second"); b = false })
	e.Kickstart(p)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v, want [first second]", order)
	}
}

func TestTimerFiresAndConsumes(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	fired := 0
	var tm *Timer
	tm = p.NewTimer("tick", func() {
		fired++
		if fired < 3 {
			tm.Set(100 * time.Millisecond) // periodic re-arm, like dissem
		}
	})
	tm.Set(100 * time.Millisecond)
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 3 {
		t.Errorf("timer fired %d times, want 3", fired)
	}
	if sim.Now() != 300*time.Millisecond {
		t.Errorf("Now = %v, want 300ms", sim.Now())
	}
}

func TestTimerResetCancelsPrevious(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	var firedAt []time.Duration
	tm := p.NewTimer("t", func() { firedAt = append(firedAt, sim.Now()) })
	tm.Set(time.Second)
	tm.Set(2 * time.Second) // reset before expiry
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(firedAt) != 1 || firedAt[0] != 2*time.Second {
		t.Errorf("firedAt = %v, want [2s]", firedAt)
	}
}

func TestTimerStop(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	fired := false
	tm := p.NewTimer("t", func() { fired = true })
	tm.Set(time.Second)
	if !tm.Pending() {
		t.Error("Pending = false after Set")
	}
	tm.Stop()
	if tm.Pending() {
		t.Error("Pending = true after Stop")
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestStepBudgetProtectsAgainstLivelock(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 50)
	p := e.NewProcess(1)
	p.AddGuard("always", func() bool { return true }, func() {})
	e.Kickstart(p)
	if !errors.Is(p.Err(), ErrStepBudget) {
		t.Errorf("Err = %v, want ErrStepBudget", p.Err())
	}
	if !errors.Is(e.Err(), ErrStepBudget) {
		t.Errorf("engine Err = %v, want ErrStepBudget", e.Err())
	}
	// A failed process ignores further stimuli instead of looping again.
	e.Deliver(p, 2, ping{1})
	if p.QueueLen() != 1 {
		t.Errorf("failed process consumed a message")
	}
}

func TestOnActionTracingHook(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	var names []string
	e.OnAction = func(_ *Process, name string) { names = append(names, name) }
	p := e.NewProcess(1)
	ran := false
	p.AddReceive("rcv", nil, func(topo.NodeID, Message) {})
	p.AddGuard("g", func() bool { return !ran }, func() { ran = true })
	e.Deliver(p, 2, ping{1})
	if len(names) != 2 || names[0] != "rcv" || names[1] != "g" {
		t.Errorf("traced actions = %v, want [rcv g]", names)
	}
}

func TestTwoProcessExchange(t *testing.T) {
	// A deterministic two-process token exchange: each forwards the token
	// with an incremented count until it reaches 10.
	sim := des.New()
	e := NewEngine(sim, 0)
	procs := make([]*Process, 2)
	final := 0
	for i := range procs {
		i := i
		procs[i] = e.NewProcess(topo.NodeID(i))
		procs[i].AddReceive("token", nil, func(_ topo.NodeID, m Message) {
			n := m.(ping).n
			if n >= 10 {
				final = n
				return
			}
			peer := procs[1-i]
			// Model transmission latency through the simulator.
			sim.ScheduleAfter(time.Millisecond, func() {
				e.Deliver(peer, topo.NodeID(i), ping{n + 1})
			})
		})
	}
	sim.ScheduleAfter(0, func() { e.Deliver(procs[0], 1, ping{0}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if final != 10 {
		t.Errorf("final token = %d, want 10", final)
	}
	if err := e.Err(); err != nil {
		t.Errorf("engine error: %v", err)
	}
}

func TestTimerNotPendingAfterFiring(t *testing.T) {
	// Regression: a fired-and-consumed timer must not report Pending,
	// otherwise re-arm-if-idle logic (like the dissemination budget
	// reset) deadlocks after the first expiry.
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	fired := 0
	tm := p.NewTimer("t", func() { fired++ })
	tm.Set(time.Second)
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Pending() {
		t.Error("Pending() = true after the timer fired and was consumed")
	}
	// Re-arming must work again.
	tm.Set(time.Second)
	if !tm.Pending() {
		t.Error("Pending() = false after re-arm")
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Errorf("fired = %d after re-arm, want 2", fired)
	}
}

func TestProcessID(t *testing.T) {
	e := NewEngine(des.New(), 0)
	p := e.NewProcess(42)
	if p.ID() != 42 {
		t.Errorf("ID = %d, want 42", p.ID())
	}
}

// TestEngineResetRewindsProcesses: Reset empties channels, clears drop and
// failure accounting and disarms timers, while the installed program and
// the engine's simulator keep working for the next run.
func TestEngineResetRewindsProcesses(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 5)
	p := e.NewProcess(1)
	var got []int
	p.AddReceive("ping", func(m Message) bool { _, ok := m.(ping); return ok }, func(_ topo.NodeID, m Message) {
		got = append(got, m.(ping).n)
	})
	tm := p.NewTimer("tick", func() {})
	tm.Set(time.Second)

	e.Deliver(p, 2, ping{1})
	e.Deliver(p, 2, pong{9}) // dropped: no matching receive
	for i := 0; i < 10; i++ {
		p.inbox = append(p.inbox, envelope{sender: 2, msg: ping{i}})
	}
	e.stimulate(p) // overruns the 5-step budget → failed
	if p.Err() == nil {
		t.Fatal("expected step-budget failure before reset")
	}

	sim.Reset()
	e.Reset()
	if p.Err() != nil || p.Dropped() != 0 || p.QueueLen() != 0 {
		t.Errorf("after Reset: err=%v dropped=%d queue=%d", p.Err(), p.Dropped(), p.QueueLen())
	}
	if tm.Pending() || tm.Expired() {
		t.Errorf("timer survived Reset: pending=%v expired=%v", tm.Pending(), tm.Expired())
	}
	got = got[:0]
	e.Deliver(p, 2, ping{42})
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("program broken after Reset: got %v", got)
	}
	tm.Set(time.Millisecond)
	if !tm.Pending() {
		t.Errorf("timer unusable after Reset")
	}
}
