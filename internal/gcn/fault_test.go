package gcn

import (
	"testing"
	"time"

	"slpdas/internal/des"
	"slpdas/internal/topo"
)

// TestFailStopsComputation: a crashed process executes no actions — not
// for queued messages, not for armed timers, not for newly delivered
// frames — until Revive.
func TestFailStopsComputation(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	handled := 0
	p.AddReceive("rcv", nil, func(sender topo.NodeID, msg Message) { handled++ })
	fired := 0
	tm := p.NewTimer("tick", func() { fired++ })

	// Queue a message without stimulating, arm the timer, then crash.
	p.inbox = append(p.inbox, envelope{sender: 2, msg: "queued"})
	tm.Set(time.Second)
	p.Fail()

	if !p.Dead() {
		t.Fatal("Dead() false after Fail")
	}
	if p.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after Fail, want 0 (volatile state dies)", p.QueueLen())
	}
	if tm.Pending() {
		t.Error("timer still armed after Fail")
	}

	e.Deliver(p, 2, "while dead")
	if p.QueueLen() != 0 {
		t.Errorf("Deliver enqueued %d messages on a dead process", p.QueueLen())
	}
	e.Kickstart(p)
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if handled != 0 || fired != 0 {
		t.Errorf("dead process ran actions: handled=%d fired=%d", handled, fired)
	}
}

// TestReviveRestartsProcess: after Revive the process handles traffic
// again, starting from an empty channel like a reboot.
func TestReviveRestartsProcess(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	handled := 0
	p.AddReceive("rcv", nil, func(sender topo.NodeID, msg Message) { handled++ })

	p.Fail()
	e.Deliver(p, 2, "lost")
	p.Revive()
	if p.Dead() {
		t.Fatal("Dead() true after Revive")
	}
	e.Deliver(p, 2, "heard")
	if handled != 1 {
		t.Errorf("handled %d messages after Revive, want exactly the post-revival one", handled)
	}
}

// TestResetClearsDead: dead is run state and must not leak through the
// arena Reset path.
func TestResetClearsDead(t *testing.T) {
	sim := des.New()
	e := NewEngine(sim, 0)
	p := e.NewProcess(1)
	p.AddReceive("rcv", nil, func(topo.NodeID, Message) {})
	p.Fail()
	e.Reset()
	if p.Dead() {
		t.Error("dead flag survived Reset")
	}
}
