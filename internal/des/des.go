// Package des is a deterministic discrete-event simulator: the substrate
// replacing TOSSIM in the paper's evaluation. Events are executed in
// strictly non-decreasing virtual-time order; events scheduled for the same
// instant run in FIFO order of scheduling, so a run is a pure function of
// its inputs.
//
// The scheduler is built for steady-state zero allocation: the pending
// queue is a 4-ary implicit heap of small value entries, and event bodies
// live in a free list of recycled boxes, so once the simulation reaches its
// working-set size, Schedule/ScheduleRunner allocate nothing. Hot paths
// that would otherwise allocate a closure per event (the radio delivery
// path, the TDMA slot tasks) schedule a pre-allocated Runner instead.
package des

import (
	"errors"
	"fmt"
	"time"
)

// Common simulator errors.
var (
	// ErrPastEvent is returned when an event is scheduled before Now().
	ErrPastEvent = errors.New("des: event scheduled in the past")
	// ErrEventBudget is returned when the run exceeds its event budget,
	// which indicates a runaway protocol (e.g. a dissemination loop).
	// The budget is checked before the next event is dequeued, so the
	// simulator state stays consistent: the clock is not advanced, the
	// event is still queued, and a later Run (after SetEventBudget) resumes
	// without losing it.
	ErrEventBudget = errors.New("des: event budget exhausted")
)

// Runner is a pre-allocated event body. Hot paths implement Runner on a
// pooled struct and schedule it with ScheduleRunner to avoid the closure
// allocation a func() event would cost per occurrence.
type Runner interface {
	Run()
}

// eventBox holds a scheduled event's body. Boxes are recycled through the
// simulator's free list; gen distinguishes incarnations so a stale Event
// handle (kept after its event executed) can never affect the box's next
// occupant.
type eventBox struct {
	fn        func()
	run       Runner
	gen       uint64 // lint:immutable: incarnation counter, must survive reset to invalidate stale handles
	cancelled bool
}

func (b *eventBox) reset() {
	b.fn = nil
	b.run = nil
	b.cancelled = false
}

// Event is a handle to a scheduled callback, valid across the event's whole
// lifetime: cancelling an already-executed or already-cancelled event is a
// no-op, even after the simulator has recycled the underlying storage. The
// zero Event is inert.
type Event struct {
	box *eventBox
	gen uint64
	at  time.Duration
}

// Time returns the virtual time the event is scheduled for.
func (e Event) Time() time.Duration { return e.at }

// Cancel prevents the callback from running. Safe to call multiple times,
// and a no-op once the event has executed.
func (e Event) Cancel() {
	if e.box != nil && e.box.gen == e.gen {
		e.box.cancelled = true
	}
}

// Cancelled reports whether the event was cancelled before executing.
func (e Event) Cancelled() bool {
	return e.box != nil && e.box.gen == e.gen && e.box.cancelled
}

// Pending reports whether the event is still queued: scheduled, not yet
// executed and not cancelled. The zero Event is not pending.
func (e Event) Pending() bool {
	return e.box != nil && e.box.gen == e.gen && !e.box.cancelled
}

// entry is one pending event in the queue. The sort keys are inline so
// heap sifting never chases the box pointer.
type entry struct {
	at  time.Duration
	seq uint64
	box *eventBox
}

func (a entry) before(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulator owns the virtual clock and the pending event queue. The zero
// value is not usable; construct with New.
type Simulator struct {
	now       time.Duration
	queue     []entry // 4-ary implicit min-heap on (at, seq)
	free      []*eventBox
	seq       uint64
	executed  uint64
	maxEvents uint64 // lint:immutable: configured budget, fixed at construction
	stopped   bool
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithEventBudget bounds the total number of executed events; Run returns
// ErrEventBudget when exceeded. Zero means unlimited.
func WithEventBudget(n uint64) Option {
	return func(s *Simulator) { s.maxEvents = n }
}

// New constructs an empty simulator at virtual time zero.
func New(opts ...Option) *Simulator {
	s := &Simulator{}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events still queued (including cancelled
// ones not yet reaped).
func (s *Simulator) Pending() int { return len(s.queue) }

// SetEventBudget replaces the executed-event budget (zero = unlimited).
// Raising the budget after Run returned ErrEventBudget lets the simulation
// resume exactly where it stopped.
func (s *Simulator) SetEventBudget(n uint64) { s.maxEvents = n }

// Reset rewinds the simulator to virtual time zero with an empty queue,
// recycling every still-queued event box into the free list. A reset
// simulator is indistinguishable from a fresh New (same clock, sequence
// numbering and budget accounting) except that its internal pools stay
// warm — the point of reusing one simulator across arena runs. Event
// handles issued before the Reset become inert: never Pending, never able
// to cancel a recycled box's next occupant. Cancelled boxes are dropped
// without recycling, exactly as RunUntil reaps them, so Cancelled() keeps
// answering truthfully across resets. The event budget is preserved; use
// SetEventBudget to change it.
func (s *Simulator) Reset() {
	for i := range s.queue {
		b := s.queue[i].box
		s.queue[i] = entry{}
		if !b.cancelled {
			s.releaseBox(b)
		}
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.executed = 0
	s.stopped = false
}

// --- 4-ary heap ---
//
// A 4-ary implicit heap halves the tree depth of the binary heap the
// standard library's container/heap would maintain, trading slightly wider
// sift-down compares for far fewer cache-missing levels — a consistent win
// for event queues, which are pop-heavy. Entries are values, so growing
// the queue reuses slice capacity and steady-state push/pop allocates
// nothing.

//slp:hotpath
func (s *Simulator) heapPush(e entry) {
	s.queue = append(s.queue, e)
	i := len(s.queue) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.queue[i].before(s.queue[parent]) {
			break
		}
		s.queue[i], s.queue[parent] = s.queue[parent], s.queue[i]
		i = parent
	}
}

//slp:hotpath
func (s *Simulator) heapPop() entry {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = entry{} // release the box pointer
	s.queue = q[:n]
	s.siftDown(0)
	return top
}

//slp:hotpath
func (s *Simulator) siftDown(i int) {
	q := s.queue
	n := len(q)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].before(q[min]) {
				min = c
			}
		}
		if !q[min].before(q[i]) {
			return
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

// --- event pool ---

//slp:hotpath
func (s *Simulator) getBox() *eventBox {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return b
	}
	return &eventBox{}
}

// releaseBox recycles an executed box. Cancelled boxes are deliberately
// not recycled (see RunUntil): their handles must keep reporting
// Cancelled() == true indefinitely.
//
//slp:hotpath
func (s *Simulator) releaseBox(b *eventBox) {
	b.gen++
	b.reset()
	s.free = append(s.free, b)
}

// schedule enqueues a box and returns its entry keys.
//
//slp:hotpath
func (s *Simulator) schedule(at time.Duration, b *eventBox) {
	s.heapPush(entry{at: at, seq: s.seq, box: b})
	s.seq++
}

// Schedule queues fn to run at absolute virtual time at. It returns the
// event handle, or an error if at is before the current time.
func (s *Simulator) Schedule(at time.Duration, fn func()) (Event, error) {
	if at < s.now {
		return Event{}, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, s.now)
	}
	b := s.getBox()
	b.fn = fn
	s.schedule(at, b)
	return Event{box: b, gen: b.gen, at: at}, nil
}

// ScheduleAfter queues fn to run d after the current time. Negative d is
// treated as zero.
func (s *Simulator) ScheduleAfter(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	e, err := s.Schedule(s.now+d, fn)
	if err != nil {
		// Unreachable: now+d >= now for d >= 0.
		panic(err)
	}
	return e
}

// ScheduleRunner queues r to run at absolute virtual time at. Runner
// events have no cancellation handle; together with the event pool this
// makes scheduling them allocation-free.
//
//slp:hotpath
func (s *Simulator) ScheduleRunner(at time.Duration, r Runner) error {
	if at < s.now {
		//lint:ignore hotpath cold error path, only reached on caller bugs
		return fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, s.now)
	}
	b := s.getBox()
	b.run = r
	s.schedule(at, b)
	return nil
}

// ScheduleRunnerAfter queues r to run d after the current time. Negative d
// is treated as zero.
//
//slp:hotpath
func (s *Simulator) ScheduleRunnerAfter(d time.Duration, r Runner) {
	if d < 0 {
		d = 0
	}
	if err := s.ScheduleRunner(s.now+d, r); err != nil {
		// Unreachable: now+d >= now for d >= 0.
		panic(err)
	}
}

// Stop makes the current Run return after the in-flight event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue drains, Stop is called, or the event
// budget is exhausted.
func (s *Simulator) Run() error {
	return s.RunUntil(-1)
}

// RunUntil executes events with time at most deadline (deadline < 0 means
// no limit). Events scheduled exactly at the deadline are executed. On
// return the clock rests at the last executed event's time, or at the
// deadline if it was reached with events still pending beyond it.
func (s *Simulator) RunUntil(deadline time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.box.cancelled {
			// Reap without touching the clock or the budget. The box is
			// not recycled so stale handles keep answering Cancelled().
			s.heapPop()
			continue
		}
		if deadline >= 0 && next.at > deadline {
			s.now = deadline
			return nil
		}
		// Budget check happens before the pop: on ErrEventBudget the event
		// stays queued and the clock stays put, so the simulator remains
		// consistent and resumable.
		if s.maxEvents > 0 && s.executed >= s.maxEvents {
			return fmt.Errorf("%w: budget=%d now=%v next=%v", ErrEventBudget, s.maxEvents, s.now, next.at)
		}
		s.heapPop()
		s.now = next.at
		s.executed++
		b := next.box
		fn, run := b.fn, b.run
		// Recycle before executing: the body may schedule follow-up events,
		// which can then reuse this box immediately.
		s.releaseBox(b)
		if run != nil {
			run.Run()
		} else {
			fn()
		}
	}
	if deadline >= 0 && s.now < deadline && len(s.queue) == 0 {
		// Queue drained before the deadline; advance the clock so callers
		// observing Now() see the full simulated horizon.
		s.now = deadline
	}
	return nil
}
