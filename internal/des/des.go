// Package des is a deterministic discrete-event simulator: the substrate
// replacing TOSSIM in the paper's evaluation. Events are executed in
// strictly non-decreasing virtual-time order; events scheduled for the same
// instant run in FIFO order of scheduling, so a run is a pure function of
// its inputs.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Common simulator errors.
var (
	// ErrPastEvent is returned when an event is scheduled before Now().
	ErrPastEvent = errors.New("des: event scheduled in the past")
	// ErrEventBudget is returned when the run exceeds its event budget,
	// which indicates a runaway protocol (e.g. a dissemination loop).
	ErrEventBudget = errors.New("des: event budget exhausted")
)

// Event is a handle to a scheduled callback. Cancelling an already-executed
// or already-cancelled event is a no-op.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() time.Duration { return e.at }

// Cancel prevents the callback from running. Safe to call multiple times.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event queue. The zero
// value is not usable; construct with New.
type Simulator struct {
	now       time.Duration
	queue     eventQueue
	seq       uint64
	executed  uint64
	maxEvents uint64
	stopped   bool
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithEventBudget bounds the total number of executed events; Run returns
// ErrEventBudget when exceeded. Zero means unlimited.
func WithEventBudget(n uint64) Option {
	return func(s *Simulator) { s.maxEvents = n }
}

// New constructs an empty simulator at virtual time zero.
func New(opts ...Option) *Simulator {
	s := &Simulator{}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events still queued (including cancelled
// ones not yet reaped).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run at absolute virtual time at. It returns the
// event handle, or an error if at is before the current time.
func (s *Simulator) Schedule(at time.Duration, fn func()) (*Event, error) {
	if at < s.now {
		return nil, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, s.now)
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e, nil
}

// ScheduleAfter queues fn to run d after the current time. Negative d is
// treated as zero.
func (s *Simulator) ScheduleAfter(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	e, err := s.Schedule(s.now+d, fn)
	if err != nil {
		// Unreachable: now+d >= now for d >= 0.
		panic(err)
	}
	return e
}

// Stop makes the current Run return after the in-flight event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue drains, Stop is called, or the event
// budget is exhausted.
func (s *Simulator) Run() error {
	return s.RunUntil(-1)
}

// RunUntil executes events with time at most deadline (deadline < 0 means
// no limit). Events scheduled exactly at the deadline are executed. On
// return the clock rests at the last executed event's time, or at the
// deadline if it was reached with events still pending beyond it.
func (s *Simulator) RunUntil(deadline time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if deadline >= 0 && next.at > deadline {
			s.now = deadline
			return nil
		}
		heap.Pop(&s.queue)
		if next.cancelled {
			continue
		}
		s.now = next.at
		if s.maxEvents > 0 && s.executed >= s.maxEvents {
			return fmt.Errorf("%w: budget=%d now=%v", ErrEventBudget, s.maxEvents, s.now)
		}
		s.executed++
		next.fn()
	}
	if deadline >= 0 && s.now < deadline && len(s.queue) == 0 {
		// Queue drained before the deadline; advance the clock so callers
		// observing Now() see the full simulated horizon.
		s.now = deadline
	}
	return nil
}
