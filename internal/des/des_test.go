package des

import (
	"errors"
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.ScheduleAfter(30*time.Millisecond, func() { order = append(order, 3) })
	s.ScheduleAfter(10*time.Millisecond, func() { order = append(order, 1) })
	s.ScheduleAfter(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.ScheduleAfter(time.Second, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: order[%d]=%d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []time.Duration
	s.ScheduleAfter(time.Second, func() {
		times = append(times, s.Now())
		s.ScheduleAfter(time.Second, func() {
			times = append(times, s.Now())
		})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("times = %v", times)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := New()
	s.ScheduleAfter(time.Second, func() {
		if _, err := s.Schedule(500*time.Millisecond, func() {}); !errors.Is(err, ErrPastEvent) {
			t.Errorf("Schedule in past: err = %v, want ErrPastEvent", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New()
	ran := false
	s.ScheduleAfter(time.Second, func() {
		s.ScheduleAfter(-time.Hour, func() { ran = true })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("negative-delay event did not run")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.ScheduleAfter(time.Second, func() { ran = true })
	e.Cancel()
	e.Cancel() // idempotent
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	ran := false
	later := s.ScheduleAfter(2*time.Second, func() { ran = true })
	s.ScheduleAfter(time.Second, func() { later.Cancel() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("event cancelled mid-run still executed")
	}
}

func TestRunUntilDeadline(t *testing.T) {
	s := New()
	var ran []int
	s.ScheduleAfter(1*time.Second, func() { ran = append(ran, 1) })
	s.ScheduleAfter(2*time.Second, func() { ran = append(ran, 2) })
	s.ScheduleAfter(3*time.Second, func() { ran = append(ran, 3) })
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran = %v, want events 1,2 only", ran)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want deadline 2s", s.Now())
	}
	// Resume to completion.
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ran) != 3 {
		t.Errorf("after resume ran = %v, want 3 events", ran)
	}
}

func TestRunUntilAdvancesClockWhenQueueDrains(t *testing.T) {
	s := New()
	s.ScheduleAfter(time.Second, func() {})
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if s.Now() != 10*time.Second {
		t.Errorf("Now() = %v, want 10s after drain", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.ScheduleAfter(time.Second, func() { count++; s.Stop() })
	s.ScheduleAfter(2*time.Second, func() { count++ })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1 (stopped after first event)", count)
	}
	// A subsequent Run resumes.
	if err := s.Run(); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if count != 2 {
		t.Errorf("count = %d after resume, want 2", count)
	}
}

func TestEventBudget(t *testing.T) {
	s := New(WithEventBudget(10))
	var boom func()
	boom = func() { s.ScheduleAfter(time.Millisecond, boom) }
	s.ScheduleAfter(0, boom)
	err := s.Run()
	if !errors.Is(err, ErrEventBudget) {
		t.Errorf("Run err = %v, want ErrEventBudget", err)
	}
	if s.Executed() != 10 {
		t.Errorf("Executed = %d, want 10", s.Executed())
	}
}

func TestDeterminism(t *testing.T) {
	trace := func() []time.Duration {
		s := New()
		var out []time.Duration
		var tick func(int)
		tick = func(depth int) {
			out = append(out, s.Now())
			if depth < 50 {
				s.ScheduleAfter(time.Duration(depth+1)*time.Millisecond, func() { tick(depth + 1) })
				s.ScheduleAfter(time.Duration(depth+1)*time.Millisecond, func() { out = append(out, -s.Now()) })
			}
		}
		s.ScheduleAfter(0, func() { tick(0) })
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a := trace()
	b := trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPendingAndExecutedCounters(t *testing.T) {
	s := New()
	s.ScheduleAfter(time.Second, func() {})
	s.ScheduleAfter(2*time.Second, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Pending() != 0 || s.Executed() != 2 {
		t.Errorf("Pending=%d Executed=%d, want 0 and 2", s.Pending(), s.Executed())
	}
}

func TestEventTimeAccessor(t *testing.T) {
	s := New()
	e := s.ScheduleAfter(42*time.Millisecond, func() {})
	if e.Time() != 42*time.Millisecond {
		t.Errorf("Time() = %v, want 42ms", e.Time())
	}
}
