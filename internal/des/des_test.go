package des

import (
	"errors"
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.ScheduleAfter(30*time.Millisecond, func() { order = append(order, 3) })
	s.ScheduleAfter(10*time.Millisecond, func() { order = append(order, 1) })
	s.ScheduleAfter(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.ScheduleAfter(time.Second, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: order[%d]=%d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []time.Duration
	s.ScheduleAfter(time.Second, func() {
		times = append(times, s.Now())
		s.ScheduleAfter(time.Second, func() {
			times = append(times, s.Now())
		})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("times = %v", times)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := New()
	s.ScheduleAfter(time.Second, func() {
		if _, err := s.Schedule(500*time.Millisecond, func() {}); !errors.Is(err, ErrPastEvent) {
			t.Errorf("Schedule in past: err = %v, want ErrPastEvent", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New()
	ran := false
	s.ScheduleAfter(time.Second, func() {
		s.ScheduleAfter(-time.Hour, func() { ran = true })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("negative-delay event did not run")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.ScheduleAfter(time.Second, func() { ran = true })
	e.Cancel()
	e.Cancel() // idempotent
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	ran := false
	later := s.ScheduleAfter(2*time.Second, func() { ran = true })
	s.ScheduleAfter(time.Second, func() { later.Cancel() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("event cancelled mid-run still executed")
	}
}

func TestRunUntilDeadline(t *testing.T) {
	s := New()
	var ran []int
	s.ScheduleAfter(1*time.Second, func() { ran = append(ran, 1) })
	s.ScheduleAfter(2*time.Second, func() { ran = append(ran, 2) })
	s.ScheduleAfter(3*time.Second, func() { ran = append(ran, 3) })
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran = %v, want events 1,2 only", ran)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want deadline 2s", s.Now())
	}
	// Resume to completion.
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ran) != 3 {
		t.Errorf("after resume ran = %v, want 3 events", ran)
	}
}

func TestRunUntilAdvancesClockWhenQueueDrains(t *testing.T) {
	s := New()
	s.ScheduleAfter(time.Second, func() {})
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if s.Now() != 10*time.Second {
		t.Errorf("Now() = %v, want 10s after drain", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.ScheduleAfter(time.Second, func() { count++; s.Stop() })
	s.ScheduleAfter(2*time.Second, func() { count++ })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1 (stopped after first event)", count)
	}
	// A subsequent Run resumes.
	if err := s.Run(); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if count != 2 {
		t.Errorf("count = %d after resume, want 2", count)
	}
}

func TestEventBudget(t *testing.T) {
	s := New(WithEventBudget(10))
	var boom func()
	boom = func() { s.ScheduleAfter(time.Millisecond, boom) }
	s.ScheduleAfter(0, boom)
	err := s.Run()
	if !errors.Is(err, ErrEventBudget) {
		t.Errorf("Run err = %v, want ErrEventBudget", err)
	}
	if s.Executed() != 10 {
		t.Errorf("Executed = %d, want 10", s.Executed())
	}
}

func TestEventBudgetLeavesSimulatorResumable(t *testing.T) {
	// Regression: the budget used to be checked after the next event was
	// popped and the clock advanced, so hitting the budget silently lost
	// one event and left the clock in its future. Exhausting the budget
	// must leave the next event queued and the clock on the last executed
	// event, so raising the budget resumes without losing anything.
	s := New(WithEventBudget(1))
	var ran []time.Duration
	s.ScheduleAfter(1*time.Second, func() { ran = append(ran, s.Now()) })
	s.ScheduleAfter(2*time.Second, func() { ran = append(ran, s.Now()) })
	if err := s.Run(); !errors.Is(err, ErrEventBudget) {
		t.Fatalf("Run err = %v, want ErrEventBudget", err)
	}
	if len(ran) != 1 || ran[0] != time.Second {
		t.Fatalf("ran = %v, want exactly the 1s event", ran)
	}
	if s.Now() != time.Second {
		t.Errorf("Now() = %v after budget stop, want 1s (clock must not advance past the last executed event)", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after budget stop, want 1 (the 2s event must not be lost)", s.Pending())
	}
	s.SetEventBudget(0)
	if err := s.Run(); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if len(ran) != 2 || ran[1] != 2*time.Second {
		t.Errorf("after resume ran = %v, want the 2s event recovered", ran)
	}
}

func TestRunnerEventsInterleaveWithClosures(t *testing.T) {
	s := New()
	var order []int
	append2 := appendRunner{out: &order, v: 2}
	if err := s.ScheduleRunner(2*time.Second, &append2); err != nil {
		t.Fatalf("ScheduleRunner: %v", err)
	}
	s.ScheduleAfter(time.Second, func() { order = append(order, 1) })
	s.ScheduleRunnerAfter(3*time.Second, &appendRunner{out: &order, v: 3})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if err := s.ScheduleRunner(0, &append2); !errors.Is(err, ErrPastEvent) {
		t.Errorf("ScheduleRunner in past: err = %v, want ErrPastEvent", err)
	}
}

type appendRunner struct {
	out *[]int
	v   int
}

func (r *appendRunner) Run() { *r.out = append(*r.out, r.v) }

type nopRunner struct{}

func (nopRunner) Run() {}

func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	// An executed event's box returns to the pool. A handle kept from the
	// old incarnation must be inert against the box's next occupant.
	s := New()
	e1 := s.ScheduleAfter(time.Second, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ran := false
	s.ScheduleAfter(time.Second, func() { ran = true }) // reuses e1's box
	e1.Cancel()
	if e1.Cancelled() {
		t.Error("stale handle reports Cancelled after its event executed")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("stale Cancel leaked into the recycled event")
	}
}

func TestCancelledReportedAfterReap(t *testing.T) {
	s := New()
	e := s.ScheduleAfter(time.Second, func() {})
	e.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after the cancelled event was reaped")
	}
	if e.Pending() {
		t.Error("Pending() = true after reap")
	}
}

func TestScheduleSteadyStateAllocFree(t *testing.T) {
	s := New()
	fn := func() {}
	r := nopRunner{}
	// Warm the heap capacity and the box pool.
	for i := 0; i < 128; i++ {
		s.ScheduleAfter(time.Duration(i), fn)
		s.ScheduleRunnerAfter(time.Duration(i), r)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("warmup Run: %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.ScheduleRunnerAfter(time.Duration(i), r)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}); allocs != 0 {
		t.Errorf("ScheduleRunner steady state allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.ScheduleAfter(time.Duration(i), fn)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}); allocs != 0 {
		t.Errorf("Schedule (reused closure) steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func() []time.Duration {
		s := New()
		var out []time.Duration
		var tick func(int)
		tick = func(depth int) {
			out = append(out, s.Now())
			if depth < 50 {
				s.ScheduleAfter(time.Duration(depth+1)*time.Millisecond, func() { tick(depth + 1) })
				s.ScheduleAfter(time.Duration(depth+1)*time.Millisecond, func() { out = append(out, -s.Now()) })
			}
		}
		s.ScheduleAfter(0, func() { tick(0) })
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a := trace()
	b := trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPendingAndExecutedCounters(t *testing.T) {
	s := New()
	s.ScheduleAfter(time.Second, func() {})
	s.ScheduleAfter(2*time.Second, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Pending() != 0 || s.Executed() != 2 {
		t.Errorf("Pending=%d Executed=%d, want 0 and 2", s.Pending(), s.Executed())
	}
}

func TestEventTimeAccessor(t *testing.T) {
	s := New()
	e := s.ScheduleAfter(42*time.Millisecond, func() {})
	if e.Time() != 42*time.Millisecond {
		t.Errorf("Time() = %v, want 42ms", e.Time())
	}
}

// TestResetRewindsSimulator: after Reset the simulator behaves exactly
// like a fresh New — clock at zero, empty queue, counters cleared, old
// handles inert — while keeping its recycled boxes warm.
func TestResetRewindsSimulator(t *testing.T) {
	s := New(WithEventBudget(100))
	var fired int
	ev, err := s.Schedule(5*time.Millisecond, func() { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	stale := s.ScheduleAfter(10*time.Millisecond, func() { fired++ })
	stale.Cancel()
	if err := s.RunUntil(6 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d before reset", fired)
	}

	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Executed() != 0 {
		t.Errorf("after Reset: now=%v pending=%d executed=%d", s.Now(), s.Pending(), s.Executed())
	}
	// Handles from before the Reset are inert: not pending, and a
	// previously cancelled handle keeps answering Cancelled() truthfully
	// (its box is dropped un-recycled, as RunUntil's reaper does).
	if ev.Pending() || ev.Cancelled() || stale.Pending() {
		t.Errorf("stale handles still live: ev(%v,%v) stale pending=%v",
			ev.Pending(), ev.Cancelled(), stale.Pending())
	}
	if !stale.Cancelled() {
		t.Errorf("cancelled handle lost its truthful answer across Reset")
	}
	// Cancelling a stale handle must not touch the recycled box's next
	// occupant.
	next := s.ScheduleAfter(time.Millisecond, func() { fired += 10 })
	stale.Cancel()
	ev.Cancel()
	if !next.Pending() {
		t.Fatalf("stale Cancel leaked into the recycled box")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 11 {
		t.Errorf("fired = %d after reset run, want 11", fired)
	}
}

// TestResetPreservesEventBudget: the executed-event counter rewinds to
// zero but the configured budget stays in force across Reset.
func TestResetPreservesEventBudget(t *testing.T) {
	s := New(WithEventBudget(1))
	s.ScheduleAfter(0, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("first run within budget: %v", err)
	}
	s.Reset()
	s.ScheduleAfter(0, func() {})
	s.ScheduleAfter(0, func() {})
	if err := s.Run(); !errors.Is(err, ErrEventBudget) {
		t.Errorf("err = %v, want ErrEventBudget (budget must survive Reset)", err)
	}
	if s.Executed() != 1 {
		t.Errorf("executed = %d after reset run, want 1", s.Executed())
	}
}
