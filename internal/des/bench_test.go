package des

import (
	"testing"
	"time"
)

// BenchmarkScheduleRun measures the steady-state schedule→execute cycle:
// each executed event schedules its successor, so the queue stays warm and
// the benchmark isolates the per-event cost of the queue and event pool.
func BenchmarkScheduleRun(b *testing.B) {
	s := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.ScheduleAfter(time.Millisecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.ScheduleAfter(0, tick)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleFanout measures bursty scheduling: 64 events per batch,
// mirroring a radio broadcast fanning deliveries out to a neighbourhood.
func BenchmarkScheduleFanout(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			s.ScheduleAfter(time.Duration(j)*time.Microsecond, fn)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
