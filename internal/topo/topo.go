// Package topo models wireless sensor network topologies as undirected
// graphs with node positions and unit-disk connectivity, following the
// system model of Section III-A of the paper: nodes have a circular
// communication range and two nodes are linked iff they are within range
// of each other.
package topo

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// NodeID is the unique identifier of a WSN node. IDs are dense indices in
// [0, Graph.Len()).
type NodeID int32

// None is the sentinel "no node" value.
const None NodeID = -1

// Point is a node position in metres.
type Point struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance between p and q in metres.
func (p Point) DistanceTo(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// String renders the point as "(x, y)".
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Graph is an immutable undirected WSN topology. Adjacency lists are sorted
// by node ID so that every iteration order in the system is deterministic.
//
// Adjacency is stored in CSR (compressed sparse row) form — one flat
// neighbour slice plus per-node offsets — so a whole campaign of runs
// iterating neighbourhoods walks contiguous memory, and the graph can be
// shared read-only across worker goroutines. The two-hop collision
// neighbourhoods of Definition 1 are materialised the same way, lazily, on
// first use.
type Graph struct {
	name       string
	positions  []Point
	adj        [][]NodeID // adj[i] slices adjFlat; kept for cheap Neighbors
	adjFlat    []NodeID
	radioRange float64
	edgeCount  int

	twoHopOnce sync.Once
	twoHop     [][]NodeID // twoHop[i] slices twoHopFlat
	twoHopFlat []NodeID
}

// NewGraph builds a unit-disk graph over the given positions: nodes i and j
// share an edge iff their distance is at most radioRange. It returns an
// error if radioRange is not positive or no positions are supplied.
func NewGraph(name string, positions []Point, radioRange float64) (*Graph, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("topo: no positions supplied")
	}
	if radioRange <= 0 {
		return nil, fmt.Errorf("topo: radio range must be positive, got %v", radioRange)
	}
	g := &Graph{
		name:       name,
		positions:  append([]Point(nil), positions...),
		radioRange: radioRange,
	}
	const eps = 1e-9
	degree := make([]int32, len(positions))
	type edge struct{ a, b NodeID }
	var edges []edge
	for i := range positions {
		for j := i + 1; j < len(positions); j++ {
			if positions[i].DistanceTo(positions[j]) <= radioRange+eps {
				edges = append(edges, edge{NodeID(i), NodeID(j)})
				degree[i]++
				degree[j]++
				g.edgeCount++
			}
		}
	}
	// Flatten into CSR: edges were found in (i, j) ascending order, so
	// filling each node's slot range in edge order keeps lists sorted.
	g.adjFlat = make([]NodeID, 2*len(edges))
	g.adj = make([][]NodeID, len(positions))
	off := 0
	for i, d := range degree {
		g.adj[i] = g.adjFlat[off : off : off+int(d)]
		off += int(d)
	}
	for _, e := range edges {
		g.adj[e.a] = append(g.adj[e.a], e.b)
		g.adj[e.b] = append(g.adj[e.b], e.a)
	}
	for i := range g.adj {
		if !sort.SliceIsSorted(g.adj[i], func(a, b int) bool { return g.adj[i][a] < g.adj[i][b] }) {
			sort.Slice(g.adj[i], func(a, b int) bool { return g.adj[i][a] < g.adj[i][b] })
		}
	}
	return g, nil
}

// Name returns the human-readable topology name (e.g. "grid-11x11").
func (g *Graph) Name() string { return g.name }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.positions) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int { return g.edgeCount }

// RadioRange returns the communication range used to build the graph.
func (g *Graph) RadioRange() float64 { return g.radioRange }

// Valid reports whether n is a node of the graph.
func (g *Graph) Valid(n NodeID) bool { return n >= 0 && int(n) < len(g.positions) }

// Position returns the position of node n.
func (g *Graph) Position(n NodeID) Point { return g.positions[n] }

// Positions returns a copy of all node positions indexed by NodeID.
func (g *Graph) Positions() []Point {
	return append([]Point(nil), g.positions...)
}

// Neighbors returns the 1-hop neighbourhood of n, sorted by ID. The returned
// slice is shared and must not be modified.
func (g *Graph) Neighbors(n NodeID) []NodeID { return g.adj[n] }

// Degree returns the number of neighbours of n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// HasEdge reports whether nodes a and b are within communication range.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if a == b {
		return false
	}
	neigh := g.adj[a]
	i := sort.Search(len(neigh), func(i int) bool { return neigh[i] >= b })
	return i < len(neigh) && neigh[i] == b
}

// TwoHop returns CG(n): the set of nodes within two hops of n, excluding n
// itself, sorted by ID. This is the collision neighbourhood of Definition 1.
// The whole two-hop CSR is materialised once per graph on first call and
// shared thereafter (schedule validation walks it once per run, and a
// campaign replays thousands of runs on one graph); the returned slice is
// shared and must not be modified.
func (g *Graph) TwoHop(n NodeID) []NodeID {
	g.twoHopOnce.Do(g.buildTwoHop)
	return g.twoHop[n]
}

func (g *Graph) buildTwoHop() {
	n := len(g.positions)
	// Stamp-based membership avoids a map per node; sets stay sorted by a
	// final per-node sort, matching the original per-call construction.
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	var flat []NodeID
	cut := make([]int, n+1)
	for i := 0; i < n; i++ {
		start := len(flat)
		for _, m := range g.adj[i] {
			if stamp[m] != int32(i) && int(m) != i {
				stamp[m] = int32(i)
				flat = append(flat, m)
			}
			for _, o := range g.adj[m] {
				if stamp[o] != int32(i) && int(o) != i {
					stamp[o] = int32(i)
					flat = append(flat, o)
				}
			}
		}
		set := flat[start:]
		sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
		cut[i+1] = len(flat)
	}
	g.twoHopFlat = flat
	g.twoHop = make([][]NodeID, n)
	for i := 0; i < n; i++ {
		g.twoHop[i] = flat[cut[i]:cut[i+1]:cut[i+1]]
	}
}

// BFSFrom returns hop distances from root to every node; unreachable nodes
// get distance -1.
func (g *Graph) BFSFrom(root NodeID) []int {
	dist := make([]int, len(g.positions))
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := make([]NodeID, 0, len(g.positions))
	queue = append(queue, root)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, m := range g.adj[cur] {
			if dist[m] < 0 {
				dist[m] = dist[cur] + 1
				queue = append(queue, m)
			}
		}
	}
	return dist
}

// HopDistance returns the hop distance between a and b, or -1 if
// disconnected.
func (g *Graph) HopDistance(a, b NodeID) int {
	return g.BFSFrom(a)[b]
}

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	for _, d := range g.BFSFrom(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the maximum hop distance over all pairs, or -1 if the
// graph is disconnected.
func (g *Graph) Diameter() int {
	diam := 0
	for n := NodeID(0); int(n) < g.Len(); n++ {
		for _, d := range g.BFSFrom(n) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// ShortestPathNextHops returns the neighbours of n that lie on a shortest
// path from n towards the root of the supplied BFS distance vector, i.e.
// neighbours m with dist[m] == dist[n]-1. This is the neighbour set used by
// condition 3 of the strong DAS definition.
func (g *Graph) ShortestPathNextHops(n NodeID, dist []int) []NodeID {
	var out []NodeID
	for _, m := range g.adj[n] {
		if dist[m] >= 0 && dist[n] >= 0 && dist[m] == dist[n]-1 {
			out = append(out, m)
		}
	}
	return out
}
