// Package topo models wireless sensor network topologies as undirected
// graphs with node positions and unit-disk connectivity, following the
// system model of Section III-A of the paper: nodes have a circular
// communication range and two nodes are linked iff they are within range
// of each other.
package topo

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
)

// NodeID is the unique identifier of a WSN node. IDs are dense indices in
// [0, Graph.Len()).
type NodeID int32

// None is the sentinel "no node" value.
const None NodeID = -1

// Point is a node position in metres.
type Point struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance between p and q in metres.
func (p Point) DistanceTo(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// String renders the point as "(x, y)".
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Graph is an immutable undirected WSN topology. Adjacency lists are sorted
// by node ID so that every iteration order in the system is deterministic.
//
// Adjacency is stored in CSR (compressed sparse row) form — one flat
// neighbour slice plus per-node offsets — so a whole campaign of runs
// iterating neighbourhoods walks contiguous memory, and the graph can be
// shared read-only across worker goroutines. The two-hop collision
// neighbourhoods of Definition 1 are materialised the same way, lazily, on
// first use.
type Graph struct {
	name       string
	positions  []Point
	adj        [][]NodeID // adj[i] slices adjFlat; kept for cheap Neighbors
	adjFlat    []NodeID
	radioRange float64
	edgeCount  int

	twoHopOnce sync.Once
	twoHop     [][]NodeID // twoHop[i] slices twoHopFlat
	twoHopFlat []NodeID
}

// rangeEps is the slack added to the radio range when testing whether two
// nodes are linked, absorbing floating-point noise in distances that are
// exactly at range (e.g. grid neighbours at spacing == radioRange).
const rangeEps = 1e-9

// edge is one undirected link, stored with a < b.
type edge struct{ a, b NodeID }

// validateGraphInput checks the shared NewGraph/RandomGeometric input
// contract: at least one position, a positive finite radio range, and
// finite coordinates. Non-finite coordinates previously slipped through —
// every DistanceTo comparison against a NaN/±Inf position is false, so the
// node silently ended up isolated instead of failing loudly.
func validateGraphInput(positions []Point, radioRange float64) error {
	if len(positions) == 0 {
		return fmt.Errorf("topo: no positions supplied")
	}
	if radioRange <= 0 {
		return fmt.Errorf("topo: radio range must be positive, got %v", radioRange)
	}
	if math.IsNaN(radioRange) || math.IsInf(radioRange, 0) {
		return fmt.Errorf("topo: radio range must be finite, got %v", radioRange)
	}
	for i, p := range positions {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("topo: position %d is not finite: %v", i, p)
		}
	}
	return nil
}

// NewGraph builds a unit-disk graph over the given positions: nodes i and j
// share an edge iff their distance is at most radioRange. It returns an
// error if radioRange is not positive and finite, no positions are
// supplied, or any coordinate is NaN/±Inf.
//
// Neighbour discovery runs on a spatial-hash bucket grid (cells no smaller
// than the radio range, candidates from the 3×3 bucket neighbourhood), so
// construction is O(n + edges) for bounded-density layouts instead of the
// all-pairs O(n²) scan — the difference between milliseconds and hours at
// 10⁶ nodes. The result is pinned byte-identical to the naive scan (kept
// below as newGraphNaive) by the equivalence tests in equiv_test.go.
func NewGraph(name string, positions []Point, radioRange float64) (*Graph, error) {
	if err := validateGraphInput(positions, radioRange); err != nil {
		return nil, err
	}
	edges, degree := unitDiskEdges(positions, radioRange)
	return assembleGraph(name, positions, radioRange, edges, degree), nil
}

// newGraphNaive is the original O(n²) all-pairs reference implementation.
// It is retained solely so the property/equivalence tests can pin the
// spatial-hash path byte-identical against it; production callers always
// go through NewGraph.
func newGraphNaive(name string, positions []Point, radioRange float64) (*Graph, error) {
	if err := validateGraphInput(positions, radioRange); err != nil {
		return nil, err
	}
	edges, degree := unitDiskEdgesNaive(positions, radioRange)
	return assembleGraph(name, positions, radioRange, edges, degree), nil
}

// unitDiskEdgesNaive enumerates all in-range pairs (a < b) by brute force,
// in (a, b) ascending order.
func unitDiskEdgesNaive(positions []Point, radioRange float64) ([]edge, []int32) {
	degree := make([]int32, len(positions))
	var edges []edge
	for i := range positions {
		for j := i + 1; j < len(positions); j++ {
			if positions[i].DistanceTo(positions[j]) <= radioRange+rangeEps {
				edges = append(edges, edge{NodeID(i), NodeID(j)})
				degree[i]++
				degree[j]++
			}
		}
	}
	return edges, degree
}

// unitDiskEdges enumerates all in-range pairs (a < b) with a spatial hash.
// The edge set — and every distance comparison that decides it — is
// identical to unitDiskEdgesNaive: each surviving pair is accepted by the
// same positions[i].DistanceTo(positions[j]) <= radioRange+rangeEps test
// with i < j, so float rounding matches bit for bit. Edges are emitted in
// ascending a; per-a neighbour order is bucket order, which assembleGraph
// re-sorts.
//
// The cell side exceeds the link limit by a guard proportional to the
// coordinate spread: the coordinate→cell map rounds (p - min)/cell, whose
// absolute error grows with the spread, and the guard keeps two in-range
// nodes within one cell of each other even at extreme spreads (the
// degenerate layouts the fuzz target throws at it). Buckets are a dense
// grid when the field is compact, and a hash map keyed by packed cell
// coordinates when the field is so sparse a dense grid would dwarf n.
func unitDiskEdges(positions []Point, radioRange float64) ([]edge, []int32) {
	n := len(positions)
	degree := make([]int32, n)
	limit := radioRange + rangeEps

	minX, minY := positions[0].X, positions[0].Y
	maxX, maxY := minX, minY
	for _, p := range positions[1:] {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	spread := math.Max(maxX-minX, maxY-minY)
	// cell ≥ limit + spread·2⁻³⁰ ≥ limit + (total rounding error of the
	// coordinate→cell map), so |cell(i) - cell(j)| ≤ 1 per axis for every
	// in-range pair; the 2⁻³⁰ term also caps the grid at 2³⁰ cells/axis.
	cell := limit*(1+0x1p-20) + spread*0x1p-30

	cx := make([]int32, n)
	cy := make([]int32, n)
	var nx, ny int64 = 1, 1
	for i, p := range positions {
		x := int64(math.Floor((p.X - minX) / cell))
		y := int64(math.Floor((p.Y - minY) / cell))
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		cx[i], cy[i] = int32(x), int32(y)
		if x+1 > nx {
			nx = x + 1
		}
		if y+1 > ny {
			ny = y + 1
		}
	}

	edges := make([]edge, 0, 4*n)
	test := func(i, j int32) { // i < j
		if positions[i].DistanceTo(positions[j]) <= limit {
			edges = append(edges, edge{NodeID(i), NodeID(j)})
			degree[i]++
			degree[j]++
		}
	}

	if total := nx * ny; total <= int64(4*n+64) {
		// Dense grid: bucket b = cy·nx + cx, nodes grouped by counting
		// sort (so every bucket lists its nodes in ascending ID order).
		start := make([]int32, total+1)
		for i := 0; i < n; i++ {
			start[int64(cy[i])*nx+int64(cx[i])+1]++
		}
		for b := int64(1); b <= total; b++ {
			start[b] += start[b-1]
		}
		ids := make([]int32, n)
		next := append([]int32(nil), start[:total]...)
		for i := 0; i < n; i++ {
			b := int64(cy[i])*nx + int64(cx[i])
			ids[next[b]] = int32(i)
			next[b]++
		}
		for i := 0; i < n; i++ {
			for dy := int64(-1); dy <= 1; dy++ {
				yy := int64(cy[i]) + dy
				if yy < 0 || yy >= ny {
					continue
				}
				for dx := int64(-1); dx <= 1; dx++ {
					xx := int64(cx[i]) + dx
					if xx < 0 || xx >= nx {
						continue
					}
					b := yy*nx + xx
					for _, j := range ids[start[b]:start[b+1]] {
						if int(j) > i {
							test(int32(i), j)
						}
					}
				}
			}
		}
		return edges, degree
	}

	// Sparse field: hash buckets by packed cell coordinates (≤ 2³⁰ per
	// axis, so the pack is lossless).
	key := func(x, y int64) int64 { return x<<31 | y }
	buckets := make(map[int64][]int32, n)
	for i := 0; i < n; i++ {
		k := key(int64(cx[i]), int64(cy[i]))
		buckets[k] = append(buckets[k], int32(i)) // ascending i per bucket
	}
	for i := 0; i < n; i++ {
		for dy := int64(-1); dy <= 1; dy++ {
			yy := int64(cy[i]) + dy
			if yy < 0 {
				continue
			}
			for dx := int64(-1); dx <= 1; dx++ {
				xx := int64(cx[i]) + dx
				if xx < 0 {
					continue
				}
				for _, j := range buckets[key(xx, yy)] {
					if int(j) > i {
						test(int32(i), j)
					}
				}
			}
		}
	}
	return edges, degree
}

// assembleGraph flattens a precomputed edge set into the CSR adjacency.
// Per-node neighbour lists are sorted ascending regardless of the edge
// enumeration order, so the spatial-hash and naive paths assemble the same
// bytes.
func assembleGraph(name string, positions []Point, radioRange float64, edges []edge, degree []int32) *Graph {
	g := &Graph{
		name:       name,
		positions:  append([]Point(nil), positions...),
		radioRange: radioRange,
		edgeCount:  len(edges),
	}
	g.adjFlat = make([]NodeID, 2*len(edges))
	g.adj = make([][]NodeID, len(positions))
	off := 0
	for i, d := range degree {
		g.adj[i] = g.adjFlat[off : off : off+int(d)]
		off += int(d)
	}
	for _, e := range edges {
		g.adj[e.a] = append(g.adj[e.a], e.b)
		g.adj[e.b] = append(g.adj[e.b], e.a)
	}
	for i := range g.adj {
		if !slices.IsSorted(g.adj[i]) {
			slices.Sort(g.adj[i])
		}
	}
	return g
}

// edgesConnected reports whether the edge set spans all n nodes as a
// single component, via union-find with path halving. RandomGeometric uses
// it to reject disconnected layouts from the raw edge scan, before paying
// for CSR assembly.
func edgesConnected(n int, edges []edge) bool {
	if n == 0 {
		return false
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := n
	for _, e := range edges {
		ra, rb := find(int32(e.a)), find(int32(e.b))
		if ra != rb {
			parent[ra] = rb
			comps--
		}
	}
	return comps == 1
}

// Name returns the human-readable topology name (e.g. "grid-11x11").
func (g *Graph) Name() string { return g.name }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.positions) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int { return g.edgeCount }

// RadioRange returns the communication range used to build the graph.
func (g *Graph) RadioRange() float64 { return g.radioRange }

// Valid reports whether n is a node of the graph.
func (g *Graph) Valid(n NodeID) bool { return n >= 0 && int(n) < len(g.positions) }

// Position returns the position of node n.
func (g *Graph) Position(n NodeID) Point { return g.positions[n] }

// Positions returns a copy of all node positions indexed by NodeID.
func (g *Graph) Positions() []Point {
	return append([]Point(nil), g.positions...)
}

// Neighbors returns the 1-hop neighbourhood of n, sorted by ID. The returned
// slice is shared and must not be modified.
func (g *Graph) Neighbors(n NodeID) []NodeID { return g.adj[n] }

// Degree returns the number of neighbours of n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// HasEdge reports whether nodes a and b are within communication range.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if a == b {
		return false
	}
	neigh := g.adj[a]
	i := sort.Search(len(neigh), func(i int) bool { return neigh[i] >= b })
	return i < len(neigh) && neigh[i] == b
}

// TwoHop returns CG(n): the set of nodes within two hops of n, excluding n
// itself, sorted by ID. This is the collision neighbourhood of Definition 1.
// The whole two-hop CSR is materialised once per graph on first call and
// shared thereafter (schedule validation walks it once per run, and a
// campaign replays thousands of runs on one graph); the returned slice is
// shared and must not be modified.
func (g *Graph) TwoHop(n NodeID) []NodeID {
	g.twoHopOnce.Do(g.buildTwoHop)
	return g.twoHop[n]
}

func (g *Graph) buildTwoHop() {
	n := len(g.positions)
	// Stamp-based membership avoids a map per node; sets stay sorted by a
	// final per-node sort, matching the original per-call construction.
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	var flat []NodeID
	cut := make([]int, n+1)
	for i := 0; i < n; i++ {
		start := len(flat)
		for _, m := range g.adj[i] {
			if stamp[m] != int32(i) && int(m) != i {
				stamp[m] = int32(i)
				flat = append(flat, m)
			}
			for _, o := range g.adj[m] {
				if stamp[o] != int32(i) && int(o) != i {
					stamp[o] = int32(i)
					flat = append(flat, o)
				}
			}
		}
		set := flat[start:]
		sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
		cut[i+1] = len(flat)
	}
	g.twoHopFlat = flat
	g.twoHop = make([][]NodeID, n)
	for i := 0; i < n; i++ {
		g.twoHop[i] = flat[cut[i]:cut[i+1]:cut[i+1]]
	}
}

// BFSFrom returns hop distances from root to every node; unreachable nodes
// get distance -1.
func (g *Graph) BFSFrom(root NodeID) []int {
	dist := make([]int, len(g.positions))
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := make([]NodeID, 0, len(g.positions))
	queue = append(queue, root)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, m := range g.adj[cur] {
			if dist[m] < 0 {
				dist[m] = dist[cur] + 1
				queue = append(queue, m)
			}
		}
	}
	return dist
}

// HopDistance returns the hop distance between a and b, or -1 if
// disconnected.
func (g *Graph) HopDistance(a, b NodeID) int {
	return g.BFSFrom(a)[b]
}

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	for _, d := range g.BFSFrom(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the maximum hop distance over all pairs, or -1 if the
// graph is disconnected.
func (g *Graph) Diameter() int {
	diam := 0
	for n := NodeID(0); int(n) < g.Len(); n++ {
		for _, d := range g.BFSFrom(n) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// ShortestPathNextHops returns the neighbours of n that lie on a shortest
// path from n towards the root of the supplied BFS distance vector, i.e.
// neighbours m with dist[m] == dist[n]-1. This is the neighbour set used by
// condition 3 of the strong DAS definition.
func (g *Graph) ShortestPathNextHops(n NodeID, dist []int) []NodeID {
	var out []NodeID
	for _, m := range g.adj[n] {
		if dist[m] >= 0 && dist[n] >= 0 && dist[m] == dist[n]-1 {
			out = append(out, m)
		}
	}
	return out
}
