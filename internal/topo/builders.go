package topo

import (
	"fmt"
	"math"

	"slpdas/internal/xrand"
)

// DefaultSpacing is the inter-node spacing used in the paper's evaluation
// (Section VI-A): 4.5 m, "allowing only for vertical and horizontal
// messages transmission".
const DefaultSpacing = 4.5

// Grid builds the paper's square-grid topology: side×side nodes in row-major
// order with the given spacing, connected iff within radioRange. With
// radioRange == spacing only the four cardinal neighbours are in range,
// matching the paper's layout.
func Grid(side int, spacing, radioRange float64) (*Graph, error) {
	if side < 2 {
		return nil, fmt.Errorf("topo: grid side must be at least 2, got %d", side)
	}
	positions := make([]Point, 0, side*side)
	for row := 0; row < side; row++ {
		for col := 0; col < side; col++ {
			positions = append(positions, Point{X: float64(col) * spacing, Y: float64(row) * spacing})
		}
	}
	return NewGraph(fmt.Sprintf("grid-%dx%d", side, side), positions, radioRange)
}

// DefaultGrid builds a side×side grid with the paper's default spacing and a
// radio range equal to the spacing (4-neighbour connectivity).
func DefaultGrid(side int) (*Graph, error) {
	return Grid(side, DefaultSpacing, DefaultSpacing)
}

// GridIndex returns the NodeID at (row, col) of a side×side grid.
func GridIndex(side, row, col int) NodeID {
	return NodeID(row*side + col)
}

// GridCoord returns the (row, col) of a node in a side×side grid.
func GridCoord(side int, n NodeID) (row, col int) {
	return int(n) / side, int(n) % side
}

// GridCentre returns the centre node of a side×side grid, the paper's sink
// placement. For even sides it is the upper-left of the four central nodes.
func GridCentre(side int) NodeID {
	return GridIndex(side, side/2, side/2)
}

// GridTopLeft returns node (0,0), the paper's source placement.
func GridTopLeft() NodeID { return 0 }

// Line builds an n-node line topology with the given spacing and range.
func Line(n int, spacing, radioRange float64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: line needs at least 2 nodes, got %d", n)
	}
	positions := make([]Point, n)
	for i := range positions {
		positions[i] = Point{X: float64(i) * spacing}
	}
	return NewGraph(fmt.Sprintf("line-%d", n), positions, radioRange)
}

// Ring builds an n-node ring topology: nodes evenly spaced on a circle with
// circumference n*spacing, radio range chosen by the caller. With
// radioRange slightly above spacing each node has exactly two neighbours.
func Ring(n int, spacing, radioRange float64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs at least 3 nodes, got %d", n)
	}
	radius := float64(n) * spacing / (2 * math.Pi)
	positions := make([]Point, n)
	for i := range positions {
		theta := 2 * math.Pi * float64(i) / float64(n)
		positions[i] = Point{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)}
	}
	return NewGraph(fmt.Sprintf("ring-%d", n), positions, radioRange)
}

// RandomGeometric builds an n-node random geometric graph: positions drawn
// uniformly from a width×height rectangle, connected iff within radioRange.
// The layout is deterministic for a given seed. It retries a bounded number
// of times to obtain a connected graph and returns an error otherwise.
func RandomGeometric(n int, width, height, radioRange float64, seed uint64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: random geometric graph needs at least 2 nodes, got %d", n)
	}
	// Raw PCG seeding, not xrand.New label mixing: this stream layout
	// predates xrand and is pinned by the committed topology goldens.
	rng := xrand.NewRaw(seed, 0x9e3779b97f4a7c15)
	const maxAttempts = 64
	positions := make([]Point, n)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		for i := range positions {
			positions[i] = Point{X: rng.Float64() * width, Y: rng.Float64() * height}
		}
		if err := validateGraphInput(positions, radioRange); err != nil {
			return nil, err
		}
		// Rejected layouts only pay for the raw edge scan plus a
		// union-find connectivity pass — CSR assembly (the allocation-
		// heavy half of construction) happens once, on the accepted
		// layout.
		edges, degree := unitDiskEdges(positions, radioRange)
		if !edgesConnected(n, edges) {
			continue
		}
		return assembleGraph(fmt.Sprintf("rgg-%d", n), positions, radioRange, edges, degree), nil
	}
	return nil, fmt.Errorf("topo: failed to build a connected random geometric graph (n=%d range=%.2f) after %d attempts", n, radioRange, maxAttempts)
}
