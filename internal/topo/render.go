package topo

import (
	"fmt"
	"strings"
)

// RenderGrid renders a side×side grid topology as an ASCII map, labelling
// each node with the string returned by label. Labels are right-aligned in
// fixed-width cells. It is used by the inspection tools and the wildlife
// example to visualise slot assignments and attacker positions.
func RenderGrid(side int, label func(NodeID) string) string {
	width := 1
	labels := make([]string, side*side)
	for n := range labels {
		labels[n] = label(NodeID(n))
		if len(labels[n]) > width {
			width = len(labels[n])
		}
	}
	var b strings.Builder
	b.Grow(side * side * (width + 1))
	for row := 0; row < side; row++ {
		for col := 0; col < side; col++ {
			if col > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%*s", width, labels[int(GridIndex(side, row, col))])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
