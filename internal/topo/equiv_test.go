package topo

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// graphsIdentical asserts every byte of the CSR adjacency matches between
// the spatial-hash and naive constructions: same edge count, same flat
// neighbour array, same per-node slice boundaries.
func graphsIdentical(t *testing.T, label string, fast, ref *Graph) {
	t.Helper()
	if fast.Len() != ref.Len() {
		t.Fatalf("%s: node count %d != %d", label, fast.Len(), ref.Len())
	}
	if fast.EdgeCount() != ref.EdgeCount() {
		t.Fatalf("%s: edge count %d != %d", label, fast.EdgeCount(), ref.EdgeCount())
	}
	if len(fast.adjFlat) != len(ref.adjFlat) {
		t.Fatalf("%s: adjFlat length %d != %d", label, len(fast.adjFlat), len(ref.adjFlat))
	}
	for i, v := range fast.adjFlat {
		if v != ref.adjFlat[i] {
			t.Fatalf("%s: adjFlat[%d] = %d, want %d", label, i, v, ref.adjFlat[i])
		}
	}
	for n := 0; n < fast.Len(); n++ {
		a, b := fast.adj[n], ref.adj[n]
		if len(a) != len(b) {
			t.Fatalf("%s: node %d degree %d != %d", label, n, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("%s: node %d neighbour[%d] = %d, want %d", label, n, k, a[k], b[k])
			}
		}
	}
}

// checkEquivalent builds the same layout through both paths and pins them
// byte-identical.
func checkEquivalent(t *testing.T, label string, positions []Point, radioRange float64) {
	t.Helper()
	fast, errFast := NewGraph(label, positions, radioRange)
	ref, errRef := newGraphNaive(label, positions, radioRange)
	if (errFast == nil) != (errRef == nil) {
		t.Fatalf("%s: error mismatch: fast=%v naive=%v", label, errFast, errRef)
	}
	if errFast != nil {
		return
	}
	graphsIdentical(t, label, fast, ref)
}

// TestSpatialHashMatchesNaiveStructured pins the spatial-hash CSR against
// the naive all-pairs reference on the structured builders, including the
// edge-of-range regimes the builders exercise (grid spacing == range, ring
// spacing just under range).
func TestSpatialHashMatchesNaiveStructured(t *testing.T) {
	for _, side := range []int{2, 3, 5, 11, 17} {
		positions := make([]Point, 0, side*side)
		for row := 0; row < side; row++ {
			for col := 0; col < side; col++ {
				positions = append(positions, Point{X: float64(col) * DefaultSpacing, Y: float64(row) * DefaultSpacing})
			}
		}
		checkEquivalent(t, fmt.Sprintf("grid-%d", side), positions, DefaultSpacing)
		// Diagonal neighbours in range too.
		checkEquivalent(t, fmt.Sprintf("grid8-%d", side), positions, DefaultSpacing*1.5)
	}
	for _, n := range []int{2, 7, 64, 301} {
		positions := make([]Point, n)
		for i := range positions {
			positions[i] = Point{X: float64(i) * 3.0}
		}
		checkEquivalent(t, fmt.Sprintf("line-%d", n), positions, 3.0)
		checkEquivalent(t, fmt.Sprintf("line2hop-%d", n), positions, 6.0)
	}
	for _, n := range []int{3, 12, 100} {
		radius := float64(n) * 2.0 / (2 * math.Pi)
		positions := make([]Point, n)
		for i := range positions {
			theta := 2 * math.Pi * float64(i) / float64(n)
			positions[i] = Point{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)}
		}
		checkEquivalent(t, fmt.Sprintf("ring-%d", n), positions, 2.05)
	}
}

// TestSpatialHashMatchesNaiveRandom sweeps randomized RGG layouts across
// sizes and densities, plus radio ranges chosen a hair above and below
// actual pairwise distances so the rangeEps boundary is exercised on both
// sides.
func TestSpatialHashMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xdecade, 0xfeed))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.IntN(400)
		side := 1.0 + rng.Float64()*100
		positions := make([]Point, n)
		for i := range positions {
			positions[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		}
		r := 0.5 + rng.Float64()*side/3
		checkEquivalent(t, fmt.Sprintf("rgg-trial%d", trial), positions, r)

		// Range exactly at (and epsilon around) a realised distance: the
		// accept/reject decision for that pair must match bit for bit.
		i, j := rng.IntN(n), rng.IntN(n)
		if i != j {
			d := positions[i].DistanceTo(positions[j])
			for _, rr := range []float64{d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)), d - rangeEps, d + rangeEps} {
				if rr > 0 && !math.IsInf(rr, 0) {
					checkEquivalent(t, fmt.Sprintf("rgg-trial%d-edge", trial), positions, rr)
				}
			}
		}
	}
}

// TestSpatialHashSparseFallback forces the sparse (map-bucketed) path:
// clusters separated by distances vastly larger than the radio range make
// a dense cell grid enormously bigger than n.
func TestSpatialHashSparseFallback(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	var positions []Point
	for c := 0; c < 8; c++ {
		cxo := float64(c%4) * 1e7
		cyo := float64(c/4) * 1e7
		for k := 0; k < 25; k++ {
			positions = append(positions, Point{X: cxo + rng.Float64()*10, Y: cyo + rng.Float64()*10})
		}
	}
	checkEquivalent(t, "sparse-clusters", positions, 2.5)
	// And an extreme spread with a tiny range.
	positions = append(positions, Point{X: 1e12, Y: -3e11})
	checkEquivalent(t, "sparse-extreme", positions, 0.001)
}

// TestNewGraphRejectsNonFinite is the bugfix table test: NaN/±Inf
// coordinates (or a non-finite radio range) must be rejected loudly
// instead of silently isolating the node.
func TestNewGraphRejectsNonFinite(t *testing.T) {
	ok := []Point{{0, 0}, {1, 1}}
	cases := []struct {
		name      string
		positions []Point
		r         float64
		wantErr   bool
	}{
		{"finite", ok, 2, false},
		{"nan-x", []Point{{math.NaN(), 0}, {1, 1}}, 2, true},
		{"nan-y", []Point{{0, 0}, {1, math.NaN()}}, 2, true},
		{"pos-inf-x", []Point{{math.Inf(1), 0}, {1, 1}}, 2, true},
		{"neg-inf-y", []Point{{0, 0}, {1, math.Inf(-1)}}, 2, true},
		{"nan-range", ok, math.NaN(), true},
		{"inf-range", ok, math.Inf(1), true},
		{"neg-range", ok, -1, true},
		{"zero-range", ok, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := NewGraph(tc.name, tc.positions, tc.r)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("NewGraph(%s) accepted non-finite input; degree(0)=%d", tc.name, g.Degree(0))
				}
				return
			}
			if err != nil {
				t.Fatalf("NewGraph(%s): %v", tc.name, err)
			}
		})
	}
}

// TestEdgesConnectedMatchesBFS pins the union-find connectivity check used
// by RandomGeometric against the Graph BFS definition on random layouts.
func TestEdgesConnectedMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(120)
		positions := make([]Point, n)
		for i := range positions {
			positions[i] = Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		}
		r := 1 + rng.Float64()*8
		edges, degree := unitDiskEdges(positions, r)
		g := assembleGraph("uf", positions, r, edges, degree)
		if got, want := edgesConnected(n, edges), g.Connected(); got != want {
			t.Fatalf("trial %d: edgesConnected=%v but BFS Connected=%v (n=%d r=%.3f)", trial, got, want, n, r)
		}
	}
}

// FuzzSpatialHashEquivalence fuzzes degenerate layouts — co-located
// points, all-isolated scatters, one giant component, huge coordinate
// spreads — and requires the spatial-hash CSR to stay byte-identical to
// the naive reference.
func FuzzSpatialHashEquivalence(f *testing.F) {
	// Co-located points.
	f.Add(uint64(1), 8, 0.0, 5.0)
	// All isolated: spacing far beyond range.
	f.Add(uint64(2), 16, 1e6, 0.5)
	// One giant component: dense cloud, generous range.
	f.Add(uint64(3), 64, 10.0, 30.0)
	// Extreme spread with moderate range (sparse bucket path).
	f.Add(uint64(4), 32, 1e15, 3.0)
	f.Fuzz(func(t *testing.T, seed uint64, n int, side, radioRange float64) {
		if n < 1 || n > 256 {
			return
		}
		if !(radioRange > 0) || math.IsInf(radioRange, 0) {
			return
		}
		if math.IsNaN(side) || math.IsInf(side, 0) || math.Abs(side) > 1e300 {
			return
		}
		rng := rand.New(rand.NewPCG(seed, 99))
		positions := make([]Point, n)
		for i := range positions {
			positions[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		}
		// A quarter of the layouts collapse half their points onto point 0
		// to stress co-location inside one bucket.
		if seed%4 == 0 {
			for i := 1; i < n; i += 2 {
				positions[i] = positions[0]
			}
		}
		checkEquivalent(t, "fuzz", positions, radioRange)
	})
}
