package topo

import (
	"math"
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, side int) *Graph {
	t.Helper()
	g, err := DefaultGrid(side)
	if err != nil {
		t.Fatalf("DefaultGrid(%d): %v", side, err)
	}
	return g
}

func TestGridNodeAndEdgeCounts(t *testing.T) {
	for _, side := range []int{2, 3, 11, 15, 21} {
		g := mustGrid(t, side)
		if got, want := g.Len(), side*side; got != want {
			t.Errorf("grid %d: Len() = %d, want %d", side, got, want)
		}
		// A side×side 4-neighbour grid has 2*side*(side-1) edges.
		if got, want := g.EdgeCount(), 2*side*(side-1); got != want {
			t.Errorf("grid %d: EdgeCount() = %d, want %d", side, got, want)
		}
	}
}

func TestGridCardinalNeighboursOnly(t *testing.T) {
	g := mustGrid(t, 5)
	centre := GridIndex(5, 2, 2)
	neigh := g.Neighbors(centre)
	want := []NodeID{GridIndex(5, 1, 2), GridIndex(5, 2, 1), GridIndex(5, 2, 3), GridIndex(5, 3, 2)}
	if len(neigh) != len(want) {
		t.Fatalf("centre neighbours = %v, want %v", neigh, want)
	}
	for i, n := range want {
		if neigh[i] != n {
			t.Errorf("neighbour[%d] = %d, want %d", i, neigh[i], n)
		}
	}
	// Diagonal must not be connected at range == spacing.
	if g.HasEdge(centre, GridIndex(5, 1, 1)) {
		t.Error("diagonal neighbour within range; want cardinal connectivity only")
	}
}

func TestGridCornerDegree(t *testing.T) {
	g := mustGrid(t, 11)
	if got := g.Degree(GridTopLeft()); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if got := g.Degree(GridCentre(11)); got != 4 {
		t.Errorf("centre degree = %d, want 4", got)
	}
}

func TestGridCoordRoundTrip(t *testing.T) {
	const side = 15
	for n := NodeID(0); int(n) < side*side; n++ {
		row, col := GridCoord(side, n)
		if GridIndex(side, row, col) != n {
			t.Fatalf("GridIndex(GridCoord(%d)) = %d", n, GridIndex(side, row, col))
		}
	}
}

func TestBFSDistancesOnGrid(t *testing.T) {
	const side = 11
	g := mustGrid(t, side)
	dist := g.BFSFrom(GridCentre(side))
	cr, cc := GridCoord(side, GridCentre(side))
	for n := range dist {
		row, col := GridCoord(side, NodeID(n))
		manhattan := abs(row-cr) + abs(col-cc)
		if dist[n] != manhattan {
			t.Fatalf("dist[%d] = %d, want Manhattan %d", n, dist[n], manhattan)
		}
	}
	// The paper's Δss for an 11×11 grid: top-left source to centre sink.
	if got := dist[GridTopLeft()]; got != 10 {
		t.Errorf("Δss = %d, want 10", got)
	}
}

func TestHopDistanceSymmetry(t *testing.T) {
	g, err := RandomGeometric(40, 50, 50, 12, 7)
	if err != nil {
		t.Fatalf("RandomGeometric: %v", err)
	}
	for a := NodeID(0); int(a) < g.Len(); a += 7 {
		for b := NodeID(0); int(b) < g.Len(); b += 5 {
			if g.HopDistance(a, b) != g.HopDistance(b, a) {
				t.Fatalf("asymmetric hop distance between %d and %d", a, b)
			}
		}
	}
}

func TestTwoHopMatchesBruteForce(t *testing.T) {
	g, err := RandomGeometric(60, 60, 60, 13, 3)
	if err != nil {
		t.Fatalf("RandomGeometric: %v", err)
	}
	for n := NodeID(0); int(n) < g.Len(); n++ {
		want := make(map[NodeID]bool)
		dist := g.BFSFrom(n)
		for m := range dist {
			if dist[m] == 1 || dist[m] == 2 {
				want[NodeID(m)] = true
			}
		}
		got := g.TwoHop(n)
		if len(got) != len(want) {
			t.Fatalf("node %d: TwoHop size %d, want %d", n, len(got), len(want))
		}
		for _, m := range got {
			if !want[m] {
				t.Fatalf("node %d: TwoHop contains %d which is not at distance 1 or 2", n, m)
			}
		}
	}
}

func TestTwoHopExcludesSelf(t *testing.T) {
	g := mustGrid(t, 5)
	for n := NodeID(0); int(n) < g.Len(); n++ {
		for _, m := range g.TwoHop(n) {
			if m == n {
				t.Fatalf("TwoHop(%d) contains the node itself", n)
			}
		}
	}
}

func TestEdgeDistanceProperty(t *testing.T) {
	// For every edge (a,b), |dist(root,a) - dist(root,b)| <= 1.
	check := func(seed uint64) bool {
		g, err := RandomGeometric(30, 40, 40, 12, seed)
		if err != nil {
			return true // connectivity retry exhausted; skip
		}
		dist := g.BFSFrom(0)
		for a := NodeID(0); int(a) < g.Len(); a++ {
			for _, b := range g.Neighbors(a) {
				if d := dist[a] - dist[b]; d < -1 || d > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLineAndRing(t *testing.T) {
	line, err := Line(10, 4.5, 4.5)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	if line.Degree(0) != 1 || line.Degree(5) != 2 {
		t.Errorf("line degrees: end=%d mid=%d, want 1 and 2", line.Degree(0), line.Degree(5))
	}
	if got := line.HopDistance(0, 9); got != 9 {
		t.Errorf("line hop distance = %d, want 9", got)
	}

	ring, err := Ring(12, 4.5, 5.0)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	for n := NodeID(0); int(n) < ring.Len(); n++ {
		if ring.Degree(n) != 2 {
			t.Fatalf("ring node %d degree = %d, want 2", n, ring.Degree(n))
		}
	}
	if got := ring.HopDistance(0, 6); got != 6 {
		t.Errorf("ring hop distance = %d, want 6", got)
	}
}

func TestDiameterGrid(t *testing.T) {
	g := mustGrid(t, 5)
	if got := g.Diameter(); got != 8 {
		t.Errorf("5x5 grid diameter = %d, want 8", got)
	}
}

func TestShortestPathNextHops(t *testing.T) {
	const side = 5
	g := mustGrid(t, side)
	dist := g.BFSFrom(GridCentre(side))
	// The corner has two shortest-path next hops towards the centre.
	hops := g.ShortestPathNextHops(GridTopLeft(), dist)
	if len(hops) != 2 {
		t.Fatalf("corner next hops = %v, want 2 entries", hops)
	}
	for _, m := range hops {
		if dist[m] != dist[GridTopLeft()]-1 {
			t.Errorf("next hop %d at distance %d, want %d", m, dist[m], dist[GridTopLeft()]-1)
		}
	}
	// The sink itself has none.
	if hops := g.ShortestPathNextHops(GridCentre(side), dist); len(hops) != 0 {
		t.Errorf("sink next hops = %v, want none", hops)
	}
}

func TestInvalidBuilders(t *testing.T) {
	if _, err := Grid(1, 4.5, 4.5); err == nil {
		t.Error("Grid(1) succeeded, want error")
	}
	if _, err := NewGraph("x", nil, 4.5); err == nil {
		t.Error("NewGraph with no positions succeeded, want error")
	}
	if _, err := NewGraph("x", []Point{{}}, -1); err == nil {
		t.Error("NewGraph with negative range succeeded, want error")
	}
	if _, err := Line(1, 4.5, 4.5); err == nil {
		t.Error("Line(1) succeeded, want error")
	}
	if _, err := Ring(2, 4.5, 4.5); err == nil {
		t.Error("Ring(2) succeeded, want error")
	}
	if _, err := RandomGeometric(1, 10, 10, 5, 1); err == nil {
		t.Error("RandomGeometric(1) succeeded, want error")
	}
	// Disconnected by construction: tiny range, many retries exhausted.
	if _, err := RandomGeometric(50, 1000, 1000, 1, 1); err == nil {
		t.Error("RandomGeometric with tiny range succeeded, want connectivity error")
	}
}

func TestRenderGrid(t *testing.T) {
	out := RenderGrid(2, func(n NodeID) string { return map[NodeID]string{0: "a", 1: "bb", 2: "c", 3: "d"}[n] })
	want := " a bb\n c  d\n"
	if out != want {
		t.Errorf("RenderGrid = %q, want %q", out, want)
	}
}

func TestPointDistance(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.DistanceTo(q); math.Abs(d-5) > 1e-12 {
		t.Errorf("distance = %v, want 5", d)
	}
	if s := q.String(); s != "(3.00, 4.00)" {
		t.Errorf("String = %q", s)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
