package attacker

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"slpdas/internal/topo"
)

// Strategy is one attacker decision behaviour — the D of the
// (R, H, M, s0, D)-attacker, packaged so hunts can be parameterised by
// name. A Strategy instance belongs to exactly one attacker: strategies
// may keep state across decisions (Backtrack does), so every eavesdropper
// gets a fresh instance from its Factory.
type Strategy interface {
	// Decide is the Decide action of Figure 1; see Decision for the
	// contract. Returning cur means "stay" (which still consumes a move).
	Decide(heard []Heard, history []topo.NodeID, cur topo.NodeID, rng *rand.Rand) topo.NodeID
}

// GraphAware strategies are bound to the hunt's topology and start
// location once, before the first decision. RandomWalk needs the
// neighbourhood structure; Cautious precomputes the hop gradient from s0.
type GraphAware interface {
	Bind(g *topo.Graph, start topo.NodeID)
}

// PeriodAware strategies are consulted at every period boundary (the
// NextP action): PeriodEnd reports whether the attacker relocated during
// the period that just ended and returns a relocation target for the
// boundary itself — the previous location for Backtrack's retreat, or cur
// to stay put. Boundary moves do not consume the new period's move
// budget: the attacker walks during the silence between periods.
type PeriodAware interface {
	PeriodEnd(moved bool, cur topo.NodeID, path []topo.NodeID, rng *rand.Rand) topo.NodeID
}

// Factory creates a fresh Strategy instance for one attacker.
type Factory func() Strategy

// Info describes one registered strategy for listings and documentation.
type Info struct {
	Name    string
	Summary string
}

// DefaultStrategy is the registry name of the paper's first-heard
// attacker, the default everywhere a strategy is not named explicitly.
const DefaultStrategy = "first-heard"

type registryEntry struct {
	summary string
	factory Factory
}

var registry = map[string]registryEntry{}

// Register adds a named strategy to the registry. It panics on a
// duplicate name: registration happens at init time and a collision is a
// programming error.
func Register(name, summary string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("attacker: duplicate strategy %q", name))
	}
	registry[name] = registryEntry{summary: summary, factory: f}
}

// Strategies lists every registered strategy, sorted by name.
func Strategies() []Info {
	out := make([]Info, 0, len(registry))
	for name, e := range registry {
		out = append(out, Info{Name: name, Summary: e.summary})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StrategyNames lists the registered names, sorted.
func StrategyNames() []string {
	infos := Strategies()
	out := make([]string, len(infos))
	for i, in := range infos {
		out[i] = in.Name
	}
	return out
}

// ByName resolves a registered strategy name to its factory.
func ByName(name string) (Factory, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("attacker: unknown strategy %q (have %v)", name, StrategyNames())
	}
	return e.factory, nil
}

// DecisionStrategy wraps a plain Decision function as a stateless
// Strategy, for hunts parameterised by function rather than by name.
func DecisionStrategy(d Decision) Strategy { return funcStrategy{d} }

// funcStrategy adapts a stateless Decision function.
type funcStrategy struct{ d Decision }

func (s funcStrategy) Decide(heard []Heard, history []topo.NodeID, cur topo.NodeID, rng *rand.Rand) topo.NodeID {
	return s.d(heard, history, cur, rng)
}

// Patient commits only to corroborated origins: it moves to the origin
// heard most often in the R-message buffer, and only once some origin has
// been heard at least twice. With R = 1 no origin can corroborate, so a
// patient attacker needs R >= 2 to ever leave s0 — the paper's trade-off
// between reaction speed and resistance to decoy traffic.
type Patient struct{}

// Decide implements Strategy.
func (Patient) Decide(heard []Heard, _ []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID {
	best, bestCount := cur, 1
	for _, h := range heard {
		count := 0
		for _, other := range heard {
			if other.From == h.From {
				count++
			}
		}
		// Strictly-greater keeps the earliest origin on ties, so the
		// decision is deterministic in arrival order.
		if count > bestCount {
			best, bestCount = h.From, count
		}
	}
	return best
}

// Backtrack chases like first-heard but retreats along its own approach
// trail when a TDMA period yields no relocation — silence suggests the
// gradient led into a dead end (a decoy path), so it walks back one hop
// per silent period and resumes the chase from there.
type Backtrack struct {
	trail []topo.NodeID
}

// Decide implements Strategy: first-heard, recording the approach trail.
func (b *Backtrack) Decide(heard []Heard, _ []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID {
	if len(heard) == 0 {
		return cur
	}
	next := heard[0].From
	if next != cur {
		b.trail = append(b.trail, cur)
	}
	return next
}

// PeriodEnd implements PeriodAware: after a silent period, pop the trail.
func (b *Backtrack) PeriodEnd(moved bool, cur topo.NodeID, _ []topo.NodeID, _ *rand.Rand) topo.NodeID {
	if moved || len(b.trail) == 0 {
		return cur
	}
	prev := b.trail[len(b.trail)-1]
	b.trail = b.trail[:len(b.trail)-1]
	return prev
}

// RandomWalk ignores overheard traffic entirely and steps to a uniformly
// random neighbour on every decision — the noise-floor baseline: any
// strategy that cannot beat a random walker extracts nothing from the
// traffic pattern.
type RandomWalk struct {
	g *topo.Graph
}

// Bind implements GraphAware.
func (w *RandomWalk) Bind(g *topo.Graph, _ topo.NodeID) { w.g = g }

// Decide implements Strategy.
func (w *RandomWalk) Decide(_ []Heard, _ []topo.NodeID, cur topo.NodeID, rng *rand.Rand) topo.NodeID {
	ns := w.g.Neighbors(cur)
	if len(ns) == 0 {
		return cur
	}
	return ns[rng.IntN(len(ns))]
}

// Cautious only commits to moves that strictly increase its hop distance
// from s0: the hunt starts at the sink, and data traffic radiates inward
// from the source, so an origin that sounds strictly closer to the source
// is one strictly farther from the start. A cautious attacker never
// retreats or sidesteps — it cannot be lured back by decoy traffic behind
// it, at the price of stalling whenever every audible origin is lateral.
type Cautious struct {
	dist []int // hop distance from s0, by node
}

// Bind implements GraphAware: precompute the gradient from the start.
func (c *Cautious) Bind(g *topo.Graph, start topo.NodeID) { c.dist = g.BFSFrom(start) }

// Decide implements Strategy.
func (c *Cautious) Decide(heard []Heard, _ []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID {
	for _, h := range heard {
		if c.dist[h.From] > c.dist[cur] {
			return h.From
		}
	}
	return cur
}

func init() {
	Register(DefaultStrategy, "move to the origin of the first message heard (the paper's D)",
		func() Strategy { return funcStrategy{FirstHeard} })
	Register("random-heard", "move to a uniformly random heard origin",
		func() Strategy { return funcStrategy{RandomHeard} })
	Register("unvisited-first", "first heard origin not in the H-window, falling back to first heard",
		func() Strategy { return funcStrategy{UnvisitedFirst} })
	Register("patient", "commit only once an origin is heard twice in the R-buffer (needs R >= 2)",
		func() Strategy { return Patient{} })
	Register("backtrack", "first-heard, retreating one hop along its trail per silent period",
		func() Strategy { return &Backtrack{} })
	Register("random-walk", "uniform random neighbour each decision; the noise-floor baseline",
		func() Strategy { return &RandomWalk{} })
	Register("cautious", "move only to origins strictly farther from s0 (never lured backwards)",
		func() Strategy { return &Cautious{} })
}
