package attacker

import (
	"math/rand/v2"
	"testing"
	"time"

	"slpdas/internal/des"
	"slpdas/internal/radio"
	"slpdas/internal/topo"
)

// lineWorld builds a 0-1-2-3-4 line with a medium and an attacker at node 4
// hunting node 0.
func lineWorld(t *testing.T, params Params, d Decision) (*des.Simulator, *topo.Graph, *radio.Medium, *Attacker) {
	t.Helper()
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	sim := des.New()
	m := radio.New(sim, g, 1)
	params.Start = 4
	a, err := New(g, params, d, 0, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.AddObserver(a)
	return sim, g, m, a
}

func TestParamsValidate(t *testing.T) {
	for _, bad := range []Params{{R: 0, M: 1}, {R: 1, M: 0}, {R: 1, M: 1, H: -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("params %+v validated", bad)
		}
	}
	if err := DefaultParams(0).Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestNewRejectsInvalidNodes(t *testing.T) {
	g, err := topo.Line(3, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	if _, err := New(g, Params{R: 1, M: 1, Start: 99}, nil, 0, 1); err == nil {
		t.Error("invalid start accepted")
	}
	if _, err := New(g, Params{R: 1, M: 1, Start: 0}, nil, 99, 1); err == nil {
		t.Error("invalid source accepted")
	}
}

func TestInactiveAttackerIgnoresTraffic(t *testing.T) {
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 1}, FirstHeard)
	sim.ScheduleAfter(0, func() { m.Broadcast(3, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 4 {
		t.Errorf("inactive attacker moved to %d", a.Current())
	}
}

func TestFollowsFirstHeardTransmission(t *testing.T) {
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 1}, FirstHeard)
	a.Activate()
	// In one period node 3 transmits first (it is audible from 4).
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 3 {
		t.Errorf("attacker at %d, want 3", a.Current())
	}
}

func TestOneMovePerPeriod(t *testing.T) {
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 1}, FirstHeard)
	a.Activate()
	// Two audible transmissions in the same period: only the first counts.
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	sim.ScheduleAfter(2*time.Second, func() { m.Broadcast(2, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 3 {
		t.Errorf("attacker at %d, want 3 (M=1 exhausted)", a.Current())
	}
	// After a period reset it may move again.
	a.NextPeriod()
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(2, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 2 {
		t.Errorf("attacker at %d after period reset, want 2", a.Current())
	}
}

func TestChaseEndsInCapture(t *testing.T) {
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 1}, FirstHeard)
	a.Activate()
	var capturedAt time.Duration
	a.OnCapture = func(at time.Duration) { capturedAt = at }
	// Period p: node (4-p) transmits; the attacker walks down the line.
	for p := 0; p < 4; p++ {
		p := p
		at := time.Duration(p+1) * 5 * time.Second
		if _, err := sim.Schedule(at, func() {
			a.NextPeriod()
			m.Broadcast(topo.NodeID(3-p), []byte{1})
		}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	captured, at := a.Captured()
	if !captured {
		t.Fatal("attacker did not capture")
	}
	if at != capturedAt || capturedAt == 0 {
		t.Errorf("capture times inconsistent: %v vs %v", at, capturedAt)
	}
	wantPath := []topo.NodeID{4, 3, 2, 1, 0}
	path := a.Path()
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", path, wantPath)
	}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", path, wantPath)
		}
	}
}

func TestRBoundsMessageBuffer(t *testing.T) {
	// R=2: the attacker decides only after hearing two messages.
	sim, _, m, a := lineWorld(t, Params{R: 2, M: 1}, FirstHeard)
	a.Activate()
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 4 {
		t.Errorf("moved after one message with R=2")
	}
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 3 {
		t.Errorf("attacker at %d, want 3 after R messages", a.Current())
	}
}

func TestPeriodResetDiscardsPartialBuffer(t *testing.T) {
	sim, _, m, a := lineWorld(t, Params{R: 2, M: 1}, FirstHeard)
	a.Activate()
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	sim.ScheduleAfter(2*time.Second, func() { a.NextPeriod() }) // discard
	sim.ScheduleAfter(3*time.Second, func() { m.Broadcast(3, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 4 {
		t.Errorf("attacker moved on a stale buffer: at %d", a.Current())
	}
}

func TestHistoryRing(t *testing.T) {
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 1, H: 2}, FirstHeard)
	a.Activate()
	for p := 0; p < 3; p++ {
		p := p
		at := time.Duration(p+1) * time.Second
		if _, err := sim.Schedule(at, func() {
			a.NextPeriod()
			m.Broadcast(topo.NodeID(3-p), []byte{1})
		}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Visited 4 -> 3 -> 2 -> 1; history keeps the last H=2 departures.
	h := a.History()
	if len(h) != 2 || h[0] != 3 || h[1] != 2 {
		t.Errorf("history = %v, want [3 2]", h)
	}
}

func TestHistoryNotPollutedByStaysAndRejectedMoves(t *testing.T) {
	// Regression: decideMove used to append cur to the H-window on every
	// decision, including "stay" and edge-rejected moves, flushing genuine
	// visit history out of small windows. With H=2, a real move followed by
	// two stays and one teleport attempt must leave the window holding only
	// the genuinely departed location.
	calls := 0
	flaky := func(heard []Heard, _ []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID {
		calls++
		switch calls {
		case 1:
			return heard[0].From // real move 4 -> 3
		case 2, 3:
			return cur // stay twice
		default:
			return 0 // two hops away: edge-rejected
		}
	}
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 1, H: 2}, flaky)
	a.Activate()
	for p := 0; p < 4; p++ {
		at := time.Duration(p+1) * time.Second
		if _, err := sim.Schedule(at, func() {
			a.NextPeriod()
			m.Broadcast(3, []byte{1})
		}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 4 {
		t.Fatalf("decision called %d times, want 4", calls)
	}
	if a.Current() != 3 {
		t.Fatalf("attacker at %d, want 3", a.Current())
	}
	h := a.History()
	if len(h) != 1 || h[0] != 4 {
		t.Errorf("history = %v, want [4] (only the genuine departure)", h)
	}
}

func TestMMovesWithinOnePeriod(t *testing.T) {
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 2}, FirstHeard)
	a.Activate()
	// Same period: 3 transmits, then (after the attacker moved to 3) 2.
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	sim.ScheduleAfter(2*time.Second, func() { m.Broadcast(2, []byte{1}) })
	sim.ScheduleAfter(3*time.Second, func() { m.Broadcast(1, []byte{1}) }) // M exhausted
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 2 {
		t.Errorf("attacker at %d, want 2 (two moves, then budget spent)", a.Current())
	}
}

func TestCannotTeleportToUnheardNeighbour(t *testing.T) {
	// Node 1 is two hops from the attacker at 4 — not reachable in one
	// move. Even if a hostile Decision returns it, the attacker must not
	// teleport.
	teleport := func([]Heard, []topo.NodeID, topo.NodeID, *rand.Rand) topo.NodeID { return 1 }
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 1}, teleport)
	a.Activate()
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 4 {
		t.Errorf("attacker teleported to %d", a.Current())
	}
}

func TestStayingConsumesMove(t *testing.T) {
	stay := func(heard []Heard, _ []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID { return cur }
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 1}, stay)
	a.Activate()
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	sim.ScheduleAfter(2*time.Second, func() { m.Broadcast(3, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 4 {
		t.Errorf("attacker at %d, want 4 (stayed)", a.Current())
	}
	if len(a.Path()) != 1 {
		t.Errorf("path = %v, want only the start", a.Path())
	}
}

func TestStartAtSourceCapturedOnActivation(t *testing.T) {
	// Regression: capture used to be detected only inside decideMove after
	// a relocation, so an attacker whose start node IS the source was
	// never marked captured — it had no reason to move. Activation must
	// detect the standing capture and stamp it with the activation time.
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	a, err := New(g, Params{R: 1, M: 1, Start: 0}, FirstHeard, 0, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var capturedAt time.Duration
	fired := 0
	a.OnCapture = func(at time.Duration) { capturedAt = at; fired++ }
	if captured, _ := a.Captured(); captured {
		t.Fatal("captured before activation")
	}
	a.ActivateAt(7 * time.Second)
	captured, at := a.Captured()
	if !captured {
		t.Fatal("attacker starting on the source not captured at activation")
	}
	if at != 7*time.Second || capturedAt != 7*time.Second || fired != 1 {
		t.Errorf("capture at %v (callback %v, fired %d), want 7s once", at, capturedAt, fired)
	}
	if len(a.Path()) != 1 {
		t.Errorf("path = %v, want only the start", a.Path())
	}
}

func TestStartAtSourceStayDecisionStaysCaptured(t *testing.T) {
	// The stay-in-place decision must not disturb a standing capture: the
	// attacker is done hunting and ignores further traffic.
	stay := func(_ []Heard, _ []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID { return cur }
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	sim := des.New()
	m := radio.New(sim, g, 1)
	a, err := New(g, Params{R: 1, M: 1, Start: 0}, stay, 0, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.AddObserver(a)
	fired := 0
	a.OnCapture = func(time.Duration) { fired++ }
	a.ActivateAt(0)
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(1, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if captured, _ := a.Captured(); !captured || fired != 1 {
		t.Errorf("captured=%v fired=%d, want captured exactly once", captured, fired)
	}
	if a.Current() != 0 || len(a.Path()) != 1 {
		t.Errorf("attacker moved after capture: at %d path %v", a.Current(), a.Path())
	}
}

func TestRandomHeardStaysWithinHeardSet(t *testing.T) {
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 1}, RandomHeard)
	a.Activate()
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Current() != 3 {
		t.Errorf("attacker at %d, want 3 (only heard origin)", a.Current())
	}
}

func TestUnvisitedFirstAvoidsHistory(t *testing.T) {
	history := []topo.NodeID{3}
	heard := []Heard{{From: 3}, {From: 2}}
	if got := UnvisitedFirst(heard, history, 4, nil); got != 2 {
		t.Errorf("UnvisitedFirst = %d, want 2", got)
	}
	// All visited: fall back to first heard.
	if got := UnvisitedFirst(heard, []topo.NodeID{3, 2}, 4, nil); got != 3 {
		t.Errorf("UnvisitedFirst fallback = %d, want 3", got)
	}
	// Empty heard: stay.
	if got := UnvisitedFirst(nil, nil, 4, nil); got != 4 {
		t.Errorf("UnvisitedFirst empty = %d, want 4", got)
	}
	if got := FirstHeard(nil, nil, 4, nil); got != 4 {
		t.Errorf("FirstHeard empty = %d, want 4", got)
	}
}

func TestUnvisitedFirstEdgeCases(t *testing.T) {
	// Fallback returning cur — a wasted move: every heard origin is either
	// visited or the current location itself, and the first heard origin
	// IS cur, so the decision burns the move budget standing still.
	heard := []Heard{{From: 4}, {From: 3}}
	if got := UnvisitedFirst(heard, []topo.NodeID{3}, 4, nil); got != 4 {
		t.Errorf("wasted-move fallback = %d, want cur 4", got)
	}
	// Every heard origin is in the history: the fallback takes the first
	// heard origin even though it was visited (re-entering is better than
	// freezing forever).
	heard = []Heard{{From: 2}, {From: 3}}
	if got := UnvisitedFirst(heard, []topo.NodeID{2, 3}, 4, nil); got != 2 {
		t.Errorf("all-visited fallback = %d, want 2 (first heard)", got)
	}
	// History containing the current node must not stop the attacker from
	// taking a genuinely unvisited origin.
	heard = []Heard{{From: 4}, {From: 1}}
	if got := UnvisitedFirst(heard, []topo.NodeID{4}, 4, nil); got != 1 {
		t.Errorf("cur-in-history decision = %d, want 1", got)
	}
	// An unvisited origin equal to cur is skipped in favour of a later
	// unvisited one — moving to where you stand extracts nothing.
	heard = []Heard{{From: 4}, {From: 2}}
	if got := UnvisitedFirst(heard, nil, 4, nil); got != 2 {
		t.Errorf("origin-equals-cur decision = %d, want 2", got)
	}
}

func TestPathCapBoundsRecordingNotTheHunt(t *testing.T) {
	// The capped chase must behave identically to the uncapped one —
	// same capture, same move count, same H-window — with only the
	// recorded walk truncated.
	chase := func(cap int) *Attacker {
		sim, _, m, a := lineWorld(t, Params{R: 1, M: 1, H: 2}, FirstHeard)
		if cap != 0 {
			a.SetPathCap(cap)
		}
		a.Activate()
		for p := 0; p < 4; p++ {
			p := p
			at := time.Duration(p+1) * 5 * time.Second
			if _, err := sim.Schedule(at, func() {
				a.NextPeriod()
				m.Broadcast(topo.NodeID(3-p), []byte{1})
			}); err != nil {
				t.Fatalf("Schedule: %v", err)
			}
		}
		if err := sim.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return a
	}
	full := chase(0)
	if captured, _ := full.Captured(); !captured || full.Moves() != 4 {
		t.Fatalf("uncapped chase: captured=%v moves=%d, want capture in 4 moves",
			full.captured, full.Moves())
	}
	for _, cap := range []int{1, 2, 3, -1} {
		a := chase(cap)
		captured, at := a.Captured()
		fullCaptured, fullAt := full.Captured()
		if captured != fullCaptured || at != fullAt {
			t.Errorf("cap %d changed the capture: %v@%v vs %v@%v", cap, captured, at, fullCaptured, fullAt)
		}
		if a.Moves() != full.Moves() {
			t.Errorf("cap %d changed Moves: %d vs %d", cap, a.Moves(), full.Moves())
		}
		if got, want := a.History(), full.History(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("cap %d changed the H-window: %v vs %v", cap, got, want)
		}
		wantLen := cap
		if cap < 0 {
			wantLen = 1 // negative caps keep s0 alone
		}
		path := a.Path()
		if len(path) != wantLen {
			t.Fatalf("cap %d recorded %v, want the first %d locations", cap, path, wantLen)
		}
		for i := range path {
			if path[i] != full.Path()[i] {
				t.Errorf("cap %d path %v is not a prefix of %v", cap, path, full.Path())
			}
		}
	}
}

func TestSetPathCapTruncatesExistingWalk(t *testing.T) {
	sim, _, m, a := lineWorld(t, Params{R: 1, M: 2}, FirstHeard)
	a.Activate()
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(3, []byte{1}) })
	sim.ScheduleAfter(2*time.Second, func() { m.Broadcast(2, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := a.Path(); len(got) != 3 {
		t.Fatalf("walk = %v, want 3 locations before capping", got)
	}
	a.SetPathCap(2)
	if got := a.Path(); len(got) != 2 || got[0] != 4 || got[1] != 3 {
		t.Errorf("capped walk = %v, want [4 3]", got)
	}
	if a.Moves() != 2 {
		t.Errorf("Moves = %d after capping, want 2", a.Moves())
	}
}
