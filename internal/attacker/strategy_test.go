package attacker

import (
	"testing"
	"time"

	"slpdas/internal/radio"
	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// obsFrom builds a minimal radio observation for direct Overhear tests.
func obsFrom(from topo.NodeID, at time.Duration) radio.Observation {
	return radio.Observation{From: from, At: at}
}

func TestRegistryListsAndResolves(t *testing.T) {
	infos := Strategies()
	if len(infos) < 7 {
		t.Fatalf("registry has %d strategies, want >= 7", len(infos))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Errorf("Strategies not sorted: %q before %q", infos[i-1].Name, infos[i].Name)
		}
	}
	for _, want := range []string{DefaultStrategy, "random-heard", "unvisited-first", "patient", "backtrack", "random-walk", "cautious"} {
		f, err := ByName(want)
		if err != nil {
			t.Errorf("ByName(%q): %v", want, err)
			continue
		}
		if f() == nil {
			t.Errorf("factory for %q built nil", want)
		}
	}
	if _, err := ByName("teleport"); err == nil {
		t.Error("unknown strategy resolved")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(DefaultStrategy, "dup", func() Strategy { return Patient{} })
}

func TestPatientNeedsCorroboration(t *testing.T) {
	p := Patient{}
	// Every origin heard once: no corroboration, stay.
	heard := []Heard{{From: 1}, {From: 2}, {From: 3}}
	if got := p.Decide(heard, nil, 9, nil); got != 9 {
		t.Errorf("uncorroborated Decide = %d, want stay at 9", got)
	}
	// Origin 2 heard twice: commit to it.
	heard = []Heard{{From: 1}, {From: 2}, {From: 2}}
	if got := p.Decide(heard, nil, 9, nil); got != 2 {
		t.Errorf("Decide = %d, want 2 (heard twice)", got)
	}
	// Tie on count: the earliest-heard corroborated origin wins.
	heard = []Heard{{From: 3}, {From: 1}, {From: 3}, {From: 1}}
	if got := p.Decide(heard, nil, 9, nil); got != 3 {
		t.Errorf("tied Decide = %d, want 3 (earliest)", got)
	}
	if got := p.Decide(nil, nil, 9, nil); got != 9 {
		t.Errorf("empty Decide = %d, want stay", got)
	}
}

func TestPatientIntegrationWithR(t *testing.T) {
	// R=3: the attacker hears 2, then 3, then 3 again — patient waits for
	// the full buffer and commits to the corroborated (and adjacent)
	// origin 3, not the first-heard 2.
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	a, err := NewWithStrategy(g, Params{R: 3, M: 1, Start: 4}, Patient{}, 0, 1, 0)
	if err != nil {
		t.Fatalf("NewWithStrategy: %v", err)
	}
	a.Activate()
	a.Overhear(obsFrom(2, time.Second))
	a.Overhear(obsFrom(3, 2*time.Second))
	if a.Current() != 4 {
		t.Fatalf("moved before the R-buffer filled: at %d", a.Current())
	}
	a.Overhear(obsFrom(3, 3*time.Second))
	if a.Current() != 3 {
		t.Errorf("patient attacker at %d, want 3", a.Current())
	}
}

func TestBacktrackRetreatsOnSilentPeriod(t *testing.T) {
	b := &Backtrack{}
	// Advance 4 -> 3 -> 2 via first-heard decisions.
	if got := b.Decide([]Heard{{From: 3}}, nil, 4, nil); got != 3 {
		t.Fatalf("Decide = %d, want 3", got)
	}
	if got := b.Decide([]Heard{{From: 2}}, nil, 3, nil); got != 2 {
		t.Fatalf("Decide = %d, want 2", got)
	}
	// A period with a move: no retreat.
	if got := b.PeriodEnd(true, 2, nil, nil); got != 2 {
		t.Errorf("PeriodEnd(moved) = %d, want stay at 2", got)
	}
	// Silent periods retreat along the trail: 2 -> 3 -> 4, then stall.
	if got := b.PeriodEnd(false, 2, nil, nil); got != 3 {
		t.Errorf("first retreat = %d, want 3", got)
	}
	if got := b.PeriodEnd(false, 3, nil, nil); got != 4 {
		t.Errorf("second retreat = %d, want 4", got)
	}
	if got := b.PeriodEnd(false, 4, nil, nil); got != 4 {
		t.Errorf("empty-trail retreat = %d, want stay at 4", got)
	}
}

func TestBacktrackAttackerWalksBackThroughNextPeriod(t *testing.T) {
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	a, err := NewWithStrategy(g, Params{R: 1, M: 1, Start: 4}, &Backtrack{}, 0, 1, 0)
	if err != nil {
		t.Fatalf("NewWithStrategy: %v", err)
	}
	a.Activate()
	// Hear node 3 directly (simulate the observation path via Overhear).
	a.Overhear(obsFrom(3, time.Second))
	if a.Current() != 3 {
		t.Fatalf("attacker at %d, want 3", a.Current())
	}
	// A period that yielded a move: boundary does not retreat.
	a.NextPeriodAt(5 * time.Second)
	if a.Current() != 3 {
		t.Fatalf("retreated after an active period: at %d", a.Current())
	}
	// A silent period: the boundary retreat returns to 4.
	a.NextPeriodAt(10 * time.Second)
	if a.Current() != 4 {
		t.Errorf("attacker at %d after silent period, want 4 (backtracked)", a.Current())
	}
	wantPath := []topo.NodeID{4, 3, 4}
	path := a.Path()
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", path, wantPath)
	}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", path, wantPath)
		}
	}
}

func TestRandomWalkStepsToANeighbour(t *testing.T) {
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	w := &RandomWalk{}
	w.Bind(g, 2)
	rng := xrand.NewNamed(1, "test")
	for i := 0; i < 50; i++ {
		got := w.Decide(nil, nil, 2, rng)
		if got != 1 && got != 3 {
			t.Fatalf("RandomWalk from 2 stepped to %d, want a neighbour", got)
		}
	}
	// End of the line: only one neighbour.
	for i := 0; i < 10; i++ {
		if got := w.Decide(nil, nil, 0, rng); got != 1 {
			t.Fatalf("RandomWalk from 0 stepped to %d, want 1", got)
		}
	}
}

func TestCautiousOnlyMovesOutward(t *testing.T) {
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	c := &Cautious{}
	c.Bind(g, 4) // hunting outward from node 4, source at 0
	// An origin closer to the start (backwards) is refused.
	if got := c.Decide([]Heard{{From: 4}}, nil, 3, nil); got != 3 {
		t.Errorf("cautious moved backwards to %d", got)
	}
	// An origin strictly farther from the start is taken.
	if got := c.Decide([]Heard{{From: 2}}, nil, 3, nil); got != 2 {
		t.Errorf("cautious refused the outward move: got %d", got)
	}
	// Lateral (same distance) origins are refused: first outward one wins.
	if got := c.Decide([]Heard{{From: 3}, {From: 2}}, nil, 3, nil); got != 2 {
		t.Errorf("cautious chose %d, want 2 (first strictly-outward origin)", got)
	}
	if got := c.Decide(nil, nil, 3, nil); got != 3 {
		t.Errorf("cautious moved on silence: got %d", got)
	}
}

func TestSharedHistoryPoolsAcrossAttackers(t *testing.T) {
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	shared := NewHistoryStore(4)
	mk := func(index int) *Attacker {
		a, err := NewWithStrategy(g, Params{R: 1, M: 1, H: 4, Start: 4},
			DecisionStrategy(UnvisitedFirst), 0, 1, index)
		if err != nil {
			t.Fatalf("NewWithStrategy: %v", err)
		}
		a.ShareHistory(shared)
		a.Activate()
		return a
	}
	a0, a1 := mk(0), mk(1)
	// a0 moves 4 -> 3: the shared window now holds the departure 4.
	a0.Overhear(obsFrom(3, time.Second))
	if a0.Current() != 3 {
		t.Fatalf("a0 at %d, want 3", a0.Current())
	}
	h := a1.History()
	if len(h) != 1 || h[0] != 4 {
		t.Fatalf("a1 sees shared history %v, want [4]", h)
	}
	// a1 hears 4 (visited by the team) then 3: unvisited-first takes 3.
	a1.Overhear(obsFrom(3, 2*time.Second))
	if a1.Current() != 3 {
		t.Errorf("a1 at %d, want 3", a1.Current())
	}
	if h := shared.Snapshot(); len(h) != 2 || h[0] != 4 || h[1] != 4 {
		t.Errorf("shared window = %v, want [4 4] (both departures)", h)
	}
}

func TestHistoryStoreEvictsBeyondH(t *testing.T) {
	s := NewHistoryStore(2)
	for _, n := range []topo.NodeID{1, 2, 3} {
		s.Record(n)
	}
	if h := s.Snapshot(); len(h) != 2 || h[0] != 2 || h[1] != 3 {
		t.Errorf("Snapshot = %v, want [2 3]", h)
	}
	empty := NewHistoryStore(0)
	empty.Record(7)
	if h := empty.Snapshot(); len(h) != 0 {
		t.Errorf("memoryless store recorded %v", h)
	}
}
