// Package attacker implements the paper's novel (R, H, M, s0, D)-attacker
// model (Section III-B, Figure 1): a distributed eavesdropper that hears
// every transmission within radio range of its current location, collects
// up to R messages, remembers the last H visited locations, makes at most
// M moves per TDMA period, starts at s0 and chooses its next location with
// a decision function D.
//
// The attacker perceives only traffic context — sender identity, position
// and timing — never payload contents (the paper assumes encryption).
package attacker

import (
	"fmt"
	"math/rand/v2"
	"time"

	"slpdas/internal/radio"
	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// Params are the (R, H, M, s0) attacker parameters.
type Params struct {
	R     int         // messages heard before a move decision
	H     int         // history length (0 = memoryless)
	M     int         // moves per period
	Start topo.NodeID // s0
}

// DefaultParams returns the (1, 0, 1, s0)-attacker the paper (and most SLP
// work) evaluates against.
func DefaultParams(start topo.NodeID) Params {
	return Params{R: 1, H: 0, M: 1, Start: start}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.R < 1 {
		return fmt.Errorf("attacker: R must be >= 1, got %d", p.R)
	}
	if p.H < 0 {
		return fmt.Errorf("attacker: H must be >= 0, got %d", p.H)
	}
	if p.M < 1 {
		return fmt.Errorf("attacker: M must be >= 1, got %d", p.M)
	}
	return nil
}

// Heard is one overheard transmission, in arrival order.
type Heard struct {
	From topo.NodeID
	At   time.Duration
}

// Decision is the D function: given the messages captured this round, the
// recent-location history (most recent last) and the current location,
// return the next location. Returning the current location means "stay".
type Decision func(heard []Heard, history []topo.NodeID, cur topo.NodeID, rng *rand.Rand) topo.NodeID

// FirstHeard moves to the origin of the first message heard — the D of the
// (1, 0, 1, s0, D)-attacker in the paper: "when the attacker hears the
// first message coming from a location j, it will move to j".
func FirstHeard(heard []Heard, _ []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID {
	if len(heard) == 0 {
		return cur
	}
	return heard[0].From
}

// RandomHeard moves to a uniformly random heard origin — a weaker,
// non-gradient-following eavesdropper used in the attacker-strength study.
func RandomHeard(heard []Heard, _ []topo.NodeID, cur topo.NodeID, rng *rand.Rand) topo.NodeID {
	if len(heard) == 0 {
		return cur
	}
	return heard[rng.IntN(len(heard))].From
}

// UnvisitedFirst moves to the first heard origin not in the history,
// falling back to the first heard origin. With H > 0 this attacker avoids
// ping-ponging between two loud nodes.
func UnvisitedFirst(heard []Heard, history []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID {
	if len(heard) == 0 {
		return cur
	}
	for _, h := range heard {
		visited := false
		for _, v := range history {
			if v == h.From {
				visited = true
				break
			}
		}
		if !visited && h.From != cur {
			return h.From
		}
	}
	return heard[0].From
}

// HistoryStore is an H-window of departed locations (most recent last,
// length <= H). Every attacker owns a private store by default; a
// multi-attacker hunt may share one store across its eavesdroppers so the
// whole team avoids locations any member has already visited. All access
// happens on the single simulation goroutine.
type HistoryStore struct {
	h   int
	buf []topo.NodeID
}

// NewHistoryStore creates a window keeping the last h locations; h <= 0
// yields an always-empty (memoryless) store.
func NewHistoryStore(h int) *HistoryStore {
	return &HistoryStore{h: h}
}

// Record appends a departed location, evicting the oldest past H entries.
func (s *HistoryStore) Record(n topo.NodeID) {
	if s.h <= 0 {
		return
	}
	s.buf = append(s.buf, n)
	if len(s.buf) > s.h {
		s.buf = s.buf[1:]
	}
}

// Snapshot returns a copy of the window, most recent last.
func (s *HistoryStore) Snapshot() []topo.NodeID {
	return append([]topo.NodeID(nil), s.buf...)
}

// Attacker is the live eavesdropper process driven by radio observations.
// It implements radio.Observer.
type Attacker struct {
	g      *topo.Graph
	params Params
	strat  Strategy
	source topo.NodeID
	rng    *rand.Rand

	active     bool
	cur        topo.NodeID
	msgs       []Heard
	moves      int
	moved      bool // relocated during the current period
	hist       *HistoryStore
	path       []topo.NodeID // visited locations, including start; see SetPathCap
	pathCap    int           // 0 = unbounded; n >= 1 keeps the first n locations
	movesTotal int           // relocations over the whole hunt, never capped
	captured   bool
	capAt      time.Duration
	lastAt     time.Duration // latest observation time seen

	// OnCapture, when non-nil, fires once at the capture instant.
	OnCapture func(at time.Duration)
	// OnMove, when non-nil, fires after every relocation.
	OnMove func(to topo.NodeID, at time.Duration)
}

// New creates an attacker hunting source on graph g with a plain decision
// function. It is inert until Activate; register it on the medium with
// radio.Medium.AddObserver.
func New(g *topo.Graph, params Params, decide Decision, source topo.NodeID, seed uint64) (*Attacker, error) {
	if decide == nil {
		decide = FirstHeard
	}
	return NewWithStrategy(g, params, funcStrategy{decide}, source, seed, 0)
}

// NewWithStrategy creates the index-th eavesdropper of a (possibly
// multi-attacker) hunt using the given strategy instance. The instance
// must be fresh — strategies may keep state. Index 0 draws from the same
// random stream as New, so a single-attacker run is byte-identical
// whichever constructor built it; higher indices get independent streams.
func NewWithStrategy(g *topo.Graph, params Params, strat Strategy, source topo.NodeID, seed uint64, index int) (*Attacker, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if !g.Valid(params.Start) {
		return nil, fmt.Errorf("attacker: invalid start node %d", params.Start)
	}
	if !g.Valid(source) {
		return nil, fmt.Errorf("attacker: invalid source node %d", source)
	}
	if strat == nil {
		strat = funcStrategy{FirstHeard}
	}
	if ga, ok := strat.(GraphAware); ok {
		ga.Bind(g, params.Start)
	}
	label := "attacker"
	if index > 0 {
		label = fmt.Sprintf("attacker:%d", index)
	}
	return &Attacker{
		g:      g,
		params: params,
		strat:  strat,
		source: source,
		rng:    xrand.NewNamed(seed, label),
		hist:   NewHistoryStore(params.H),
		cur:    params.Start,
		path:   []topo.NodeID{params.Start},
	}, nil
}

// ShareHistory replaces the attacker's private H-window with a shared
// store. Call before the hunt starts; the store's own window length
// governs eviction for every sharer.
func (a *Attacker) ShareHistory(s *HistoryStore) { a.hist = s }

// SetPathCap bounds the recorded walk: 0 (the default) records every
// visited location, n >= 1 keeps only the first n locations including s0,
// and a negative cap keeps s0 alone. The cap affects recording only —
// moves, H-window bookkeeping, capture detection and Moves() proceed
// identically — so a 10⁶-node hunt no longer accumulates an unbounded
// walk it will never render. Call before the hunt starts.
func (a *Attacker) SetPathCap(n int) {
	if n < 0 {
		n = 1
	}
	a.pathCap = n
	if n > 0 && len(a.path) > n {
		a.path = a.path[:n]
	}
}

// Moves returns the total number of relocations over the whole hunt —
// the walk length that survives any path cap.
func (a *Attacker) Moves() int { return a.movesTotal }

// Activate begins the hunt at virtual time zero; see ActivateAt.
func (a *Attacker) Activate() { a.ActivateAt(0) }

// ActivateAt begins the hunt: the attacker starts processing observations.
// Call at source-activation time (the start of the data phase), passing
// the current virtual time. An attacker that is already standing on the
// source — Start == source — has captured it the moment the hunt begins,
// without needing to overhear anything or move.
func (a *Attacker) ActivateAt(now time.Duration) {
	a.active = true
	a.checkCapture(now)
}

// checkCapture marks the capture once the attacker's location is the
// source, firing OnCapture exactly once.
func (a *Attacker) checkCapture(now time.Duration) {
	if a.captured || a.cur != a.source {
		return
	}
	a.captured = true
	a.capAt = now
	if a.OnCapture != nil {
		a.OnCapture(now)
	}
}

// Deactivate stops processing observations (the hunt is over).
func (a *Attacker) Deactivate() { a.active = false }

// NextPeriod implements the NextP action of Figure 1: at each period
// boundary the message buffer and the move budget reset, and PeriodAware
// strategies may relocate (stamped with the latest observation time).
// The caller (who knows the period length, as the paper's attacker does)
// schedules this; callers that track virtual time themselves should
// prefer NextPeriodAt.
func (a *Attacker) NextPeriod() { a.NextPeriodAt(a.lastAt) }

// NextPeriodAt is NextPeriod with an explicit boundary time, used to
// stamp a PeriodAware strategy's boundary relocation (and any capture it
// causes) with the true virtual time.
func (a *Attacker) NextPeriodAt(now time.Duration) {
	if a.active && !a.captured {
		if pa, ok := a.strat.(PeriodAware); ok {
			next := pa.PeriodEnd(a.moved, a.cur, a.path, a.rng)
			if next != a.cur && a.g.HasEdge(a.cur, next) {
				a.relocate(next, now)
			}
		}
	}
	a.msgs = a.msgs[:0]
	a.moves = 0
	a.moved = false
}

// Location implements radio.Observer.
func (a *Attacker) Location() topo.Point { return a.g.Position(a.cur) }

// Overhear implements radio.Observer: the ARcv action of Figure 1 followed
// by the Decide action once R messages have been captured.
func (a *Attacker) Overhear(obs radio.Observation) {
	if !a.active || a.captured {
		return
	}
	a.lastAt = obs.At
	if len(a.msgs) < a.params.R {
		a.msgs = append(a.msgs, Heard{From: obs.From, At: obs.At})
	}
	if len(a.msgs) >= a.params.R && a.moves < a.params.M {
		a.decideMove(obs.At)
	}
}

// decideMove is the Decide action of Figure 1.
func (a *Attacker) decideMove(now time.Duration) {
	next := a.strat.Decide(a.msgs, a.History(), a.cur, a.rng)
	a.moves++
	a.msgs = a.msgs[:0]
	if next == a.cur {
		return // staying consumed the move
	}
	// Physical constraint: the attacker walks, so it only relocates to
	// positions it actually heard, which are within one radio range.
	if !a.g.HasEdge(a.cur, next) {
		return
	}
	a.relocate(next, now)
}

// relocate moves the attacker to an adjacent node, recording the H-window
// and path, and checks for capture. The H-window records departed
// locations only on actual relocation: "stay" decisions and edge-rejected
// moves used to pollute it with duplicates of the current node, flushing
// genuine visit history out of small windows and breaking UnvisitedFirst.
func (a *Attacker) relocate(next topo.NodeID, now time.Duration) {
	a.hist.Record(a.cur)
	a.cur = next
	a.moved = true
	a.movesTotal++
	if a.pathCap == 0 || len(a.path) < a.pathCap {
		a.path = append(a.path, next)
	}
	if a.OnMove != nil {
		a.OnMove(next, now)
	}
	a.checkCapture(now)
}

// Current returns the attacker's current node.
func (a *Attacker) Current() topo.NodeID { return a.cur }

// Captured reports whether the source has been reached, and when.
func (a *Attacker) Captured() (bool, time.Duration) { return a.captured, a.capAt }

// Path returns the recorded walk, in order, starting at s0 — every node
// visited unless SetPathCap truncated recording. Moves always counts the
// full walk.
func (a *Attacker) Path() []topo.NodeID {
	return append([]topo.NodeID(nil), a.path...)
}

// History returns the H-window contents, most recent last. With a shared
// store this is the whole team's window, not just this attacker's.
func (a *Attacker) History() []topo.NodeID {
	return a.hist.Snapshot()
}

var _ radio.Observer = (*Attacker)(nil)
