// Package attacker implements the paper's novel (R, H, M, s0, D)-attacker
// model (Section III-B, Figure 1): a distributed eavesdropper that hears
// every transmission within radio range of its current location, collects
// up to R messages, remembers the last H visited locations, makes at most
// M moves per TDMA period, starts at s0 and chooses its next location with
// a decision function D.
//
// The attacker perceives only traffic context — sender identity, position
// and timing — never payload contents (the paper assumes encryption).
package attacker

import (
	"fmt"
	"math/rand/v2"
	"time"

	"slpdas/internal/radio"
	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// Params are the (R, H, M, s0) attacker parameters.
type Params struct {
	R     int         // messages heard before a move decision
	H     int         // history length (0 = memoryless)
	M     int         // moves per period
	Start topo.NodeID // s0
}

// DefaultParams returns the (1, 0, 1, s0)-attacker the paper (and most SLP
// work) evaluates against.
func DefaultParams(start topo.NodeID) Params {
	return Params{R: 1, H: 0, M: 1, Start: start}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.R < 1 {
		return fmt.Errorf("attacker: R must be >= 1, got %d", p.R)
	}
	if p.H < 0 {
		return fmt.Errorf("attacker: H must be >= 0, got %d", p.H)
	}
	if p.M < 1 {
		return fmt.Errorf("attacker: M must be >= 1, got %d", p.M)
	}
	return nil
}

// Heard is one overheard transmission, in arrival order.
type Heard struct {
	From topo.NodeID
	At   time.Duration
}

// Decision is the D function: given the messages captured this round, the
// recent-location history (most recent last) and the current location,
// return the next location. Returning the current location means "stay".
type Decision func(heard []Heard, history []topo.NodeID, cur topo.NodeID, rng *rand.Rand) topo.NodeID

// FirstHeard moves to the origin of the first message heard — the D of the
// (1, 0, 1, s0, D)-attacker in the paper: "when the attacker hears the
// first message coming from a location j, it will move to j".
func FirstHeard(heard []Heard, _ []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID {
	if len(heard) == 0 {
		return cur
	}
	return heard[0].From
}

// RandomHeard moves to a uniformly random heard origin — a weaker,
// non-gradient-following eavesdropper used in the attacker-strength study.
func RandomHeard(heard []Heard, _ []topo.NodeID, cur topo.NodeID, rng *rand.Rand) topo.NodeID {
	if len(heard) == 0 {
		return cur
	}
	return heard[rng.IntN(len(heard))].From
}

// UnvisitedFirst moves to the first heard origin not in the history,
// falling back to the first heard origin. With H > 0 this attacker avoids
// ping-ponging between two loud nodes.
func UnvisitedFirst(heard []Heard, history []topo.NodeID, cur topo.NodeID, _ *rand.Rand) topo.NodeID {
	if len(heard) == 0 {
		return cur
	}
	for _, h := range heard {
		visited := false
		for _, v := range history {
			if v == h.From {
				visited = true
				break
			}
		}
		if !visited && h.From != cur {
			return h.From
		}
	}
	return heard[0].From
}

// Attacker is the live eavesdropper process driven by radio observations.
// It implements radio.Observer.
type Attacker struct {
	g      *topo.Graph
	params Params
	decide Decision
	source topo.NodeID
	rng    *rand.Rand

	active   bool
	cur      topo.NodeID
	msgs     []Heard
	moves    int
	history  []topo.NodeID // ring, most recent last, len <= H
	path     []topo.NodeID // every location visited, including start
	captured bool
	capAt    time.Duration

	// OnCapture, when non-nil, fires once at the capture instant.
	OnCapture func(at time.Duration)
	// OnMove, when non-nil, fires after every relocation.
	OnMove func(to topo.NodeID, at time.Duration)
}

// New creates an attacker hunting source on graph g. It is inert until
// Activate; register it on the medium with radio.Medium.AddObserver.
func New(g *topo.Graph, params Params, decide Decision, source topo.NodeID, seed uint64) (*Attacker, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if !g.Valid(params.Start) {
		return nil, fmt.Errorf("attacker: invalid start node %d", params.Start)
	}
	if !g.Valid(source) {
		return nil, fmt.Errorf("attacker: invalid source node %d", source)
	}
	if decide == nil {
		decide = FirstHeard
	}
	return &Attacker{
		g:      g,
		params: params,
		decide: decide,
		source: source,
		rng:    xrand.NewNamed(seed, "attacker"),
		cur:    params.Start,
		path:   []topo.NodeID{params.Start},
	}, nil
}

// Activate begins the hunt at virtual time zero; see ActivateAt.
func (a *Attacker) Activate() { a.ActivateAt(0) }

// ActivateAt begins the hunt: the attacker starts processing observations.
// Call at source-activation time (the start of the data phase), passing
// the current virtual time. An attacker that is already standing on the
// source — Start == source — has captured it the moment the hunt begins,
// without needing to overhear anything or move.
func (a *Attacker) ActivateAt(now time.Duration) {
	a.active = true
	a.checkCapture(now)
}

// checkCapture marks the capture once the attacker's location is the
// source, firing OnCapture exactly once.
func (a *Attacker) checkCapture(now time.Duration) {
	if a.captured || a.cur != a.source {
		return
	}
	a.captured = true
	a.capAt = now
	if a.OnCapture != nil {
		a.OnCapture(now)
	}
}

// Deactivate stops processing observations (the hunt is over).
func (a *Attacker) Deactivate() { a.active = false }

// NextPeriod implements the NextP action of Figure 1: at each period
// boundary the message buffer and the move budget reset. The caller (who
// knows the period length, as the paper's attacker does) schedules this.
func (a *Attacker) NextPeriod() {
	a.msgs = a.msgs[:0]
	a.moves = 0
}

// Location implements radio.Observer.
func (a *Attacker) Location() topo.Point { return a.g.Position(a.cur) }

// Overhear implements radio.Observer: the ARcv action of Figure 1 followed
// by the Decide action once R messages have been captured.
func (a *Attacker) Overhear(obs radio.Observation) {
	if !a.active || a.captured {
		return
	}
	if len(a.msgs) < a.params.R {
		a.msgs = append(a.msgs, Heard{From: obs.From, At: obs.At})
	}
	if len(a.msgs) >= a.params.R && a.moves < a.params.M {
		a.decideMove(obs.At)
	}
}

// decideMove is the Decide action of Figure 1.
func (a *Attacker) decideMove(now time.Duration) {
	next := a.decide(a.msgs, a.History(), a.cur, a.rng)
	if a.params.H > 0 {
		a.history = append(a.history, a.cur)
		if len(a.history) > a.params.H {
			a.history = a.history[1:]
		}
	}
	a.moves++
	a.msgs = a.msgs[:0]
	if next == a.cur {
		return // staying consumed the move
	}
	// Physical constraint: the attacker walks, so it only relocates to
	// positions it actually heard, which are within one radio range.
	if !a.g.HasEdge(a.cur, next) {
		return
	}
	a.cur = next
	a.path = append(a.path, next)
	if a.OnMove != nil {
		a.OnMove(next, now)
	}
	a.checkCapture(now)
}

// Current returns the attacker's current node.
func (a *Attacker) Current() topo.NodeID { return a.cur }

// Captured reports whether the source has been reached, and when.
func (a *Attacker) Captured() (bool, time.Duration) { return a.captured, a.capAt }

// Path returns every node visited, in order, starting at s0.
func (a *Attacker) Path() []topo.NodeID {
	return append([]topo.NodeID(nil), a.path...)
}

// History returns the last H visited locations, most recent last.
func (a *Attacker) History() []topo.NodeID {
	return append([]topo.NodeID(nil), a.history...)
}

var _ radio.Observer = (*Attacker)(nil)
