package channel

import (
	"math"
	"strings"
	"testing"

	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// TestParseSpecIdentity pins Parse∘Spec as the identity on every
// canonical spec, the same contract fault.Spec holds: a campaign
// coordinate rendered into a row and parsed back selects the same
// channel.
func TestParseSpecIdentity(t *testing.T) {
	for _, spec := range []string{
		"ideal",
		"bernoulli:0",
		"bernoulli:0.25",
		"bernoulli:1",
		"rssi",
		"logdist:2.4:4",
		"logdist:2:0",
		"logdist:3.5:6.5",
		"logdist:2.4:4@sinr:3",
		"logdist:2.4:4@sinr:-1.5",
		"logdist:2.4:0@sinr:0",
	} {
		m, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if got := m.Spec(); got != spec {
			t.Errorf("Parse(%q).Spec() = %q; Parse∘Spec must be the identity", spec, got)
		}
	}
}

// TestParseNonCanonical: spellings that are valid but not canonical
// normalise through Spec.
func TestParseNonCanonical(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", "ideal"},
		{"  ideal  ", "ideal"},
		{"bernoulli:0.250", "bernoulli:0.25"},
		{"logdist:2.40:4.0", "logdist:2.4:4"},
		{"logdist:2.4:4@sinr:3.0", "logdist:2.4:4@sinr:3"},
	} {
		m, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := m.Spec(); got != tc.want {
			t.Errorf("Parse(%q).Spec() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestParseRejectsGarbage is the grammar-surface table test: trailing
// garbage after a valid prefix, missing arguments, out-of-range and
// non-finite parameters are all errors, never silently normalised.
func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"idealx",
		"ideal:",
		"ideal:1",
		"rssi2",
		"rssi:",
		"rssi:4",
		"bernoulli",
		"bernoulli:",
		"bernoulli:0.5x",
		"bernoulli:0.5:1",
		"bernoulli:-0.1",
		"bernoulli:1.1",
		"bernoulli:NaN",
		"bernoulli:+Inf",
		"logdist",
		"logdist:",
		"logdist:2.4",
		"logdist:2.4:4:9",
		"logdist:2.4:4x",
		"logdist:0:4",
		"logdist:-2:4",
		"logdist:2.4:-1",
		"logdist:NaN:4",
		"logdist:2.4:4@",
		"logdist:2.4:4@sinr",
		"logdist:2.4:4@sinr:",
		"logdist:2.4:4@sinr:3x",
		"logdist:2.4:4@sinr:NaN",
		"logdist:2.4:4@snr:3",
		"ideal@sinr:3",
		"bernoulli:0.5@sinr:3",
		"rssi@sinr:3",
		"unknown",
	} {
		if m, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted garbage as %q", bad, m.Spec())
		}
	}
}

// TestFamiliesSorted: the registry lists every family, sorted, and Parse
// resolves each listed name (with default-ish arguments where required).
func TestFamiliesSorted(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names() = %v, want the 4 built-in families", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	if _, err := Parse("nonsense"); err == nil || !strings.Contains(err.Error(), "ideal") {
		t.Errorf("unknown-channel error should list known families, got: %v", err)
	}
}

// TestLogDistanceShadowDeterministic: per-link shadowing is a pure
// function of (seed, link) — symmetric, order-independent, stable across
// Reset to the same seed, and different under a different seed.
func TestLogDistanceShadowDeterministic(t *testing.T) {
	a := NewLogDistance(2.4, 4)
	a.Reset(7)
	// Draw links in one order...
	s01 := a.shadowDB(0, 1)
	s12 := a.shadowDB(1, 2)
	s02 := a.shadowDB(0, 2)
	if s01 == s12 && s12 == s02 {
		t.Fatalf("distinct links share one shadow value %v; stream labelling is broken", s01)
	}
	if got := a.shadowDB(1, 0); got != s01 {
		t.Errorf("shadow not symmetric: S(0,1)=%v, S(1,0)=%v", s01, got)
	}

	// ...and in the reverse order on a fresh model: values must match.
	b := NewLogDistance(2.4, 4)
	b.Reset(7)
	if got := b.shadowDB(0, 2); got != s02 {
		t.Errorf("draw order changed S(0,2): %v vs %v", got, s02)
	}
	if got := b.shadowDB(1, 2); got != s12 {
		t.Errorf("draw order changed S(1,2): %v vs %v", got, s12)
	}
	if got := b.shadowDB(0, 1); got != s01 {
		t.Errorf("draw order changed S(0,1): %v vs %v", got, s01)
	}

	// Reset to the same seed replays; a different seed redraws.
	a.Reset(7)
	if got := a.shadowDB(0, 1); got != s01 {
		t.Errorf("Reset(same seed) changed S(0,1): %v vs %v", got, s01)
	}
	a.Reset(8)
	if got := a.shadowDB(0, 1); got == s01 {
		t.Errorf("Reset(different seed) kept S(0,1) = %v", got)
	}
}

// TestLogDistanceLostDrawsNothing: logdist loss is deterministic per link
// and must not consume the shared stream — the property that keeps
// default goldens byte-identical when logdist cells run beside them.
func TestLogDistanceLostDrawsNothing(t *testing.T) {
	m := NewLogDistance(2.4, 4)
	m.Reset(3)
	rng := xrand.NewNamed(99, "probe")
	before := rng.Uint64()
	rng = xrand.NewNamed(99, "probe")
	_ = m.Lost(0, 1, 4.5, rng)
	_ = m.Lost(1, 2, 4.5, rng)
	if after := rng.Uint64(); after != before {
		t.Errorf("logdist.Lost consumed the shared stream: next draw %v, want %v", after, before)
	}
}

// TestLogDistanceSensitivity: with zero shadowing, loss is a pure
// threshold on distance — near links deliver, far links drop.
func TestLogDistanceSensitivity(t *testing.T) {
	m := NewLogDistance(2.4, 0)
	m.Reset(1)
	// rx(d) = −40 − 24·log10(d); sensitivity −70 → cutoff d = 10^(30/24) ≈ 17.8 m.
	if m.Lost(0, 1, 4.5, nil) {
		t.Errorf("grid-spacing link (4.5 m) lost under logdist:2.4:0")
	}
	if !m.Lost(0, 1, 30, nil) {
		t.Errorf("30 m link delivered under logdist:2.4:0; sensitivity threshold broken")
	}
	// Power is monotone decreasing in distance.
	if p1, p2 := m.RxPowerMW(0, 1, 4.5), m.RxPowerMW(0, 1, 9); p1 <= p2 {
		t.Errorf("RxPowerMW not decreasing: %v at 4.5 m, %v at 9 m", p1, p2)
	}
}

// TestCaptureParams: the @sinr suffix yields linear parameters, absent
// otherwise.
func TestCaptureParams(t *testing.T) {
	m, err := Parse("logdist:2.4:4")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Capture(); ok {
		t.Error("logdist without @sinr reports capture enabled")
	}
	m, err = Parse("logdist:2.4:4@sinr:3")
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := m.Capture()
	if !ok {
		t.Fatal("logdist@sinr reports capture disabled")
	}
	if want := math.Pow(10, 0.3); math.Abs(cp.ThresholdMW-want) > 1e-12 {
		t.Errorf("ThresholdMW = %v, want 10^0.3 = %v", cp.ThresholdMW, want)
	}
	if want := math.Pow(10, -9); math.Abs(cp.NoiseMW-want) > 1e-21 {
		t.Errorf("NoiseMW = %v, want 10^-9 = %v", cp.NoiseMW, want)
	}
}

// TestStatelessModels: ideal/bernoulli/rssi behave exactly like the
// pre-registry loss models they replace — same draws from the same
// stream (the byte-compat contract is pinned end-to-end by the goldens;
// this is the unit-level view).
func TestStatelessModels(t *testing.T) {
	var ni, nb topo.NodeID = 0, 1

	ideal, _ := Parse("ideal")
	if ideal.Lost(ni, nb, 1e9, nil) {
		t.Error("ideal lost a frame")
	}

	bern, _ := Parse("bernoulli:1")
	rng := xrand.NewNamed(1, "radio")
	if !bern.Lost(ni, nb, 1, rng) {
		t.Error("bernoulli:1 delivered a frame")
	}
	bern, _ = Parse("bernoulli:0")
	if bern.Lost(ni, nb, 1, rng) {
		t.Error("bernoulli:0 lost a frame")
	}

	// rssi at grid spacing: overwhelmingly delivered, and each call draws
	// exactly one NormFloat64 — the legacy sequence.
	rssi, _ := Parse("rssi")
	r1 := xrand.NewNamed(42, "radio")
	r2 := xrand.NewNamed(42, "radio")
	losses := 0
	for i := 0; i < 1000; i++ {
		if rssi.Lost(ni, nb, 4.5, r1) {
			losses++
		}
		r2.NormFloat64()
	}
	if losses > 100 {
		t.Errorf("rssi at grid spacing lost %d/1000 frames; calibration broken", losses)
	}
	if r1.Uint64() != r2.Uint64() {
		t.Error("rssi.Lost draw sequence diverges from one NormFloat64 per call")
	}
}
