// Package channel is the pluggable physical-layer registry — the
// channel-side mirror of internal/protocol and internal/attacker. A Model
// decides, per link and per transmission, whether a frame reaches a
// receiver, and (for power-based models) at what received power, which is
// what SINR capture in the radio medium consumes. Families register by
// name and parse from the shared textual grammar used by the campaign
// engine, the facade and the CLIs:
//
//	ideal                                  perfectly reliable channel
//	bernoulli:<p>                          i.i.d. loss with probability p
//	rssi                                   calibrated log-normal shadowing (per frame)
//	logdist:<n>:<sigma>[@sinr:<t>]         log-distance path loss, exponent n, with
//	                                       per-link log-normal shadowing (stddev sigma
//	                                       dB); @sinr:<t> switches the medium from
//	                                       binary collisions to SINR capture with
//	                                       threshold t dB
//
// Determinism contract: ideal, bernoulli and rssi draw from the medium's
// shared "radio" stream in exactly the sequence the pre-registry loss
// models drew, so default campaigns stay byte-identical. logdist draws
// nothing from shared streams: its per-link shadowing is a pure function
// of (run seed, link), minted through a dedicated labelled xrand stream
// and cached, so the value is independent of the order links are first
// used in and of how many other links a run touches.
package channel

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// Log-distance channel constants, shared with the calibrated rssi model:
// 0 dBm transmit power, 40 dB reference loss at 1 m, −70 dBm receiver
// sensitivity. The SINR noise floor is the thermal floor a 802.15.4
// receiver integrates over its 2 MHz bandwidth, with a few dB of noise
// figure.
const (
	txPowerDBm     = 0
	refLossDB      = 40
	refDistM       = 1
	sensitivityDBm = -70
	noiseFloorDBm  = -90
)

// CaptureParams configures SINR capture in the radio medium, in linear
// milliwatt units precomputed from the grammar's dB values so the per
// delivery check is branch-and-multiply only.
type CaptureParams struct {
	// ThresholdMW is the linear SINR ratio a frame must clear against
	// noise plus same-window interference to survive.
	ThresholdMW float64
	// NoiseMW is the thermal noise floor.
	NoiseMW float64
}

// Model is one physical-layer channel. Implementations must be
// deterministic: any per-frame randomness comes from the supplied stream
// (the medium's shared "radio" stream), and any per-link state must be a
// pure function of the Reset seed so arena reuse and worker scheduling
// cannot change a draw.
type Model interface {
	// Spec returns the canonical grammar string; Parse(Spec()) is the
	// identity on canonical specs.
	Spec() string
	// Reset rewinds per-run channel state (shadowing caches) for a new run
	// seed. Stateless models no-op.
	Reset(seed uint64)
	// Lost reports whether the frame from→to at distance dist metres is
	// dropped before reception (below sensitivity, or unlucky).
	Lost(from, to topo.NodeID, dist float64, rng *rand.Rand) bool
	// RxPowerMW returns the linear received power of a surviving frame,
	// consumed by the medium's SINR accumulator. Models without a power
	// axis return a nominal constant.
	RxPowerMW(from, to topo.NodeID, dist float64) float64
	// Capture returns the SINR capture parameters and whether capture is
	// enabled; ok=false leaves the medium on its binary collision model.
	Capture() (CaptureParams, bool)
}

// Family describes one registered channel family: the grammar keyword,
// a one-line summary for listings, and the argument parser. Parse
// receives the text after "name:" with hasArgs distinguishing "name"
// from "name:"; it must consume the arguments completely — trailing
// garbage is a parse error, never silently ignored.
type Family struct {
	Name    string
	Summary string
	Parse   func(args string, hasArgs bool) (Model, error)
}

// Info describes one registered family for listings and documentation.
type Info struct {
	Name    string
	Summary string
}

var families = map[string]Family{}

// Register adds a family to the registry. It panics on a duplicate name:
// registration happens at init time and a collision is a programming
// error.
func Register(f Family) {
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("channel: duplicate channel family %q", f.Name))
	}
	families[f.Name] = f
}

// Families lists every registered family, sorted by name.
func Families() []Info {
	out := make([]Info, 0, len(families))
	for _, f := range families {
		out = append(out, Info{Name: f.Name, Summary: f.Summary})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names lists the registered family names, sorted.
func Names() []string {
	infos := Families()
	out := make([]string, len(infos))
	for i, in := range infos {
		out[i] = in.Name
	}
	return out
}

func init() {
	Register(Family{
		Name:    "ideal",
		Summary: "perfectly reliable channel (the paper's evaluation model)",
		Parse: func(args string, hasArgs bool) (Model, error) {
			if hasArgs {
				return nil, fmt.Errorf("channel: ideal takes no arguments, got %q", args)
			}
			return Ideal{}, nil
		},
	})
	Register(Family{
		Name:    "bernoulli",
		Summary: "i.i.d. frame loss with probability p: bernoulli:<p>",
		Parse: func(args string, hasArgs bool) (Model, error) {
			if !hasArgs {
				return nil, fmt.Errorf("channel: bernoulli needs a probability (bernoulli:<p>)")
			}
			p, err := parseFinite(args)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("channel: bad bernoulli probability %q (want a finite p in [0, 1])", args)
			}
			return Bernoulli{P: p}, nil
		},
	})
	Register(Family{
		Name:    "rssi",
		Summary: "calibrated log-normal shadowing, drawn per frame (casino-lab substitute)",
		Parse: func(args string, hasArgs bool) (Model, error) {
			if hasArgs {
				return nil, fmt.Errorf("channel: rssi takes no arguments, got %q", args)
			}
			return RSSI{}, nil
		},
	})
	Register(Family{
		Name:    "logdist",
		Summary: "log-distance path loss with per-link shadowing: logdist:<n>:<sigma>[@sinr:<t>]",
		Parse: func(args string, hasArgs bool) (Model, error) {
			if !hasArgs {
				return nil, fmt.Errorf("channel: logdist needs arguments (logdist:<n>:<sigma>)")
			}
			expStr, sigmaStr, ok := strings.Cut(args, ":")
			if !ok {
				return nil, fmt.Errorf("channel: logdist wants two arguments (logdist:<n>:<sigma>), got %q", args)
			}
			exp, err := parseFinite(expStr)
			if err != nil || exp <= 0 {
				return nil, fmt.Errorf("channel: bad logdist path-loss exponent %q (want a finite n > 0)", expStr)
			}
			sigma, err := parseFinite(sigmaStr)
			if err != nil || sigma < 0 {
				return nil, fmt.Errorf("channel: bad logdist shadowing sigma %q (want a finite sigma >= 0)", sigmaStr)
			}
			return NewLogDistance(exp, sigma), nil
		},
	})
}

// Parse resolves a grammar string to its Model. The empty string selects
// ideal. The optional "@sinr:<t>" suffix enables SINR capture and is only
// meaningful on power-based families (logdist). Parse is strict: trailing
// garbage after a valid prefix ("bernoulli:0.5x", "rssi:", "idealx") is
// an error, and Parse∘Spec is the identity on every canonical spec.
func Parse(s string) (Model, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		t = "ideal"
	}
	base, capSpec, hasCap := strings.Cut(t, "@")
	name, args, hasArgs := strings.Cut(base, ":")
	f, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("channel: unknown channel %q (have %v)", s, Names())
	}
	m, err := f.Parse(args, hasArgs)
	if err != nil {
		return nil, err
	}
	if !hasCap {
		return m, nil
	}
	ld, ok := m.(*LogDistance)
	if !ok {
		return nil, fmt.Errorf("channel: %q: SINR capture needs a power-based channel (logdist)", s)
	}
	thrStr, ok := strings.CutPrefix(capSpec, "sinr:")
	if !ok {
		return nil, fmt.Errorf("channel: bad capture suffix %q in %q (want @sinr:<threshold dB>)", capSpec, s)
	}
	thr, err := parseFinite(thrStr)
	if err != nil {
		return nil, fmt.Errorf("channel: bad SINR threshold %q in %q (want a finite dB value)", thrStr, s)
	}
	ld.sinrOn = true
	ld.sinrDB = thr
	return ld, nil
}

// parseFinite is strconv.ParseFloat rejecting NaN and ±Inf, which
// otherwise parse successfully and then slip past every range comparison.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

// formatFloat renders a parameter the way Parse reads it back: shortest
// round-trip form.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// --- ideal ---

// Ideal is the paper's evaluation channel (§VI-A): every in-range frame
// arrives. It draws nothing, so runs configured with it are byte-identical
// to the pre-registry ideal loss model.
type Ideal struct{}

// Spec implements Model.
func (Ideal) Spec() string { return "ideal" }

// Reset implements Model; Ideal carries no run state.
func (Ideal) Reset(uint64) {}

// Lost implements Model; it always returns false and draws nothing.
func (Ideal) Lost(_, _ topo.NodeID, _ float64, _ *rand.Rand) bool { return false }

// RxPowerMW implements Model with a nominal constant power.
func (Ideal) RxPowerMW(_, _ topo.NodeID, _ float64) float64 { return 1 }

// Capture implements Model; Ideal has no power axis.
func (Ideal) Capture() (CaptureParams, bool) { return CaptureParams{}, false }

// --- bernoulli ---

// Bernoulli drops every frame independently with probability P,
// irrespective of distance, drawing one Float64 from the shared stream
// per candidate reception — the exact sequence the pre-registry model
// drew.
type Bernoulli struct {
	P float64
}

// Spec implements Model.
func (b Bernoulli) Spec() string { return "bernoulli:" + formatFloat(b.P) }

// Reset implements Model; Bernoulli carries no run state.
func (Bernoulli) Reset(uint64) {}

// Lost implements Model.
func (b Bernoulli) Lost(_, _ topo.NodeID, _ float64, rng *rand.Rand) bool {
	return rng.Float64() < b.P
}

// RxPowerMW implements Model with a nominal constant power.
func (Bernoulli) RxPowerMW(_, _ topo.NodeID, _ float64) float64 { return 1 }

// Capture implements Model; Bernoulli has no power axis.
func (Bernoulli) Capture() (CaptureParams, bool) { return CaptureParams{}, false }

// --- rssi ---

// RSSI is the calibrated log-normal shadowing substitute for the TOSSIM
// casino-lab noise trace: received power is
//
//	RSSI = txPower − (refLoss + 10·2.4·log10(d/refDist)) + N(0, 4)
//
// drawn fresh per frame, and the frame is lost when RSSI falls below the
// −70 dBm sensitivity. One NormFloat64 per candidate reception from the
// shared stream — the exact sequence the pre-registry rssi model drew.
type RSSI struct{}

// rssiPathLossExp and rssiSigma are the calibrated casino-lab substitute
// parameters; links at grid spacing (4.5 m) succeed ≈99% of the time.
const (
	rssiPathLossExp = 2.4
	rssiSigma       = 4
)

// Spec implements Model.
func (RSSI) Spec() string { return "rssi" }

// Reset implements Model; RSSI redraws shadowing per frame and carries no
// run state.
func (RSSI) Reset(uint64) {}

// Lost implements Model.
func (RSSI) Lost(_, _ topo.NodeID, dist float64, rng *rand.Rand) bool {
	if dist < refDistM {
		dist = refDistM
	}
	pathLoss := refLossDB + 10*rssiPathLossExp*math.Log10(dist/refDistM)
	rssi := txPowerDBm - pathLoss + rng.NormFloat64()*rssiSigma
	return rssi < sensitivityDBm
}

// RxPowerMW implements Model with the mean (shadowing-free) received
// power; rssi predates the SINR path and keeps binary collisions.
func (RSSI) RxPowerMW(_, _ topo.NodeID, dist float64) float64 {
	if dist < refDistM {
		dist = refDistM
	}
	return dbmToMilliwatt(txPowerDBm - (refLossDB + 10*rssiPathLossExp*math.Log10(dist/refDistM)))
}

// Capture implements Model; rssi keeps the binary collision model.
func (RSSI) Capture() (CaptureParams, bool) { return CaptureParams{}, false }

// --- logdist ---

// shadowLabel derives the per-link shadowing stream from the run seed;
// the link key is mixed in alongside it.
const shadowLabel = 0x73686477 // "shdw"

// LogDistance is log-distance path loss with per-link log-normal
// shadowing: a link's received power is
//
//	P(from→to) = txPower − (refLoss + 10·Exp·log10(d/refDist)) + S(link)
//
// where S(link) ~ N(0, Sigma²) dB is drawn once per (run seed, link) —
// the shadowing a static deployment actually experiences: some links are
// durably good, some durably marginal, rather than re-rolled per frame.
// A frame is lost when its received power falls below the −70 dBm
// sensitivity; this is deterministic per link, so logdist draws nothing
// from the medium's shared stream and fault-free default campaigns stay
// byte-identical when it is not selected.
//
// With sinrOn (the @sinr:<t> grammar suffix) the model also switches the
// radio medium from binary collisions to capture: the strongest frame of
// a reception window survives if its power clears t dB over noise plus
// the window's other frames.
type LogDistance struct {
	// Exp is the path-loss exponent n.
	Exp float64 // lint:immutable: channel parameter, not run state
	// Sigma is the shadowing standard deviation in dB.
	Sigma float64 // lint:immutable: channel parameter, not run state

	sinrOn bool    // lint:immutable: channel parameter, not run state
	sinrDB float64 // lint:immutable: channel parameter, not run state

	seed uint64
	// pcg is the scratch generator behind the per-link shadowing draws:
	// reseeded to the (seed, link) stream before each draw, so the shadow
	// value is a pure function of (seed, link) no matter which link is
	// drawn first.
	pcg rand.PCG   // lint:immutable: reseeded from (seed, link) before every draw
	rng *rand.Rand // lint:immutable: wraps &pcg; reseeding the pcg rewinds it

	// shadow caches S(link) by packed link key for the current seed; the
	// map is cleared, not reallocated, on Reset, so a warm arena draws
	// each link's shadow with no steady-state allocation.
	shadow map[uint64]float64
}

// NewLogDistance builds a log-distance channel with path-loss exponent
// exp and shadowing stddev sigma dB (no capture; Parse enables it from
// the @sinr suffix).
func NewLogDistance(exp, sigma float64) *LogDistance {
	m := &LogDistance{Exp: exp, Sigma: sigma, shadow: make(map[uint64]float64)}
	m.rng = xrand.Wrap(&m.pcg)
	return m
}

// Spec implements Model.
func (m *LogDistance) Spec() string {
	s := "logdist:" + formatFloat(m.Exp) + ":" + formatFloat(m.Sigma)
	if m.sinrOn {
		s += "@sinr:" + formatFloat(m.sinrDB)
	}
	return s
}

// Reset implements Model: the shadowing cache is invalidated and future
// draws derive from the new run seed.
func (m *LogDistance) Reset(seed uint64) {
	m.seed = seed
	clear(m.shadow)
}

// linkKey packs an undirected link into a cache key, ordering the
// endpoints so shadowing is symmetric: S(a→b) = S(b→a).
func linkKey(a, b topo.NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// shadowDB returns the link's shadowing in dB, drawing and caching it on
// first use. The draw reseeds the scratch generator to the labelled
// (seed, link) stream, so the value is order-independent.
//
//slp:hotpath
func (m *LogDistance) shadowDB(a, b topo.NodeID) float64 {
	if m.Sigma == 0 {
		return 0
	}
	k := linkKey(a, b)
	if v, ok := m.shadow[k]; ok {
		return v
	}
	m.pcg.Seed(xrand.Seeds(m.seed, k, shadowLabel))
	v := m.rng.NormFloat64() * m.Sigma
	m.shadow[k] = v
	return v
}

// rxPowerDBm is the link's received power in dBm.
//
//slp:hotpath
func (m *LogDistance) rxPowerDBm(from, to topo.NodeID, dist float64) float64 {
	if dist < refDistM {
		dist = refDistM
	}
	pathLoss := refLossDB + 10*m.Exp*math.Log10(dist/refDistM)
	return txPowerDBm - pathLoss + m.shadowDB(from, to)
}

// Lost implements Model: a frame is lost when the link's (deterministic,
// per-seed) received power is below sensitivity. Draws nothing from the
// shared stream.
//
//slp:hotpath
func (m *LogDistance) Lost(from, to topo.NodeID, dist float64, _ *rand.Rand) bool {
	return m.rxPowerDBm(from, to, dist) < sensitivityDBm
}

// RxPowerMW implements Model.
//
//slp:hotpath
func (m *LogDistance) RxPowerMW(from, to topo.NodeID, dist float64) float64 {
	return dbmToMilliwatt(m.rxPowerDBm(from, to, dist))
}

// Capture implements Model.
func (m *LogDistance) Capture() (CaptureParams, bool) {
	if !m.sinrOn {
		return CaptureParams{}, false
	}
	return CaptureParams{
		ThresholdMW: dbToLinear(m.sinrDB),
		NoiseMW:     dbmToMilliwatt(noiseFloorDBm),
	}, true
}

// dbmToMilliwatt converts absolute dBm to linear milliwatts.
func dbmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// dbToLinear converts a dB ratio to its linear ratio.
func dbToLinear(db float64) float64 { return math.Pow(10, db/10) }

// Interface compliance.
var (
	_ Model = Ideal{}
	_ Model = Bernoulli{}
	_ Model = RSSI{}
	_ Model = (*LogDistance)(nil)
)
