package core

import (
	"reflect"
	"testing"
	"time"

	"slpdas/internal/energy"
	"slpdas/internal/fault"
	"slpdas/internal/topo"
)

// freshResult runs (cfg, seed) on a brand-new network.
func freshResult(t *testing.T, g *topo.Graph, sink, source topo.NodeID, cfg Config, seed uint64) *Result {
	t.Helper()
	net, err := NewNetwork(g, sink, source, cfg, seed)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestResetMatchesFreshNetwork is the state-leak audit for the arena path:
// a single network replayed through Reset across different configs and
// seeds must produce Results deeply equal to fresh networks — every
// counter, latency sample, attacker path, message tally and schedule
// violation included. Any field of Network or node that Reset misses shows
// up here as a divergence on the second or third run.
func TestResetMatchesFreshNetwork(t *testing.T) {
	g, err := topo.DefaultGrid(7)
	if err != nil {
		t.Fatal(err)
	}
	sink, source := topo.GridCentre(7), topo.GridTopLeft()

	cfgSLP := DefaultSLP(2)
	cfgPlain := Default()
	cfgPlain.Collisions = true
	cfgTeam := Default()
	cfgTeam.AttackerCount = 2
	cfgTeam.Attacker.H = 2
	cfgTeam.SharedHistory = true
	cfgTeam.Strategy = "unvisited-first"
	cfgChurn := DefaultSLP(2)
	cfgChurn.Faults = fault.Spec{Kind: fault.Churn, Rate: 0.2, MTTR: 2}
	cfgShadow := DefaultSLP(2)
	cfgShadow.Channel = "logdist:2.4:4@sinr:3"
	es, err := energy.Parse("battery:5")
	if err != nil {
		t.Fatal(err)
	}
	cfgShadow.Energy = es

	// The sequence deliberately alternates protocol, collision model,
	// attacker team shape and seed so each Reset must rewind state the
	// previous run dirtied.
	sequence := []struct {
		name string
		cfg  Config
		seed uint64
	}{
		{"slp/seed1", cfgSLP, 1},
		{"plain-collisions/seed2", cfgPlain, 2},
		{"team/seed3", cfgTeam, 3},
		{"churn/seed4", cfgChurn, 4},
		// Shadowed SINR channel with battery depletion: Reset must redraw
		// the per-link shadowing cache and rewind every energy field.
		{"shadow-energy/seed5", cfgShadow, 5},
		{"slp/seed1 again", cfgSLP, 1}, // exact replay of run 0, after faulted and energy runs
	}

	net, err := NewNetwork(g, sink, source, sequence[0].cfg, sequence[0].seed)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	var arenaResults []*Result
	for i, step := range sequence {
		if i > 0 {
			if err := net.Reset(step.cfg, step.seed); err != nil {
				t.Fatalf("Reset(%s): %v", step.name, err)
			}
		}
		res, err := net.Run()
		if err != nil {
			t.Fatalf("Run(%s): %v", step.name, err)
		}
		arenaResults = append(arenaResults, res)
	}

	for i, step := range sequence {
		fresh := freshResult(t, g, sink, source, step.cfg, step.seed)
		if !reflect.DeepEqual(arenaResults[i], fresh) {
			t.Errorf("%s: arena result diverges from fresh network:\narena: %+v\nfresh: %+v",
				step.name, arenaResults[i], fresh)
		}
	}
	last := len(sequence) - 1
	if !reflect.DeepEqual(arenaResults[0], arenaResults[last]) {
		t.Errorf("replaying (cfg, seed) on the same network diverged:\nfirst: %+v\nagain: %+v",
			arenaResults[0], arenaResults[last])
	}
}

// TestResetClearsScheduledFailures pins the documented FailNode contract:
// failure injections do not survive Reset, so an arena run after a
// failure-injection run matches a pristine fresh run.
func TestResetClearsScheduledFailures(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	sink, source := topo.GridCentre(5), topo.GridTopLeft()
	cfg := Default()

	net, err := NewNetwork(g, sink, source, cfg, 9)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	net.FailNode(1, 2*time.Second)
	withFailure, err := net.Run()
	if err != nil {
		t.Fatalf("Run with failure: %v", err)
	}
	if err := net.Reset(cfg, 9); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	clean, err := net.Run()
	if err != nil {
		t.Fatalf("Run after reset: %v", err)
	}
	fresh := freshResult(t, g, sink, source, cfg, 9)
	if !reflect.DeepEqual(clean, fresh) {
		t.Errorf("post-reset run still affected by earlier FailNode:\narena: %+v\nfresh: %+v", clean, fresh)
	}
	if reflect.DeepEqual(withFailure, clean) {
		t.Errorf("failure injection had no observable effect; the regression test is vacuous")
	}
}
