package core

import (
	"testing"
	"time"

	"slpdas/internal/topo"
)

// BenchmarkDataPhasePeriod measures one steady-state TDMA period of the
// full protocol stack — every node's slot task, the convergecast
// broadcasts and the attacker clock — after setup has settled. This is the
// cost the campaign engine pays per period of every repeat of every cell,
// so it is the number the event-pool and radio-path work optimises for.
func BenchmarkDataPhasePeriod(b *testing.B) {
	g, err := topo.DefaultGrid(11)
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewNetwork(g, topo.GridCentre(11), topo.GridTopLeft(), Default(), 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := net.setup(); err != nil {
		b.Fatal(err)
	}
	if err := net.sim.RunUntil(net.dataStart); err != nil {
		b.Fatal(err)
	}
	if err := net.startDataPhase(); err != nil {
		b.Fatal(err)
	}
	period := net.timing.PeriodDuration()
	// Warm the event/delivery pools with a few periods before measuring.
	if err := net.sim.RunUntil(net.dataStart + 4*period); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deadline := net.dataStart + time.Duration(i+5)*period
		if err := net.sim.RunUntil(deadline); err != nil {
			b.Fatal(err)
		}
	}
}
