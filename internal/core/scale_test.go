//go:build !race

package core

import (
	"math"
	"testing"
	"time"

	"slpdas/internal/topo"
)

// TestHundredThousandNodeRunCompletes is the scale-path acceptance test: a
// 10⁵-node random geometric topology must build (spatial-hash construction)
// and run one full lifecycle — discovery, dissemination, TDMA data phase,
// attacker hunt — to completion, with walk recording off so the run's
// memory stays bounded. It runs under -short too: the scale path IS the
// feature being pinned.
func TestHundredThousandNodeRunCompletes(t *testing.T) {
	const n = 100_000
	// 2.2× the paper's grid spacing keeps the mean degree (~15) above the
	// RGG connectivity threshold ln(n) ≈ 11.5, so RandomGeometric accepts a
	// layout within its retry budget instead of rejecting sparse ones.
	side := math.Sqrt(n) * topo.DefaultSpacing
	g, err := topo.RandomGeometric(n, side, side, 2.2*topo.DefaultSpacing, 61)
	if err != nil {
		t.Fatalf("RandomGeometric: %v", err)
	}
	if g.Len() != n {
		t.Fatalf("built %d nodes, want %d", g.Len(), n)
	}

	// Sink nearest the centre (the campaign's RGG placement); source a
	// fixed 12 hops out, so δ = Cs·(Δss+1) bounds the data phase to ~15
	// periods whatever the hunt does. Every data period costs ~n·deg radio
	// events regardless of outcome, so the hop budget IS the run budget.
	sink := nearestTo(g, topo.Point{X: side / 2, Y: side / 2})
	dists := g.BFSFrom(sink)
	source, sourceDist := sink, 0
	for id, d := range dists {
		if d <= 12 && d > sourceDist {
			source, sourceDist = topo.NodeID(id), d
		}
	}
	if sourceDist == 0 {
		t.Fatal("no source candidate within 12 hops of the sink")
	}

	cfg := Default()
	// Slots must cover the schedule's descent, which burns ~rank+1 slots
	// per hop (sibling rank under a degree-15 parent): ~130 hops of sink
	// eccentricity × mean descent ≈ thousands of slots, vs 100 in the
	// paper's grids. Nodes that bottom out would sit out every period.
	cfg.Slots = 4000
	// Shrink the slot so the TDMA period stays 20 s; 5 setup periods
	// (100 s) still clears the dissemination wave (~sinkEcc × 0.5 s).
	cfg.SlotPeriod = 5 * time.Millisecond
	cfg.MinimumSetupPeriods = 5
	// One HELLO round and one dissemination send per state change: every
	// broadcast fans out to ~15 neighbours, so Table I's resend budgets
	// (NDP 4, DT 5) would multiply setup traffic several-fold at this
	// scale without changing what settles.
	cfg.NeighbourDiscoveryPeriods = 1
	cfg.DisseminationTimeout = 1
	cfg.SafetyFactor = 1.1
	// Unit-decrement collision resolution re-floods the neighbourhood once
	// per slot of descent and is ~95% of all traffic at this depth; the
	// scale path uses the free-slot jump instead.
	cfg.FastCollisionResolve = true
	cfg.EventBudget = 200_000_000
	cfg.PathCap = PathRecordingOff

	start := time.Now()
	net, err := NewNetwork(g, sink, source, cfg, 61)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("n=%d Δss=%d periods=%.1f captured=%v wall=%v",
		n, res.DeltaSS, res.PeriodsRun, res.Captured, time.Since(start))

	if res.DeltaSS != sourceDist {
		t.Errorf("DeltaSS = %d, want %d", res.DeltaSS, sourceDist)
	}
	if res.PeriodsRun <= 0 {
		t.Error("no data periods simulated")
	}
	if res.SourceDeliveries == 0 {
		t.Error("no source frame reached the sink")
	}
	for i, p := range res.AttackerPaths {
		if len(p) != 1 {
			t.Errorf("attacker %d recorded %d locations with recording off", i, len(p))
		}
	}
	if len(res.AttackerMoves) != 1 {
		t.Fatalf("AttackerMoves = %v, want one attacker", res.AttackerMoves)
	}
	if res.Captured && res.AttackerMoves[0] < res.DeltaSS {
		t.Errorf("captured in %d moves, below the %d-hop floor", res.AttackerMoves[0], res.DeltaSS)
	}
}
