package core

import (
	"fmt"
	"math"
	"slices"
	"time"

	"slpdas/internal/attacker"
	"slpdas/internal/channel"
	"slpdas/internal/des"
	"slpdas/internal/fault"
	"slpdas/internal/gcn"
	"slpdas/internal/mac"
	"slpdas/internal/protocol"
	"slpdas/internal/radio"
	"slpdas/internal/schedule"
	"slpdas/internal/topo"
	"slpdas/internal/wire"
	"slpdas/internal/xrand"
)

// MsgStats counts frames and bytes sent for one message type.
type MsgStats struct {
	Count uint64
	Bytes uint64
}

// msgStatsSlots sizes the per-type stats array: wire types are small dense
// constants, so accounting is an indexed add instead of a map lookup.
const msgStatsSlots = int(wire.TypeData) + 1

// Network assembles one simulated run: topology, radio, GCN engine, one
// protocol node per WSN node, and the attacker.
//
// Construction is split into one-time wiring and per-run state. NewNetwork
// wires the expensive immutable machinery — simulator, medium, engine,
// node processes with their GCN action lists, radio receivers, slot tasks
// — and Reset rewinds everything mutable (clocks, pools, protocol state,
// counters, random streams, attackers) for a new (config, seed) without
// reallocating, so arena-style callers replay thousands of runs on one
// Network. A fresh NewNetwork is itself implemented as wiring + Reset, so
// the two paths cannot drift apart.
type Network struct {
	cfg    Config
	g      *topo.Graph // lint:immutable: topology wiring, fixed at construction
	sink   topo.NodeID // lint:immutable: fixed by the topology
	source topo.NodeID // lint:immutable: fixed by the topology
	seed   uint64

	sim    *des.Simulator
	medium *radio.Medium
	engine *gcn.Engine
	nodes  []*node         // lint:immutable: slice header fixed; nodes reset individually
	tasks  []*mac.SlotTask // lint:immutable: slice header fixed; tasks rearmed per run
	atks   []*attacker.Attacker

	timing    mac.Timing
	deltaSS   int // lint:immutable: hop distance sink→source, fixed by the topology
	sinkEcc   int // lint:immutable: max hop distance from the sink, fixed by the topology
	dataStart time.Duration
	deadline  time.Duration
	delta     float64 // safety period in TDMA periods

	// Routing family plumbing: env is the immutable world handed to family
	// instances, fam/proto are the active family and its per-network
	// instance, and protoCache keeps one instance per family so arena
	// callers switching families between runs reuse state (instances must
	// make Reset equivalent to fresh construction, like everything else on
	// the arena path).
	env        protocol.Env
	fam        protocol.Protocol
	proto      protocol.Instance
	protoCache map[string]protocol.Instance

	msgStats     [msgStatsSlots]MsgStats
	decodeErrors uint64
	changedNodes int
	searchSent   bool

	sourceDeliveries  int
	lastDeliveredSeq  uint32
	deliveryLatencies []int

	failAt map[topo.NodeID]time.Duration

	// Channel plumbing: the parsed model for cfg.Channel, cached per raw
	// spec string so arena Resets reuse one instance (per-run state inside
	// the model is rewound by Medium.Reset).
	chanSpec  string        // lint:immutable: cache key, maintained by resolveChannel on the Reset path
	chanModel channel.Model // lint:immutable: cached parse, maintained by resolveChannel on the Reset path

	// Energy accounting state (cfg.Energy configured only). energyOn is
	// latched at Reset and gates every charging branch so energy-off runs
	// replay the pre-energy event order exactly. lifetimeAt is the instant
	// the first depletion death partitioned source from sink — the
	// network-lifetime verdict; lifetimeEnded latches it.
	energyOn      bool
	energyDeaths  int
	firstDeathAt  time.Duration
	lifetimeAt    time.Duration
	lifetimeEnded bool

	// Fault-injection state. faultPlan is minted at Reset from cfg.Faults
	// on the dedicated "fault" stream; faultsActive is latched at setup
	// when the plan or the legacy failAt schedule injects anything, and
	// gates every degradation-tracking branch so fault-free runs replay
	// the pre-fault event order exactly.
	faultPlan      *fault.Plan
	faultsActive   bool
	nodesFailed    int
	nodesRecovered int
	firstFaultAt   time.Duration
	lastFaultAt    time.Duration
	lastRepairAt   time.Duration
	// seqDelivered tracks which source sequence numbers (period indices)
	// reached the sink, for the before/during/after delivery ratios.
	seqDelivered []bool

	// Wire scratch: one decoder for the receive path and one outgoing
	// message per type for the send path. The simulation is
	// single-threaded and messages are consumed before the next is built,
	// so per-network scratch makes the whole protocol layer frame traffic
	// without allocating.
	dec       wire.Decoder // lint:immutable: scratch, overwritten before every use
	outHello  wire.Hello   // lint:immutable: scratch, overwritten before every use
	outDissem wire.Dissem  // lint:immutable: scratch, overwritten before every use
	outSearch wire.Search  // lint:immutable: scratch, overwritten before every use
	outChange wire.Change  // lint:immutable: scratch, overwritten before every use
	outData   wire.Data    // lint:immutable: scratch, overwritten before every use
	frame     []byte       // lint:immutable: marshal scratch, overwritten before every use

	periodTick periodTick // lint:immutable: rebound via rearm() on every setup
}

// periodTick is the reusable period-boundary event that drives every
// attacker's NextPeriod clock (§VI-C: the attackers know the period).
type periodTick struct{ n *Network }

func (p periodTick) Run() {
	now := p.n.sim.Now()
	for _, atk := range p.n.atks {
		atk.NextPeriodAt(now)
	}
}

// NewNetwork validates and wires up a run. The attacker starts at the sink
// (as in the paper) regardless of cfg.Attacker.Start.
func NewNetwork(g *topo.Graph, sink, source topo.NodeID, cfg Config, seed uint64) (*Network, error) {
	if !g.Valid(sink) || !g.Valid(source) {
		return nil, fmt.Errorf("core: invalid sink %d or source %d", sink, source)
	}
	if sink == source {
		return nil, fmt.Errorf("core: sink and source must differ")
	}
	sinkDist := g.BFSFrom(sink)
	deltaSS, sinkEcc := -1, 0
	for id, d := range sinkDist {
		if topo.NodeID(id) == source {
			deltaSS = d
		}
		if d > sinkEcc {
			sinkEcc = d
		}
	}
	if deltaSS < 0 {
		return nil, fmt.Errorf("core: source unreachable from sink")
	}

	sim := des.New()
	net := &Network{
		g:       g,
		sink:    sink,
		source:  source,
		seed:    seed,
		sim:     sim,
		medium:  radio.New(sim, g, seed),
		engine:  gcn.NewEngine(sim, 0),
		deltaSS: deltaSS,
		sinkEcc: sinkEcc,
		env: protocol.Env{
			Graph:    g,
			Sink:     sink,
			Source:   source,
			SinkDist: sinkDist,
		},
		protoCache: make(map[string]protocol.Instance),
		failAt:     make(map[topo.NodeID]time.Duration),
	}
	net.periodTick = periodTick{n: net}

	net.nodes = make([]*node, g.Len())
	net.tasks = make([]*mac.SlotTask, g.Len())
	for id := topo.NodeID(0); int(id) < g.Len(); id++ {
		nd := newNode(id, net)
		net.nodes[id] = nd
		net.tasks[id] = mac.NewSlotTask(sim,
			func() int {
				if nd.slot == noValue {
					return -1
				}
				return int(nd.slot)
			},
			nd.fireDataSlot,
		)
		// A crashed node's periods pass in silence; the period count keeps
		// advancing so sequence numbers stay wall-clock aligned (see mac).
		net.tasks[id].SetAliveCheck(func() bool { return !nd.dead })
		// Idle-listening charge, once per TDMA data period the node is up.
		// Only TDMA families arm slot tasks, so event-driven data phases
		// accrue no idle spend (documented in internal/energy).
		net.tasks[id].SetPeriodHook(func() {
			if net.energyOn {
				net.charge(nd.id, net.cfg.Energy.IdleCost)
			}
		})
	}

	if err := net.Reset(cfg, seed); err != nil {
		return nil, err
	}
	return net, nil
}

// Reset rewinds the network for a fresh run with a new configuration and
// seed on the same (graph, sink, source). Everything per-run — simulator
// clock and queue, medium channel state and pools, GCN channels and
// timers, node protocol state, random streams, counters, attackers — is
// restored to its just-constructed state without reallocating the wiring,
// so Reset costs a small fraction of NewNetwork. Two runs of the same
// (config, seed) produce identical Results whether they share a Network
// via Reset or use fresh ones; the arena tests pin this.
//
// Scheduled failures (FailNode) are cleared: re-inject them after Reset.
func (n *Network) Reset(cfg Config, seed uint64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	factory, err := cfg.strategyFactory()
	if err != nil {
		return err
	}
	fam, err := cfg.ProtocolFamily()
	if err != nil {
		return err
	}

	n.cfg = cfg
	n.seed = seed
	n.fam = fam

	budget := cfg.EventBudget
	if budget == 0 {
		budget = 50_000_000
	}
	ch, err := n.resolveChannel(cfg)
	if err != nil {
		return err
	}
	n.energyOn = !cfg.Energy.Empty()
	var meter radio.EnergyMeter
	if n.energyOn {
		meter = n
	}
	n.energyDeaths = 0
	n.firstDeathAt = 0
	n.lifetimeAt = 0
	n.lifetimeEnded = false

	n.sim.Reset()
	n.sim.SetEventBudget(budget)
	n.medium.Reset(seed, ch, cfg.Collisions, meter)
	n.engine.Reset()

	n.timing = cfg.Timing()
	// Safety period (§VI-B): C = period × (Δss + 1); δ = Cs · C.
	n.delta = cfg.SafetyFactor * float64(n.deltaSS+1)
	n.dataStart = time.Duration(cfg.MinimumSetupPeriods) * n.timing.PeriodDuration()
	n.deadline = n.dataStart + time.Duration(n.delta*float64(n.timing.PeriodDuration()))

	// Rewind the family instance alongside everything else on the arena
	// path. Instances are cached per family so switching families between
	// runs on one Network reuses (and must fully rewind) state.
	inst, ok := n.protoCache[fam.Name()]
	if !ok {
		inst = fam.New()
		n.protoCache[fam.Name()] = inst
	}
	inst.Reset(&n.env, protocol.Params{
		SearchDistance: cfg.SearchDistance,
		DataStart:      n.dataStart,
		SlotDuration:   cfg.SlotPeriod,
		Period:         n.timing.PeriodDuration(),
		Periods:        int(math.Ceil(n.delta)) + 2,
	}, seed)
	n.proto = inst

	for _, nd := range n.nodes {
		nd.reset(seed)
	}

	n.msgStats = [msgStatsSlots]MsgStats{}
	n.decodeErrors = 0
	n.changedNodes = 0
	n.searchSent = false
	n.sourceDeliveries = 0
	n.lastDeliveredSeq = 0
	n.deliveryLatencies = n.deliveryLatencies[:0]
	clear(n.failAt)

	// Mint the fault plan for this (config, seed). The expansion draws
	// only from its own named stream — and only when the spec is non-empty
	// — so it cannot perturb any other consumer of the run seed.
	n.faultPlan = nil
	if !cfg.Faults.Empty() {
		plan, err := fault.New(cfg.Faults, fault.Env{
			Graph:     n.g,
			Sink:      n.sink,
			Source:    n.source,
			DataStart: n.dataStart,
			Period:    n.timing.PeriodDuration(),
			Horizon:   n.horizon(),
		}, seed)
		if err != nil {
			return err
		}
		n.faultPlan = plan
	}
	n.faultsActive = false
	n.nodesFailed = 0
	n.nodesRecovered = 0
	n.firstFaultAt = 0
	n.lastFaultAt = 0
	n.lastRepairAt = 0
	n.seqDelivered = n.seqDelivered[:0]

	params := cfg.Attacker
	params.Start = n.sink
	var shared *attacker.HistoryStore
	if cfg.SharedHistory {
		shared = attacker.NewHistoryStore(params.H)
	}
	count := cfg.Attackers()
	n.atks = n.atks[:0]
	for i := 0; i < count; i++ {
		atk, err := attacker.NewWithStrategy(n.g, params, factory(), n.source, seed, i)
		if err != nil {
			return err
		}
		if shared != nil {
			atk.ShareHistory(shared)
		}
		if cfg.PathCap != 0 {
			// PathRecordingOff maps to the attacker's "start only" cap.
			atk.SetPathCap(cfg.PathCap)
		}
		n.atks = append(n.atks, atk)
	}
	return nil
}

// horizon is the instant the run ends: the capture deadline plus one
// period of settle margin (see Run). No fault event may land after it.
func (n *Network) horizon() time.Duration {
	return n.deadline + n.timing.PeriodDuration()
}

// resolveChannel maps the config's channel knobs onto one channel.Model:
// Channel spec (parsed, cached per spec string), else the legacy Loss
// model adapted, else nil — Medium.Reset's ideal default. The model is
// owned by this Network, never shared: Config carries only the string,
// so copied Configs on campaign workers cannot alias per-run state.
func (n *Network) resolveChannel(cfg Config) (channel.Model, error) {
	if cfg.Channel != "" {
		if n.chanModel == nil || n.chanSpec != cfg.Channel {
			m, err := channel.Parse(cfg.Channel)
			if err != nil {
				return nil, err
			}
			n.chanSpec, n.chanModel = cfg.Channel, m
		}
		return n.chanModel, nil
	}
	if cfg.Loss != nil {
		return radio.FromLossModel(cfg.Loss), nil
	}
	return nil, nil
}

// ChargeTx implements radio.EnergyMeter: bill the sender for one frame.
//
//slp:hotpath
func (n *Network) ChargeTx(id topo.NodeID, bytes int) {
	n.charge(id, n.cfg.Energy.TxCost*float64(bytes))
}

// ChargeRx implements radio.EnergyMeter: bill a receiver for one
// reception window, survive it or not.
//
//slp:hotpath
func (n *Network) ChargeRx(id topo.NodeID, bytes int) {
	n.charge(id, n.cfg.Energy.RxCost*float64(bytes))
}

// charge spends mJ from id's battery and crash-stops the node at
// depletion. The sink and the source are mains-powered: they account
// spend but never die, keeping the privacy question well-posed.
//
//slp:hotpath
func (n *Network) charge(id topo.NodeID, mJ float64) {
	nd := n.nodes[id]
	nd.energyUsed += mJ
	if !nd.energyDead && nd.energyUsed >= n.cfg.Energy.Capacity && id != n.sink && id != n.source {
		n.depleted(id)
	}
}

// depleted kills a node whose battery just ran out: permanent fail-stop
// through the fault-injection path, plus the first-death and
// network-lifetime verdicts. Cold path — each node depletes at most once
// per run.
func (n *Network) depleted(id topo.NodeID) {
	nd := n.nodes[id]
	nd.energyDead = true
	n.energyDeaths++
	if n.energyDeaths == 1 {
		n.firstDeathAt = n.sim.Now()
	}
	n.crashNode(id)
	if !n.lifetimeEnded && n.partitioned() {
		n.lifetimeEnded = true
		n.lifetimeAt = n.sim.Now()
	}
}

// FailNode schedules node id to crash at the given absolute time (legacy
// single-node failure injection; prefer Config.Faults, which rides the
// arena Reset path). Must be called after Reset and before Run; the
// schedule is cleared by Reset. The node id is validated against the
// topology — a nonexistent id used to schedule a silent no-op — and the
// time against the run horizon.
func (n *Network) FailNode(id topo.NodeID, at time.Duration) error {
	if !n.g.Valid(id) {
		return fmt.Errorf("core: FailNode: node %d does not exist (topology has %d nodes)", id, n.g.Len())
	}
	if at > n.horizon() {
		return fmt.Errorf("core: FailNode: failure at %v is after the run horizon %v", at, n.horizon())
	}
	n.failAt[id] = at
	return nil
}

// crashNode fails a node mid-run: radio silent, GCN computation stopped,
// TDMA periods skipped. Idempotent — a node already down stays down.
func (n *Network) crashNode(id topo.NodeID) {
	nd := n.nodes[id]
	if nd.dead {
		return
	}
	nd.dead = true
	n.nodesFailed++
	n.medium.DisableNode(id)
	nd.prc.Fail()
}

// recoverNode rejoins a crashed node with blank volatile state, like a
// reboot from ROM: the protocol state is re-zeroed (the per-node stream
// replays from its seed, keeping the run deterministic), the radio
// re-enabled, and neighbour discovery re-run so the node can re-acquire
// hop, parent and slot from its neighbours' disseminations.
func (n *Network) recoverNode(id topo.NodeID) {
	nd := n.nodes[id]
	if !nd.dead || nd.energyDead {
		// A battery-depleted node has nothing to reboot with: depletion is
		// permanent, churn recovery cannot resurrect it.
		return
	}
	n.nodesRecovered++
	used := nd.energyUsed
	nd.reset(n.seed)
	// A reboot does not recharge the battery: the spend survives the
	// volatile-state wipe.
	nd.energyUsed = used
	nd.prc.Revive()
	n.medium.EnableNode(id)
	if id == n.sink {
		nd.sinkInit()
		n.engine.Kickstart(nd.prc)
	}
	cfg := n.cfg
	boot := nd.jitterDelay(cfg.BootJitter)
	for k := 0; k < cfg.NeighbourDiscoveryPeriods; k++ {
		delay := boot + time.Duration(k)*cfg.DisseminationPeriod + nd.jitterDelay(cfg.DisseminationPeriod/2)
		n.sim.ScheduleAfter(delay, nd.helloFn)
	}
}

// Graph returns the topology.
func (n *Network) Graph() *topo.Graph { return n.g }

// Attacker exposes the first eavesdropper (for examples that render the
// chase); see Attackers for the whole team.
func (n *Network) Attacker() *attacker.Attacker { return n.atks[0] }

// Attackers exposes every eavesdropper of the hunt.
func (n *Network) Attackers() []*attacker.Attacker { return n.atks }

// DataStart returns the source-activation time.
func (n *Network) DataStart() time.Duration { return n.dataStart }

// SafetyPeriods returns δ expressed in TDMA periods.
func (n *Network) SafetyPeriods() float64 { return n.delta }

// DeltaSS returns the sink–source hop distance.
func (n *Network) DeltaSS() int { return n.deltaSS }

// rankKey orders sibling competitors under a parent: a per-run pseudo
// random permutation every node agrees on (see node.chooseSlot).
func (n *Network) rankKey(parent, competitor topo.NodeID) uint64 {
	return xrand.Mix(n.seed, 0x72616e6b, uint64(parent), uint64(competitor))
}

// orderKey is the per-run total order replacing raw node IDs in
// collision-resolution tie-breaks (see node.collisionLoser).
func (n *Network) orderKey(id topo.NodeID) uint64 {
	return xrand.Mix(n.seed, 0x6f726465, uint64(id))
}

// parentKey is the per-run, per-child order used to break ties among
// minimum-hop potential parents (see node.chooseSlot).
func (n *Network) parentKey(child, parent topo.NodeID) uint64 {
	return xrand.Mix(n.seed, 0x70617265, uint64(child), uint64(parent))
}

// broadcast marshals and transmits a protocol message, accounting stats.
// The message may live in the network's outgoing scratch; it is fully
// consumed (framed and copied by the medium) before broadcast returns.
//
//slp:hotpath
func (n *Network) broadcast(from topo.NodeID, msg wire.Message) {
	n.frame = wire.AppendFrame(n.frame[:0], msg)
	st := &n.msgStats[msg.Kind()]
	st.Count++
	st.Bytes += uint64(len(n.frame))
	if msg.Kind() == wire.TypeSearch {
		n.searchSent = true
	}
	n.medium.Broadcast(from, n.frame)
}

func (n *Network) recordSourceDelivery(seq uint32) {
	n.sourceDeliveries++
	n.lastDeliveredSeq = seq
	// Latency in periods: sequence numbers are period indices, so arrival
	// period minus origination period. Under TDMA the sink's slot task
	// stamps the arrival period; event-driven families never arm it, so
	// derive the period from the clock instead.
	period := n.nodes[n.sink].dataPeriod
	if !n.fam.TDMAData() {
		period = int((n.sim.Now() - n.dataStart) / n.timing.PeriodDuration())
	}
	lat := period - int(seq)
	if lat >= 0 {
		n.deliveryLatencies = append(n.deliveryLatencies, lat)
	}
	// Unique-sequence tracking for the degradation windows (fault runs
	// only): sequence numbers are origination period indices.
	if n.faultsActive {
		if p := int(seq); p < len(n.seqDelivered) {
			n.seqDelivered[p] = true
		}
	}
}

// setup schedules boots, discovery, dissemination, search, data phase and
// the attacker clock.
func (n *Network) setup() error {
	cfg := n.cfg
	dissemStart := time.Duration(cfg.NeighbourDiscoveryPeriods)*cfg.DisseminationPeriod + cfg.BootJitter

	for _, nd := range n.nodes {
		// Boot + neighbour discovery: NDP rounds of HELLO.
		boot := nd.jitterDelay(cfg.BootJitter)
		for k := 0; k < cfg.NeighbourDiscoveryPeriods; k++ {
			at := boot + time.Duration(k)*cfg.DisseminationPeriod + nd.jitterDelay(cfg.DisseminationPeriod/2)
			if _, err := n.sim.Schedule(at, nd.helloFn); err != nil {
				return err
			}
		}
	}

	// Sink starts Phase 1 after discovery.
	sinkNode := n.nodes[n.sink]
	if _, err := n.sim.Schedule(dissemStart, func() {
		sinkNode.sinkInit()
		n.engine.Kickstart(sinkNode.prc)
	}); err != nil {
		return err
	}

	// Phase 2 launch (families with a search phase only).
	if n.fam.SearchPhase() {
		searchAt := dissemStart + n.searchStartDelay()
		if _, err := n.sim.Schedule(searchAt, sinkNode.startSearch); err != nil {
			return err
		}
	}

	// Failure injection. Schedule in NodeID order: map iteration order would
	// vary the simulator's tie-breaking sequence numbers for failures that
	// share a deadline, and with them the run's event interleaving.
	var failIDs []topo.NodeID
	for id := range n.failAt {
		failIDs = append(failIDs, id)
	}
	slices.Sort(failIDs)
	for _, id := range failIDs {
		id := id
		if _, err := n.sim.Schedule(n.failAt[id], func() { n.crashNode(id) }); err != nil {
			return err
		}
	}

	// Fault plan: schedule every event of the deterministic plan minted at
	// Reset, and latch the fault window for the degradation metrics.
	if !n.faultPlan.Empty() {
		for _, ev := range n.faultPlan.Events {
			ev := ev
			var fn func()
			switch ev.Op {
			case fault.OpCrash:
				fn = func() { n.crashNode(ev.Node) }
			case fault.OpRecover:
				fn = func() { n.recoverNode(ev.Node) }
			case fault.OpLinkDown:
				fn = func() { n.medium.DisableLink(ev.Node, ev.Peer) }
			default:
				return fmt.Errorf("core: fault plan holds unknown op %v", ev.Op)
			}
			if _, err := n.sim.Schedule(ev.At, fn); err != nil {
				return err
			}
		}
	}
	if !n.faultPlan.Empty() || len(failIDs) > 0 {
		n.faultsActive = true
		first, last := n.faultPlan.Window()
		for _, id := range failIDs {
			at := n.failAt[id]
			if first == 0 || at < first {
				first = at
			}
			if at > last {
				last = at
			}
		}
		n.firstFaultAt, n.lastFaultAt = first, last
		periods := int(math.Ceil(n.delta)) + 2
		if cap(n.seqDelivered) >= periods {
			n.seqDelivered = n.seqDelivered[:periods]
			clear(n.seqDelivered)
		} else {
			n.seqDelivered = make([]bool, periods)
		}
	}
	return nil
}

// searchStartDelay derives when Phase 2 can safely assume Phase 1 settled.
func (n *Network) searchStartDelay() time.Duration {
	if n.cfg.SearchStartDelay > 0 {
		return n.cfg.SearchStartDelay
	}
	// The assignment wave travels one hop per dissemination round; give it
	// the network eccentricity plus the full resend budget, doubled for
	// collision-resolution churn. The eccentricity is a property of the
	// (graph, sink) pair, precomputed at wiring time.
	rounds := 2 * (n.sinkEcc + n.cfg.DisseminationTimeout + 4)
	return time.Duration(rounds) * n.cfg.DisseminationPeriod
}

// startDataPhase arms the TDMA slot tasks, the attacker clock and the
// capture stop condition.
func (n *Network) startDataPhase() error {
	// Pure-TDMA families arm every node's slot task; event-driven families
	// leave them unarmed and drive all DATA traffic through StartData.
	if n.fam.TDMAData() {
		for _, task := range n.tasks {
			if err := task.Start(n.timing, n.dataStart); err != nil {
				return err
			}
		}
	}

	for _, atk := range n.atks {
		n.medium.AddObserver(atk)
		// ActivateAt (not Activate) so a capture that exists at activation —
		// the attacker already standing on the source — is stamped with the
		// data-phase start time.
		atk := atk
		if _, err := n.sim.Schedule(n.dataStart, func() { atk.ActivateAt(n.dataStart) }); err != nil {
			return err
		}
		// Capture = first of the team to reach the source: any capture
		// ends the hunt for everyone.
		atk.OnCapture = func(time.Duration) { n.sim.Stop() }
	}
	// The attackers know the period length (§VI-C): align NextPeriod.
	periods := int(math.Ceil(n.delta)) + 2
	for k := 1; k <= periods; k++ {
		at := n.dataStart + time.Duration(k)*n.timing.PeriodDuration()
		if err := n.sim.ScheduleRunner(at, &n.periodTick); err != nil {
			return err
		}
	}
	// Family-driven traffic (a no-op for the pure-TDMA paper pair, so the
	// registry path replays the pre-registry event order exactly).
	return n.proto.StartData(n)
}

// --- protocol.Host ---

// Now implements protocol.Host: the simulation clock.
func (n *Network) Now() time.Duration { return n.sim.Now() }

// Schedule implements protocol.Host: run fn at the absolute time at.
func (n *Network) Schedule(at time.Duration, fn func()) error {
	_, err := n.sim.Schedule(at, fn)
	return err
}

// SendData implements protocol.Host: broadcast one DATA frame from the
// given node through the network's frame-accounted send path, so family
// traffic shows up in message stats and attacker observations exactly
// like node traffic.
func (n *Network) SendData(from, origin topo.NodeID, seq uint32, count uint16) {
	d := &n.outData
	d.From = from
	d.Origin = origin
	d.Seq = seq
	d.Count = count
	n.broadcast(from, d)
}

// RunSetup executes only the setup phases (discovery, dissemination and —
// for SLP — search and refinement) and returns the resulting slot
// assignment. Used to extract schedules for VerifySchedule and benches.
func (n *Network) RunSetup() (*schedule.Assignment, error) {
	if err := n.setup(); err != nil {
		return nil, err
	}
	if err := n.sim.RunUntil(n.dataStart); err != nil {
		return nil, err
	}
	if err := n.engine.Err(); err != nil {
		return nil, err
	}
	return n.Assignment(), nil
}

// NodeState is a diagnostic snapshot of one protocol node's key variables,
// exposed for debugging tools and tests.
type NodeState struct {
	ID      topo.NodeID
	Hop     int
	Slot    int
	Parent  topo.NodeID
	Normal  bool
	Changed bool
	// PotentialParents is Npar, sorted.
	PotentialParents []topo.NodeID
	// KnownSlot is this node's view of a neighbour's slot (its Ninfo).
	KnownSlot map[topo.NodeID]int
}

// NodeState returns the diagnostic snapshot for node id.
func (n *Network) NodeState(id topo.NodeID) NodeState {
	nd := n.nodes[id]
	st := NodeState{
		ID:      id,
		Hop:     int(nd.hop),
		Slot:    int(nd.slot),
		Parent:  nd.par,
		Normal:  nd.normal,
		Changed: nd.changed,
	}
	st.PotentialParents = sortedIDs(nd.npar)
	st.KnownSlot = make(map[topo.NodeID]int, nd.ninfo.len())
	for k, j := range nd.ninfo.ids {
		st.KnownSlot[j] = int(nd.ninfo.infos[k].slot)
	}
	return st
}

// Assignment snapshots the current slot assignment.
func (n *Network) Assignment() *schedule.Assignment {
	a := schedule.New(n.g.Len(), n.sink)
	for _, nd := range n.nodes {
		if nd.slot != noValue {
			a.Set(nd.id, int(nd.slot))
		}
	}
	return a
}

// Run executes the complete lifecycle and gathers the result.
func (n *Network) Run() (*Result, error) {
	if err := n.setup(); err != nil {
		return nil, err
	}
	if err := n.sim.RunUntil(n.dataStart); err != nil {
		return nil, err
	}
	if err := n.engine.Err(); err != nil {
		return nil, err
	}
	if err := n.startDataPhase(); err != nil {
		return nil, err
	}
	// One extra period of margin lets in-flight frames settle; captures
	// are judged against the deadline, not the simulation horizon.
	if err := n.sim.RunUntil(n.deadline + n.timing.PeriodDuration()); err != nil {
		return nil, err
	}
	if err := n.engine.Err(); err != nil {
		return nil, err
	}
	return n.collect(), nil
}

func (n *Network) collect() *Result {
	res := &Result{
		Protocol:     n.fam.Label(),
		Seed:         n.seed,
		Nodes:        n.g.Len(),
		DeltaSS:      n.deltaSS,
		SafetyPeriod: n.delta,
		DataStart:    n.dataStart,
		Assignment:   n.Assignment(),
		Messages:     make(map[wire.Type]MsgStats, msgStatsSlots),
		RadioStats:   n.medium.Stats(),
		DecodeErrors: n.decodeErrors,
		ChangedNodes: n.changedNodes,
		SearchSent:   n.searchSent,

		SourceDeliveries: n.sourceDeliveries,
		Strategy:         n.cfg.StrategyLabel(),
		Attackers:        len(n.atks),
		CaptureBy:        -1,
	}
	for t, s := range n.msgStats {
		if s.Count > 0 {
			res.Messages[wire.Type(t)] = s
		}
	}
	// Capture = the first eavesdropper to reach the source within the
	// safety deadline; ties on time break by attacker index.
	for i, atk := range n.atks {
		res.AttackerPaths = append(res.AttackerPaths, atk.Path())
		res.AttackerMoves = append(res.AttackerMoves, atk.Moves())
		captured, at := atk.Captured()
		if !captured || at > n.deadline {
			continue
		}
		if !res.Captured || at < res.CaptureAt {
			res.Captured = true
			res.CaptureAt = at
			res.CaptureBy = i
			res.CapturePeriods = float64(at-n.dataStart) / float64(n.timing.PeriodDuration())
		}
	}
	// AttackerPath stays the single-attacker view: the capturing
	// attacker's walk, or the first attacker's when no one captured.
	if res.CaptureBy >= 0 {
		res.AttackerPath = res.AttackerPaths[res.CaptureBy]
	} else {
		res.AttackerPath = res.AttackerPaths[0]
	}
	if now := n.sim.Now(); now > n.dataStart {
		res.PeriodsRun = float64(now-n.dataStart) / float64(n.timing.PeriodDuration())
	}
	for _, lat := range n.deliveryLatencies {
		res.DeliveryLatencySum += lat
	}
	res.DeliveryCount = len(n.deliveryLatencies)

	g, a := n.g, res.Assignment
	res.WeakViolations = len(schedule.CheckWeakDAS(g, a))
	res.StrongViolations = len(schedule.CheckStrongDAS(g, a))
	res.CollisionViolations = len(schedule.CheckNonColliding(g, a))
	res.RangeViolations = len(schedule.CheckSlotRange(g, a, n.cfg.Slots))

	// Energy verdicts (energy runs only; energy-off runs report the zero
	// totals and the -1 sentinels).
	res.FirstDeathPeriod = -1
	res.LifetimePeriods = -1
	if n.energyOn {
		var total, peak float64
		for _, nd := range n.nodes {
			total += nd.energyUsed
			if nd.energyUsed > peak {
				peak = nd.energyUsed
			}
		}
		res.EnergyTotalMJ = total
		res.EnergyMaxMJ = peak
		res.EnergyMeanMJ = total / float64(len(n.nodes))
		res.EnergyDeaths = n.energyDeaths
		period := float64(n.timing.PeriodDuration())
		if n.energyDeaths > 0 {
			res.FirstDeathPeriod = float64(n.firstDeathAt-n.dataStart) / period
		}
		if n.lifetimeEnded {
			res.LifetimePeriods = float64(n.lifetimeAt-n.dataStart) / period
		} else {
			res.LifetimePeriods = res.PeriodsRun
		}
	}

	// Degradation verdicts (fault runs only; fault-free runs report the
	// zero values and RepairPeriods = -1).
	res.RepairPeriods = -1
	if n.faultsActive {
		res.NodesFailed = n.nodesFailed
		res.NodesRecovered = n.nodesRecovered
		if n.lastRepairAt > n.firstFaultAt {
			res.RepairPeriods = float64(n.lastRepairAt-n.firstFaultAt) / float64(n.timing.PeriodDuration())
		}
		res.PartitionDetected = n.partitioned()
		res.DeliveryBefore, res.DeliveryDuring, res.DeliveryAfter = n.deliveryWindows(res.PeriodsRun)
	}
	return res
}

// deliveryWindows splits the unique-sequence delivery record at the fault
// window [firstFaultAt, lastFaultAt] and returns the per-window delivery
// ratios: sequences delivered / data periods originated in the window.
func (n *Network) deliveryWindows(periodsRun float64) (before, during, after float64) {
	total := int(periodsRun)
	if total > len(n.seqDelivered) {
		total = len(n.seqDelivered)
	}
	period := n.timing.PeriodDuration()
	fp := int((n.firstFaultAt - n.dataStart) / period)
	if fp < 0 {
		fp = 0
	}
	lp := int((n.lastFaultAt - n.dataStart) / period)
	if lp < fp {
		lp = fp
	}
	ratio := func(lo, hi int) float64 {
		if lo < 0 {
			lo = 0
		}
		if hi > total {
			hi = total
		}
		if hi <= lo {
			return 0
		}
		got := 0
		for p := lo; p < hi; p++ {
			if n.seqDelivered[p] {
				got++
			}
		}
		return float64(got) / float64(hi-lo)
	}
	return ratio(0, fp), ratio(fp, lp+1), ratio(lp+1, total)
}

// partitioned reports whether source and sink ended the run separated:
// one of them dead, or no path of alive nodes over intact links between
// them. Evaluated once at collect — a cold path.
func (n *Network) partitioned() bool {
	if n.nodes[n.sink].dead || n.nodes[n.source].dead {
		return true
	}
	visited := make([]bool, n.g.Len())
	queue := make([]topo.NodeID, 0, 64)
	visited[n.sink] = true
	queue = append(queue, n.sink)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == n.source {
			return false
		}
		for _, w := range n.g.Neighbors(v) {
			if visited[w] || n.nodes[w].dead || n.medium.LinkDisabled(v, w) {
				continue
			}
			visited[w] = true
			queue = append(queue, w)
		}
	}
	return true
}
