package core

import (
	"fmt"
	"math"
	"time"

	"slpdas/internal/attacker"
	"slpdas/internal/des"
	"slpdas/internal/gcn"
	"slpdas/internal/mac"
	"slpdas/internal/radio"
	"slpdas/internal/schedule"
	"slpdas/internal/topo"
	"slpdas/internal/wire"
	"slpdas/internal/xrand"
)

// MsgStats counts frames and bytes sent for one message type.
type MsgStats struct {
	Count uint64
	Bytes uint64
}

// Network assembles one simulated run: topology, radio, GCN engine, one
// protocol node per WSN node, and the attacker.
type Network struct {
	cfg    Config
	g      *topo.Graph
	sink   topo.NodeID
	source topo.NodeID
	seed   uint64

	sim    *des.Simulator
	medium *radio.Medium
	engine *gcn.Engine
	nodes  []*node
	atks   []*attacker.Attacker

	timing    mac.Timing
	deltaSS   int
	dataStart time.Duration
	deadline  time.Duration
	delta     float64 // safety period in TDMA periods

	msgStats     map[wire.Type]*MsgStats
	decodeErrors uint64
	changedNodes int
	searchSent   bool

	sourceDeliveries  int
	lastDeliveredSeq  uint32
	deliveryLatencies []int

	failAt map[topo.NodeID]time.Duration
}

// NewNetwork validates and wires up a run. The attacker starts at the sink
// (as in the paper) regardless of cfg.Attacker.Start.
func NewNetwork(g *topo.Graph, sink, source topo.NodeID, cfg Config, seed uint64) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !g.Valid(sink) || !g.Valid(source) {
		return nil, fmt.Errorf("core: invalid sink %d or source %d", sink, source)
	}
	if sink == source {
		return nil, fmt.Errorf("core: sink and source must differ")
	}
	deltaSS := g.HopDistance(sink, source)
	if deltaSS < 0 {
		return nil, fmt.Errorf("core: source unreachable from sink")
	}

	budget := cfg.EventBudget
	if budget == 0 {
		budget = 50_000_000
	}
	sim := des.New(des.WithEventBudget(budget))
	loss := cfg.Loss
	if loss == nil {
		loss = radio.Ideal{}
	}
	medium := radio.New(sim, g, seed,
		radio.WithLossModel(loss),
		radio.WithCollisions(cfg.Collisions),
	)

	net := &Network{
		cfg:      cfg,
		g:        g,
		sink:     sink,
		source:   source,
		seed:     seed,
		sim:      sim,
		medium:   medium,
		engine:   gcn.NewEngine(sim, 0),
		timing:   cfg.Timing(),
		deltaSS:  deltaSS,
		msgStats: make(map[wire.Type]*MsgStats),
		failAt:   make(map[topo.NodeID]time.Duration),
	}

	// Safety period (§VI-B): C = period × (Δss + 1); δ = Cs · C.
	net.delta = cfg.SafetyFactor * float64(deltaSS+1)
	net.dataStart = time.Duration(cfg.MinimumSetupPeriods) * net.timing.PeriodDuration()
	net.deadline = net.dataStart + time.Duration(net.delta*float64(net.timing.PeriodDuration()))

	net.nodes = make([]*node, g.Len())
	for id := topo.NodeID(0); int(id) < g.Len(); id++ {
		net.nodes[id] = newNode(id, net)
	}

	params := cfg.Attacker
	params.Start = sink
	var shared *attacker.HistoryStore
	if cfg.SharedHistory {
		shared = attacker.NewHistoryStore(params.H)
	}
	factory, err := cfg.strategyFactory()
	if err != nil {
		return nil, err
	}
	count := cfg.Attackers()
	net.atks = make([]*attacker.Attacker, 0, count)
	for i := 0; i < count; i++ {
		atk, err := attacker.NewWithStrategy(g, params, factory(), source, seed, i)
		if err != nil {
			return nil, err
		}
		if shared != nil {
			atk.ShareHistory(shared)
		}
		net.atks = append(net.atks, atk)
	}
	return net, nil
}

// FailNode schedules node n to crash at the given absolute time (failure
// injection). Must be called before Run.
func (n *Network) FailNode(id topo.NodeID, at time.Duration) {
	n.failAt[id] = at
}

// Graph returns the topology.
func (n *Network) Graph() *topo.Graph { return n.g }

// Attacker exposes the first eavesdropper (for examples that render the
// chase); see Attackers for the whole team.
func (n *Network) Attacker() *attacker.Attacker { return n.atks[0] }

// Attackers exposes every eavesdropper of the hunt.
func (n *Network) Attackers() []*attacker.Attacker { return n.atks }

// DataStart returns the source-activation time.
func (n *Network) DataStart() time.Duration { return n.dataStart }

// SafetyPeriods returns δ expressed in TDMA periods.
func (n *Network) SafetyPeriods() float64 { return n.delta }

// DeltaSS returns the sink–source hop distance.
func (n *Network) DeltaSS() int { return n.deltaSS }

// rankKey orders sibling competitors under a parent: a per-run pseudo
// random permutation every node agrees on (see node.chooseSlot).
func (n *Network) rankKey(parent, competitor topo.NodeID) uint64 {
	return xrand.Mix(n.seed, 0x72616e6b, uint64(parent), uint64(competitor))
}

// orderKey is the per-run total order replacing raw node IDs in
// collision-resolution tie-breaks (see node.collisionLoser).
func (n *Network) orderKey(id topo.NodeID) uint64 {
	return xrand.Mix(n.seed, 0x6f726465, uint64(id))
}

// parentKey is the per-run, per-child order used to break ties among
// minimum-hop potential parents (see node.chooseSlot).
func (n *Network) parentKey(child, parent topo.NodeID) uint64 {
	return xrand.Mix(n.seed, 0x70617265, uint64(child), uint64(parent))
}

// broadcast marshals and transmits a protocol message, accounting stats.
func (n *Network) broadcast(from topo.NodeID, msg wire.Message) {
	frame := wire.Marshal(msg)
	st := n.msgStats[msg.Kind()]
	if st == nil {
		st = &MsgStats{}
		n.msgStats[msg.Kind()] = st
	}
	st.Count++
	st.Bytes += uint64(len(frame))
	if msg.Kind() == wire.TypeSearch {
		n.searchSent = true
	}
	n.medium.Broadcast(from, frame)
}

func (n *Network) recordSourceDelivery(seq uint32) {
	n.sourceDeliveries++
	n.lastDeliveredSeq = seq
	lat := n.nodes[n.sink].dataPeriod - int(seq)
	if lat >= 0 {
		n.deliveryLatencies = append(n.deliveryLatencies, lat)
	}
}

// setup schedules boots, discovery, dissemination, search, data phase and
// the attacker clock.
func (n *Network) setup() error {
	cfg := n.cfg
	dissemStart := time.Duration(cfg.NeighbourDiscoveryPeriods)*cfg.DisseminationPeriod + cfg.BootJitter

	for _, nd := range n.nodes {
		nd := nd
		// Radio → GCN delivery.
		n.medium.SetReceiver(nd.id, func(from topo.NodeID, payload []byte) {
			msg, err := wire.Unmarshal(payload)
			if err != nil {
				n.decodeErrors++
				return
			}
			n.engine.Deliver(nd.prc, from, msg)
		})
		// Boot + neighbour discovery: NDP rounds of HELLO.
		boot := nd.jitterDelay(cfg.BootJitter)
		for k := 0; k < cfg.NeighbourDiscoveryPeriods; k++ {
			at := boot + time.Duration(k)*cfg.DisseminationPeriod + nd.jitterDelay(cfg.DisseminationPeriod/2)
			if _, err := n.sim.Schedule(at, nd.sendHello); err != nil {
				return err
			}
		}
	}

	// Sink starts Phase 1 after discovery.
	sinkNode := n.nodes[n.sink]
	if _, err := n.sim.Schedule(dissemStart, func() {
		sinkNode.sinkInit()
		n.engine.Kickstart(sinkNode.prc)
	}); err != nil {
		return err
	}

	// Phase 2 launch (SLP only).
	if cfg.SLP {
		searchAt := dissemStart + n.searchStartDelay()
		if _, err := n.sim.Schedule(searchAt, sinkNode.startSearch); err != nil {
			return err
		}
	}

	// Failure injection.
	for id, at := range n.failAt {
		id := id
		if _, err := n.sim.Schedule(at, func() { n.medium.DisableNode(id) }); err != nil {
			return err
		}
	}
	return nil
}

// searchStartDelay derives when Phase 2 can safely assume Phase 1 settled.
func (n *Network) searchStartDelay() time.Duration {
	if n.cfg.SearchStartDelay > 0 {
		return n.cfg.SearchStartDelay
	}
	// The assignment wave travels one hop per dissemination round; give it
	// the network eccentricity plus the full resend budget, doubled for
	// collision-resolution churn.
	maxHop := 0
	for _, d := range n.g.BFSFrom(n.sink) {
		if d > maxHop {
			maxHop = d
		}
	}
	rounds := 2 * (maxHop + n.cfg.DisseminationTimeout + 4)
	return time.Duration(rounds) * n.cfg.DisseminationPeriod
}

// startDataPhase arms the TDMA slot tasks, the attacker clock and the
// capture stop condition.
func (n *Network) startDataPhase() error {
	for _, nd := range n.nodes {
		nd := nd
		if _, err := mac.StartSlotTask(n.sim, n.timing, n.dataStart,
			func() int {
				if nd.slot == noValue {
					return -1
				}
				return int(nd.slot)
			},
			nd.fireDataSlot,
		); err != nil {
			return err
		}
	}

	for _, atk := range n.atks {
		atk := atk
		n.medium.AddObserver(atk)
		// ActivateAt (not Activate) so a capture that exists at activation —
		// the attacker already standing on the source — is stamped with the
		// data-phase start time.
		if _, err := n.sim.Schedule(n.dataStart, func() { atk.ActivateAt(n.dataStart) }); err != nil {
			return err
		}
		// Capture = first of the team to reach the source: any capture
		// ends the hunt for everyone.
		atk.OnCapture = func(time.Duration) { n.sim.Stop() }
	}
	// The attackers know the period length (§VI-C): align NextPeriod.
	periods := int(math.Ceil(n.delta)) + 2
	for k := 1; k <= periods; k++ {
		at := n.dataStart + time.Duration(k)*n.timing.PeriodDuration()
		if _, err := n.sim.Schedule(at, func() {
			for _, atk := range n.atks {
				atk.NextPeriodAt(at)
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// RunSetup executes only the setup phases (discovery, dissemination and —
// for SLP — search and refinement) and returns the resulting slot
// assignment. Used to extract schedules for VerifySchedule and benches.
func (n *Network) RunSetup() (*schedule.Assignment, error) {
	if err := n.setup(); err != nil {
		return nil, err
	}
	if err := n.sim.RunUntil(n.dataStart); err != nil {
		return nil, err
	}
	if err := n.engine.Err(); err != nil {
		return nil, err
	}
	return n.Assignment(), nil
}

// NodeState is a diagnostic snapshot of one protocol node's key variables,
// exposed for debugging tools and tests.
type NodeState struct {
	ID      topo.NodeID
	Hop     int
	Slot    int
	Parent  topo.NodeID
	Normal  bool
	Changed bool
	// PotentialParents is Npar, sorted.
	PotentialParents []topo.NodeID
	// KnownSlot is this node's view of a neighbour's slot (its Ninfo).
	KnownSlot map[topo.NodeID]int
}

// NodeState returns the diagnostic snapshot for node id.
func (n *Network) NodeState(id topo.NodeID) NodeState {
	nd := n.nodes[id]
	st := NodeState{
		ID:      id,
		Hop:     int(nd.hop),
		Slot:    int(nd.slot),
		Parent:  nd.par,
		Normal:  nd.normal,
		Changed: nd.changed,
	}
	st.PotentialParents = sortedIDs(nd.npar)
	st.KnownSlot = make(map[topo.NodeID]int, len(nd.ninfo))
	for j, in := range nd.ninfo {
		st.KnownSlot[j] = int(in.slot)
	}
	return st
}

// Assignment snapshots the current slot assignment.
func (n *Network) Assignment() *schedule.Assignment {
	a := schedule.New(n.g.Len(), n.sink)
	for _, nd := range n.nodes {
		if nd.slot != noValue {
			a.Set(nd.id, int(nd.slot))
		}
	}
	return a
}

// Run executes the complete lifecycle and gathers the result.
func (n *Network) Run() (*Result, error) {
	if err := n.setup(); err != nil {
		return nil, err
	}
	if err := n.sim.RunUntil(n.dataStart); err != nil {
		return nil, err
	}
	if err := n.engine.Err(); err != nil {
		return nil, err
	}
	if err := n.startDataPhase(); err != nil {
		return nil, err
	}
	// One extra period of margin lets in-flight frames settle; captures
	// are judged against the deadline, not the simulation horizon.
	if err := n.sim.RunUntil(n.deadline + n.timing.PeriodDuration()); err != nil {
		return nil, err
	}
	if err := n.engine.Err(); err != nil {
		return nil, err
	}
	return n.collect(), nil
}

func (n *Network) collect() *Result {
	res := &Result{
		Protocol:     protocolName(n.cfg.SLP),
		Seed:         n.seed,
		Nodes:        n.g.Len(),
		DeltaSS:      n.deltaSS,
		SafetyPeriod: n.delta,
		DataStart:    n.dataStart,
		Assignment:   n.Assignment(),
		Messages:     make(map[wire.Type]MsgStats, len(n.msgStats)),
		RadioStats:   n.medium.Stats(),
		DecodeErrors: n.decodeErrors,
		ChangedNodes: n.changedNodes,
		SearchSent:   n.searchSent,

		SourceDeliveries: n.sourceDeliveries,
		Strategy:         n.cfg.StrategyLabel(),
		Attackers:        len(n.atks),
		CaptureBy:        -1,
	}
	for t, s := range n.msgStats {
		res.Messages[t] = *s
	}
	// Capture = the first eavesdropper to reach the source within the
	// safety deadline; ties on time break by attacker index.
	for i, atk := range n.atks {
		res.AttackerPaths = append(res.AttackerPaths, atk.Path())
		captured, at := atk.Captured()
		if !captured || at > n.deadline {
			continue
		}
		if !res.Captured || at < res.CaptureAt {
			res.Captured = true
			res.CaptureAt = at
			res.CaptureBy = i
			res.CapturePeriods = float64(at-n.dataStart) / float64(n.timing.PeriodDuration())
		}
	}
	// AttackerPath stays the single-attacker view: the capturing
	// attacker's walk, or the first attacker's when no one captured.
	if res.CaptureBy >= 0 {
		res.AttackerPath = res.AttackerPaths[res.CaptureBy]
	} else {
		res.AttackerPath = res.AttackerPaths[0]
	}
	if now := n.sim.Now(); now > n.dataStart {
		res.PeriodsRun = float64(now-n.dataStart) / float64(n.timing.PeriodDuration())
	}
	for _, lat := range n.deliveryLatencies {
		res.DeliveryLatencySum += lat
	}
	res.DeliveryCount = len(n.deliveryLatencies)

	g, a := n.g, res.Assignment
	res.WeakViolations = len(schedule.CheckWeakDAS(g, a))
	res.StrongViolations = len(schedule.CheckStrongDAS(g, a))
	res.CollisionViolations = len(schedule.CheckNonColliding(g, a))
	res.RangeViolations = len(schedule.CheckSlotRange(g, a, n.cfg.Slots))
	return res
}

func protocolName(slp bool) string {
	if slp {
		return "slp-das"
	}
	return "protectionless-das"
}
