// Package core implements the paper's contribution: the protectionless
// data aggregation scheduling protocol (Figure 2) and the 3-phase SLP-aware
// DAS protocol (Figures 2–4) as guarded-command programs running over the
// simulated radio, plus the full network lifecycle of the evaluation
// (Section VI): neighbour discovery, dissemination, search, slot
// refinement, and TDMA data periods hunted by a (R,H,M,s0,D)-attacker.
package core

import (
	"fmt"
	"time"

	"slpdas/internal/attacker"
	"slpdas/internal/channel"
	"slpdas/internal/energy"
	"slpdas/internal/fault"
	"slpdas/internal/mac"
	"slpdas/internal/protocol"
	"slpdas/internal/radio"
)

// Config carries every protocol parameter of Table I plus the simulation
// knobs the paper fixes in prose (§VI).
type Config struct {
	// SourcePeriod (Psrc) is the rate at which the source generates
	// messages: 5.5 s.
	SourcePeriod time.Duration
	// SlotPeriod (Pslot) is the duration of a single TDMA slot: 0.05 s.
	SlotPeriod time.Duration
	// DisseminationPeriod (Pdiss) is the interval between dissemination
	// broadcasts during setup: 0.5 s.
	DisseminationPeriod time.Duration
	// Slots is the number of slots per TDMA period (Δ): 100.
	Slots int
	// MinimumSetupPeriods (MSP) is the number of TDMA periods before the
	// source activates: 80.
	MinimumSetupPeriods int
	// NeighbourDiscoveryPeriods (NDP) is the number of dissemination-sized
	// periods of HELLO beaconing: 4.
	NeighbourDiscoveryPeriods int
	// DisseminationTimeout (DT) is the number of dissemination messages a
	// node sends per state change: 5.
	DisseminationTimeout int
	// SearchDistance (SD) is how many hops SEARCH messages travel from the
	// sink: 3 or 5 in the paper. Only consulted by families for which
	// Protocol.UsesSearchDistance is true (slp-das, phantom).
	SearchDistance int
	// ChangeLength (CL) is the length of the decoy change path; 0 means
	// the Table I default Δss − SD, computed from the topology.
	ChangeLength int
	// Protocol selects the routing family by registry name (see
	// protocol.Protocols); it takes precedence over SLP. Empty falls
	// through to the SLP bool.
	Protocol string
	// SLP selects the SLP-aware protocol (Phases 2 and 3) over
	// protectionless DAS.
	//
	// Deprecated: the bool is the pre-registry alias for choosing between
	// protocol.NameSLPDAS and protocol.NameProtectionless; set Protocol
	// instead. Ignored when Protocol is non-empty.
	SLP bool
	// SafetyFactor (Cs) scales the protectionless capture time into the
	// safety period: 1.5.
	SafetyFactor float64
	// BootJitter is the per-node random boot delay, standing in for
	// TOSSIM's randomised boot times.
	BootJitter time.Duration
	// SearchStartDelay is when (after dissemination starts) the sink
	// launches Phase 2; 0 derives it from the network diameter.
	SearchStartDelay time.Duration
	// SearchTTLBudget bounds total SEARCH forwards (the d=0 wander of
	// Figure 3 can otherwise circulate); 0 derives 4·SD+8.
	SearchTTLBudget int
	// Attacker carries (R, H, M); the start location s0 is set by the
	// network to the sink, as in the paper.
	Attacker attacker.Params
	// Strategy selects the attacker decision behaviour by registry name
	// (see attacker.Strategies); it takes precedence over Decision. Empty
	// falls through to Decision.
	Strategy string
	// Decision is the attacker's D function when Strategy is empty; nil
	// means FirstHeard, the paper's (1,0,1,s0,D) attacker.
	Decision attacker.Decision
	// AttackerCount is the number of simultaneous eavesdroppers, all
	// starting at the sink with independent random streams and fresh
	// strategy instances. 0 means the paper's single attacker. Capture is
	// scored for the first to reach the source.
	AttackerCount int
	// SharedHistory pools one H-window across all attackers, so the team
	// collectively avoids anywhere any member has visited. Only meaningful
	// with AttackerCount > 1 and Attacker.H > 0.
	SharedHistory bool
	// Loss is the legacy binary channel model; nil means radio.Ideal{}, the
	// paper's reliable-network evaluation setting. Superseded by Channel
	// when that is non-empty.
	Loss radio.LossModel
	// Channel selects the physical channel by textual spec (the
	// internal/channel grammar: "ideal", "bernoulli:<p>", "rssi", or
	// "logdist:<n>:<sigma>[@sinr:<threshold>]"). A string rather than a
	// model value so Configs stay copyable across campaign workers: each
	// Network parses and owns its instance. Non-empty takes precedence
	// over Loss; empty falls through to Loss, then to the ideal channel.
	Channel string
	// Collisions enables receiver-side collision corruption. Ignored by
	// channels with SINR capture, which replace the binary window with the
	// interference accumulator.
	Collisions bool
	// Energy configures per-node energy accounting (see internal/energy).
	// The zero Spec disables it: no charging, no depletion, no extra
	// random draws, byte-identical runs. With a battery configured, a node
	// whose spend reaches capacity crash-stops through the fault-injection
	// path; the sink and source are mains-powered and never die.
	Energy energy.Spec
	// EventBudget bounds simulator events per run (0 = default 50M).
	EventBudget uint64
	// FastCollisionResolve lets a collision loser jump directly to the
	// nearest slot below its own that no 2-hop neighbour occupies, instead
	// of Figure 2's unit decrement. Both converge to a collision-free weak
	// DAS, but the unit decrement re-floods the neighbourhood once per
	// slot of descent — on deep random geometric graphs that is ~95% of
	// all dissemination traffic and grows superlinearly with n (the
	// descending slot bands of neighbouring branches keep re-colliding).
	// Off by default: the schedules reached differ (deterministically)
	// from the paper's, so Table I evaluations keep the faithful rule.
	FastCollisionResolve bool
	// PathCap bounds per-attacker walk recording in Results: 0 (default)
	// records the full walk, N > 0 keeps only the first N visited
	// locations (including s0), PathRecordingOff disables recording beyond
	// s0. Capture verdicts, capture times and per-attacker move counts
	// (Result.AttackerMoves) are unaffected — only the replayable walk in
	// AttackerPath/AttackerPaths is truncated. At 10⁵–10⁶ nodes a full
	// walk is tens of thousands of entries per attacker per run; campaigns
	// never render walks and disable recording by default.
	PathCap int
	// Faults is the deterministic fault-injection plan specification: node
	// crashes, churn (crash + rejoin), persistent link failures or a region
	// blackout, expanded into timed events as a pure function of
	// (spec, seed) on a dedicated named stream at Reset. The zero value
	// injects nothing and draws nothing, so fault-free runs are
	// byte-identical to builds that predate the subsystem. Unlike the
	// legacy FailNode hook, the plan is part of the config and rides the
	// arena Reset path — no re-injection after Reset needed.
	Faults fault.Spec
}

// PathRecordingOff is the Config.PathCap value that disables attacker
// walk recording (paths keep only the start location).
const PathRecordingOff = -1

// Default returns the Table I parameters with SD = 3.
func Default() Config {
	return Config{
		SourcePeriod:              5500 * time.Millisecond,
		SlotPeriod:                50 * time.Millisecond,
		DisseminationPeriod:       500 * time.Millisecond,
		Slots:                     100,
		MinimumSetupPeriods:       80,
		NeighbourDiscoveryPeriods: 4,
		DisseminationTimeout:      5,
		SearchDistance:            3,
		ChangeLength:              0, // Δss − SD
		SLP:                       false,
		SafetyFactor:              1.5,
		BootJitter:                50 * time.Millisecond,
		Attacker:                  attacker.Params{R: 1, H: 0, M: 1},
	}
}

// DefaultSLP returns Table I parameters with the SLP protocol enabled and
// the given search distance.
func DefaultSLP(searchDistance int) Config {
	c := Default()
	c.SLP = true
	c.SearchDistance = searchDistance
	return c
}

// Timing returns the TDMA superframe implied by the config.
func (c Config) Timing() mac.Timing {
	return mac.Timing{Slots: c.Slots, SlotDuration: c.SlotPeriod}
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	if c.SourcePeriod <= 0 || c.SlotPeriod <= 0 || c.DisseminationPeriod <= 0 {
		return fmt.Errorf("core: periods must be positive (src=%v slot=%v diss=%v)", c.SourcePeriod, c.SlotPeriod, c.DisseminationPeriod)
	}
	if c.Slots < 2 {
		return fmt.Errorf("core: need at least 2 slots, got %d", c.Slots)
	}
	if c.MinimumSetupPeriods < 1 {
		return fmt.Errorf("core: MSP must be >= 1, got %d", c.MinimumSetupPeriods)
	}
	if c.NeighbourDiscoveryPeriods < 1 {
		return fmt.Errorf("core: NDP must be >= 1, got %d", c.NeighbourDiscoveryPeriods)
	}
	if c.DisseminationTimeout < 1 {
		return fmt.Errorf("core: DT must be >= 1, got %d", c.DisseminationTimeout)
	}
	fam, err := c.ProtocolFamily()
	if err != nil {
		return err
	}
	if fam.UsesSearchDistance() && c.SearchDistance < 1 {
		return fmt.Errorf("core: protocol %q needs SearchDistance >= 1, got %d", fam.Name(), c.SearchDistance)
	}
	if c.SafetyFactor <= 0 {
		return fmt.Errorf("core: safety factor must be positive, got %v", c.SafetyFactor)
	}
	if c.ChangeLength < 0 {
		return fmt.Errorf("core: change length must be >= 0, got %d", c.ChangeLength)
	}
	if err := (attacker.Params{R: c.Attacker.R, H: c.Attacker.H, M: c.Attacker.M, Start: 0}).Validate(); err != nil {
		return err
	}
	if c.Strategy != "" {
		if _, err := attacker.ByName(c.Strategy); err != nil {
			return err
		}
	}
	if c.AttackerCount < 0 {
		return fmt.Errorf("core: attacker count must be >= 0, got %d", c.AttackerCount)
	}
	if c.PathCap < PathRecordingOff {
		return fmt.Errorf("core: path cap must be >= %d (off), got %d", PathRecordingOff, c.PathCap)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Channel != "" {
		if _, err := channel.Parse(c.Channel); err != nil {
			return err
		}
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	return nil
}

// ProtocolName returns the registry name of the configured routing
// family: the Protocol field when set (canonicalised through the registry,
// so the "slp" alias reports "slp-das"), else the family the deprecated
// SLP bool aliases.
func (c Config) ProtocolName() string {
	if c.Protocol != "" {
		if fam, err := protocol.ByName(c.Protocol); err == nil {
			return fam.Name()
		}
		return c.Protocol
	}
	if c.SLP {
		return protocol.NameSLPDAS
	}
	return protocol.NameProtectionless
}

// ProtocolFamily resolves the configured routing family through the
// registry.
func (c Config) ProtocolFamily() (protocol.Protocol, error) {
	return protocol.ByName(c.ProtocolName())
}

// HasSearchPhase reports whether the configured family runs the SLP
// search phase (Phase 2) during setup.
func (c Config) HasSearchPhase() bool {
	fam, err := c.ProtocolFamily()
	return err == nil && fam.SearchPhase()
}

// Attackers returns the effective eavesdropper count (0 means 1).
func (c Config) Attackers() int {
	if c.AttackerCount <= 0 {
		return 1
	}
	return c.AttackerCount
}

// strategyFactory resolves the configured behaviour — named strategy,
// bare Decision func, or the first-heard default — to one per-attacker
// instance factory.
func (c Config) strategyFactory() (attacker.Factory, error) {
	if c.Strategy != "" {
		return attacker.ByName(c.Strategy)
	}
	decide := c.Decision
	if decide == nil {
		decide = attacker.FirstHeard
	}
	return func() attacker.Strategy { return attacker.DecisionStrategy(decide) }, nil
}

// StrategyLabel names the attacker behaviour for reporting: the Strategy
// registry name, "custom" for a bare Decision func, else the default.
func (c Config) StrategyLabel() string {
	if c.Strategy != "" {
		return c.Strategy
	}
	if c.Decision != nil {
		return "custom"
	}
	return attacker.DefaultStrategy
}
