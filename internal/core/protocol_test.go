package core

import (
	"reflect"
	"testing"

	"slpdas/internal/protocol"
	"slpdas/internal/topo"
)

// familyConfig builds a small-grid config for one registry family.
func familyConfig(name string) Config {
	cfg := Default()
	cfg.Protocol = name
	cfg.SearchDistance = 2
	return cfg
}

// TestEveryFamilyDeterministic pins per-family determinism: for every
// registered protocol, the same (config, seed) produces a deeply equal
// Result across independent networks. Run under -race this also shakes
// out unsynchronised shared state inside family instances.
func TestEveryFamilyDeterministic(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	sink, source := topo.GridCentre(5), topo.GridTopLeft()
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := familyConfig(name)
			a := freshResult(t, g, sink, source, cfg, 42)
			b := freshResult(t, g, sink, source, cfg, 42)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same (cfg, seed) diverged:\nfirst: %+v\nsecond: %+v", a, b)
			}
			fam, err := protocol.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if a.Protocol != fam.Label() {
				t.Errorf("Result.Protocol = %q, want label %q", a.Protocol, fam.Label())
			}
			if a.SourceDeliveries == 0 {
				t.Errorf("%s delivered no source messages", name)
			}
		})
	}
}

// TestResetAcrossFamilies extends the arena no-drift audit to the protocol
// axis: one network cycled through every registered family via Reset must
// match fresh per-family networks, including a replay of the first family
// after the others dirtied per-family instance state.
func TestResetAcrossFamilies(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	sink, source := topo.GridCentre(5), topo.GridTopLeft()

	names := protocol.Names()
	sequence := append(append([]string{}, names...), names[0]) // replay the first
	first := familyConfig(sequence[0])

	net, err := NewNetwork(g, sink, source, first, 7)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	var arena []*Result
	for i, name := range sequence {
		if i > 0 {
			if err := net.Reset(familyConfig(name), 7); err != nil {
				t.Fatalf("Reset(%s): %v", name, err)
			}
		}
		res, err := net.Run()
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		arena = append(arena, res)
	}
	for i, name := range sequence {
		fresh := freshResult(t, g, sink, source, familyConfig(name), 7)
		if !reflect.DeepEqual(arena[i], fresh) {
			t.Errorf("%s (step %d): arena result diverges from fresh network:\narena: %+v\nfresh: %+v",
				name, i, arena[i], fresh)
		}
	}
	if !reflect.DeepEqual(arena[0], arena[len(arena)-1]) {
		t.Errorf("replaying %s after cycling every family diverged:\nfirst: %+v\nagain: %+v",
			sequence[0], arena[0], arena[len(arena)-1])
	}
}

// TestProtocolFieldAliasesBool pins the compatibility contract: the
// deprecated SLP bool and the Protocol string select the same families,
// and the string wins when both are set.
func TestProtocolFieldAliasesBool(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	sink, source := topo.GridCentre(5), topo.GridTopLeft()

	viaBool := DefaultSLP(2)
	viaString := Default()
	viaString.Protocol = protocol.NameSLPDAS
	viaString.SearchDistance = 2
	viaAlias := viaString
	viaAlias.Protocol = protocol.AliasSLP
	viaAlias.SLP = false // the string takes precedence regardless

	want := freshResult(t, g, sink, source, viaBool, 5)
	for name, cfg := range map[string]Config{"string": viaString, "alias": viaAlias} {
		got := freshResult(t, g, sink, source, cfg, 5)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s config diverged from the SLP bool path:\ngot: %+v\nwant: %+v", name, got, want)
		}
	}

	if got := (Config{Protocol: "phantom", SLP: true}).ProtocolName(); got != protocol.NamePhantom {
		t.Errorf("Protocol string should beat the SLP bool, got %q", got)
	}
	if got := (Config{SLP: true}).ProtocolName(); got != protocol.NameSLPDAS {
		t.Errorf("SLP bool alias broken, got %q", got)
	}
	if got := (Config{}).ProtocolName(); got != protocol.NameProtectionless {
		t.Errorf("zero config should be protectionless, got %q", got)
	}
}

// TestUnknownProtocolRejected mirrors the attacker-strategy check: a
// config naming an unregistered family fails validation and NewNetwork.
func TestUnknownProtocolRejected(t *testing.T) {
	cfg := Default()
	cfg.Protocol = "bogus-routing"
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown protocol")
	}
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetwork(g, topo.GridCentre(5), topo.GridTopLeft(), cfg, 1); err == nil {
		t.Fatal("NewNetwork accepted an unknown protocol")
	}
}
