package core

import (
	"testing"

	"slpdas/internal/topo"
)

// TestProtocolOnIrregularTopology: the distributed protocol is not
// grid-specific — it must converge to a valid weak DAS on random
// geometric graphs too.
func TestProtocolOnIrregularTopology(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g, err := topo.RandomGeometric(40, 40, 40, 11, seed)
		if err != nil {
			t.Fatalf("RandomGeometric: %v", err)
		}
		// Sink near the middle of the ID space, source the farthest node.
		sink := topo.NodeID(0)
		dist := g.BFSFrom(sink)
		source := topo.NodeID(1)
		for n := range dist {
			if dist[n] > dist[source] {
				source = topo.NodeID(n)
			}
		}
		net, err := NewNetwork(g, sink, source, Default(), seed)
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		res, err := net.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !res.ScheduleValid() {
			t.Errorf("seed %d: invalid schedule on RGG: weak=%d coll=%d range=%d",
				seed, res.WeakViolations, res.CollisionViolations, res.RangeViolations)
		}
		if res.SourceDeliveries == 0 {
			t.Errorf("seed %d: convergecast broken on RGG", seed)
		}
	}
}

// TestProtocolOnLine: the degenerate 1-D topology still yields a valid
// DAS, and the single gradient means the attacker walks straight home.
func TestProtocolOnLine(t *testing.T) {
	g, err := topo.Line(9, 4.5, 4.5)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	net, err := NewNetwork(g, 8, 0, Default(), 4)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.ScheduleValid() {
		t.Errorf("invalid schedule on line")
	}
	if !res.Captured {
		t.Error("line topology offers no privacy; the attacker should capture")
	}
}

// TestProtocolOnRing: two disjoint routes to the sink; the schedule must
// stay valid and the ring's two gradients give the attacker a coin flip.
func TestProtocolOnRing(t *testing.T) {
	g, err := topo.Ring(12, 4.5, 5.0)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	net, err := NewNetwork(g, 0, 6, Default(), 2)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.ScheduleValid() {
		t.Errorf("invalid schedule on ring: weak=%d coll=%d", res.WeakViolations, res.CollisionViolations)
	}
}
