package core

import (
	"math"

	"slpdas/internal/topo"
)

// nearestTo returns the node closest to p. It lives outside scale_test.go
// (build-tagged !race) because regular tests use it too, race builds
// included.
func nearestTo(g *topo.Graph, p topo.Point) topo.NodeID {
	best, bestD := topo.NodeID(0), math.Inf(1)
	for id := topo.NodeID(0); int(id) < g.Len(); id++ {
		if d := g.Position(id).DistanceTo(p); d < bestD {
			best, bestD = id, d
		}
	}
	return best
}
