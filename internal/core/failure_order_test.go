package core

import (
	"reflect"
	"testing"
	"time"

	"slpdas/internal/topo"
)

// TestFailureInjectionOrderDeterminism pins the mapiter fix in setup():
// failure events are scheduled in sorted NodeID order, so the simulator's
// tie-breaking sequence numbers — and with them the whole run — cannot
// depend on failAt's map iteration order. The test injects several
// failures sharing one deadline in different insertion orders and demands
// byte-identical results.
func TestFailureInjectionOrderDeterminism(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	sink, source := topo.GridCentre(5), topo.GridTopLeft()
	cfg := Default()
	const seed = 11

	fail := []topo.NodeID{3, 17, 8, 21}
	at := 2 * time.Second

	run := func(order []topo.NodeID) *Result {
		t.Helper()
		net, err := NewNetwork(g, sink, source, cfg, seed)
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		for _, id := range order {
			net.FailNode(id, at)
		}
		res, err := net.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}

	base := run(fail)
	reversed := []topo.NodeID{21, 8, 17, 3}
	for i := 0; i < 3; i++ {
		if got := run(reversed); !reflect.DeepEqual(base, got) {
			t.Fatalf("failure injection order changed the run:\nbase: %+v\ngot:  %+v", base, got)
		}
	}

	clean := freshResult(t, g, sink, source, cfg, seed)
	if reflect.DeepEqual(base, clean) {
		t.Fatal("simultaneous failures had no observable effect; the determinism test is vacuous")
	}
}
