package core

import (
	"math"
	"testing"
	"time"

	"slpdas/internal/radio"
	"slpdas/internal/schedule"
	"slpdas/internal/topo"
	"slpdas/internal/verify"
	"slpdas/internal/wire"
)

func grid(t *testing.T, side int) *topo.Graph {
	t.Helper()
	g, err := topo.DefaultGrid(side)
	if err != nil {
		t.Fatalf("grid %d: %v", side, err)
	}
	return g
}

func run(t *testing.T, g *topo.Graph, side int, cfg Config, seed uint64) *Result {
	t.Helper()
	net, err := NewNetwork(g, topo.GridCentre(side), topo.GridTopLeft(), cfg, seed)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run (seed %d): %v", seed, err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := DefaultSLP(3).Validate(); err != nil {
		t.Errorf("default SLP config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SlotPeriod = 0 },
		func(c *Config) { c.Slots = 1 },
		func(c *Config) { c.MinimumSetupPeriods = 0 },
		func(c *Config) { c.NeighbourDiscoveryPeriods = 0 },
		func(c *Config) { c.DisseminationTimeout = 0 },
		func(c *Config) { c.SLP = true; c.SearchDistance = 0 },
		func(c *Config) { c.SafetyFactor = 0 },
		func(c *Config) { c.ChangeLength = -1 },
		func(c *Config) { c.Attacker.R = 0 },
	}
	for i, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestTableITiming(t *testing.T) {
	cfg := Default()
	if got := cfg.Timing().PeriodDuration(); got != 5*time.Second {
		t.Errorf("period = %v, want 5s (100 slots × 0.05s)", got)
	}
}

func TestNewNetworkRejectsBadInputs(t *testing.T) {
	g := grid(t, 5)
	if _, err := NewNetwork(g, 99, 0, Default(), 1); err == nil {
		t.Error("invalid sink accepted")
	}
	if _, err := NewNetwork(g, 12, 12, Default(), 1); err == nil {
		t.Error("sink == source accepted")
	}
	cfg := Default()
	cfg.Slots = 0
	if _, err := NewNetwork(g, 12, 0, cfg, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestPhase1ProducesValidWeakDAS is invariant 1 of DESIGN.md: the
// distributed Phase 1 protocol converges to a collision-free weak DAS on
// every seed.
func TestPhase1ProducesValidWeakDAS(t *testing.T) {
	const side = 7
	g := grid(t, side)
	for seed := uint64(0); seed < 15; seed++ {
		res := run(t, g, side, Default(), seed)
		if !res.ScheduleValid() {
			t.Errorf("seed %d: weak=%d collisions=%d range=%d",
				seed, res.WeakViolations, res.CollisionViolations, res.RangeViolations)
		}
	}
}

// TestPhase3PreservesDAS is invariant 2: the SLP refinement (Phase 2+3
// plus the update cascade) keeps the schedule a collision-free weak DAS.
func TestPhase3PreservesDAS(t *testing.T) {
	const side = 7
	g := grid(t, side)
	changedTotal := 0
	for seed := uint64(0); seed < 15; seed++ {
		res := run(t, g, side, DefaultSLP(3), seed)
		if !res.ScheduleValid() {
			t.Errorf("seed %d: weak=%d collisions=%d range=%d",
				seed, res.WeakViolations, res.CollisionViolations, res.RangeViolations)
		}
		if !res.SearchSent {
			t.Errorf("seed %d: no SEARCH sent", seed)
		}
		changedTotal += res.ChangedNodes
	}
	if changedTotal == 0 {
		t.Error("refinement never changed a slot in 15 runs")
	}
}

func TestPhase1OnPaperGridSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size sweep")
	}
	for _, side := range []int{11, 15} {
		g := grid(t, side)
		res := run(t, g, side, Default(), 42)
		if !res.ScheduleValid() {
			t.Errorf("size %d: invalid schedule", side)
		}
		res = run(t, g, side, DefaultSLP(3), 42)
		if !res.ScheduleValid() {
			t.Errorf("size %d SLP: invalid schedule", side)
		}
	}
}

// TestConvergecastDelivery: with the DAS property, every period's source
// report reaches the sink within the same period on a loss-free network.
func TestConvergecastDelivery(t *testing.T) {
	const side = 7
	g := grid(t, side)
	res := run(t, g, side, Default(), 3)
	if res.SourceDeliveries == 0 {
		t.Fatal("no source reports delivered to the sink")
	}
	if lat := res.MeanDeliveryLatency(); lat != 0 {
		t.Errorf("mean delivery latency = %.2f periods, want 0 (children transmit before parents)", lat)
	}
}

// TestDeterminism: a run is a pure function of its seed.
func TestDeterminism(t *testing.T) {
	const side = 7
	g := grid(t, side)
	a := run(t, g, side, DefaultSLP(3), 9)
	b := run(t, g, side, DefaultSLP(3), 9)
	if a.Captured != b.Captured || a.CaptureAt != b.CaptureAt {
		t.Errorf("capture outcome differs: %v/%v vs %v/%v", a.Captured, a.CaptureAt, b.Captured, b.CaptureAt)
	}
	if !a.Assignment.Equal(b.Assignment) {
		t.Error("slot assignments differ between same-seed runs")
	}
	if len(a.AttackerPath) != len(b.AttackerPath) {
		t.Fatalf("attacker paths differ in length")
	}
	for i := range a.AttackerPath {
		if a.AttackerPath[i] != b.AttackerPath[i] {
			t.Fatalf("attacker paths diverge at %d", i)
		}
	}
	if a.TotalMessages() != b.TotalMessages() {
		t.Errorf("message counts differ: %d vs %d", a.TotalMessages(), b.TotalMessages())
	}
}

func TestSeedsDiffer(t *testing.T) {
	const side = 7
	g := grid(t, side)
	a := run(t, g, side, Default(), 1)
	b := run(t, g, side, Default(), 2)
	if a.Assignment.Equal(b.Assignment) {
		t.Error("different seeds produced identical schedules; no run-to-run variation")
	}
}

// TestSimulatedAttackerAgreesWithVerify is invariant 4: on a loss-free
// network with a settled schedule, the live (1,0,1) attacker and the
// Algorithm 1 decision procedure agree on capture, and on the trace.
func TestSimulatedAttackerAgreesWithVerify(t *testing.T) {
	const side = 7
	g := grid(t, side)
	sink, source := topo.GridCentre(side), topo.GridTopLeft()
	agreeCaptures := 0
	for seed := uint64(0); seed < 20; seed++ {
		res := run(t, g, side, Default(), seed)
		if !res.ScheduleValid() {
			t.Fatalf("seed %d: invalid schedule", seed)
		}
		delta := int(res.SafetyPeriod) // floor of 1.5·(Δss+1)
		vres, err := verify.VerifySchedule(g, res.Assignment,
			verify.Params{R: 1, M: 1, Start: sink}, verify.FirstHeardD, delta, source, verify.Options{})
		if err != nil {
			t.Fatalf("seed %d: VerifySchedule: %v", seed, err)
		}
		if vres.SLPAware == res.Captured {
			t.Errorf("seed %d: sim captured=%v but verify SLPAware=%v", seed, res.Captured, vres.SLPAware)
			continue
		}
		if res.Captured {
			agreeCaptures++
			// The deterministic attacker has one trajectory; the minimal
			// counterexample must be exactly the simulated path.
			if len(vres.Counterexample) != len(res.AttackerPath) {
				t.Errorf("seed %d: trace lengths differ: verify %v vs sim %v",
					seed, vres.Counterexample, res.AttackerPath)
				continue
			}
			for i := range vres.Counterexample {
				if vres.Counterexample[i] != res.AttackerPath[i] {
					t.Errorf("seed %d: traces diverge at step %d", seed, i)
					break
				}
			}
		}
	}
	if agreeCaptures == 0 {
		t.Log("note: no captures in 20 seeds; agreement only exercised the negative case")
	}
}

// TestSLPReducesCaptures is the headline direction: across seeds, SLP DAS
// captures at most as often as protectionless DAS (E5).
func TestSLPReducesCaptures(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate sweep")
	}
	const side = 9
	g := grid(t, side)
	prot, slp := 0, 0
	const runs = 30
	for seed := uint64(0); seed < runs; seed++ {
		if run(t, g, side, Default(), seed).Captured {
			prot++
		}
		if run(t, g, side, DefaultSLP(3), seed).Captured {
			slp++
		}
	}
	t.Logf("captures over %d seeds: protectionless=%d slp=%d", runs, prot, slp)
	if prot == 0 {
		t.Skip("no protectionless captures at this size/seed range; direction not measurable")
	}
	if slp > prot {
		t.Errorf("SLP DAS captured more often (%d) than protectionless (%d)", slp, prot)
	}
}

func TestRunSetupExtractsSchedule(t *testing.T) {
	const side = 5
	g := grid(t, side)
	net, err := NewNetwork(g, topo.GridCentre(side), topo.GridTopLeft(), Default(), 7)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	a, err := net.RunSetup()
	if err != nil {
		t.Fatalf("RunSetup: %v", err)
	}
	if vs := schedule.CheckWeakDAS(g, a); len(vs) != 0 {
		t.Errorf("setup-only schedule invalid: %v", vs)
	}
}

// TestFailureInjection: nodes failed before discovery never join; the
// surviving network still forms a weak DAS around the hole.
func TestFailureInjection(t *testing.T) {
	const side = 7
	g := grid(t, side)
	net, err := NewNetwork(g, topo.GridCentre(side), topo.GridTopLeft(), Default(), 5)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	failed := []topo.NodeID{topo.GridIndex(side, 2, 2), topo.GridIndex(side, 4, 5)}
	for _, f := range failed {
		net.FailNode(f, 0)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	failedSet := map[topo.NodeID]bool{}
	for _, f := range failed {
		failedSet[f] = true
		if res.Assignment.Assigned(f) {
			t.Errorf("failed node %d obtained a slot", f)
		}
	}
	for _, v := range schedule.CheckWeakDAS(g, res.Assignment) {
		// Violations at (or caused by routing around) failed nodes are
		// expected; any violation at a live node with live routes is not.
		if failedSet[v.Node] {
			continue
		}
		if v.Kind != schedule.KindCollision {
			continue
		}
		// A 2-hop collision is physically real only if the pair shares a
		// live common receiver (or is adjacent). A collision whose only
		// middle node died is unobservable and undetectable by design.
		if g.HasEdge(v.Node, v.Other) {
			t.Errorf("adjacent live collision: %v", v)
			continue
		}
		live := false
		for _, m := range g.Neighbors(v.Node) {
			if failedSet[m] {
				continue
			}
			if g.HasEdge(m, v.Other) {
				live = true
				break
			}
		}
		if live {
			t.Errorf("collision among live nodes with a live witness: %v", v)
		}
	}
}

// TestLossyChannelStillConverges: under 10% Bernoulli loss the DT resend
// budget still drives Phase 1 to a usable schedule on most seeds.
func TestLossyChannelStillConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy sweep")
	}
	const side = 7
	g := grid(t, side)
	valid := 0
	const runs = 10
	for seed := uint64(0); seed < runs; seed++ {
		cfg := Default()
		cfg.Loss = radio.Bernoulli{P: 0.10}
		res := run(t, g, side, cfg, seed)
		if res.ScheduleValid() {
			valid++
		}
	}
	if valid < runs*7/10 {
		t.Errorf("only %d/%d lossy runs converged to a valid schedule", valid, runs)
	}
}

// TestCollisionsEnabledSetupStillConverges: with receiver-side collisions
// on, the jittered dissemination still converges.
func TestCollisionsEnabledSetupStillConverges(t *testing.T) {
	const side = 5
	g := grid(t, side)
	cfg := Default()
	cfg.Collisions = true
	valid := 0
	for seed := uint64(0); seed < 5; seed++ {
		if run(t, g, side, cfg, seed).ScheduleValid() {
			valid++
		}
	}
	if valid < 4 {
		t.Errorf("only %d/5 collision-enabled runs converged", valid)
	}
}

// TestSinkNeverTransmitsData: the sink holds slot Δ and must not appear as
// a data-phase transmitter (its slot is outside the TDMA range).
func TestSinkNeverTransmitsData(t *testing.T) {
	const side = 5
	g := grid(t, side)
	res := run(t, g, side, Default(), 11)
	sink := topo.GridCentre(side)
	if got := res.Assignment.Slot(sink); got != Default().Slots {
		t.Errorf("sink slot = %d, want Δ = %d", got, Default().Slots)
	}
	for _, n := range res.AttackerPath {
		if n == sink && res.AttackerPath[0] != sink {
			t.Error("attacker moved onto the sink mid-walk (it should never hear it transmit)")
		}
	}
}

// TestCaptureTimeRespectsHopDistance: no attacker can capture faster than
// one hop per period over the sink–source distance.
func TestCaptureTimeRespectsHopDistance(t *testing.T) {
	const side = 7
	g := grid(t, side)
	for seed := uint64(0); seed < 20; seed++ {
		res := run(t, g, side, Default(), seed)
		if res.Captured && res.CapturePeriods < float64(res.DeltaSS-1) {
			t.Errorf("seed %d: captured in %.1f periods, hop distance %d", seed, res.CapturePeriods, res.DeltaSS)
		}
	}
}

// TestMessageOverheadNegligible quantifies E4 at small scale: the SLP
// protocol's extra *control* messages are a small fraction of traffic
// (runs stop early on capture, so raw DATA totals are not comparable —
// both protocols send exactly one DATA frame per node per period).
func TestMessageOverheadNegligible(t *testing.T) {
	const side = 7
	g := grid(t, side)
	prot := run(t, g, side, Default(), 1)
	slp := run(t, g, side, DefaultSLP(3), 1)
	extra := int64(slp.ControlMessages()) - int64(prot.ControlMessages())
	if extra < 0 {
		extra = 0
	}
	frac := float64(extra) / float64(prot.TotalMessages())
	t.Logf("extra control messages: %d (%.2f%% of protectionless traffic)", extra, frac*100)
	if frac > 0.15 {
		t.Errorf("SLP control overhead %.1f%% is not negligible", frac*100)
	}
	// Phase 2/3 message cost itself is tiny.
	searchChange := slp.Messages[wire.TypeSearch].Count + slp.Messages[wire.TypeChange].Count
	if float64(searchChange) > 0.05*float64(slp.TotalMessages()) {
		t.Errorf("SEARCH+CHANGE = %d messages, more than 5%% of traffic", searchChange)
	}
	// Data-plane rate is identical by design: one frame per node per period
	// (every node except the sink transmits). Runs that stop on capture end
	// mid-period, so allow slack below the ideal rate.
	want := float64(side*side - 1)
	for _, r := range []*Result{prot, slp} {
		if got := r.DataMessagesPerPeriod(); got < want*0.8 || got > want*1.05 {
			t.Errorf("%s: %.1f data msgs/period, want ≈%.0f", r.Protocol, got, want)
		}
	}
}

func TestResultStringAndAccessors(t *testing.T) {
	const side = 5
	g := grid(t, side)
	res := run(t, g, side, DefaultSLP(2), 3)
	if res.String() == "" {
		t.Error("empty result string")
	}
	if res.TotalMessages() == 0 || res.ControlMessages() == 0 || res.ControlBytes() == 0 {
		t.Error("zero traffic accounted")
	}
	if res.Nodes != side*side {
		t.Errorf("Nodes = %d", res.Nodes)
	}
}

func TestNodeStateSnapshot(t *testing.T) {
	const side = 5
	g := grid(t, side)
	net, err := NewNetwork(g, topo.GridCentre(side), topo.GridTopLeft(), Default(), 1)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if _, err := net.RunSetup(); err != nil {
		t.Fatalf("RunSetup: %v", err)
	}
	st := net.NodeState(0)
	if st.ID != 0 || st.Slot < 0 || st.Parent == topo.None {
		t.Errorf("corner state = %+v, want assigned slot and parent", st)
	}
	if len(st.PotentialParents) == 0 {
		t.Error("no potential parents recorded")
	}
	if len(st.KnownSlot) == 0 {
		t.Error("empty neighbourhood view")
	}
}

func TestMultiAttackerCollectsEveryPath(t *testing.T) {
	side := 7
	g := grid(t, side)
	cfg := Default()
	cfg.AttackerCount = 3
	res := run(t, g, side, cfg, 1)
	if res.Attackers != 3 || len(res.AttackerPaths) != 3 {
		t.Fatalf("Attackers=%d paths=%d, want 3", res.Attackers, len(res.AttackerPaths))
	}
	if res.Strategy != "first-heard" {
		t.Errorf("Strategy = %q, want first-heard default", res.Strategy)
	}
	sink := topo.GridCentre(side)
	for i, p := range res.AttackerPaths {
		if len(p) == 0 || p[0] != sink {
			t.Errorf("attacker %d path %v does not start at the sink %d", i, p, sink)
		}
	}
	if res.Captured {
		if res.CaptureBy < 0 || res.CaptureBy >= 3 {
			t.Errorf("CaptureBy = %d out of range", res.CaptureBy)
		}
		last := res.AttackerPaths[res.CaptureBy]
		if last[len(last)-1] != topo.GridTopLeft() {
			t.Errorf("capturing attacker %d path %v does not end at the source", res.CaptureBy, last)
		}
	} else if res.CaptureBy != -1 {
		t.Errorf("CaptureBy = %d without capture, want -1", res.CaptureBy)
	}
}

func TestSingleAttackerUnchangedByMultiAttackerPlumbing(t *testing.T) {
	// Backward compatibility: AttackerCount 0 (legacy zero value) and 1
	// must produce identical results — same capture outcome, same path.
	side := 7
	g := grid(t, side)
	legacy := run(t, g, side, Default(), 3)
	one := Default()
	one.AttackerCount = 1
	explicit := run(t, g, side, one, 3)
	if legacy.Captured != explicit.Captured || legacy.CaptureAt != explicit.CaptureAt {
		t.Errorf("capture differs: legacy %v@%v vs explicit %v@%v",
			legacy.Captured, legacy.CaptureAt, explicit.Captured, explicit.CaptureAt)
	}
	if len(legacy.AttackerPath) != len(explicit.AttackerPath) {
		t.Fatalf("paths differ: %v vs %v", legacy.AttackerPath, explicit.AttackerPath)
	}
	for i := range legacy.AttackerPath {
		if legacy.AttackerPath[i] != explicit.AttackerPath[i] {
			t.Fatalf("paths differ: %v vs %v", legacy.AttackerPath, explicit.AttackerPath)
		}
	}
}

func TestNamedStrategyMatchesLegacyDecision(t *testing.T) {
	// The registry's first-heard must behave exactly like the legacy
	// Decision-func path for a single attacker.
	side := 7
	g := grid(t, side)
	named := Default()
	named.Strategy = "first-heard"
	a := run(t, g, side, named, 1)
	b := run(t, g, side, Default(), 1)
	if a.Captured != b.Captured || a.CaptureAt != b.CaptureAt {
		t.Errorf("named strategy diverges: %v@%v vs %v@%v", a.Captured, a.CaptureAt, b.Captured, b.CaptureAt)
	}
	if a.Strategy != "first-heard" || b.Strategy != "first-heard" {
		t.Errorf("strategy labels = %q, %q", a.Strategy, b.Strategy)
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	cfg := Default()
	cfg.Strategy = "teleport"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown strategy validated")
	}
	cfg = Default()
	cfg.AttackerCount = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative attacker count validated")
	}
}

func TestStrategiesRunEndToEnd(t *testing.T) {
	// Every registered strategy must drive a full run without error; the
	// random-walk baseline exercises the rng plumbing, cautious the graph
	// binding, backtrack the period hooks.
	side := 7
	g := grid(t, side)
	for _, s := range []string{"patient", "backtrack", "random-walk", "cautious", "unvisited-first", "random-heard"} {
		cfg := Default()
		cfg.Strategy = s
		cfg.Attacker.H = 2
		cfg.Attacker.R = 2
		cfg.AttackerCount = 2
		cfg.SharedHistory = true
		res := run(t, g, side, cfg, 1)
		if res.Strategy != s {
			t.Errorf("%s: result strategy = %q", s, res.Strategy)
		}
		if res.Attackers != 2 || len(res.AttackerPaths) != 2 {
			t.Errorf("%s: attackers = %d, paths = %d", s, res.Attackers, len(res.AttackerPaths))
		}
	}
}

// TestRunTerminatesUnderTotalLoss pins the bernoulli:1 semantics decided
// with radio.ParseLossModel: 100% channel loss is a legitimate stress
// scenario, not a config error. No frame is ever delivered, so no
// schedule can form and no capture can happen — but timers keep firing
// and the run is bounded by simulated time, so the DES terminates
// normally instead of wedging.
func TestRunTerminatesUnderTotalLoss(t *testing.T) {
	for _, mk := range []func() Config{Default, func() Config { return DefaultSLP(2) }} {
		cfg := mk()
		cfg.Loss = radio.Bernoulli{P: 1}
		res := run(t, grid(t, 5), 5, cfg, 1)
		if res.Captured {
			t.Errorf("captured under 100%% loss (SLP=%v)", cfg.SLP)
		}
		if res.ScheduleValid() {
			t.Errorf("schedule formed under 100%% loss (SLP=%v)", cfg.SLP)
		}
		if res.SourceDeliveries != 0 {
			t.Errorf("%d deliveries under 100%% loss (SLP=%v)", res.SourceDeliveries, cfg.SLP)
		}
	}
}

func TestPathCapValidation(t *testing.T) {
	cfg := Default()
	cfg.PathCap = PathRecordingOff
	if err := cfg.Validate(); err != nil {
		t.Errorf("PathRecordingOff rejected: %v", err)
	}
	cfg.PathCap = 7
	if err := cfg.Validate(); err != nil {
		t.Errorf("positive path cap rejected: %v", err)
	}
	cfg.PathCap = -2
	if err := cfg.Validate(); err == nil {
		t.Error("PathCap -2 validated")
	}
}

func TestPathCapPreservesOutcomeAndMoves(t *testing.T) {
	// Capping (or disabling) walk recording must change nothing but the
	// recorded paths: capture verdict, timing, hop counts and per-attacker
	// move totals all survive, and whatever IS recorded is a prefix of the
	// full walk.
	side := 7
	g := grid(t, side)
	base := Default()
	base.AttackerCount = 2
	full := run(t, g, side, base, 1)
	if len(full.AttackerMoves) != 2 {
		t.Fatalf("AttackerMoves = %v, want one entry per attacker", full.AttackerMoves)
	}
	for i, p := range full.AttackerPaths {
		if want := len(p) - 1; full.AttackerMoves[i] != want {
			t.Errorf("attacker %d: Moves=%d but full path has %d relocations",
				i, full.AttackerMoves[i], want)
		}
	}
	for name, cap := range map[string]int{"off": PathRecordingOff, "capped": 3} {
		cfg := base
		cfg.PathCap = cap
		res := run(t, g, side, cfg, 1)
		if res.Captured != full.Captured || res.CaptureAt != full.CaptureAt ||
			res.CapturePeriods != full.CapturePeriods || res.CaptureBy != full.CaptureBy {
			t.Errorf("%s: capture outcome changed: %+v vs full", name, res.Captured)
		}
		for i := range full.AttackerMoves {
			if res.AttackerMoves[i] != full.AttackerMoves[i] {
				t.Errorf("%s: attacker %d moves %d, want %d",
					name, i, res.AttackerMoves[i], full.AttackerMoves[i])
			}
		}
		wantLen := func(fullLen int) int {
			if cap == PathRecordingOff {
				return 1
			}
			return min(fullLen, cap)
		}
		for i, p := range res.AttackerPaths {
			fp := full.AttackerPaths[i]
			if len(p) != wantLen(len(fp)) {
				t.Fatalf("%s: attacker %d path %v, want first %d of %v", name, i, p, wantLen(len(fp)), fp)
			}
			for j := range p {
				if p[j] != fp[j] {
					t.Errorf("%s: attacker %d path %v is not a prefix of %v", name, i, p, fp)
				}
			}
		}
		if len(res.AttackerPath) != wantLen(len(full.AttackerPath)) {
			t.Errorf("%s: legacy AttackerPath %v, want prefix of %v", name, res.AttackerPath, full.AttackerPath)
		}
	}
}

func TestSlotExhaustionDoesNotLivelock(t *testing.T) {
	// Regression: when the slot space is too small for the topology, nodes
	// end up pinned at slot 0 while still colliding with 2-hop neighbours
	// (the update phase clamps forced slot drops at 0, so equal-zero slots
	// accumulate). The resolve action used to stay enabled but unable to
	// descend, spinning until the GCN step budget killed the process. A
	// small random geometric graph with 4 slots reproduces the pin-up on
	// every seed; the run must complete (reporting an invalid schedule)
	// rather than fail.
	side := math.Sqrt(60) * topo.DefaultSpacing
	g, err := topo.RandomGeometric(60, side, side, 2.2*topo.DefaultSpacing, 1)
	if err != nil {
		t.Fatalf("rgg: %v", err)
	}
	cfg := Default()
	cfg.Slots = 4
	net, err := NewNetwork(g, nearestTo(g, topo.Point{X: side / 2, Y: side / 2}), 0, cfg, 1)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ScheduleValid() {
		t.Error("3-slot clique produced a valid schedule; the regression scenario no longer bites")
	}
}
