package core

import (
	"math"
	"reflect"
	"testing"
	"time"

	"slpdas/internal/fault"
	"slpdas/internal/topo"
)

// TestChurnRunRepairsSchedule drives a full churn run end to end: nodes
// crash mid-data-phase, rejoin after the MTTR, and the degradation metrics
// record the failures, the recoveries and the schedule self-healing.
func TestChurnRunRepairsSchedule(t *testing.T) {
	g, err := topo.DefaultGrid(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Faults = fault.Spec{Kind: fault.Churn, Rate: 0.25, MTTR: 2}
	net, err := NewNetwork(g, topo.GridCentre(7), topo.GridTopLeft(), cfg, 5)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.NodesFailed == 0 {
		t.Fatal("churn at rate 0.25 on 47 eligible nodes injected nothing")
	}
	if res.NodesRecovered == 0 {
		t.Error("no node recovered; MTTR of 2 periods should leave most rejoins inside the horizon")
	}
	if res.NodesRecovered > res.NodesFailed {
		t.Errorf("recovered %d > failed %d", res.NodesRecovered, res.NodesFailed)
	}
	if res.RepairPeriods < 0 {
		t.Error("no schedule repair observed: rejoining nodes should re-acquire slots")
	}
	for name, v := range map[string]float64{
		"RepairPeriods":  res.RepairPeriods,
		"DeliveryBefore": res.DeliveryBefore,
		"DeliveryDuring": res.DeliveryDuring,
		"DeliveryAfter":  res.DeliveryAfter,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want finite", name, v)
		}
	}
	for name, v := range map[string]float64{
		"DeliveryBefore": res.DeliveryBefore,
		"DeliveryDuring": res.DeliveryDuring,
		"DeliveryAfter":  res.DeliveryAfter,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v, want a ratio in [0,1]", name, v)
		}
	}
}

// TestFaultRunDeterministic: a faulted run is a pure function of
// (config, seed) — two fresh networks agree on every Result field.
func TestFaultRunDeterministic(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSLP(2)
	cfg.Faults = fault.Spec{Kind: fault.Churn, Rate: 0.3, MTTR: 1.5}
	a := freshResult(t, g, topo.GridCentre(5), topo.GridTopLeft(), cfg, 12)
	b := freshResult(t, g, topo.GridCentre(5), topo.GridTopLeft(), cfg, 12)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same (cfg, seed) diverged under churn:\na: %+v\nb: %+v", a, b)
	}
}

// TestSinkBlackoutPartitionVerdict pins the acceptance criterion for
// graceful degradation under partition: a blackout that swallows the sink
// terminates within the event budget, sets PartitionDetected, and reports
// sane (non-NaN) metrics.
func TestSinkBlackoutPartitionVerdict(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	// Radius 10 radio ranges covers the whole 5×5 grid from any centre:
	// the sink dies wherever the blackout lands.
	cfg.Faults = fault.Spec{Kind: fault.Blackout, Radius: 10, Period: 1}
	net, err := NewNetwork(g, topo.GridCentre(5), topo.GridTopLeft(), cfg, 3)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run must terminate cleanly with a verdict, got: %v", err)
	}
	if !res.PartitionDetected {
		t.Error("sink died in the blackout but PartitionDetected is false")
	}
	if res.NodesFailed != g.Len() {
		t.Errorf("NodesFailed = %d, want the whole network (%d)", res.NodesFailed, g.Len())
	}
	for name, v := range map[string]float64{
		"CapturePeriods": res.CapturePeriods,
		"SafetyPeriod":   res.SafetyPeriod,
		"PeriodsRun":     res.PeriodsRun,
		"RepairPeriods":  res.RepairPeriods,
		"DeliveryBefore": res.DeliveryBefore,
		"DeliveryDuring": res.DeliveryDuring,
		"DeliveryAfter":  res.DeliveryAfter,
		"MeanLatency":    res.MeanDeliveryLatency(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want finite", name, v)
		}
	}
	if res.Captured {
		t.Error("attacker captured a source whose network died around it at period 1")
	}
}

// TestFailNodeValidation: nonexistent node ids and times past the run
// horizon are rejected with clear errors instead of scheduling silent
// no-ops.
func TestFailNodeValidation(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(g, topo.GridCentre(5), topo.GridTopLeft(), Default(), 1)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if err := net.FailNode(topo.NodeID(g.Len()), time.Second); err == nil {
		t.Error("FailNode accepted a node id past the topology")
	}
	if err := net.FailNode(-1, time.Second); err == nil {
		t.Error("FailNode accepted a negative node id")
	}
	if err := net.FailNode(1, 1000*time.Hour); err == nil {
		t.Error("FailNode accepted a failure time past the run horizon")
	}
	if err := net.FailNode(1, 2*time.Second); err != nil {
		t.Errorf("FailNode rejected a valid injection: %v", err)
	}
}

// TestFaultSpecValidatedByConfig: an invalid fault spec is caught by
// Config.Validate at NewNetwork/Reset time.
func TestFaultSpecValidatedByConfig(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Faults = fault.Spec{Kind: fault.Crash, Rate: 2}
	if _, err := NewNetwork(g, topo.GridCentre(5), topo.GridTopLeft(), cfg, 1); err == nil {
		t.Error("NewNetwork accepted a crash rate of 2")
	}
}

// TestLinkFaultsDegradeDelivery: persistent link failures leave all nodes
// alive (no partition flag unless the cut disconnects source from sink)
// and never increment the node failure counters.
func TestLinkFaultsDegradeDelivery(t *testing.T) {
	g, err := topo.DefaultGrid(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Faults = fault.Spec{Kind: fault.Link, Rate: 0.2}
	net, err := NewNetwork(g, topo.GridCentre(7), topo.GridTopLeft(), cfg, 8)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.NodesFailed != 0 || res.NodesRecovered != 0 {
		t.Errorf("link faults counted node failures: failed=%d recovered=%d", res.NodesFailed, res.NodesRecovered)
	}
}
