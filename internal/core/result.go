package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"slpdas/internal/radio"
	"slpdas/internal/schedule"
	"slpdas/internal/topo"
	"slpdas/internal/wire"
)

// Result captures everything one simulated run produced.
type Result struct {
	Protocol string
	Seed     uint64
	Nodes    int

	// Privacy outcome.
	Captured       bool
	CaptureAt      time.Duration // absolute simulation time
	CapturePeriods float64       // periods after source activation
	SafetyPeriod   float64       // δ in periods
	DeltaSS        int           // sink–source hop distance
	AttackerPath   []topo.NodeID

	// Attacker-team coordinates: the strategy name, the number of
	// eavesdroppers, which one captured (-1 = none) and every walk.
	// AttackerPath/AttackerPaths honour Config.PathCap (full by default);
	// AttackerMoves always carries each eavesdropper's full relocation
	// count, so walk lengths survive even with recording capped or off.
	Strategy      string
	Attackers     int
	CaptureBy     int
	AttackerPaths [][]topo.NodeID
	AttackerMoves []int

	// Schedule quality at data start.
	Assignment          *schedule.Assignment
	WeakViolations      int
	StrongViolations    int
	CollisionViolations int
	RangeViolations     int

	// Protocol health.
	SearchSent   bool
	ChangedNodes int
	DecodeErrors uint64

	// Traffic accounting.
	Messages   map[wire.Type]MsgStats
	RadioStats radio.Stats

	// Convergecast delivery (source → sink).
	SourceDeliveries   int
	DeliveryCount      int
	DeliveryLatencySum int

	DataStart time.Duration
	// PeriodsRun counts TDMA data periods actually simulated (runs end
	// early on capture, so raw DATA counts are not comparable across
	// runs; divide by this).
	PeriodsRun float64

	// --- Fault-injection degradation (Config.Faults / FailNode runs) ---

	// NodesFailed and NodesRecovered count crash and rejoin events that
	// actually fired. Both zero for fault-free runs.
	NodesFailed    int
	NodesRecovered int
	// RepairPeriods is the schedule self-healing time: from the first
	// fault to the last slot change anywhere in the network, in TDMA
	// periods. -1 when no repair activity was observed — always -1 for
	// fault-free runs, so aggregation can exclude them like latency.
	RepairPeriods float64
	// Delivery ratios: unique source sequence numbers reaching the sink
	// divided by the data periods in each window, split at the fault
	// window [first event, last event]. All zero for fault-free runs.
	DeliveryBefore float64
	DeliveryDuring float64
	DeliveryAfter  float64
	// PartitionDetected reports that at the end of the run the source
	// could not reach the sink: one of them dead, or no path of alive
	// nodes over intact links between them. The run still terminates
	// cleanly with this verdict instead of erroring or spinning.
	PartitionDetected bool

	// --- Per-node energy accounting (Config.Energy runs) ---

	// EnergyTotalMJ, EnergyMaxMJ and EnergyMeanMJ summarise cumulative
	// per-node spend in mJ: network total, hottest node, per-node mean.
	// All zero for energy-off runs.
	EnergyTotalMJ float64
	EnergyMaxMJ   float64
	EnergyMeanMJ  float64
	// EnergyDeaths counts nodes that crash-stopped on battery depletion.
	EnergyDeaths int
	// FirstDeathPeriod is when the first depletion death happened, in TDMA
	// periods after source activation (negative: during setup). -1 when no
	// node depleted — always -1 for energy-off runs.
	FirstDeathPeriod float64
	// LifetimePeriods is the network lifetime: periods after source
	// activation until a depletion death first partitioned source from
	// sink, or the full periods run when none did. -1 for energy-off runs.
	LifetimePeriods float64
}

// DataMessagesPerPeriod normalises data-plane traffic by simulated
// periods; by design both protocols send one frame per node per period.
func (r *Result) DataMessagesPerPeriod() float64 {
	if r.PeriodsRun <= 0 {
		return 0
	}
	return float64(r.Messages[wire.TypeData].Count) / r.PeriodsRun
}

// ControlMessages sums non-DATA frames sent — the protocol's overhead.
func (r *Result) ControlMessages() uint64 {
	var total uint64
	//lint:ignore mapiter uint sum commutes over any order
	for t, s := range r.Messages {
		if t != wire.TypeData {
			total += s.Count
		}
	}
	return total
}

// ControlBytes sums non-DATA bytes sent.
func (r *Result) ControlBytes() uint64 {
	var total uint64
	//lint:ignore mapiter uint sum commutes over any order
	for t, s := range r.Messages {
		if t != wire.TypeData {
			total += s.Bytes
		}
	}
	return total
}

// TotalMessages sums every frame sent.
func (r *Result) TotalMessages() uint64 {
	var total uint64
	//lint:ignore mapiter uint sum commutes over any order
	for _, s := range r.Messages {
		total += s.Count
	}
	return total
}

// MeanDeliveryLatency returns the average source→sink latency in periods,
// or -1 when nothing was delivered.
func (r *Result) MeanDeliveryLatency() float64 {
	if r.DeliveryCount == 0 {
		return -1
	}
	return float64(r.DeliveryLatencySum) / float64(r.DeliveryCount)
}

// ScheduleValid reports whether the settled schedule is a collision-free
// weak DAS with in-range slots.
func (r *Result) ScheduleValid() bool {
	return r.WeakViolations == 0 && r.CollisionViolations == 0 && r.RangeViolations == 0
}

// String renders a one-run report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed=%d nodes=%d Δss=%d δ=%.1f periods\n", r.Protocol, r.Seed, r.Nodes, r.DeltaSS, r.SafetyPeriod)
	if r.Captured {
		fmt.Fprintf(&b, "  captured after %.2f periods (t=%v)\n", r.CapturePeriods, r.CaptureAt)
	} else {
		fmt.Fprintf(&b, "  not captured within the safety period\n")
	}
	fmt.Fprintf(&b, "  schedule: weak=%d strong=%d collisions=%d range=%d changed=%d\n",
		r.WeakViolations, r.StrongViolations, r.CollisionViolations, r.RangeViolations, r.ChangedNodes)
	types := make([]wire.Type, 0, len(r.Messages))
	for t := range r.Messages {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		s := r.Messages[t]
		fmt.Fprintf(&b, "  %-7s %7d msgs %9d bytes\n", t, s.Count, s.Bytes)
	}
	fmt.Fprintf(&b, "  source deliveries: %d (mean latency %.2f periods)\n", r.SourceDeliveries, r.MeanDeliveryLatency())
	return b.String()
}
