package core

import (
	"math/rand/v2"
	"sort"
	"time"

	"slpdas/internal/gcn"
	"slpdas/internal/topo"
	"slpdas/internal/wire"
	"slpdas/internal/xrand"
)

// info is one Ninfo entry: a (hop, slot) pair with a freshness version.
type info struct {
	hop     int32
	slot    int32
	version uint32
}

const noValue int32 = wire.NoSlot // ⊥

// infoTable is a node's Ninfo: (hop, slot, version) entries keyed by node
// ID, stored as parallel slices kept sorted by ID. The table is consulted
// on every guard evaluation of the GCN run-to-quiescence loop (the
// collision-resolution guard scans it after every delivered message), so
// it is built for allocation-free sorted iteration — the map + sort.Slice
// it replaces was the simulator's single hottest call site.
type infoTable struct {
	ids   []topo.NodeID
	infos []info
}

func (t *infoTable) len() int { return len(t.ids) }

func (t *infoTable) search(id topo.NodeID) int {
	return sort.Search(len(t.ids), func(k int) bool { return t.ids[k] >= id })
}

func (t *infoTable) get(id topo.NodeID) (info, bool) {
	if i := t.search(id); i < len(t.ids) && t.ids[i] == id {
		return t.infos[i], true
	}
	return info{}, false
}

func (t *infoTable) set(id topo.NodeID, in info) {
	i := t.search(id)
	if i < len(t.ids) && t.ids[i] == id {
		t.infos[i] = in
		return
	}
	t.ids = append(t.ids, 0)
	copy(t.ids[i+1:], t.ids[i:])
	t.ids[i] = id
	t.infos = append(t.infos, info{})
	copy(t.infos[i+1:], t.infos[i:])
	t.infos[i] = in
}

func (t *infoTable) reset() {
	t.ids = t.ids[:0]
	t.infos = t.infos[:0]
}

// node executes the combined DAS / NSearch / SRefine program of
// Figures 2–4 for one WSN process. Construction wires the immutable parts
// (GCN actions, timers, radio receiver); everything else is per-run state
// rewound by reset, so one node serves every run of an arena network.
type node struct {
	id      topo.NodeID  // lint:immutable: identity, fixed at construction
	net     *Network     // lint:immutable: back-pointer wiring, fixed at construction
	prc     *gcn.Process // lint:immutable: pointer fixed; process reset separately
	pcg     rand.PCG     // owned so reset can reseed in place
	rng     *rand.Rand   // lint:immutable: wraps &pcg; reset reseeds the pcg in place
	helloFn func()       // lint:immutable: cached method value; scheduled once per NDP round

	// --- Figure 2 (DAS) state ---
	myN      []topo.NodeID                        // discovered neighbours, sorted
	npar     map[topo.NodeID]bool                 // potential parents
	children map[topo.NodeID]bool                 // nodes that chose us as parent
	others   map[topo.NodeID]map[topo.NodeID]bool // per potential parent: slot competitors
	ninfo    infoTable                            // 1- and 2-hop neighbourhood info
	hop      int32                                // ⊥ = noValue
	par      topo.NodeID                          // ⊥ = topo.None
	slot     int32                                // ⊥ = noValue
	normal   bool                                 // false during the update phase
	version  uint32                               // own state freshness

	dissem       *gcn.Timer // lint:immutable: pointer fixed; timer disarmed by the engine reset
	decide       *gcn.Timer // lint:immutable: pointer fixed; defers the process action one dissem round
	dissemBudget int

	// --- Figure 3 (NSearch) state ---
	from      map[topo.NodeID]bool // senders of SEARCH/CHANGE seen
	startNode bool
	pr        int32 // change-path length when selected

	// --- Figure 4 / data phase ---
	changed       bool // slot altered by Phase 3
	pendingOrigin topo.NodeID
	pendingSeq    uint32
	pendingCount  uint16
	dataPeriod    int

	// dead marks a crashed node (fault injection): radio silent via the
	// medium, computation stopped via the GCN process, and the TDMA slot
	// task skips its periods through the alive check.
	dead bool

	// Energy accounting (Config.Energy runs only; both stay zero
	// otherwise). energyUsed is the cumulative spend in mJ; energyDead
	// latches battery depletion — unlike a churn crash it is permanent,
	// recovery cannot resurrect a flat battery.
	energyUsed float64
	energyDead bool
}

func newNode(id topo.NodeID, net *Network) *node {
	n := &node{
		id:       id,
		net:      net,
		npar:     make(map[topo.NodeID]bool),
		children: make(map[topo.NodeID]bool),
		others:   make(map[topo.NodeID]map[topo.NodeID]bool),
		from:     make(map[topo.NodeID]bool),
	}
	n.rng = xrand.Wrap(&n.pcg)
	n.helloFn = n.sendHello
	n.prc = net.engine.NewProcess(id)
	n.install()
	// Radio → GCN delivery is wiring, not run state: register once.
	net.medium.SetReceiver(id, func(from topo.NodeID, payload []byte) {
		msg, err := net.dec.Unmarshal(payload)
		if err != nil {
			net.decodeErrors++
			return
		}
		net.engine.Deliver(n.prc, from, msg)
	})
	n.reset(net.seed)
	return n
}

// reset rewinds all per-run protocol state and reseeds the node's random
// stream for the given run seed, leaving the wiring (process, actions,
// receiver, timers) in place. A reset node is indistinguishable from a
// freshly constructed one.
func (n *node) reset(seed uint64) {
	n.pcg.Seed(xrand.Seeds(seed, uint64(n.id), 0x6f64656e)) // per-node stream
	n.myN = n.myN[:0]
	clear(n.npar)
	clear(n.children)
	clear(n.others)
	n.ninfo.reset()
	n.hop = noValue
	n.par = topo.None
	n.slot = noValue
	n.normal = true
	n.version = 0
	n.dissemBudget = 0
	clear(n.from)
	n.startNode = false
	n.pr = 0
	n.changed = false
	n.pendingOrigin = n.id
	n.pendingSeq = 0
	n.pendingCount = 0
	n.dataPeriod = 0
	n.dead = false
	n.energyUsed = 0
	n.energyDead = false
}

func (n *node) isSink() bool { return n.id == n.net.sink }

// install registers the GCN actions in priority order.
func (n *node) install() {
	p := n.prc

	// rcv⟨HELLO⟩: neighbour discovery.
	p.AddReceive("rcvHello", matchType(wire.TypeHello), func(sender topo.NodeID, _ gcn.Message) {
		n.addNeighbour(sender)
		// A HELLO during the data phase is a recovered node re-running
		// discovery (fault injection): neighbours holding schedule state
		// answer with a relay budget so the rejoiner re-learns hop/slot
		// structure and can re-acquire a slot. Gated on faultsActive so
		// fault-free runs replay the pre-fault event order exactly.
		if n.net.faultsActive && n.net.sim.Now() >= n.net.dataStart && (n.isSink() || n.slot != noValue) {
			n.grantRelayBudget()
		}
	})

	// receiveN :: rcv⟨DISSEM, 1, j, N, p⟩ (Figure 2).
	p.AddReceive("receiveN", matchDissem(true), func(sender topo.NodeID, m gcn.Message) {
		n.onDissem(sender, m.(*wire.Dissem))
	})

	// receiveU :: rcv⟨DISSEM, 0, j, N, p⟩ (Figure 2): update from parent.
	p.AddReceive("receiveU", matchDissem(false), func(sender topo.NodeID, m gcn.Message) {
		n.onDissem(sender, m.(*wire.Dissem))
	})

	// receiveS :: rcv⟨SEARCH, k, j, d⟩ (Figure 3).
	p.AddReceive("receiveS", matchType(wire.TypeSearch), func(sender topo.NodeID, m gcn.Message) {
		n.onSearch(sender, m.(*wire.Search))
	})

	// receiveC :: rcv⟨CHANGE, p, j, s, d⟩ (Figure 4).
	p.AddReceive("receiveC", matchType(wire.TypeChange), func(sender topo.NodeID, m gcn.Message) {
		n.onChange(sender, m.(*wire.Change))
	})

	// rcv⟨DATA⟩: data-phase aggregation bookkeeping.
	p.AddReceive("rcvData", matchType(wire.TypeData), func(sender topo.NodeID, m gcn.Message) {
		n.onData(sender, m.(*wire.Data))
	})

	// process :: rcv⟨⟩ (Figure 2): choose parent and slot. TinyOS fires
	// this after "receiving all messages"; we model that by deferring the
	// decision one dissemination round after the first potential parent is
	// heard, so Npar collects every assigned neighbour of the round (this
	// is also what gives nodes the alternative parents Phase 2 needs).
	n.decide = p.NewTimer("process", n.chooseSlot)

	// Detection of slot collision then resolve (Figure 2, final lines).
	// The slot > 0 condition lives in the guard, not the body: a node
	// pinned at slot 0 that still collides must quiesce (the schedule
	// stays invalid and is reported as such), not spin firing a no-op
	// action until the step budget kills the process. Grids deep enough
	// to exhaust the slot space hit this; Table I's never do.
	p.AddGuard("resolve", func() bool { return n.slot > 0 && n.collisionLoser() != topo.None }, func() {
		n.setSlot(n.resolveTarget())
	})

	// startR (Figure 4): begin the change process once selected.
	p.AddGuard("startR", func() bool { return n.startNode }, n.startRefinement)

	// dissem :: timeout(dissem) (Figure 2): periodic state broadcast.
	n.dissem = p.NewTimer("dissem", n.onDissemTimer)
}

func matchType(t wire.Type) func(gcn.Message) bool {
	return func(m gcn.Message) bool {
		msg, ok := m.(wire.Message)
		return ok && msg.Kind() == t
	}
}

func matchDissem(normal bool) func(gcn.Message) bool {
	return func(m gcn.Message) bool {
		d, ok := m.(*wire.Dissem)
		return ok && d.Normal == normal
	}
}

// --- neighbour discovery ---

func (n *node) addNeighbour(m topo.NodeID) {
	if m == n.id {
		return
	}
	i := sort.Search(len(n.myN), func(i int) bool { return n.myN[i] >= m })
	if i < len(n.myN) && n.myN[i] == m {
		return
	}
	n.myN = append(n.myN, 0)
	copy(n.myN[i+1:], n.myN[i:])
	n.myN[i] = m
}

// knowsNeighbour reports m ∈ myN.
func (n *node) knowsNeighbour(m topo.NodeID) bool {
	i := sort.Search(len(n.myN), func(i int) bool { return n.myN[i] >= m })
	return i < len(n.myN) && n.myN[i] == m
}

func (n *node) sendHello() {
	h := &n.net.outHello
	h.From = n.id
	n.net.broadcast(n.id, h)
}

// --- Figure 2: DAS ---

// sinkInit is the init action: the sink seeds the schedule with slot Δ.
func (n *node) sinkInit() {
	n.hop = 0
	n.par = topo.None
	n.slot = int32(n.net.cfg.Slots) // Δ: never transmits
	n.version++
	n.ninfo.set(n.id, info{hop: 0, slot: n.slot, version: n.version})
	n.resetDissemination()
}

// onDissemTimer implements the dissem action: broadcast state, re-arm.
func (n *node) onDissemTimer() {
	if n.dissemBudget > 0 && (n.isSink() || n.slot != noValue) {
		n.dissemBudget--
		n.net.broadcast(n.id, n.buildDissem())
	}
	if n.dissemBudget > 0 {
		n.dissem.Set(xrand.JitterAround(n.rng, n.net.cfg.DisseminationPeriod, n.net.cfg.DisseminationPeriod/4))
	}
}

// resetDissemination grants a fresh DT send budget after a state change.
func (n *node) resetDissemination() {
	n.dissemBudget = n.net.cfg.DisseminationTimeout
	n.armDissem()
}

// grantRelayBudget allows a couple of extra sends to relay fresh
// neighbour state without re-flooding the full DT budget.
func (n *node) grantRelayBudget() {
	relay := 2
	if relay > n.net.cfg.DisseminationTimeout {
		relay = n.net.cfg.DisseminationTimeout
	}
	if n.dissemBudget < relay {
		n.dissemBudget = relay
	}
	n.armDissem()
}

func (n *node) armDissem() {
	if !n.dissem.Pending() {
		n.dissem.Set(xrand.JitterAround(n.rng, n.net.cfg.DisseminationPeriod/2, n.net.cfg.DisseminationPeriod/4))
	}
}

// buildDissem snapshots ⟨DISSEM, Normal, i, {Ninfo[j] | j ∈ myN}, par⟩
// into the network's outgoing scratch message (valid until the next
// broadcast, which is all a broadcast-and-forget sender needs).
func (n *node) buildDissem() *wire.Dissem {
	d := &n.net.outDissem
	d.From, d.Normal, d.Parent = n.id, n.normal, n.par
	d.Infos = d.Infos[:0]
	d.Infos = append(d.Infos, wire.NodeInfo{Node: n.id, Hop: n.hop, Slot: n.slot, Version: n.version})
	for _, m := range n.myN {
		in, known := n.ninfo.get(m)
		if !known {
			d.Infos = append(d.Infos, wire.NodeInfo{Node: m, Hop: noValue, Slot: noValue})
			continue
		}
		d.Infos = append(d.Infos, wire.NodeInfo{Node: m, Hop: in.hop, Slot: in.slot, Version: in.version})
	}
	return d
}

// onDissem handles both receiveN (Normal=1) and receiveU (Normal=0).
func (n *node) onDissem(sender topo.NodeID, d *wire.Dissem) {
	n.addNeighbour(sender)

	// Track children: a node whose dissem names us as parent is a child.
	if d.Parent == n.id {
		n.children[sender] = true
	} else {
		delete(n.children, sender)
	}

	// Merge Ninfo entries by freshness version. Fresh state about a
	// *direct neighbour* is worth relaying: 2-hop collision detection
	// only works if the middle node re-disseminates what it heard (the
	// Trickle-style reading of the DT send budget). Entries about more
	// distant nodes are merged but not relayed — they can never matter to
	// anyone within our radio range.
	senderSlot := noValue
	learnedNeighbour := false
	for _, in := range d.Infos {
		if in.Node == n.id {
			continue // never overwrite own state from the outside
		}
		cur, known := n.ninfo.get(in.Node)
		if !known || in.Version > cur.version {
			n.ninfo.set(in.Node, info{hop: in.Hop, slot: in.Slot, version: in.Version})
			if in.Node == sender || n.knowsNeighbour(in.Node) {
				learnedNeighbour = true
			}
		}
		if in.Node == sender {
			senderSlot = in.Slot
		}
	}
	if learnedNeighbour && (n.isSink() || n.slot != noValue) {
		n.grantRelayBudget()
	}

	if !n.isSink() && n.slot == noValue && senderSlot != noValue {
		// receiveN body: the sender is a potential parent; its slotless
		// neighbours are our slot competitors under that parent.
		n.npar[sender] = true
		comp := n.others[sender]
		if comp == nil {
			comp = make(map[topo.NodeID]bool)
			n.others[sender] = comp
		}
		for _, in := range d.Infos {
			if in.Slot == noValue && in.Node != sender {
				comp[in.Node] = true
			}
		}
		comp[n.id] = true
		// Arm the deferred process action (see install).
		if !n.decide.Pending() {
			n.decide.Set(xrand.JitterAround(n.rng, n.net.cfg.DisseminationPeriod, n.net.cfg.DisseminationPeriod/2))
		}
	}

	// receiveU body: a dissemination from our parent showing our slot no
	// longer strictly below it forces a slot drop and propagates the
	// update phase to our own children. The paper applies this only to
	// Normal=0 messages; we apply it to every parent dissemination because
	// a parent that decrements several times in quick succession can leap
	// past a child's slot without the two ever being equal, leaving a DAS
	// violation the collision rule cannot see.
	if sender == n.par && n.slot != noValue && senderSlot != noValue && n.slot >= senderSlot {
		n.normal = false
		ns := senderSlot - 1
		if ns < 0 {
			ns = 0
		}
		n.setSlot(ns)
	}
}

// chooseSlot is the process action of Figure 2: pick the parent on a
// shortest path and a slot below it by sibling rank.
func (n *node) chooseSlot() {
	if n.isSink() || n.slot != noValue || len(n.npar) == 0 {
		return
	}
	// hop := min{h | (h, s) ∈ Ninfo[k], k ∈ Npar} + 1
	minHop := int32(-1)
	for _, k := range sortedIDs(n.npar) {
		in, ok := n.ninfo.get(k)
		if !ok || in.hop == noValue || in.slot == noValue {
			continue
		}
		if minHop < 0 || in.hop < minHop {
			minHop = in.hop
		}
	}
	if minHop < 0 {
		// Stale potential parents (e.g. their info got overwritten by ⊥
		// relays before versioning caught up); wait for fresher dissem.
		n.npar = make(map[topo.NodeID]bool)
		return
	}
	n.hop = minHop + 1
	// par := min{k ∈ Npar : Ninfo[k].hop = hop−1}. "min" over raw IDs
	// makes every node in a grid quadrant chain its parents in the same
	// compass direction, which skews where slot gradients drain; as with
	// rank, we take the minimum under a per-run seeded order (the paper's
	// choice of order is arbitrary, its capture symmetry is not).
	n.par = topo.None
	var bestKey uint64
	for _, k := range sortedIDs(n.npar) {
		if in, ok := n.ninfo.get(k); ok && in.hop == minHop {
			key := n.net.parentKey(n.id, k)
			if n.par == topo.None || key < bestKey {
				n.par, bestKey = k, key
			}
		}
	}
	// slot := Ninfo[par].slot − rank(i, Others[par]) − 1. The paper leaves
	// the rank order unspecified; the TinyOS implementation effectively
	// ranks by (random) message arrival order. We reproduce that
	// nondeterminism deterministically: competitors are ranked by a
	// seeded hash, so every run explores a different sibling ordering
	// while all nodes within one run agree on it.
	rank := int32(0)
	myKey := n.net.rankKey(n.par, n.id)
	//lint:ignore mapiter counting key-hash comparisons commutes over any order
	for c := range n.others[n.par] {
		if c != n.id && n.net.rankKey(n.par, c) < myKey {
			rank++
		}
	}
	parInfo, _ := n.ninfo.get(n.par)
	n.setSlot(parInfo.slot - rank - 1)
	// children := slotless neighbours (optimistic, refined by dissems).
	for _, m := range n.myN {
		if in, ok := n.ninfo.get(m); !ok || in.slot == noValue {
			n.children[m] = true
		}
	}
}

// setSlot updates the slot, version, own Ninfo entry and dissemination.
func (n *node) setSlot(s int32) {
	n.slot = s
	n.version++
	n.ninfo.set(n.id, info{hop: n.hop, slot: n.slot, version: n.version})
	// Schedule-repair clock (fault injection): any slot change after the
	// first fault is self-healing activity. A plain field write — no event
	// or random draw — so fault-free runs are unaffected.
	if n.net.faultsActive && n.net.firstFaultAt > 0 && n.net.sim.Now() >= n.net.firstFaultAt {
		n.net.lastRepairAt = n.net.sim.Now()
	}
	n.resetDissemination()
}

// collisionLoser returns a 2-hop neighbour we collide with and must yield
// to (Figure 2: the node with the greater hop decrements; ties broken by
// an arbitrary total order), or topo.None. The paper breaks ties by node
// ID; any consistent order works, and a fixed ID order imprints a spatial
// slot bias towards high-ID grid regions that the paper's quadrant-
// symmetric capture ratios do not exhibit — so we use a per-run seeded
// order instead (see DESIGN.md, faithfulness notes). This guard is
// re-evaluated after every executed action, so it scans the already-sorted
// info table rather than sorting map keys per call.
func (n *node) collisionLoser() topo.NodeID {
	if n.slot == noValue || n.isSink() {
		return topo.None
	}
	for k, j := range n.ninfo.ids {
		if j == n.id {
			continue
		}
		in := n.ninfo.infos[k]
		if in.slot != n.slot || in.slot == noValue {
			continue
		}
		if n.hop > in.hop || (n.hop == in.hop && n.net.orderKey(n.id) > n.net.orderKey(j)) {
			return j
		}
	}
	return topo.None
}

// resolveTarget is the slot a collision loser descends to. Figure 2
// decrements by one; with FastCollisionResolve the loser jumps straight
// to the nearest slot below its own that no known 2-hop neighbour holds,
// reaching the same collision-free fixed point without broadcasting one
// dissemination wave per slot of descent. Falls back to the unit
// decrement when every slot down to 0 is occupied, so progress (and the
// guard's slot > 0 termination) is identical in the worst case.
func (n *node) resolveTarget() int32 {
	if !n.net.cfg.FastCollisionResolve {
		return n.slot - 1
	}
	for s := n.slot - 1; s > 0; s-- {
		taken := false
		for k, j := range n.ninfo.ids {
			if j != n.id && n.ninfo.infos[k].slot == s {
				taken = true
				break
			}
		}
		if !taken {
			return s
		}
	}
	return n.slot - 1
}

// --- Figure 3: NSearch ---

// startSearch is the sink's startS action: send SEARCH towards the child
// with the minimum slot (the attacker's natural first direction — every
// sink neighbour is a child of the sink).
func (n *node) startSearch() {
	c := n.lureTarget()
	if c == topo.None {
		c = n.minSlotChild()
	}
	if c == topo.None {
		return
	}
	ttl := n.net.cfg.SearchTTLBudget
	if ttl <= 0 {
		ttl = 4*n.net.cfg.SearchDistance + 8
	}
	n.broadcastSearch(c, int32(n.net.cfg.SearchDistance), int32(ttl))
}

func (n *node) broadcastSearch(aNode topo.NodeID, dist, ttl int32) {
	s := &n.net.outSearch
	s.From, s.ANode, s.Dist, s.TTL = n.id, aNode, dist, ttl
	n.net.broadcast(n.id, s)
}

func (n *node) broadcastChange(aNode topo.NodeID, nSlot, dist int32) {
	c := &n.net.outChange
	c.From, c.ANode, c.NSlot, c.Dist = n.id, aNode, nSlot, dist
	n.net.broadcast(n.id, c)
}

func (n *node) minSlotChild() topo.NodeID {
	best := topo.None
	bestSlot := int32(0)
	for _, c := range sortedIDs(n.children) {
		in, ok := n.ninfo.get(c)
		if !ok || in.slot == noValue {
			continue
		}
		if best == topo.None || in.slot < bestSlot {
			best, bestSlot = c, in.slot
		}
	}
	return best
}

// lureTarget predicts the attacker's next hop from this node: the
// minimum-slot neighbour (the origin of the first message a co-located
// eavesdropper hears). Figure 3 follows minimum-slot children, which
// coincides with this at the sink but diverges deeper in the network
// where the attacker is not constrained to tree edges; aiming the search
// at the true gradient is what "a suitable location ... where the
// attacker can be tricked" requires.
func (n *node) lureTarget() topo.NodeID {
	best := topo.None
	bestSlot := int32(0)
	for _, m := range n.myN {
		in, ok := n.ninfo.get(m)
		if !ok || in.slot == noValue || int(in.slot) >= n.net.cfg.Slots {
			continue
		}
		if best == topo.None || in.slot < bestSlot {
			best, bestSlot = m, in.slot
		}
	}
	return best
}

func (n *node) onSearch(sender topo.NodeID, s *wire.Search) {
	n.from[sender] = true
	if s.ANode != n.id || n.isSink() {
		return
	}
	if s.TTL <= 0 {
		return
	}
	switch {
	case s.Dist == 0 && n.hasAltParent(sender):
		// Suitable redirection point found.
		n.startNode = true
		n.pr = n.changeLength()
	case s.Dist == 0:
		// Keep wandering for a node with an alternative parent.
		target := n.chooseFrom(sortedIDs(n.children))
		if target == topo.None {
			target = n.chooseFrom(n.eligibleNeighbours(sender))
		}
		if target != topo.None {
			n.broadcastSearch(target, 0, s.TTL-1)
		}
	default:
		// d > 0: follow the attacker's predicted gradient outwards.
		target := n.lureTarget()
		if target == sender || target == topo.None {
			target = n.minSlotChild()
		}
		if target == topo.None {
			target = n.chooseFrom(n.eligibleNeighbours(sender))
		}
		if target != topo.None {
			n.broadcastSearch(target, s.Dist-1, s.TTL-1)
		}
	}
}

// hasAltParent reports Npar \ {par, k} ≠ ∅.
func (n *node) hasAltParent(k topo.NodeID) bool {
	//lint:ignore mapiter existence scan, order-independent
	for p := range n.npar {
		if p != n.par && p != k {
			return true
		}
	}
	return false
}

// changeLength resolves CL: explicit config or Table I's Δss − SD.
func (n *node) changeLength() int32 {
	if n.net.cfg.ChangeLength > 0 {
		return int32(n.net.cfg.ChangeLength)
	}
	cl := n.net.deltaSS - n.net.cfg.SearchDistance
	if cl < 1 {
		cl = 1
	}
	return int32(cl)
}

// eligibleNeighbours returns myN \ {par} \ from \ {sender}, sorted.
func (n *node) eligibleNeighbours(sender topo.NodeID) []topo.NodeID {
	var out []topo.NodeID
	for _, m := range n.myN {
		if m == n.par || m == sender || n.from[m] {
			continue
		}
		out = append(out, m)
	}
	return out
}

// chooseFrom implements choose(): a uniformly random pick.
func (n *node) chooseFrom(set []topo.NodeID) topo.NodeID {
	if len(set) == 0 {
		return topo.None
	}
	return set[n.rng.IntN(len(set))]
}

// --- Figure 4: SRefine ---

// startRefinement is the startR action: pick an alternative potential
// parent and launch the CHANGE walk with the neighbourhood slot minimum.
func (n *node) startRefinement() {
	n.startNode = false
	var cands []topo.NodeID
	for _, p := range sortedIDs(n.npar) {
		if p != n.par && !n.from[p] {
			cands = append(cands, p)
		}
	}
	aNode := n.chooseFrom(cands)
	if aNode == topo.None {
		return
	}
	n.broadcastChange(aNode, n.minKnownSlot(), n.pr-1)
}

// minKnownSlot returns min over every known slot including our own — the
// value the next decoy node must undercut. Using the full 2-hop view
// (rather than Figure 4's 1-hop myN) additionally avoids re-introducing
// 2-hop collisions.
func (n *node) minKnownSlot() int32 {
	min := n.slot
	for k := range n.ninfo.ids {
		in := n.ninfo.infos[k]
		if in.slot == noValue || int(in.slot) >= n.net.cfg.Slots {
			continue // sink's Δ and unknowns do not count
		}
		if min == noValue || in.slot < min {
			min = in.slot
		}
	}
	return min
}

func (n *node) onChange(sender topo.NodeID, c *wire.Change) {
	n.from[sender] = true
	if c.ANode != n.id || n.isSink() || n.slot == noValue {
		return
	}
	// Adopt the decoy slot: strictly below everything the previous node
	// could hear. Guard against the slot space floor.
	newSlot := c.NSlot - 1
	if newSlot < 0 {
		newSlot = 0
	}
	// §V prose: "When n changes its slot, it has to inform its children to
	// update their slots. This is achieved by setting Normal to 0."
	n.normal = false
	n.changed = true
	n.setSlot(newSlot)
	n.net.changedNodes++

	if c.Dist > 0 {
		next := n.chooseFrom(n.eligibleNeighbours(sender))
		if next != topo.None {
			n.broadcastChange(next, n.minKnownSlot(), c.Dist-1)
		}
	}
}

// --- data phase ---

// fireDataSlot is the TDMA slot task callback: flood one DATA frame.
func (n *node) fireDataSlot(period int) {
	n.dataPeriod = period
	d := &n.net.outData
	d.From = n.id
	if n.id == n.net.source {
		d.Origin = n.id
		d.Seq = uint32(period)
		d.Count = n.pendingCount + 1
	} else {
		d.Origin = n.pendingOrigin
		d.Seq = n.pendingSeq
		d.Count = n.pendingCount + 1
	}
	n.net.broadcast(n.id, d)
	n.pendingOrigin = n.id
	n.pendingSeq = 0
	n.pendingCount = 0
}

func (n *node) onData(_ topo.NodeID, d *wire.Data) {
	n.pendingCount += d.Count
	if d.Origin == n.net.source && n.id != n.net.source {
		if n.pendingOrigin != n.net.source || d.Seq > n.pendingSeq {
			n.pendingOrigin = n.net.source
			n.pendingSeq = d.Seq
		}
		if n.isSink() {
			n.net.recordSourceDelivery(d.Seq)
		}
	}
}

// --- helpers ---

func sortedIDs(set map[topo.NodeID]bool) []topo.NodeID {
	out := make([]topo.NodeID, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// jitterDelay spaces a node's boot.
func (n *node) jitterDelay(max time.Duration) time.Duration {
	return xrand.Jitter(n.rng, max)
}
