package campaign

import (
	"bytes"
	"encoding/csv"
	"errors"
	"math"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func sampleRows() []Row {
	return []Row{
		{
			Cell: 0, Topology: "grid-7x7", GridSize: 7, Nodes: 49,
			Protocol: Protectionless, SearchDistance: 1,
			AttackerR: 1, AttackerM: 1, Strategy: "first-heard", Attackers: 1,
			LossModel: "ideal",
			Repeats:   5, BaseSeed: 1, Runs: 5, Captures: 3,
			CaptureRatio: 0.6, CaptureRatioCI95: 0.42,
			MeanCapturePeriods: 12.5, ScheduleValidRatio: 1,
			ControlMessages: 321, ControlBytes: 4567, TotalMessages: 1234,
			SourceDeliveries: 20, DeliveryLatency: 3.25,
		},
		{
			Cell: 1, Topology: "ring-30", Nodes: 30,
			Protocol: SLPAware, SearchDistance: 3,
			AttackerR: 2, AttackerH: 1, AttackerM: 2,
			Strategy: "backtrack", Attackers: 3, SharedHistory: true,
			LossModel: "bernoulli:0.1", Collisions: true,
			Repeats: 5, BaseSeed: 6, Runs: 4, Failures: 1,
			ChangedNodes: 7,
		},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	rows := sampleRows()
	for _, r := range rows {
		if err := sink.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(rows) {
		t.Errorf("%d lines, want %d", got, len(rows))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(back, rows) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", back, rows)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"cell\":0}\nnot json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSV(&buf)
	for _, r := range sampleRows() {
		if err := sink.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("%d records", len(recs))
	}
	if !reflect.DeepEqual(recs[0], csvHeader) {
		t.Errorf("header = %v", recs[0])
	}
	// Every record must be rectangular and the header must match the
	// number of Row fields serialised.
	for i, rec := range recs {
		if len(rec) != len(csvHeader) {
			t.Errorf("record %d has %d fields, want %d", i, len(rec), len(csvHeader))
		}
	}
	if recs[1][1] != "grid-7x7" || recs[2][9] != "backtrack" || recs[2][13] != "true" {
		t.Errorf("rows = %v", recs[1:])
	}
}

func TestCSVHeaderMatchesRowShape(t *testing.T) {
	if nFields := reflect.TypeOf(Row{}).NumField(); len(csvHeader) != nFields {
		t.Errorf("csvHeader has %d columns, Row has %d fields", len(csvHeader), nFields)
	}
	if got := len(csvRecord(Row{})); got != len(csvHeader) {
		t.Errorf("csvRecord emits %d cells, header has %d", got, len(csvHeader))
	}
}

func TestMultiSinkFansOutAndFails(t *testing.T) {
	a, b := &Memory{}, &Memory{}
	m := Multi{a, b}
	if err := m.Write(Row{Cell: 9}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if len(a.Rows()) != 1 || len(b.Rows()) != 1 {
		t.Errorf("fan-out missed a sink: %d, %d", len(a.Rows()), len(b.Rows()))
	}
	boom := errors.New("disk full")
	m = Multi{failSink{boom}, a}
	if err := m.Write(Row{}); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if len(a.Rows()) != 1 {
		t.Errorf("write after failure reached later sink")
	}
}

type failSink struct{ err error }

func (f failSink) Write(Row) error { return f.err }
func (f failSink) Close() error    { return f.err }

// countingWriter tallies Write calls to the underlying writer — a proxy
// for syscalls on a file-backed sink.
type countingWriter struct {
	buf    bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestSinksBufferUntilCloseAndLoseNothing pins the buffered-sink contract
// both ways: row emission must not hit the underlying writer once per row
// (the pre-buffering behaviour large sweeps paid a syscall per cell for),
// and every row written before Close must survive Close intact.
func TestSinksBufferUntilCloseAndLoseNothing(t *testing.T) {
	const rows = 64
	t.Run("jsonl", func(t *testing.T) {
		w := &countingWriter{}
		sink := NewJSONL(w)
		for i := 0; i < rows; i++ {
			if err := sink.Write(Row{Cell: i, Topology: "grid-7x7"}); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if w.writes >= rows {
			t.Errorf("%d underlying writes for %d rows; sink is not buffering", w.writes, rows)
		}
		back, err := ReadJSONL(&w.buf)
		if err != nil {
			t.Fatalf("ReadJSONL: %v", err)
		}
		if len(back) != rows {
			t.Errorf("%d rows survived Close, want %d", len(back), rows)
		}
		for i, r := range back {
			if r.Cell != i {
				t.Errorf("row %d has Cell %d", i, r.Cell)
			}
		}
	})
	t.Run("csv", func(t *testing.T) {
		w := &countingWriter{}
		sink := NewCSV(w)
		for i := 0; i < rows; i++ {
			if err := sink.Write(Row{Cell: i}); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if w.writes >= rows {
			t.Errorf("%d underlying writes for %d rows; sink is not buffering", w.writes, rows)
		}
		recs, err := csv.NewReader(&w.buf).ReadAll()
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if len(recs) != rows+1 { // header + rows
			t.Errorf("%d records survived Close, want %d", len(recs), rows+1)
		}
	})
}

// TestJSONLFlushCheckpoints: Flush makes everything written so far durable
// without closing the sink.
func TestJSONLFlushCheckpoints(t *testing.T) {
	w := &countingWriter{}
	sink := NewJSONL(w)
	if err := sink.Write(Row{Cell: 0}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if w.buf.Len() != 0 {
		t.Errorf("row reached the writer before Flush")
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	back, err := ReadJSONL(bytes.NewReader(w.buf.Bytes()))
	if err != nil || len(back) != 1 {
		t.Fatalf("after Flush: rows=%d err=%v", len(back), err)
	}
	if err := sink.Write(Row{Cell: 1}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	back, err = ReadJSONL(&w.buf)
	if err != nil || len(back) != 2 {
		t.Fatalf("after Close: rows=%d err=%v", len(back), err)
	}
}

// BenchmarkJSONLWrite measures per-row emission cost through the buffered
// sink against a syscall-per-row unbuffered baseline (each Write followed
// by a Flush, the pre-buffering behaviour).
func BenchmarkJSONLWrite(b *testing.B) {
	row := sampleRows()[0]
	b.Run("buffered", func(b *testing.B) {
		f, err := os.CreateTemp(b.TempDir(), "rows-*.jsonl")
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		sink := NewJSONL(f)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sink.Write(row); err != nil {
				b.Fatal(err)
			}
		}
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("flush-per-row", func(b *testing.B) {
		f, err := os.CreateTemp(b.TempDir(), "rows-*.jsonl")
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		sink := NewJSONL(f)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sink.Write(row); err != nil {
				b.Fatal(err)
			}
			if err := sink.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestRunPropagatesSinkFailure(t *testing.T) {
	boom := errors.New("sink broke")
	_, err := run(Spec{GridSizes: []int{5}, Repeats: 2}, stubRun, failSink{boom})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want sink error", err)
	}
}

// TestSinksSanitizeNonFiniteFloats pins the Row finiteness promise at the
// serialization boundary: a row carrying NaN or ±Inf in every float field
// must encode through both file sinks (encoding/json rejects non-finite
// values outright), with NaN → 0 and ±Inf clamped to ±MaxFloat64.
func TestSinksSanitizeNonFiniteFloats(t *testing.T) {
	mkRow := func(x float64) Row {
		return Row{
			Cell: 1, Topology: "grid-5x5",
			CaptureRatio: x, CaptureRatioCI95: x, MeanCapturePeriods: x,
			ScheduleValidRatio: x, ControlMessages: x, ControlBytes: x,
			TotalMessages: x, ChangedNodes: x, SourceDeliveries: x,
			DeliveryLatency: x,
		}
	}
	checkFloats := func(t *testing.T, r Row, want float64) {
		t.Helper()
		for name, got := range map[string]float64{
			"CaptureRatio": r.CaptureRatio, "CaptureRatioCI95": r.CaptureRatioCI95,
			"MeanCapturePeriods": r.MeanCapturePeriods, "ScheduleValidRatio": r.ScheduleValidRatio,
			"ControlMessages": r.ControlMessages, "ControlBytes": r.ControlBytes,
			"TotalMessages": r.TotalMessages, "ChangedNodes": r.ChangedNodes,
			"SourceDeliveries": r.SourceDeliveries, "DeliveryLatency": r.DeliveryLatency,
		} {
			if got != want {
				t.Errorf("%s = %v, want %v", name, got, want)
			}
		}
	}
	for name, tc := range map[string]struct{ in, want float64 }{
		"nan":  {math.NaN(), 0},
		"+inf": {math.Inf(1), math.MaxFloat64},
		"-inf": {math.Inf(-1), -math.MaxFloat64},
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			sink := NewJSONL(&buf)
			if err := sink.Write(mkRow(tc.in)); err != nil {
				t.Fatalf("JSONL.Write: %v", err)
			}
			if err := sink.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			back, err := ReadJSONL(&buf)
			if err != nil || len(back) != 1 {
				t.Fatalf("ReadJSONL: rows=%d err=%v", len(back), err)
			}
			checkFloats(t, back[0], tc.want)

			var csvBuf bytes.Buffer
			cs := NewCSV(&csvBuf)
			if err := cs.Write(mkRow(tc.in)); err != nil {
				t.Fatalf("CSV.Write: %v", err)
			}
			if err := cs.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			recs, err := csv.NewReader(&csvBuf).ReadAll()
			if err != nil || len(recs) != 2 {
				t.Fatalf("csv parse: recs=%d err=%v", len(recs), err)
			}
			for i, cellStr := range recs[1] {
				if v, err := strconv.ParseFloat(cellStr, 64); err == nil {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("csv column %s is non-finite: %q", csvHeader[i], cellStr)
					}
				}
			}
			if got := recs[1][19]; got != strconv.FormatFloat(tc.want, 'g', -1, 64) { // capture_ratio
				t.Errorf("capture_ratio = %q, want %v", got, tc.want)
			}
		})
	}
}

// TestCheckpointReportsHighWaterMark: Checkpoint flushes and reports the
// highest cell durable, for the file sinks, Memory and Multi (which takes
// the minimum across members).
func TestCheckpointReportsHighWaterMark(t *testing.T) {
	w := &countingWriter{}
	jsonl := NewJSONL(w)
	if last, err := jsonl.Checkpoint(); err != nil || last != -1 {
		t.Errorf("empty JSONL checkpoint = %d, %v, want -1", last, err)
	}
	for c := 0; c <= 4; c++ {
		if err := jsonl.Write(Row{Cell: c}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	last, err := jsonl.Checkpoint()
	if err != nil || last != 4 {
		t.Fatalf("JSONL checkpoint = %d, %v, want 4", last, err)
	}
	if w.buf.Len() == 0 {
		t.Error("Checkpoint did not flush")
	}
	back, err := ReadJSONL(bytes.NewReader(w.buf.Bytes()))
	if err != nil || len(back) != 5 {
		t.Fatalf("after checkpoint: rows=%d err=%v", len(back), err)
	}

	var csvBuf bytes.Buffer
	cs := NewCSV(&csvBuf)
	if err := cs.Write(Row{Cell: 7}); err != nil {
		t.Fatalf("CSV.Write: %v", err)
	}
	if last, err := cs.Checkpoint(); err != nil || last != 7 {
		t.Errorf("CSV checkpoint = %d, %v, want 7", last, err)
	}
	if csvBuf.Len() == 0 {
		t.Error("CSV Checkpoint did not flush")
	}

	mem := &Memory{}
	mem.Write(Row{Cell: 2})
	m := Multi{jsonl, mem}
	if last, err := m.Checkpoint(); err != nil || last != 2 {
		t.Errorf("Multi checkpoint = %d, %v, want 2 (min across members)", last, err)
	}
	if last, err := (Multi{failSink{errors.New("x")}}).Checkpoint(); err != nil || last != -1 {
		t.Errorf("Multi over non-checkpoint sinks = %d, %v, want -1, nil", last, err)
	}
}

// TestCSVAppendOmitsHeader: the append-mode CSV sink never writes the
// header — resuming into a file that already has one must not duplicate
// it.
func TestCSVAppendOmitsHeader(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSVAppend(&buf)
	if err := sink.Write(Row{Cell: 3}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(recs) != 1 || recs[0][0] != "3" {
		t.Errorf("records = %v, want just cell 3's record", recs)
	}
}
