package campaign

import (
	"fmt"
	"math"
	"sync"

	"slpdas/internal/topo"
)

// TopologyKind names a topology family from internal/topo/builders.go.
type TopologyKind string

// Supported topology kinds.
const (
	// KindGrid is the paper's square grid: source top-left, sink centre.
	KindGrid TopologyKind = "grid"
	// KindLine is a line: sink at the middle node, source at one end.
	KindLine TopologyKind = "line"
	// KindRing is a ring: sink and source diametrically opposite.
	KindRing TopologyKind = "ring"
	// KindRGG is a connected random geometric graph: sink at the node
	// nearest the area centre, source at the hop-farthest node from it.
	KindRGG TopologyKind = "rgg"
)

// TopologySpec declaratively names one topology cell of the matrix. It is
// comparable, so the engine can cache built graphs across cells.
type TopologySpec struct {
	Kind TopologyKind
	// Size is the grid side for KindGrid, the node count otherwise.
	Size int
	// Seed fixes node placement for KindRGG; ignored elsewhere. It is a
	// layout coordinate, independent of the campaign's simulation seeds.
	Seed uint64
}

// Label identifies the topology in result rows, e.g. "grid-11x11",
// "ring-30", "rgg-40#7".
func (t TopologySpec) Label() string {
	switch t.Kind {
	case KindGrid, "":
		return fmt.Sprintf("grid-%dx%d", t.Size, t.Size)
	case KindRGG:
		return fmt.Sprintf("rgg-%d#%d", t.Size, t.Seed)
	default:
		return fmt.Sprintf("%s-%d", t.Kind, t.Size)
	}
}

// gridSize returns the grid side for grid cells and 0 otherwise, feeding
// the GridSize coordinate of rows and experiment.Spec.
func (t TopologySpec) gridSize() int {
	if t.Kind == KindGrid || t.Kind == "" {
		return t.Size
	}
	return 0
}

// builtTopology is a materialised TopologySpec.
type builtTopology struct {
	g      *topo.Graph
	sink   topo.NodeID
	source topo.NodeID
}

// topoCache memoises built topologies across campaigns for the lifetime of
// the process. TopologySpec is a pure value coordinate and Graph is
// immutable, so one build serves every cell of every campaign that names
// the same spec — a Figure 5/6-style grid that re-sweeps the same
// topologies pays construction (including the two-hop CSR the schedule
// checks touch) exactly once. Guarded by a mutex: builds are rare and the
// engine resolves topologies once per campaign, not per run.
var topoCache = struct {
	mu sync.Mutex
	m  map[TopologySpec]*builtTopology
}{m: make(map[TopologySpec]*builtTopology)}

// resolve returns the cached build for t, constructing and caching it on
// first use. Failures are not cached (they are cheap to re-diagnose).
func (t TopologySpec) resolve() (*builtTopology, error) {
	topoCache.mu.Lock()
	defer topoCache.mu.Unlock()
	if bt, ok := topoCache.m[t]; ok {
		return bt, nil
	}
	bt, err := t.build()
	if err != nil {
		return nil, err
	}
	topoCache.m[t] = bt
	return bt, nil
}

// ResetTopologyCache drops every memoised topology, forcing the next
// campaign to rebuild from scratch. Exposed for tests (cache-cold vs
// cache-warm determinism) and for long-lived processes that sweep many
// one-off RGG layouts and want the memory back.
func ResetTopologyCache() {
	topoCache.mu.Lock()
	defer topoCache.mu.Unlock()
	topoCache.m = make(map[TopologySpec]*builtTopology)
}

func (t TopologySpec) build() (*builtTopology, error) {
	switch t.Kind {
	case KindGrid, "":
		g, err := topo.DefaultGrid(t.Size)
		if err != nil {
			return nil, err
		}
		return &builtTopology{g: g, sink: topo.GridCentre(t.Size), source: topo.GridTopLeft()}, nil
	case KindLine:
		g, err := topo.Line(t.Size, topo.DefaultSpacing, topo.DefaultSpacing)
		if err != nil {
			return nil, err
		}
		return &builtTopology{g: g, sink: topo.NodeID(t.Size / 2), source: 0}, nil
	case KindRing:
		// Range 1.05× spacing keeps exactly two neighbours per node.
		g, err := topo.Ring(t.Size, topo.DefaultSpacing, topo.DefaultSpacing*1.05)
		if err != nil {
			return nil, err
		}
		return &builtTopology{g: g, sink: topo.NodeID(t.Size / 2), source: 0}, nil
	case KindRGG:
		// Area scales with node count to hold density roughly constant;
		// range 1.8× spacing makes connectivity likely at that density.
		side := math.Sqrt(float64(t.Size)) * topo.DefaultSpacing
		g, err := topo.RandomGeometric(t.Size, side, side, topo.DefaultSpacing*1.8, t.Seed)
		if err != nil {
			return nil, err
		}
		sink := nearestTo(g, topo.Point{X: side / 2, Y: side / 2})
		source := hopFarthest(g, sink)
		return &builtTopology{g: g, sink: sink, source: source}, nil
	default:
		return nil, fmt.Errorf("campaign: unknown topology kind %q", t.Kind)
	}
}

func nearestTo(g *topo.Graph, p topo.Point) topo.NodeID {
	best, bestDist := topo.NodeID(0), math.Inf(1)
	for i := 0; i < g.Len(); i++ {
		if d := g.Position(topo.NodeID(i)).DistanceTo(p); d < bestDist {
			best, bestDist = topo.NodeID(i), d
		}
	}
	return best
}

func hopFarthest(g *topo.Graph, from topo.NodeID) topo.NodeID {
	dist := g.BFSFrom(from)
	best, bestHops := from, -1
	for i, d := range dist {
		if d > bestHops {
			best, bestHops = topo.NodeID(i), d
		}
	}
	return best
}
