package campaign

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"slpdas/internal/attacker"
	"slpdas/internal/core"
	"slpdas/internal/topo"
)

func TestExpandDefaults(t *testing.T) {
	cells, err := Spec{}.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// Defaults: 1 size × 2 protocols × 1 SD × 1 attacker × 1 loss × 1 coll.
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Protocol != Protectionless || cells[1].Protocol != SLPAware {
		t.Errorf("protocol order = %q, %q", cells[0].Protocol, cells[1].Protocol)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if c.Topology.Label() != "grid-11x11" {
			t.Errorf("cell %d topology = %q", i, c.Topology.Label())
		}
		if c.Repeats != 10 {
			t.Errorf("cell %d repeats = %d", i, c.Repeats)
		}
	}
}

func TestExpandFullMatrix(t *testing.T) {
	spec := Spec{
		GridSizes:       []int{7, 11},
		Protocols:       []string{Protectionless, SLPAware},
		SearchDistances: []int{1, 3},
		Attackers:       []attacker.Params{{R: 1, M: 1}, {R: 2, M: 2}},
		LossModels:      []string{"ideal", "bernoulli:0.1"},
		Collisions:      []bool{false, true},
		Repeats:         5,
		BaseSeed:        100,
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if want := 2 * 2 * 2 * 2 * 2 * 2; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	// Seed ranges are disjoint and contiguous: cell i starts at 100 + 5i.
	for i, c := range cells {
		if want := uint64(100 + 5*i); c.BaseSeed != want {
			t.Errorf("cell %d BaseSeed = %d, want %d", i, c.BaseSeed, want)
		}
	}
	// Outermost axis is topology: the first half is all grid-7x7.
	for i := 0; i < 32; i++ {
		if cells[i].Topology.Size != 7 {
			t.Errorf("cell %d size = %d, want 7", i, cells[i].Topology.Size)
		}
	}
	// Innermost is collisions: it alternates.
	if cells[0].Collisions || !cells[1].Collisions {
		t.Errorf("collisions not innermost: %v, %v", cells[0].Collisions, cells[1].Collisions)
	}
}

func TestExpandRejectsUnknownProtocol(t *testing.T) {
	if _, err := (Spec{Protocols: []string{"bogus"}}).Expand(); err == nil {
		t.Error("bogus protocol accepted")
	}
}

// TestRunFailsFastOnBadAxis: invalid axis values must error during
// resolution, before any simulation job runs.
func TestRunFailsFastOnBadAxis(t *testing.T) {
	exec := func(g *topo.Graph, sink, source topo.NodeID, cfg core.Config, seed uint64) (*core.Result, error) {
		t.Error("job executed despite invalid spec")
		return nil, nil
	}
	for name, spec := range map[string]Spec{
		"attacker R=0": {GridSizes: []int{5}, Attackers: []attacker.Params{{R: 0, M: 1}}},
		"bad loss":     {GridSizes: []int{5}, LossModels: []string{"bernoulli:2"}},
		"sd 0 for slp": {GridSizes: []int{5}, Protocols: []string{SLPAware}, SearchDistances: []int{0}},
	} {
		if _, err := run(spec, exec, &Memory{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTopologyBuild(t *testing.T) {
	for _, tc := range []struct {
		spec  TopologySpec
		label string
		nodes int
	}{
		{TopologySpec{Kind: KindGrid, Size: 5}, "grid-5x5", 25},
		{TopologySpec{Kind: KindLine, Size: 9}, "line-9", 9},
		{TopologySpec{Kind: KindRing, Size: 12}, "ring-12", 12},
		{TopologySpec{Kind: KindRGG, Size: 20, Seed: 7}, "rgg-20#7", 20},
	} {
		if got := tc.spec.Label(); got != tc.label {
			t.Errorf("Label() = %q, want %q", got, tc.label)
		}
		bt, err := tc.spec.build()
		if err != nil {
			t.Fatalf("build %s: %v", tc.label, err)
		}
		if bt.g.Len() != tc.nodes {
			t.Errorf("%s: %d nodes, want %d", tc.label, bt.g.Len(), tc.nodes)
		}
		if !bt.g.Valid(bt.sink) || !bt.g.Valid(bt.source) {
			t.Errorf("%s: invalid sink/source %d/%d", tc.label, bt.sink, bt.source)
		}
		if bt.sink == bt.source {
			t.Errorf("%s: sink == source == %d", tc.label, bt.sink)
		}
	}
	if _, err := (TopologySpec{Kind: "torus", Size: 5}).build(); err == nil {
		t.Error("unknown kind accepted")
	}
}

// stubRun returns a canned successful result without simulating.
func stubRun(g *topo.Graph, _, _ topo.NodeID, cfg core.Config, seed uint64) (*core.Result, error) {
	return &core.Result{Seed: seed, Nodes: g.Len(), Captured: seed%2 == 0}, nil
}

func TestWorkerPoolBounded(t *testing.T) {
	var inFlight, peak atomic.Int32
	exec := func(g *topo.Graph, sink, source topo.NodeID, cfg core.Config, seed uint64) (*core.Result, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond) // widen the overlap window
		inFlight.Add(-1)
		return stubRun(g, sink, source, cfg, seed)
	}
	const workers = 3
	spec := Spec{GridSizes: []int{5, 7}, SearchDistances: []int{1, 2}, Repeats: 6, Workers: workers}
	sum, err := run(spec, exec, &Memory{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.Cells != 8 || len(sum.Rows) != 8 {
		t.Fatalf("cells = %d, rows = %d", sum.Cells, len(sum.Rows))
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds Workers=%d", p, workers)
	}
	if p := peak.Load(); p < 2 {
		t.Errorf("peak concurrency %d: pool never ran jobs in parallel", p)
	}
}

func TestRunStreamsRowsInCellOrder(t *testing.T) {
	var progress []int
	mem := &Memory{}
	spec := Spec{
		GridSizes: []int{5},
		Protocols: []string{Protectionless, SLPAware},
		Repeats:   3,
		Progress: func(done, total int, row Row) {
			if total != 2 {
				t.Errorf("total = %d", total)
			}
			progress = append(progress, done)
		},
	}
	sum, err := run(spec, stubRun, mem)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rows := mem.Rows()
	if len(rows) != 2 || sum.Cells != 2 {
		t.Fatalf("rows = %d, cells = %d", len(rows), sum.Cells)
	}
	for i, r := range rows {
		if r.Cell != i {
			t.Errorf("row %d is cell %d", i, r.Cell)
		}
		if r.Runs != 3 || r.Failures != 0 {
			t.Errorf("row %d: runs=%d failures=%d", i, r.Runs, r.Failures)
		}
	}
	if len(progress) != 2 || progress[0] != 1 || progress[1] != 2 {
		t.Errorf("progress calls = %v", progress)
	}
}

func TestRunCountsFailures(t *testing.T) {
	boom := errors.New("boom")
	exec := func(g *topo.Graph, sink, source topo.NodeID, cfg core.Config, seed uint64) (*core.Result, error) {
		if seed%3 == 0 {
			return nil, boom
		}
		return stubRun(g, sink, source, cfg, seed)
	}
	mem := &Memory{}
	sum, err := run(Spec{GridSizes: []int{5}, Protocols: []string{Protectionless}, Repeats: 6}, exec, mem)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if sum.Failures != 2 {
		t.Errorf("Failures = %d, want 2 (seeds 0 and 3)", sum.Failures)
	}
	if rows := mem.Rows(); len(rows) != 1 || rows[0].Failures != 2 || rows[0].Runs != 4 {
		t.Errorf("rows = %+v", rows)
	}
}

// TestCampaignSimulates runs a real (tiny) campaign end to end through the
// simulator, checking the rows carry live summary data.
func TestCampaignSimulates(t *testing.T) {
	mem := &Memory{}
	sum, err := Run(Spec{
		GridSizes:       []int{5},
		SearchDistances: []int{2},
		Repeats:         3,
		BaseSeed:        1,
	}, mem)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Failures != 0 {
		t.Fatalf("failures: %d", sum.Failures)
	}
	rows := mem.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Nodes != 25 || r.Runs != 3 || r.ControlMessages <= 0 || r.ScheduleValidRatio != 1 {
			t.Errorf("implausible row: %+v", r)
		}
	}
	if slp := rows[1]; slp.Protocol != SLPAware || slp.ChangedNodes <= 0 {
		t.Errorf("SLP row changed no slots: %+v", rows[1])
	}
}

// TestDeterminism re-runs the same campaign and requires byte-identical
// JSONL output — the property that makes campaigns diffable across runs.
// The collision axis is swept so the pooled delivery events and collision
// windows in internal/radio are exercised under concurrent workers: event
// and buffer pools are per-simulator, so recycling must never leak state
// across runs or depend on worker scheduling.
func TestDeterminism(t *testing.T) {
	spec := Spec{
		GridSizes:       []int{5, 7},
		SearchDistances: []int{1, 2},
		Collisions:      []bool{false, true},
		Repeats:         2,
		BaseSeed:        42,
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		s := spec
		s.Workers = workers
		sink := NewJSONL(&buf)
		if _, err := Run(s, sink); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	a, b := render(1), render(4)
	if len(a) == 0 {
		t.Fatal("no output rendered")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("output differs between 1 and 4 workers:\n%s\nvs\n%s", a, b)
	}
}

func TestExpandStrategyAndTeamAxes(t *testing.T) {
	spec := Spec{
		GridSizes:       []int{5},
		Protocols:       []string{Protectionless},
		Strategies:      []string{"first-heard", "cautious"},
		AttackerCounts:  []int{1, 3},
		SharedHistories: []bool{false, true},
		Repeats:         2,
		BaseSeed:        10,
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if want := 2 * 2 * 2; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	// Strategy is outermost of the three new axes, shared-history innermost.
	if cells[0].Strategy != "first-heard" || cells[4].Strategy != "cautious" {
		t.Errorf("strategy order: %q, %q", cells[0].Strategy, cells[4].Strategy)
	}
	if cells[0].SharedHistory || !cells[1].SharedHistory {
		t.Errorf("shared-history not innermost of the attacker axes")
	}
	if cells[0].AttackerCount != 1 || cells[2].AttackerCount != 3 {
		t.Errorf("attacker counts: %d, %d", cells[0].AttackerCount, cells[2].AttackerCount)
	}
	// Seed layout is still BaseSeed + cell·Repeats.
	for i, c := range cells {
		if want := uint64(10 + 2*i); c.BaseSeed != want {
			t.Errorf("cell %d BaseSeed = %d, want %d", i, c.BaseSeed, want)
		}
	}
}

func TestExpandRejectsUnknownStrategy(t *testing.T) {
	exec := func(g *topo.Graph, sink, source topo.NodeID, cfg core.Config, seed uint64) (*core.Result, error) {
		t.Error("job executed despite invalid strategy")
		return nil, nil
	}
	if _, err := run(Spec{GridSizes: []int{5}, Strategies: []string{"teleport"}}, exec, &Memory{}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestStrategyAxisDeterminism pins the acceptance criterion: a campaign
// sweeping the new strategy × attackers axes is byte-identical across
// worker counts.
func TestStrategyAxisDeterminism(t *testing.T) {
	spec := Spec{
		GridSizes:       []int{5},
		Protocols:       []string{Protectionless},
		Strategies:      []string{"first-heard", "backtrack", "random-walk"},
		AttackerCounts:  []int{1, 2},
		SharedHistories: []bool{false, true},
		Attackers:       []attacker.Params{{R: 1, H: 2, M: 1}},
		Repeats:         2,
		BaseSeed:        42,
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		s := spec
		s.Workers = workers
		sink := NewJSONL(&buf)
		if _, err := Run(s, sink); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	a, b := render(1), render(4)
	if !bytes.Equal(a, b) {
		t.Errorf("output differs between 1 and 4 workers:\n%s\nvs\n%s", a, b)
	}
	rows, err := ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	if rows[0].Strategy != "first-heard" || rows[0].Attackers != 1 {
		t.Errorf("row 0 coordinates: %+v", rows[0])
	}
}

// TestIntraCellParallelismLargeRGGDeterministic pins the intra-cell
// reduction on a cell big enough that repeats genuinely interleave: one
// 600-node random geometric cell whose repeats are partitioned across
// the pool differently at every worker count, folded by the index-ordered
// cellState reducer. The rows — aggregates folded strictly in repeat
// order — must be byte-identical at 1, 2 and 4 workers. This is also the
// cell the race CI job drives: a 600-node graph keeps thousands of
// arena/pool interactions under the race detector without the Table-I
// config making the job take minutes.
func TestIntraCellParallelismLargeRGGDeterministic(t *testing.T) {
	size := 600
	if testing.Short() {
		size = 250
	}
	spec := Spec{
		Topologies: []TopologySpec{{Kind: KindRGG, Size: size, Seed: 3}},
		Protocols:  []string{Protectionless},
		Repeats:    8,
		BaseSeed:   9,
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		s := spec
		s.Workers = workers
		sink := NewJSONL(&buf)
		if _, err := Run(s, sink); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	base := render(1)
	rows, err := ReadJSONL(bytes.NewReader(base))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(rows) != 1 || rows[0].Repeats != 8 {
		t.Fatalf("want one 8-repeat row, got %+v", rows)
	}
	for _, workers := range []int{2, 4} {
		if got := render(workers); !bytes.Equal(base, got) {
			t.Errorf("workers=%d output differs from workers=1:\n%s\nvs\n%s", workers, got, base)
		}
	}
}
