package campaign

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// renderJSONL writes rows through a JSONL sink and returns the bytes.
func renderJSONL(t *testing.T, rows []Row) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, r := range rows {
		if err := sink.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestLoadRowsToleratesTornTail(t *testing.T) {
	rows := sampleRows()
	full := renderJSONL(t, rows)
	// Cut mid-way through the final line: the torn fragment must be
	// invisible, and the reported offset must sit exactly past row 0.
	firstLine := bytes.IndexByte(full, '\n') + 1
	torn := full[:firstLine+10]
	back, valid, err := LoadRows(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("LoadRows: %v", err)
	}
	if len(back) != 1 || back[0].Cell != rows[0].Cell {
		t.Fatalf("rows = %+v, want just cell %d", back, rows[0].Cell)
	}
	if valid != int64(firstLine) {
		t.Errorf("valid = %d, want %d (end of the last complete line)", valid, firstLine)
	}
	// A complete final row WITHOUT a trailing newline is torn too: only
	// newline-terminated lines count, so truncate-at-valid plus re-running
	// the cell always reproduces the uninterrupted bytes.
	back, valid, err = LoadRows(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatalf("LoadRows: %v", err)
	}
	if len(back) != 1 || valid != int64(firstLine) {
		t.Errorf("unterminated final row counted as complete: rows=%d valid=%d", len(back), valid)
	}
	// The intact file round-trips whole.
	back, valid, err = LoadRows(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("LoadRows: %v", err)
	}
	if len(back) != len(rows) || valid != int64(len(full)) {
		t.Errorf("full file: rows=%d valid=%d, want %d/%d", len(back), valid, len(rows), len(full))
	}
}

func TestLoadRowsRejectsMidFileCorruption(t *testing.T) {
	// A malformed line that IS newline-terminated is not a torn tail; it
	// must surface as an error, not be silently skipped.
	if _, _, err := LoadRows(strings.NewReader("{\"cell\":0}\ngarbage\n{\"cell\":2}\n")); err == nil {
		t.Error("newline-terminated garbage accepted")
	}
}

func TestScanCompleted(t *testing.T) {
	rows := []Row{{Cell: 0}, {Cell: 2}, {Cell: 5}}
	full := renderJSONL(t, rows)
	cells, valid, err := ScanCompleted(bytes.NewReader(append(full, []byte(`{"cell":7,"topo`)...)))
	if err != nil {
		t.Fatalf("ScanCompleted: %v", err)
	}
	if len(cells) != 3 || !cells[0] || !cells[2] || !cells[5] || cells[7] {
		t.Errorf("cells = %v", cells)
	}
	if valid != int64(len(full)) {
		t.Errorf("valid = %d, want %d", valid, len(full))
	}
	// Empty file: nothing completed, offset 0.
	cells, valid, err = ScanCompleted(strings.NewReader(""))
	if err != nil || len(cells) != 0 || valid != 0 {
		t.Errorf("empty file: cells=%v valid=%d err=%v", cells, valid, err)
	}
}

func TestScanCompletedCSV(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSV(&buf)
	for _, r := range []Row{{Cell: 0}, {Cell: 3}} {
		if err := sink.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full := buf.Bytes()

	cells, valid, err := ScanCompletedCSV(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("ScanCompletedCSV: %v", err)
	}
	if len(cells) != 2 || !cells[0] || !cells[3] {
		t.Errorf("cells = %v", cells)
	}
	if valid != int64(len(full)) {
		t.Errorf("valid = %d, want %d", valid, len(full))
	}

	// Torn final record: only the header and the first record count, and
	// the offset lands exactly between records.
	lines := bytes.SplitAfter(full, []byte("\n"))
	torn := append(append([]byte{}, lines[0]...), lines[1]...)
	cut := len(torn)
	torn = append(torn, lines[2][:4]...)
	cells, valid, err = ScanCompletedCSV(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("ScanCompletedCSV(torn): %v", err)
	}
	if len(cells) != 1 || !cells[0] || valid != int64(cut) {
		t.Errorf("torn: cells=%v valid=%d want 1 cell, valid %d", cells, valid, cut)
	}

	// A header-only file reports no cells but a non-zero offset, so a
	// resume appends records without duplicating the header.
	cells, valid, err = ScanCompletedCSV(bytes.NewReader(lines[0]))
	if err != nil || len(cells) != 0 || valid != int64(len(lines[0])) {
		t.Errorf("header-only: cells=%v valid=%d err=%v", cells, valid, err)
	}

	// A wrong header is corruption, not a resumable file.
	if _, _, err := ScanCompletedCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("wrong header accepted")
	}
}

// TestSkipKeepsSeedsAndRows: skipped cells keep their place in the
// matrix — the remaining cells run on exactly the seeds and emit exactly
// the bytes of the corresponding cells of a full run.
func TestSkipKeepsSeedsAndRows(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, Protocols: []string{Protectionless, SLPAware}, SearchDistances: []int{1, 2}, Repeats: 3}

	full := &Memory{}
	if _, err := run(spec, stubRun, full); err != nil {
		t.Fatalf("full run: %v", err)
	}

	partial := &Memory{}
	s := spec
	s.Skip = func(cell int) bool { return cell%2 == 0 }
	var progress []int
	s.Progress = func(done, total int, row Row) {
		if total != 4 {
			t.Errorf("total = %d, want 4 (the full matrix)", total)
		}
		progress = append(progress, done)
	}
	sum, err := run(s, stubRun, partial)
	if err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if sum.Cells != 4 || sum.Skipped != 2 {
		t.Errorf("Cells=%d Skipped=%d, want 4/2", sum.Cells, sum.Skipped)
	}
	rows := partial.Rows()
	if len(rows) != 2 || rows[0].Cell != 1 || rows[1].Cell != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	fullRows := full.Rows()
	for i, r := range rows {
		if r != fullRows[r.Cell] {
			t.Errorf("row %d differs from full run's cell %d:\n%+v\nvs\n%+v", i, r.Cell, r, fullRows[r.Cell])
		}
	}
	// Progress reports matrix positions, not a compacted count.
	if len(progress) != 2 || progress[0] != 2 || progress[1] != 4 {
		t.Errorf("progress = %v, want [2 4]", progress)
	}
}

func TestCompletedCellsComposeWithSkip(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, Protocols: []string{Protectionless, SLPAware}, SearchDistances: []int{1, 2}, Repeats: 2}
	spec.CompletedCells = []int{0, 3}
	spec.Skip = func(cell int) bool { return cell == 1 }
	mem := &Memory{}
	sum, err := run(spec, stubRun, mem)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rows := mem.Rows(); len(rows) != 1 || rows[0].Cell != 2 {
		t.Errorf("rows = %+v, want just cell 2", rows)
	}
	if sum.Skipped != 3 {
		t.Errorf("Skipped = %d, want 3", sum.Skipped)
	}
}

func TestAllCellsSkipped(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, Repeats: 2, Skip: func(int) bool { return true }}
	mem := &Memory{}
	sum, err := run(spec, stubRun, mem)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.Cells != 2 || sum.Skipped != 2 || len(mem.Rows()) != 0 {
		t.Errorf("sum = %+v, rows = %d", sum, len(mem.Rows()))
	}
}

// TestShardPartition: stride shards tile the matrix — disjoint, complete,
// and each emitting the same bytes the full run emits for those cells.
func TestShardPartition(t *testing.T) {
	spec := Spec{GridSizes: []int{5, 7}, Protocols: []string{Protectionless, SLPAware}, SearchDistances: []int{1, 2}, Repeats: 2}
	full := &Memory{}
	if _, err := run(spec, stubRun, full); err != nil {
		t.Fatalf("full run: %v", err)
	}
	fullRows := full.Rows()

	const n = 3
	seen := make(map[int]Row)
	for i := 0; i < n; i++ {
		s := spec
		s.Shard = Shard{Index: i, Count: n}
		mem := &Memory{}
		sum, err := run(s, stubRun, mem)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if sum.Cells != len(fullRows) {
			t.Errorf("shard %d Cells = %d, want %d", i, sum.Cells, len(fullRows))
		}
		for _, r := range mem.Rows() {
			if r.Cell%n != i {
				t.Errorf("shard %d emitted cell %d (stride violation)", i, r.Cell)
			}
			if _, dup := seen[r.Cell]; dup {
				t.Errorf("cell %d emitted by two shards", r.Cell)
			}
			seen[r.Cell] = r
		}
	}
	if len(seen) != len(fullRows) {
		t.Fatalf("%d cells across shards, want %d", len(seen), len(fullRows))
	}
	for c, r := range seen {
		if r != fullRows[c] {
			t.Errorf("cell %d differs between sharded and full run", c)
		}
	}
}

func TestShardValidation(t *testing.T) {
	for name, sh := range map[string]Shard{
		"negative count":         {Index: 0, Count: -1},
		"index out of range":     {Index: 3, Count: 3},
		"negative index":         {Index: -1, Count: 2},
		"index 1 of count 1":     {Index: 1, Count: 1},
		"nonzero index, count 0": {Index: 2, Count: 0},
	} {
		if _, err := run(Spec{GridSizes: []int{5}, Repeats: 1, Shard: sh}, stubRun, &Memory{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Count 1, index 0 is a degenerate but valid "everything" shard.
	mem := &Memory{}
	if _, err := run(Spec{GridSizes: []int{5}, Repeats: 1, Shard: Shard{Index: 0, Count: 1}}, stubRun, mem); err != nil {
		t.Errorf("1-shard run: %v", err)
	}
	if len(mem.Rows()) != 2 {
		t.Errorf("1-shard run emitted %d rows, want 2", len(mem.Rows()))
	}
}

// checkpointCounter records Checkpoint calls.
type checkpointCounter struct {
	Memory
	checkpoints []int
}

func (s *checkpointCounter) Checkpoint() (int, error) {
	last, err := s.Memory.Checkpoint()
	s.checkpoints = append(s.checkpoints, last)
	return last, err
}

// TestCheckpointEvery: Run checkpoints capable sinks every N emitted
// rows, with the high-water mark trailing the emission exactly.
func TestCheckpointEvery(t *testing.T) {
	spec := Spec{GridSizes: []int{5, 7, 9}, SearchDistances: []int{1}, Repeats: 2, CheckpointEvery: 2}
	sink := &checkpointCounter{}
	if _, err := run(spec, stubRun, sink); err != nil {
		t.Fatalf("run: %v", err)
	}
	// 6 cells, checkpoint after rows 2, 4, 6 → marks 1, 3, 5.
	want := []int{1, 3, 5}
	if len(sink.checkpoints) != len(want) {
		t.Fatalf("checkpoints = %v, want %v", sink.checkpoints, want)
	}
	for i, c := range sink.checkpoints {
		if c != want[i] {
			t.Errorf("checkpoint %d at cell %d, want %d", i, c, want[i])
		}
	}
}

func TestRunPropagatesCheckpointFailure(t *testing.T) {
	sink := &failingCheckpointSink{}
	_, err := run(Spec{GridSizes: []int{5}, Repeats: 1, CheckpointEvery: 1}, stubRun, sink)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("err = %v, want checkpoint failure", err)
	}
}

type failingCheckpointSink struct{ Memory }

func (s *failingCheckpointSink) Checkpoint() (int, error) {
	return -1, errors.New("forced checkpoint failure")
}

// TestResumeAppendCompletesFile is the engine-level kill-and-resume
// round trip: render a full campaign to JSONL, tear the file mid-row,
// then resume by scanning completed cells, truncating to the valid
// offset and appending a Skip run — the result must be byte-identical to
// the uninterrupted output.
func TestResumeAppendCompletesFile(t *testing.T) {
	spec := Spec{GridSizes: []int{5, 7}, Protocols: []string{Protectionless, SLPAware}, SearchDistances: []int{1, 2}, Repeats: 3, BaseSeed: 11}

	var fullBuf bytes.Buffer
	sink := NewJSONL(&fullBuf)
	if _, err := run(spec, stubRun, sink); err != nil {
		t.Fatalf("full run: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full := fullBuf.Bytes()

	// Tear at several points: mid first row, mid-file, mid last row.
	for _, cut := range []int{10, len(full) / 2, len(full) - 3} {
		completed, valid, err := ScanCompleted(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: ScanCompleted: %v", cut, err)
		}
		resumed := bytes.NewBuffer(append([]byte(nil), full[:valid]...))
		s := spec
		s.Skip = func(cell int) bool { return completed[cell] }
		appendSink := NewJSONL(resumed)
		if _, err := run(s, stubRun, appendSink); err != nil {
			t.Fatalf("cut %d: resume run: %v", cut, err)
		}
		if err := appendSink.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		if !bytes.Equal(resumed.Bytes(), full) {
			t.Errorf("cut %d: resumed file differs from uninterrupted run:\n%s\nvs\n%s", cut, resumed.Bytes(), full)
		}
	}
}

// TestScanResumableRejectsForeignFile: resuming must refuse an output
// file whose rows do not belong to the spec being re-run — a mistyped
// seed, a changed axis, a shrunken matrix or plain garbage — instead of
// silently mixing two campaigns in one file.
func TestScanResumableRejectsForeignFile(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, Protocols: []string{Protectionless, SLPAware}, SearchDistances: []int{1, 2}, Repeats: 2, BaseSeed: 3}
	mem := &Memory{}
	if _, err := run(spec, stubRun, mem); err != nil {
		t.Fatalf("run: %v", err)
	}
	full := renderJSONL(t, mem.Rows())

	// The file's own spec accepts it, torn or not.
	completed, valid, err := spec.ScanResumable(bytes.NewReader(full[:len(full)-4]), "jsonl")
	if err != nil {
		t.Fatalf("ScanResumable: %v", err)
	}
	if len(completed) != 3 || valid == int64(len(full)) {
		t.Errorf("completed=%v valid=%d", completed, valid)
	}

	for name, other := range map[string]func(*Spec){
		"different seed":    func(s *Spec) { s.BaseSeed = 99 },
		"different repeats": func(s *Spec) { s.Repeats = 5 },
		"different sd axis": func(s *Spec) { s.SearchDistances = []int{2, 1} },
		"shrunken matrix":   func(s *Spec) { s.Protocols = []string{Protectionless}; s.SearchDistances = []int{1} },
	} {
		s := spec
		other(&s)
		if _, _, err := s.ScanResumable(bytes.NewReader(full), "jsonl"); err == nil {
			t.Errorf("%s: foreign file accepted", name)
		}
	}
	if _, _, err := spec.ScanResumable(strings.NewReader("{}\n"), "jsonl"); err == nil {
		t.Error("coordinate-free garbage row accepted")
	}
	if _, _, err := spec.ScanResumable(nil, "parquet"); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestScanResumableCSV: the CSV path recovers cells, verifies
// coordinates, and tolerates a torn final record.
func TestScanResumableCSV(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, Protocols: []string{Protectionless, SLPAware}, SearchDistances: []int{1, 2}, Repeats: 2, BaseSeed: 3}
	mem := &Memory{}
	if _, err := run(spec, stubRun, mem); err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	sink := NewCSV(&buf)
	for _, r := range mem.Rows() {
		if err := sink.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full := buf.Bytes()

	completed, valid, err := spec.ScanResumable(bytes.NewReader(full[:len(full)-4]), "csv")
	if err != nil {
		t.Fatalf("ScanResumable(csv): %v", err)
	}
	if len(completed) != 3 || !completed[0] || !completed[1] || !completed[2] {
		t.Errorf("completed = %v", completed)
	}
	if valid >= int64(len(full)) {
		t.Errorf("valid = %d, want < %d (torn final record)", valid, len(full))
	}
	foreign := spec
	foreign.BaseSeed = 99
	if _, _, err := foreign.ScanResumable(bytes.NewReader(full), "csv"); err == nil {
		t.Error("csv file from a different seed accepted")
	}
}

// TestScanResumableAcceptsOwnNormalizedDefaults: rows carry the resolved
// attacker coordinates (team size 0 → 1, empty strategy → first-heard),
// so a spec written with the un-normalized zero values must still accept
// the file it produced.
func TestScanResumableAcceptsOwnNormalizedDefaults(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, Protocols: []string{Protectionless},
		AttackerCounts: []int{0}, Strategies: []string{""}, Repeats: 2, BaseSeed: 3}
	mem := &Memory{}
	if _, err := run(spec, stubRun, mem); err != nil {
		t.Fatalf("run: %v", err)
	}
	full := renderJSONL(t, mem.Rows())
	completed, _, err := spec.ScanResumable(bytes.NewReader(full), "jsonl")
	if err != nil {
		t.Fatalf("spec refused its own output: %v", err)
	}
	if len(completed) != 1 {
		t.Errorf("completed = %v", completed)
	}
}

// TestScanResumableEnforcesShard: resuming shard i's output with a
// different -shard must be refused — appending the wrong shard's cells
// would corrupt both files.
func TestScanResumableEnforcesShard(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, Protocols: []string{Protectionless, SLPAware}, SearchDistances: []int{1, 2}, Repeats: 2, BaseSeed: 3}
	s0 := spec
	s0.Shard = Shard{Index: 0, Count: 3}
	mem := &Memory{}
	if _, err := run(s0, stubRun, mem); err != nil {
		t.Fatalf("run: %v", err)
	}
	full := renderJSONL(t, mem.Rows()) // cells 0 and 3

	if _, _, err := s0.ScanResumable(bytes.NewReader(full), "jsonl"); err != nil {
		t.Fatalf("own shard refused: %v", err)
	}
	s1 := spec
	s1.Shard = Shard{Index: 1, Count: 3}
	if _, _, err := s1.ScanResumable(bytes.NewReader(full), "jsonl"); err == nil {
		t.Error("shard 0's file accepted for a shard-1 resume")
	}
	if _, _, err := spec.ScanResumable(bytes.NewReader(full), "jsonl"); err != nil {
		t.Errorf("unsharded resume of a shard file refused: %v", err)
	}
}
