package campaign

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"

	"slpdas/internal/experiment"
	"slpdas/internal/topo"
)

// Row is one streamed result record: the cell's full matrix coordinates
// followed by the Aggregate summary fields. Field order is the JSONL and
// CSV column order; values are finite (NaNs from empty samples become 0
// with the corresponding count field showing why, and ±Inf clamps to
// ±MaxFloat64). Finiteness is enforced at the serialization boundary —
// the JSONL and CSV sinks sanitize every float field — because JSON
// cannot encode NaN or Inf at all.
type Row struct {
	Cell           int    `json:"cell"`
	Topology       string `json:"topology"`
	GridSize       int    `json:"grid_size"` // 0 for non-grid topologies
	Nodes          int    `json:"nodes"`
	Protocol       string `json:"protocol"`
	SearchDistance int    `json:"search_distance"`
	AttackerR      int    `json:"attacker_r"`
	AttackerH      int    `json:"attacker_h"`
	AttackerM      int    `json:"attacker_m"`
	Strategy       string `json:"strategy"`
	Attackers      int    `json:"attackers"`
	SharedHistory  bool   `json:"shared_history"`
	LossModel      string `json:"loss_model"`
	Collisions     bool   `json:"collisions"`
	Repeats        int    `json:"repeats"`
	BaseSeed       uint64 `json:"base_seed"`

	Runs               int     `json:"runs"` // repeats that completed
	Failures           int     `json:"failures"`
	Captures           int     `json:"captures"`
	CaptureRatio       float64 `json:"capture_ratio"`
	CaptureRatioCI95   float64 `json:"capture_ratio_ci95"`
	MeanCapturePeriods float64 `json:"mean_capture_periods"`
	ScheduleValidRatio float64 `json:"schedule_valid_ratio"`
	ControlMessages    float64 `json:"control_messages"`
	ControlBytes       float64 `json:"control_bytes"`
	TotalMessages      float64 `json:"total_messages"`
	ChangedNodes       float64 `json:"changed_nodes"`
	SourceDeliveries   float64 `json:"source_deliveries"`
	DeliveryLatency    float64 `json:"delivery_latency_slots"`

	// Trailing columns added with the fault-injection axis. They sit after
	// every pre-existing field (including the Faults coordinate, which
	// would otherwise live with its fellow coordinates above) so that
	// pre-axis output files differ from regenerated ones only in appended
	// columns. Omitted in old files, Faults decodes as "" — resume
	// verification normalises that to "none".
	Faults            string  `json:"faults"`
	MeanAttackerMoves float64 `json:"mean_attacker_moves"`
	NodesFailed       float64 `json:"nodes_failed"`
	NodesRecovered    float64 `json:"nodes_recovered"`
	RepairPeriods     float64 `json:"repair_periods"`
	DeliveryBefore    float64 `json:"delivery_ratio_before"`
	DeliveryDuring    float64 `json:"delivery_ratio_during"`
	DeliveryAfter     float64 `json:"delivery_ratio_after"`
	PartitionRatio    float64 `json:"partition_ratio"`

	// Trailing columns added with the channel/energy axes, appended after
	// the fault block for the same reason that block sits after the
	// original fields: pre-axis output files differ from regenerated ones
	// only in appended columns. Omitted in old files, Energy decodes as ""
	// — resume verification normalises that to "none".
	Energy           string  `json:"energy"`
	CaptureWins      float64 `json:"mean_capture_wins"`
	EnergyTotal      float64 `json:"energy_total_mj"`
	EnergyMax        float64 `json:"energy_max_mj"`
	EnergyDeaths     float64 `json:"mean_energy_deaths"`
	FirstDeathPeriod float64 `json:"first_death_period"`
	Lifetime         float64 `json:"lifetime_periods"`
}

// fin maps the NaN of an empty sample to 0 and clamps ±Inf to
// ±MaxFloat64 so rows stay JSON-encodable (encoding/json rejects both).
func fin(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case math.IsInf(x, 1):
		return math.MaxFloat64
	case math.IsInf(x, -1):
		return -math.MaxFloat64
	}
	return x
}

// sanitize applies fin to every float field, enforcing the finiteness
// promise of the Row doc at the sink boundary regardless of where the
// row came from.
func (r Row) sanitize() Row {
	r.CaptureRatio = fin(r.CaptureRatio)
	r.CaptureRatioCI95 = fin(r.CaptureRatioCI95)
	r.MeanCapturePeriods = fin(r.MeanCapturePeriods)
	r.ScheduleValidRatio = fin(r.ScheduleValidRatio)
	r.ControlMessages = fin(r.ControlMessages)
	r.ControlBytes = fin(r.ControlBytes)
	r.TotalMessages = fin(r.TotalMessages)
	r.ChangedNodes = fin(r.ChangedNodes)
	r.SourceDeliveries = fin(r.SourceDeliveries)
	r.DeliveryLatency = fin(r.DeliveryLatency)
	r.MeanAttackerMoves = fin(r.MeanAttackerMoves)
	r.NodesFailed = fin(r.NodesFailed)
	r.NodesRecovered = fin(r.NodesRecovered)
	r.RepairPeriods = fin(r.RepairPeriods)
	r.DeliveryBefore = fin(r.DeliveryBefore)
	r.DeliveryDuring = fin(r.DeliveryDuring)
	r.DeliveryAfter = fin(r.DeliveryAfter)
	r.PartitionRatio = fin(r.PartitionRatio)
	r.CaptureWins = fin(r.CaptureWins)
	r.EnergyTotal = fin(r.EnergyTotal)
	r.EnergyMax = fin(r.EnergyMax)
	r.EnergyDeaths = fin(r.EnergyDeaths)
	r.FirstDeathPeriod = fin(r.FirstDeathPeriod)
	r.Lifetime = fin(r.Lifetime)
	return r
}

func makeRow(c Cell, g *topo.Graph, agg *experiment.Aggregate) Row {
	faults := c.Faults
	if faults == "" {
		faults = "none"
	}
	energy := c.Energy
	if energy == "" {
		energy = "none"
	}
	return Row{
		Cell:           c.Index,
		Topology:       c.Topology.Label(),
		GridSize:       c.Topology.gridSize(),
		Nodes:          g.Len(),
		Protocol:       c.Protocol,
		SearchDistance: c.SearchDistance,
		AttackerR:      c.Attacker.R,
		AttackerH:      c.Attacker.H,
		AttackerM:      c.Attacker.M,
		Strategy:       agg.Strategy,
		Attackers:      agg.Attackers,
		SharedHistory:  c.SharedHistory,
		LossModel:      c.LossModel,
		Collisions:     c.Collisions,
		Repeats:        c.Repeats,
		BaseSeed:       c.BaseSeed,

		Runs:               agg.CaptureRatio.Trials,
		Failures:           agg.Failures,
		Captures:           agg.CaptureRatio.Successes,
		CaptureRatio:       fin(agg.CaptureRatio.Value()),
		CaptureRatioCI95:   agg.CaptureRatio.CI95(),
		MeanCapturePeriods: agg.CapturePeriods.Mean,
		ScheduleValidRatio: fin(agg.ScheduleValid.Value()),
		ControlMessages:    agg.ControlMessages.Mean,
		ControlBytes:       agg.ControlBytes.Mean,
		TotalMessages:      agg.TotalMessages.Mean,
		ChangedNodes:       agg.ChangedNodes.Mean,
		SourceDeliveries:   agg.SourceDeliveries.Mean,
		DeliveryLatency:    agg.DeliveryLatency.Mean,

		Faults:            faults,
		MeanAttackerMoves: agg.AttackerMoves.Mean,
		NodesFailed:       agg.NodesFailed.Mean,
		NodesRecovered:    agg.NodesRecovered.Mean,
		RepairPeriods:     agg.RepairPeriods.Mean,
		DeliveryBefore:    agg.DeliveryBefore.Mean,
		DeliveryDuring:    agg.DeliveryDuring.Mean,
		DeliveryAfter:     agg.DeliveryAfter.Mean,
		PartitionRatio:    fin(agg.Partitions.Value()),

		Energy:           energy,
		CaptureWins:      agg.CaptureWins.Mean,
		EnergyTotal:      agg.EnergyTotal.Mean,
		EnergyMax:        agg.EnergyMax.Mean,
		EnergyDeaths:     agg.EnergyDeaths.Mean,
		FirstDeathPeriod: agg.FirstDeathPeriod.Mean,
		Lifetime:         agg.LifetimePeriods.Mean,
	}
}

// Sink receives campaign rows as cells complete. Write is always called
// from a single goroutine, in cell-index order. The file-backed sinks
// buffer: rows are only guaranteed durable in the underlying writer after
// Flush or Close, so every campaign must Close its sinks (and may Flush at
// checkpoints if it wants partial output to survive an interrupt). Sinks
// do not own the underlying writer.
type Sink interface {
	Write(Row) error
	Close() error
}

// CheckpointSink is a Sink with durable checkpoints: Checkpoint flushes
// every buffered row to the underlying writer and returns the highest
// cell index that is now durable (-1 before any row). Because Run emits
// rows in increasing cell order, everything at or below that index has
// been handed to the underlying writer, which is what makes an
// interrupted campaign resumable from its output file (see ScanCompleted
// and Spec.Skip). The file sinks, Memory and Multi all implement it;
// Spec.CheckpointEvery drives it from inside Run.
type CheckpointSink interface {
	Sink
	Checkpoint() (lastCell int, err error)
}

// JSONL streams rows as one JSON object per line — the resumable,
// diffable format long campaigns should default to. Writes are buffered
// (one row used to cost one syscall, which large sweeps feel); call Flush
// for durability checkpoints and Close when the campaign ends.
type JSONL struct {
	w    *bufio.Writer
	last int // highest cell written so far; -1 before any
}

// NewJSONL wraps w in a buffered JSONL sink.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w), last: -1}
}

// Write implements Sink. The row lands in the buffer; it reaches the
// underlying writer when the buffer fills, on Flush, or on Close.
func (s *JSONL) Write(r Row) error {
	b, err := json.Marshal(r.sanitize())
	if err != nil {
		return err
	}
	if _, err := s.w.Write(b); err != nil {
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return err
	}
	if r.Cell > s.last {
		s.last = r.Cell
	}
	return nil
}

// Flush pushes every buffered row to the underlying writer.
func (s *JSONL) Flush() error { return s.w.Flush() }

// Checkpoint implements CheckpointSink: it flushes and returns the
// highest cell index now durable in the underlying writer.
func (s *JSONL) Checkpoint() (int, error) {
	if err := s.w.Flush(); err != nil {
		return -1, err
	}
	return s.last, nil
}

// Close implements Sink, flushing all buffered rows.
func (s *JSONL) Close() error { return s.w.Flush() }

// ReadJSONL parses rows written by JSONL, for resumption and diffing.
func ReadJSONL(r io.Reader) ([]Row, error) {
	var rows []Row
	dec := json.NewDecoder(r)
	for dec.More() {
		var row Row
		if err := dec.Decode(&row); err != nil {
			return nil, fmt.Errorf("campaign: parse jsonl row %d: %w", len(rows), err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// csvHeader is the CSV column order; it must match csvRecord.
var csvHeader = []string{
	"cell", "topology", "grid_size", "nodes", "protocol", "search_distance",
	"attacker_r", "attacker_h", "attacker_m", "strategy", "attackers",
	"shared_history", "loss_model", "collisions",
	"repeats", "base_seed", "runs", "failures", "captures", "capture_ratio",
	"capture_ratio_ci95", "mean_capture_periods", "schedule_valid_ratio",
	"control_messages", "control_bytes", "total_messages", "changed_nodes",
	"source_deliveries", "delivery_latency_slots",
	"faults", "mean_attacker_moves", "nodes_failed", "nodes_recovered",
	"repair_periods", "delivery_ratio_before", "delivery_ratio_during",
	"delivery_ratio_after", "partition_ratio",
	"energy", "mean_capture_wins", "energy_total_mj", "energy_max_mj",
	"mean_energy_deaths", "first_death_period", "lifetime_periods",
}

func csvRecord(r Row) []string {
	r = r.sanitize()
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	return []string{
		strconv.Itoa(r.Cell), r.Topology, strconv.Itoa(r.GridSize),
		strconv.Itoa(r.Nodes), r.Protocol, strconv.Itoa(r.SearchDistance),
		strconv.Itoa(r.AttackerR), strconv.Itoa(r.AttackerH), strconv.Itoa(r.AttackerM),
		r.Strategy, strconv.Itoa(r.Attackers), strconv.FormatBool(r.SharedHistory),
		r.LossModel, strconv.FormatBool(r.Collisions),
		strconv.Itoa(r.Repeats), strconv.FormatUint(r.BaseSeed, 10),
		strconv.Itoa(r.Runs), strconv.Itoa(r.Failures), strconv.Itoa(r.Captures),
		f(r.CaptureRatio), f(r.CaptureRatioCI95), f(r.MeanCapturePeriods),
		f(r.ScheduleValidRatio), f(r.ControlMessages), f(r.ControlBytes),
		f(r.TotalMessages), f(r.ChangedNodes), f(r.SourceDeliveries),
		f(r.DeliveryLatency),
		r.Faults, f(r.MeanAttackerMoves), f(r.NodesFailed), f(r.NodesRecovered),
		f(r.RepairPeriods), f(r.DeliveryBefore), f(r.DeliveryDuring),
		f(r.DeliveryAfter), f(r.PartitionRatio),
		r.Energy, f(r.CaptureWins), f(r.EnergyTotal), f(r.EnergyMax),
		f(r.EnergyDeaths), f(r.FirstDeathPeriod), f(r.Lifetime),
	}
}

// CSV streams rows as CSV with a header, for spreadsheet/pandas use.
// Buffered like JSONL: rows reach the underlying writer on Flush/Close.
type CSV struct {
	w          *csv.Writer
	wroteFirst bool
	last       int // highest cell written so far; -1 before any
}

// NewCSV wraps w in a CSV sink; the header is written with the first row.
func NewCSV(w io.Writer) *CSV {
	return &CSV{w: csv.NewWriter(w), last: -1}
}

// NewCSVAppend wraps w in a CSV sink that never writes the header — for
// appending to a file that already carries one, as slpsweep -resume does.
func NewCSVAppend(w io.Writer) *CSV {
	s := NewCSV(w)
	s.wroteFirst = true
	return s
}

// Write implements Sink, buffering like JSONL.
func (s *CSV) Write(r Row) error {
	if !s.wroteFirst {
		if err := s.w.Write(csvHeader); err != nil {
			return err
		}
		s.wroteFirst = true
	}
	if err := s.w.Write(csvRecord(r)); err != nil {
		return err
	}
	if r.Cell > s.last {
		s.last = r.Cell
	}
	return nil
}

// Flush pushes every buffered row to the underlying writer.
func (s *CSV) Flush() error {
	s.w.Flush()
	return s.w.Error()
}

// Checkpoint implements CheckpointSink: it flushes and returns the
// highest cell index now durable in the underlying writer.
func (s *CSV) Checkpoint() (int, error) {
	if err := s.Flush(); err != nil {
		return -1, err
	}
	return s.last, nil
}

// Close implements Sink, flushing all buffered rows.
func (s *CSV) Close() error {
	return s.Flush()
}

// Memory accumulates rows in memory — the sink tests and examples use to
// inspect a campaign without touching disk.
type Memory struct {
	mu   sync.Mutex
	rows []Row
	last int // highest cell written; tracked so Checkpoint is O(1)
}

// Write implements Sink.
func (s *Memory) Write(r Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rows) == 0 || r.Cell > s.last {
		s.last = r.Cell
	}
	s.rows = append(s.rows, r)
	return nil
}

// Checkpoint implements CheckpointSink; memory is always "durable", so it
// just reports the highest cell written.
func (s *Memory) Checkpoint() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rows) == 0 {
		return -1, nil
	}
	return s.last, nil
}

// Close implements Sink.
func (s *Memory) Close() error { return nil }

// Rows returns a copy of everything written so far.
func (s *Memory) Rows() []Row {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Row, len(s.rows))
	copy(out, s.rows)
	return out
}

// Multi fans every row out to several sinks, failing on the first error.
type Multi []Sink

// Write implements Sink.
func (m Multi) Write(r Row) error {
	for _, s := range m {
		if err := s.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint implements CheckpointSink: it checkpoints every member that
// supports checkpoints and returns the smallest of their high-water marks
// — the safe resume point across the whole fan-out. Members without
// checkpoint support are skipped; if none support it, Checkpoint reports
// -1.
func (m Multi) Checkpoint() (int, error) {
	last, any := -1, false
	for _, s := range m {
		cs, ok := s.(CheckpointSink)
		if !ok {
			continue
		}
		c, err := cs.Checkpoint()
		if err != nil {
			return -1, err
		}
		if !any || c < last {
			last = c
		}
		any = true
	}
	return last, nil
}

// Close implements Sink; it closes every sink and returns the first error.
func (m Multi) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Interface compliance: the built-in sinks all support checkpoints.
var (
	_ CheckpointSink = (*JSONL)(nil)
	_ CheckpointSink = (*CSV)(nil)
	_ CheckpointSink = (*Memory)(nil)
	_ CheckpointSink = Multi(nil)
)
