package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// MergeJSONL merges the JSONL outputs of a sharded campaign (see
// Spec.Shard) back into one stream in canonical cell order, and returns
// the number of cells written. Sources may be given in any order, but
// rows within each source must be in increasing cell order — which is
// how the engine writes them, and which -resume preserves — letting the
// merge stream with O(sources) memory instead of buffering the whole
// campaign (the 10⁴–10⁶-cell grids sharding exists for would not fit).
// It verifies the sources really partition one campaign:
//
//   - no duplicates: a cell appearing twice is an error, whether the
//     rows agree (overlapping shards, a source listed twice) or not
//     (a conflict);
//   - no gaps: the merged cell indices must be contiguous from 0 — a
//     missing cell means a shard output is absent or was interrupted;
//   - no coordinate conflicts: every row must agree on Repeats and on
//     the campaign seed implied by its (cell, base_seed) pair, i.e. all
//     sources must come from the same Spec and seed layout;
//   - no torn tails: a source ending mid-line is an incomplete shard —
//     finish it (slpsweep -resume) before merging.
//
// Rows are copied byte-for-byte from the sources, so the merged stream is
// exactly what a single-process run of the full Spec would have written.
func MergeJSONL(dst io.Writer, srcs ...io.Reader) (int, error) {
	type source struct {
		br   *bufio.Reader
		name int    // 1-based, for error messages
		line []byte // current complete line; nil when exhausted
		cell int
		read int // lines consumed so far
	}

	// Cross-source spec consistency, accumulated as rows stream.
	repeats := -1
	var campaignSeed uint64
	seedKnown := false

	// advance loads s's next complete line, enforcing within-source cell
	// ordering and the shared seed layout.
	advance := func(s *source) error {
		prev := s.cell
		s.line = nil
		line, err := s.br.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				return fmt.Errorf("campaign: merge: source %d has a torn final line — the shard is incomplete, finish it with -resume before merging", s.name)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("campaign: merge: source %d: %w", s.name, err)
		}
		s.read++
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("campaign: merge: source %d line %d: %w", s.name, s.read, err)
		}
		if row.Cell <= prev {
			if row.Cell == prev {
				return fmt.Errorf("campaign: merge: source %d line %d: cell %d appears twice within the source", s.name, s.read, row.Cell)
			}
			return fmt.Errorf("campaign: merge: source %d line %d: cell %d after cell %d — campaign outputs are written in increasing cell order; is the file corrupt?", s.name, s.read, row.Cell, prev)
		}
		if repeats == -1 {
			repeats = row.Repeats
		} else if row.Repeats != repeats {
			return fmt.Errorf("campaign: merge: cell %d has repeats %d, other cells have %d — sources are from different specs", row.Cell, row.Repeats, repeats)
		}
		// The seed layout BaseSeed = campaign seed + cell·repeats is
		// invertible per row; every row must invert to the same campaign
		// seed.
		implied := row.BaseSeed - uint64(row.Cell)*uint64(row.Repeats)
		if !seedKnown {
			campaignSeed, seedKnown = implied, true
		} else if implied != campaignSeed {
			return fmt.Errorf("campaign: merge: cell %d implies campaign seed %d, other cells imply %d — sources are from different campaigns", row.Cell, implied, campaignSeed)
		}
		s.line, s.cell = line, row.Cell
		return nil
	}

	sources := make([]*source, len(srcs))
	for i, r := range srcs {
		sources[i] = &source{br: bufio.NewReader(r), name: i + 1, cell: -1}
		if err := advance(sources[i]); err != nil {
			return 0, err
		}
	}

	bw := bufio.NewWriter(dst)
	written := 0    // next expected cell index
	var prev []byte // last written line, for duplicate diagnosis
	for {
		// The source holding the smallest current cell. Shard counts are
		// process counts — a handful — so a linear scan beats a heap.
		var min *source
		for _, s := range sources {
			if s.line != nil && (min == nil || s.cell < min.cell) {
				min = s
			}
		}
		if min == nil {
			break
		}
		switch {
		case min.cell < written:
			// Sources are strictly increasing, so a duplicate always
			// surfaces while the first copy is the most recent write.
			if bytes.Equal(min.line, prev) {
				return written, fmt.Errorf("campaign: merge: cell %d appears twice (overlapping shards or a source listed twice?)", min.cell)
			}
			return written, fmt.Errorf("campaign: merge: cell %d appears twice with conflicting rows", min.cell)
		case min.cell > written:
			return written, fmt.Errorf("campaign: merge: cell %d missing — a shard output is absent or incomplete", written)
		}
		if _, err := bw.Write(min.line); err != nil {
			return written, err
		}
		prev = min.line
		written++
		if err := advance(min); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}
