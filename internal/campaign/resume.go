package campaign

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"slpdas/internal/attacker"
)

// This file is the read side of the sink contract: recovering the
// completed cells of an interrupted campaign from its (possibly torn)
// output file, so a later run can Skip them and append only what is
// missing. A row counts as complete only when its line is
// newline-terminated AND parses — a kill mid-write leaves a trailing
// fragment, and a flush that happened to end exactly on a line boundary
// leaves none; both resume cleanly. The byte offset just past the last
// complete line is reported so callers can truncate the torn tail before
// appending (slpsweep -resume does exactly that).

// scanLines walks the complete, newline-terminated lines of r, calling
// fn with each line (newline included). It returns the byte offset just
// past the last complete line, plus any unterminated trailing fragment —
// the torn tail of an interrupted write, which callers decide whether to
// tolerate (resume) or reject (merge).
func scanLines(r io.Reader, fn func(n int, line []byte) error) (valid int64, torn []byte, err error) {
	br := bufio.NewReader(r)
	for n := 0; ; n++ {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			return valid, line, nil
		}
		if err != nil {
			return valid, nil, err
		}
		if err := fn(n, line); err != nil {
			return valid, nil, err
		}
		valid += int64(len(line))
	}
}

// LoadRows parses the complete rows of a JSONL campaign output,
// tolerating a torn final line (which is simply not a row yet). It
// returns the rows and the byte offset just past the last complete row —
// the length to truncate the file to before appending more rows. A
// malformed line that IS newline-terminated is real corruption and an
// error.
func LoadRows(r io.Reader) ([]Row, int64, error) {
	var rows []Row
	valid, _, err := scanLines(r, func(n int, line []byte) error {
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("campaign: jsonl line %d: %w", n+1, err)
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, valid, err
	}
	return rows, valid, nil
}

// ScanCompleted streams a JSONL campaign output and returns the set of
// completed cell indices plus the byte offset just past the last complete
// row, tolerating a torn final line. Feed the set to Spec.Skip (or
// Spec.CompletedCells), truncate the file to the offset, and re-run the
// same Spec to resume.
func ScanCompleted(r io.Reader) (map[int]bool, int64, error) {
	cells := make(map[int]bool)
	valid, _, err := scanLines(r, func(n int, line []byte) error {
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("campaign: jsonl line %d: %w", n+1, err)
		}
		cells[row.Cell] = true
		return nil
	})
	if err != nil {
		return nil, valid, err
	}
	return cells, valid, nil
}

// ScanResumable is the safe front door for resuming: it recovers the
// completed cells of a partial output file in the given format ("jsonl"
// or "csv", "" = jsonl) like ScanCompleted, and additionally verifies
// that every recovered row carries exactly the coordinates, seed layout
// and repeat count this Spec assigns its cell index. A resume attempted
// with a mistyped seed, a changed axis flag or simply the wrong file
// fails here with the first mismatch, instead of silently producing a
// file that mixes two campaigns. slpsweep -resume goes through this.
func (s Spec) ScanResumable(r io.Reader, format string) (map[int]bool, int64, error) {
	cells, err := s.withDefaults().Expand()
	if err != nil {
		return nil, 0, err
	}
	if _, err := s.skipFunc(); err != nil { // validate the shard up front
		return nil, 0, err
	}
	check := func(n int, row Row) error {
		if row.Cell < 0 || row.Cell >= len(cells) {
			return fmt.Errorf("campaign: resume: line %d: cell %d outside this spec's %d-cell matrix — was the file produced with different flags?", n+1, row.Cell, len(cells))
		}
		if sh := s.Shard; sh.Count > 1 && row.Cell%sh.Count != sh.Index {
			// A recovered cell outside this spec's shard slice means the
			// file belongs to a different shard; appending this shard's
			// cells after it would corrupt both.
			return fmt.Errorf("campaign: resume: line %d: cell %d is not in shard %d/%d — wrong -shard or wrong file?", n+1, row.Cell, sh.Index, sh.Count)
		}
		if msg := cellRowMismatch(cells[row.Cell], row); msg != "" {
			return fmt.Errorf("campaign: resume: line %d (cell %d): %s — the file belongs to a different campaign", n+1, row.Cell, msg)
		}
		return nil
	}
	completed := make(map[int]bool)
	var valid int64
	switch format {
	case "", "jsonl":
		valid, _, err = scanLines(r, func(n int, line []byte) error {
			var row Row
			if err := json.Unmarshal(line, &row); err != nil {
				return fmt.Errorf("campaign: jsonl line %d: %w", n+1, err)
			}
			if err := check(n, row); err != nil {
				return err
			}
			completed[row.Cell] = true
			return nil
		})
	case "csv":
		valid, _, err = scanLines(r, func(n int, line []byte) error {
			rec, rerr := csv.NewReader(bytes.NewReader(line)).Read()
			if rerr != nil {
				return fmt.Errorf("campaign: csv line %d: %w", n+1, rerr)
			}
			if n == 0 {
				return checkCSVHeader(rec)
			}
			row, rerr := csvCoordRow(rec)
			if rerr != nil {
				return fmt.Errorf("campaign: csv line %d: %w", n+1, rerr)
			}
			// The header row is line 1, so coordinate errors report the
			// record's own line number.
			if err := check(n, row); err != nil {
				return err
			}
			completed[row.Cell] = true
			return nil
		})
	default:
		return nil, 0, fmt.Errorf("campaign: resume: unknown format %q (want jsonl or csv)", format)
	}
	if err != nil {
		return nil, valid, err
	}
	return completed, valid, nil
}

// cellRowMismatch reports how row r's coordinate fields differ from what
// cell c would emit, or "" when they all match. Only coordinates are
// compared — the measured metrics legitimately vary with nothing but the
// seed, which the BaseSeed check pins. Rows carry the *resolved* attacker
// coordinates (core.Config normalizes a zero team size to 1 and an empty
// strategy to the default), so the cell's values are normalized the same
// way before comparing — a spec must accept the very file it produced.
func cellRowMismatch(c Cell, r Row) string {
	wantStrategy := c.Strategy
	if wantStrategy == "" {
		wantStrategy = attacker.DefaultStrategy
	}
	wantAttackers := c.AttackerCount
	if wantAttackers <= 0 {
		wantAttackers = 1
	}
	// Files written before the fault axis existed carry no faults field;
	// those campaigns were all fault-free, so "" matches the default axis.
	gotFaults := r.Faults
	if gotFaults == "" {
		gotFaults = "none"
	}
	wantFaults := c.Faults
	if wantFaults == "" {
		wantFaults = "none"
	}
	// Same story for files written before the energy axis existed.
	gotEnergy := r.Energy
	if gotEnergy == "" {
		gotEnergy = "none"
	}
	wantEnergy := c.Energy
	if wantEnergy == "" {
		wantEnergy = "none"
	}
	type coord struct {
		name string
		got  any
		want any
	}
	for _, f := range []coord{
		{"topology", r.Topology, c.Topology.Label()},
		{"grid_size", r.GridSize, c.Topology.gridSize()},
		{"protocol", r.Protocol, c.Protocol},
		{"search_distance", r.SearchDistance, c.SearchDistance},
		{"attacker_r", r.AttackerR, c.Attacker.R},
		{"attacker_h", r.AttackerH, c.Attacker.H},
		{"attacker_m", r.AttackerM, c.Attacker.M},
		{"strategy", r.Strategy, wantStrategy},
		{"attackers", r.Attackers, wantAttackers},
		{"shared_history", r.SharedHistory, c.SharedHistory},
		{"loss_model", r.LossModel, c.LossModel},
		{"collisions", r.Collisions, c.Collisions},
		{"faults", gotFaults, wantFaults},
		{"energy", gotEnergy, wantEnergy},
		{"repeats", r.Repeats, c.Repeats},
		{"base_seed", r.BaseSeed, c.BaseSeed},
	} {
		if f.got != f.want {
			return fmt.Sprintf("%s is %v, this spec's cell has %v", f.name, f.got, f.want)
		}
	}
	return ""
}

// checkCSVHeader verifies rec is the canonical header row.
func checkCSVHeader(rec []string) error {
	if len(rec) != len(csvHeader) {
		return fmt.Errorf("campaign: csv header has %d fields, want %d", len(rec), len(csvHeader))
	}
	for i, h := range csvHeader {
		if rec[i] != h {
			return fmt.Errorf("campaign: csv header mismatch at column %d: %q, want %q", i+1, rec[i], h)
		}
	}
	return nil
}

// csvCoordRow parses the coordinate columns of one CSV record back into
// a Row (metric columns are left zero — resume verification only needs
// coordinates).
func csvCoordRow(rec []string) (Row, error) {
	if len(rec) != len(csvHeader) {
		return Row{}, fmt.Errorf("%d fields, want %d", len(rec), len(csvHeader))
	}
	var r Row
	var err error
	atoi := func(col int, dst *int) {
		if err != nil {
			return
		}
		v, e := strconv.Atoi(rec[col])
		if e != nil {
			err = fmt.Errorf("bad %s %q", csvHeader[col], rec[col])
			return
		}
		*dst = v
	}
	abool := func(col int, dst *bool) {
		if err != nil {
			return
		}
		v, e := strconv.ParseBool(rec[col])
		if e != nil {
			err = fmt.Errorf("bad %s %q", csvHeader[col], rec[col])
			return
		}
		*dst = v
	}
	atoi(0, &r.Cell)
	r.Topology = rec[1]
	atoi(2, &r.GridSize)
	atoi(3, &r.Nodes)
	r.Protocol = rec[4]
	atoi(5, &r.SearchDistance)
	atoi(6, &r.AttackerR)
	atoi(7, &r.AttackerH)
	atoi(8, &r.AttackerM)
	r.Strategy = rec[9]
	atoi(10, &r.Attackers)
	abool(11, &r.SharedHistory)
	r.LossModel = rec[12]
	abool(13, &r.Collisions)
	atoi(14, &r.Repeats)
	if err == nil {
		if r.BaseSeed, err = strconv.ParseUint(rec[15], 10, 64); err != nil {
			err = fmt.Errorf("bad %s %q", csvHeader[15], rec[15])
		}
	}
	r.Faults = rec[29]
	r.Energy = rec[38]
	return r, err
}

// ScanCompletedCSV is ScanCompleted for CSV campaign output: the first
// complete line must be the canonical header, every later complete line
// one record whose first field is the cell index. Line-based scanning is
// sound here because no Row field ever serializes with an embedded
// newline. The returned offset covers the header, so a file holding only
// a header resumes by appending records without duplicating it.
func ScanCompletedCSV(r io.Reader) (map[int]bool, int64, error) {
	cells := make(map[int]bool)
	valid, _, err := scanLines(r, func(n int, line []byte) error {
		rec, err := csv.NewReader(bytes.NewReader(line)).Read()
		if err != nil {
			return fmt.Errorf("campaign: csv line %d: %w", n+1, err)
		}
		if n == 0 {
			return checkCSVHeader(rec)
		}
		if len(rec) != len(csvHeader) {
			return fmt.Errorf("campaign: csv line %d: %d fields, want %d", n+1, len(rec), len(csvHeader))
		}
		cell, err := strconv.Atoi(rec[0])
		if err != nil {
			return fmt.Errorf("campaign: csv line %d: bad cell %q", n+1, rec[0])
		}
		cells[cell] = true
		return nil
	})
	if err != nil {
		return nil, valid, err
	}
	return cells, valid, nil
}
