package campaign

import (
	"bytes"
	"strings"
	"testing"

	"slpdas/internal/protocol"
)

// protocolSpec is a one-axis campaign over the given families, small
// enough to drive through the stub runner.
func protocolSpec(protocols ...string) Spec {
	return Spec{GridSizes: []int{5}, Protocols: protocols, SearchDistances: []int{2}, Repeats: 2, BaseSeed: 3}
}

// TestScanResumableRejectsForeignProtocolFamily pins the protocol leg of
// resume coordinate verification: a file written with one family must be
// refused by a spec listing a different — or renamed — family, mirroring
// the attacker-coordinate checks. Silently resuming across a protocol
// change would splice two different experiments into one output file.
func TestScanResumableRejectsForeignProtocolFamily(t *testing.T) {
	spec := protocolSpec(protocol.NamePhantom)
	mem := &Memory{}
	if _, err := run(spec, stubRun, mem); err != nil {
		t.Fatalf("run: %v", err)
	}
	full := renderJSONL(t, mem.Rows())

	// Positive control: the file's own spec accepts it.
	completed, _, err := spec.ScanResumable(bytes.NewReader(full), "jsonl")
	if err != nil {
		t.Fatalf("ScanResumable against own spec: %v", err)
	}
	if len(completed) != 1 || !completed[0] {
		t.Fatalf("completed = %v, want the single phantom cell", completed)
	}

	for name, foreign := range map[string]Spec{
		"different family": protocolSpec(protocol.NameFakeSource),
		"renamed family":   protocolSpec(protocol.NameTier),
		"paper pair":       protocolSpec(Protectionless, SLPAware),
	} {
		_, _, err := foreign.ScanResumable(bytes.NewReader(full), "jsonl")
		if err == nil {
			t.Errorf("%s: file written with %q accepted", name, protocol.NamePhantom)
			continue
		}
		if !strings.Contains(err.Error(), "protocol") {
			t.Errorf("%s: error %q does not name the protocol coordinate", name, err)
		}
	}
}

// TestScanResumableAliasIsNotItsCanonicalName pins that the axis records
// the user's chosen spelling: "slp" and "slp-das" resolve to the same
// family but are distinct campaign coordinates, so a file written under
// one spelling is refused by a spec using the other rather than silently
// renaming half the rows.
func TestScanResumableAliasIsNotItsCanonicalName(t *testing.T) {
	aliasSpec := protocolSpec(protocol.AliasSLP)
	mem := &Memory{}
	if _, err := run(aliasSpec, stubRun, mem); err != nil {
		t.Fatalf("run: %v", err)
	}
	full := renderJSONL(t, mem.Rows())

	if _, _, err := aliasSpec.ScanResumable(bytes.NewReader(full), "jsonl"); err != nil {
		t.Fatalf("alias spec rejected its own file: %v", err)
	}
	canonical := protocolSpec(protocol.NameSLPDAS)
	if _, _, err := canonical.ScanResumable(bytes.NewReader(full), "jsonl"); err == nil {
		t.Error("spec naming slp-das accepted a file written as slp")
	}
}
