package campaign

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// shardOutputs runs spec once per shard through the stub runner and
// returns each shard's JSONL bytes plus the single-process output.
func shardOutputs(t *testing.T, spec Spec, n int) (shards [][]byte, single []byte) {
	t.Helper()
	render := func(s Spec) []byte {
		var buf bytes.Buffer
		sink := NewJSONL(&buf)
		if _, err := run(s, stubRun, sink); err != nil {
			t.Fatalf("run: %v", err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	single = render(spec)
	for i := 0; i < n; i++ {
		s := spec
		s.Shard = Shard{Index: i, Count: n}
		shards = append(shards, render(s))
	}
	return shards, single
}

func mergeShards(shards [][]byte) (int, []byte, error) {
	srcs := make([]io.Reader, len(shards))
	for i, b := range shards {
		srcs[i] = bytes.NewReader(b)
	}
	var out bytes.Buffer
	n, err := MergeJSONL(&out, srcs...)
	return n, out.Bytes(), err
}

// TestMergeJSONLRoundTrip pins the tentpole invariant at the engine
// level: shard outputs merged back together are byte-identical to the
// single-process run, for several shard counts (including more shards
// than cells, leaving some shards empty).
func TestMergeJSONLRoundTrip(t *testing.T) {
	spec := Spec{GridSizes: []int{5, 7}, Protocols: []string{Protectionless, SLPAware}, SearchDistances: []int{1, 2}, Repeats: 3, BaseSeed: 9}
	for _, n := range []int{2, 3, 5, 16} {
		shards, single := shardOutputs(t, spec, n)
		got, merged, err := mergeShards(shards)
		if err != nil {
			t.Fatalf("%d shards: %v", n, err)
		}
		if got != 8 {
			t.Errorf("%d shards: merged %d cells, want 8", n, got)
		}
		if !bytes.Equal(merged, single) {
			t.Errorf("%d shards: merged output differs from single-process run:\n%s\nvs\n%s", n, merged, single)
		}
	}
}

// TestMergeJSONLUnorderedSources: merge accepts shard files in any
// order (the stream interleaves by cell index), but rows *within* a
// source must be in increasing cell order — the order the engine writes
// and -resume preserves — so the merge can stream in O(sources) memory.
func TestMergeJSONLUnorderedSources(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, Protocols: []string{Protectionless, SLPAware}, SearchDistances: []int{1, 2}, Repeats: 2}
	shards, single := shardOutputs(t, spec, 2)
	// Shard files in reversed order merge fine.
	_, merged, err := mergeShards([][]byte{shards[1], shards[0]})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(merged, single) {
		t.Errorf("reversed-source merge differs from single-process run")
	}
	// A backwards jump inside one source violates the ordering contract.
	// Source A carries cells 0,2,1 and source B cells 1,3, so the jump in
	// A is reached right after its cell 2 is merged.
	lines := bytes.SplitAfter(single, []byte("\n"))
	disordered := append(append(append([]byte{}, lines[0]...), lines[2]...), lines[1]...)
	ordered := append(append([]byte{}, lines[1]...), lines[3]...)
	if _, _, err := mergeShards([][]byte{disordered, ordered}); err == nil || !strings.Contains(err.Error(), "increasing cell order") {
		t.Errorf("within-source disorder: err = %v", err)
	}
	// The same cell twice in a row inside one source is called out as a
	// within-source duplicate.
	doubled := append(append(append([]byte{}, lines[0]...), lines[0]...), lines[1]...)
	if _, _, err := mergeShards([][]byte{doubled, lines[2], lines[3]}); err == nil || !strings.Contains(err.Error(), "twice within") {
		t.Errorf("within-source duplicate: err = %v", err)
	}
}

func TestMergeJSONLDetectsGap(t *testing.T) {
	spec := Spec{GridSizes: []int{5, 7}, SearchDistances: []int{1, 2}, Repeats: 2}
	shards, _ := shardOutputs(t, spec, 3)
	_, _, err := mergeShards([][]byte{shards[0], shards[2]}) // shard 1 missing
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("err = %v, want missing-cell error", err)
	}
}

func TestMergeJSONLDetectsDuplicates(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, SearchDistances: []int{1, 2}, Repeats: 2}
	shards, _ := shardOutputs(t, spec, 2)
	// Same shard twice: identical duplicate.
	_, _, err := mergeShards([][]byte{shards[0], shards[1], shards[0]})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("identical duplicate: err = %v", err)
	}
	// Same cell, different bytes: conflict.
	conflict := bytes.Replace(shards[0], []byte(`"nodes":25`), []byte(`"nodes":26`), 1)
	_, _, err = mergeShards([][]byte{conflict, shards[0], shards[1]})
	if err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Errorf("conflicting duplicate: err = %v", err)
	}
}

func TestMergeJSONLDetectsForeignCampaign(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, SearchDistances: []int{1, 2}, Repeats: 2, BaseSeed: 1}
	shards, _ := shardOutputs(t, spec, 2)
	// A shard of the same matrix from a different base seed: every row
	// still parses, but the implied campaign seed disagrees.
	other := spec
	other.BaseSeed = 999
	otherShards, _ := shardOutputs(t, other, 2)
	_, _, err := mergeShards([][]byte{shards[0], otherShards[1]})
	if err == nil || !strings.Contains(err.Error(), "different campaigns") {
		t.Errorf("foreign seed: err = %v", err)
	}
	// A shard with a different repeat count.
	moreReps := spec
	moreReps.Repeats = 5
	repShards, _ := shardOutputs(t, moreReps, 2)
	_, _, err = mergeShards([][]byte{shards[0], repShards[1]})
	if err == nil || !strings.Contains(err.Error(), "different specs") {
		t.Errorf("foreign repeats: err = %v", err)
	}
}

func TestMergeJSONLRejectsTornShard(t *testing.T) {
	spec := Spec{GridSizes: []int{5}, SearchDistances: []int{1, 2}, Repeats: 2}
	shards, _ := shardOutputs(t, spec, 2)
	torn := shards[1][:len(shards[1])-5]
	_, _, err := mergeShards([][]byte{shards[0], torn})
	if err == nil || !strings.Contains(err.Error(), "torn") {
		t.Errorf("err = %v, want torn-shard error", err)
	}
}

func TestMergeJSONLEmptyInputs(t *testing.T) {
	n, merged, err := mergeShards([][]byte{nil, nil})
	if err != nil || n != 0 || len(merged) != 0 {
		t.Errorf("empty merge: n=%d out=%q err=%v", n, merged, err)
	}
}
