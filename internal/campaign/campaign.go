// Package campaign is the sweep engine above internal/experiment: it
// expands a declarative Spec — axes of topologies, protocols, search
// distances, attacker strengths, loss models and collision settings —
// into the full Cartesian job matrix of experimental cells, executes every
// repeat of every cell through one shared bounded worker pool, and streams
// one summary Row per cell to pluggable sinks (JSONL, CSV, in-memory) as
// cells complete. The whole of the paper's evaluation (Figure 5, Table I
// defaults, the overhead claim) is one Spec; so are the scenario grids of
// the broader SLP literature (sector phantom routing, private aggregation
// surveys) that sweep attacker and topology parameters far wider.
//
// Determinism: cell c repeat r runs on seed BaseSeed + c·Repeats + r, so
// a campaign's output is a pure function of its Spec regardless of worker
// count or scheduling. Rows are emitted in cell-index order.
//
// That purity is what makes campaigns restartable and horizontally
// shardable: every row depends only on its cell's coordinates, never on
// which process computed it or which cells ran alongside. Spec.Skip (or
// CompletedCells) resumes an interrupted campaign from the cells already
// durable in its output file (ScanCompleted recovers them, tolerating a
// torn final line); Spec.Shard runs one deterministic stride slice of the
// matrix per process or machine; MergeJSONL reassembles shard outputs in
// canonical cell order. Sharded-then-merged, killed-then-resumed and
// single-process runs of one Spec are byte-identical.
package campaign

import (
	"fmt"
	"runtime"
	"sync"

	"slpdas/internal/attacker"
	"slpdas/internal/channel"
	"slpdas/internal/core"
	"slpdas/internal/energy"
	"slpdas/internal/experiment"
	"slpdas/internal/fault"
	"slpdas/internal/protocol"
	"slpdas/internal/topo"
)

// Historical names for the paper's pair on the Protocols axis. The axis
// accepts any protocol registry name (see protocol.Protocols); these two
// resolve through the registry like the rest — SLPAware is the registry
// alias for protocol.NameSLPDAS, kept so pre-registry campaign files stay
// resumable.
const (
	Protectionless = protocol.NameProtectionless
	SLPAware       = protocol.AliasSLP
)

// ProtocolNames lists the canonical registry names accepted on the
// Protocols axis, sorted (the SLPAware alias also resolves).
func ProtocolNames() []string { return protocol.Names() }

// Spec declares a campaign: every non-empty axis slice multiplies the job
// matrix. Zero values select the paper's defaults (11×11 grid, both
// protocols, SD 3, the (1,0,1) attacker, ideal channel, no collisions).
type Spec struct {
	// GridSizes is the convenience topology axis: one square grid per
	// size, source top-left and sink centre as §VI-A. Default {11}.
	GridSizes []int
	// Topologies, when non-empty, replaces GridSizes as the topology axis
	// and admits non-grid layouts from internal/topo/builders.go.
	Topologies []TopologySpec
	// Protocols is the protocol axis. Default both protocols.
	Protocols []string
	// SearchDistances is the SD axis. It multiplies every protocol cell
	// (the coordinate is recorded but inert for protectionless DAS, so
	// the matrix stays a full Cartesian product). Default {3}.
	SearchDistances []int
	// Attackers is the (R, H, M) axis; Start is always the sink. Default
	// the paper's (1, 0, 1).
	Attackers []attacker.Params
	// Strategies is the attacker decision axis, by registry name (see
	// attacker.Strategies). Default the paper's first-heard.
	Strategies []string
	// AttackerCounts is the eavesdropper-team-size axis; capture is the
	// first of the team to reach the source. Default {1}.
	AttackerCounts []int
	// SharedHistories is the pooled-H-window axis. Default {false}.
	SharedHistories []bool
	// LossModels is the legacy channel axis: "ideal", "bernoulli:<p>",
	// "rssi". Default {"ideal"}. Superseded by Channels when that is
	// non-empty; both feed the same loss_model row column.
	LossModels []string
	// Channels is the physical-channel axis in the internal/channel
	// grammar, which extends the LossModels values with log-distance path
	// loss, shadowing and SINR capture
	// ("logdist:<n>:<sigma>[@sinr:<threshold>]"). When non-empty it
	// replaces LossModels as the channel axis; specs are canonicalised
	// through channel.Parse/Spec at Expand, and the canonical string lands
	// in the row's loss_model column.
	Channels []string
	// Collisions is the receiver-side collision axis. Default {false}.
	Collisions []bool
	// Faults is the fault-injection axis: specs in fault.Parse grammar
	// ("none", "crash:<rate>", "churn:<rate>:<mttr>", "link:<rate>",
	// "blackout:<r>@<p>"). Each cell's plan is minted deterministically
	// from the spec and the cell's per-repeat seed. Default {"none"},
	// which keeps cell indices and seeds of fault-free campaigns
	// identical to builds that predate the axis.
	Faults []string
	// Energy is the per-node energy-accounting axis: specs in the
	// internal/energy grammar ("none",
	// "battery:<capacity>[:<tx>:<rx>:<idle>]"). Default {"none"}, which
	// keeps cell indices and seeds of energy-free campaigns identical to
	// builds that predate the axis; it nests innermost, after Faults.
	Energy []string

	// Repeats is the number of independent simulations per cell.
	// Default 10.
	Repeats int
	// BaseSeed anchors the campaign's seed space; see the package comment
	// for the per-cell layout.
	BaseSeed uint64
	// Workers bounds the total number of concurrently running simulations
	// across all cells (0 = GOMAXPROCS). Cells do not get pools of their
	// own, so a campaign never oversubscribes the machine.
	Workers int
	// Progress, when non-nil, is called after each executed cell's row has
	// been written to every sink, in cell order, from a single goroutine.
	// done is the 1-based matrix position of the cell just emitted and
	// total the full matrix size, so a resumed or sharded run reports its
	// absolute position; skipped cells produce no call.
	Progress func(done, total int, row Row)

	// Skip, when non-nil, reports cells to omit: they are neither executed
	// nor emitted, but keep their place in the matrix, so the indices,
	// seeds and row bytes of every remaining cell are identical to a full
	// run. This is the resume primitive — feed it the set recovered by
	// ScanCompleted and the appended output completes the original file.
	Skip func(cell int) bool
	// CompletedCells is the declarative form of Skip (the two compose):
	// cells listed here are skipped.
	CompletedCells []int
	// Shard selects one deterministic 1/Count slice of the cell matrix in
	// stride layout (cell c runs on shard c mod Count), so shards of a
	// heterogeneous matrix finish in near-equal time. The zero value runs
	// everything. Shard composes with Skip, and merges back with
	// MergeJSONL / cmd/slpmerge.
	Shard Shard
	// CheckpointEvery, when positive, checkpoints every sink implementing
	// CheckpointSink after each N emitted rows, bounding how much a crash
	// can lose to the rows since the last checkpoint.
	CheckpointEvery int

	// PathCap governs attacker-walk recording inside every cell's config.
	// Campaign rows never render walks, so the zero value disables
	// recording entirely (core.PathRecordingOff) — at 10⁵–10⁶ nodes a
	// full walk is pure wasted memory per run. Set PathFull to record
	// complete walks anyway, or N > 0 to keep the first N locations.
	PathCap int
}

// PathFull requests uncapped attacker-walk recording in Spec.PathCap,
// restoring core.Config's default behaviour inside campaign cells.
const PathFull = -1

// Shard identifies one slice of a sharded campaign: shard Index of Count
// total. Count < 2 means no sharding (with Count == 1, Index must be 0).
type Shard struct {
	Index, Count int
}

// skipFunc validates the shard and folds Shard, CompletedCells and Skip
// into one predicate.
func (s Spec) skipFunc() (func(cell int) bool, error) {
	sh := s.Shard
	if sh.Count < 0 {
		return nil, fmt.Errorf("campaign: shard count must be non-negative, got %d", sh.Count)
	}
	if sh.Count == 0 && sh.Index != 0 {
		// A nonzero index with the no-sharding count is always a mistake
		// (e.g. Shard{2, 0} from a mistyped "2/0"); running the full
		// matrix labelled as a shard would silently poison a later merge.
		return nil, fmt.Errorf("campaign: shard index %d with count 0 (no sharding); want index 0 or a positive count", sh.Index)
	}
	if sh.Count > 0 && (sh.Index < 0 || sh.Index >= sh.Count) {
		return nil, fmt.Errorf("campaign: shard index %d out of range [0, %d)", sh.Index, sh.Count)
	}
	var completed map[int]bool
	if len(s.CompletedCells) > 0 {
		completed = make(map[int]bool, len(s.CompletedCells))
		for _, c := range s.CompletedCells {
			completed[c] = true
		}
	}
	return func(cell int) bool {
		if sh.Count > 1 && cell%sh.Count != sh.Index {
			return true
		}
		if completed[cell] {
			return true
		}
		return s.Skip != nil && s.Skip(cell)
	}, nil
}

func (s Spec) withDefaults() Spec {
	if len(s.GridSizes) == 0 {
		s.GridSizes = []int{11}
	}
	if len(s.Protocols) == 0 {
		s.Protocols = []string{Protectionless, SLPAware}
	}
	if len(s.SearchDistances) == 0 {
		s.SearchDistances = []int{3}
	}
	if len(s.Attackers) == 0 {
		s.Attackers = []attacker.Params{{R: 1, H: 0, M: 1}}
	}
	if len(s.Strategies) == 0 {
		s.Strategies = []string{attacker.DefaultStrategy}
	}
	if len(s.AttackerCounts) == 0 {
		s.AttackerCounts = []int{1}
	}
	if len(s.SharedHistories) == 0 {
		s.SharedHistories = []bool{false}
	}
	if len(s.LossModels) == 0 {
		s.LossModels = []string{"ideal"}
	}
	if len(s.Collisions) == 0 {
		s.Collisions = []bool{false}
	}
	if len(s.Faults) == 0 {
		s.Faults = []string{"none"}
	}
	if len(s.Energy) == 0 {
		s.Energy = []string{"none"}
	}
	if s.Repeats == 0 {
		s.Repeats = 10
	}
	return s
}

// channelAxis is the effective physical-channel axis: Channels when set,
// else the legacy LossModels (withDefaults guarantees that one is
// non-empty). Both land in Cell.LossModel and the loss_model column.
func (s Spec) channelAxis() []string {
	if len(s.Channels) > 0 {
		return s.Channels
	}
	return s.LossModels
}

func (s Spec) topologyAxis() []TopologySpec {
	if len(s.Topologies) > 0 {
		return s.Topologies
	}
	axis := make([]TopologySpec, 0, len(s.GridSizes))
	for _, size := range s.GridSizes {
		axis = append(axis, TopologySpec{Kind: KindGrid, Size: size})
	}
	return axis
}

// Cell is one point of the expanded job matrix: the full coordinates plus
// the seed range its repeats run on.
type Cell struct {
	Index          int
	Topology       TopologySpec
	Protocol       string
	SearchDistance int
	Attacker       attacker.Params
	Strategy       string
	AttackerCount  int
	SharedHistory  bool
	LossModel      string // canonical channel spec (channel.Parse grammar)
	Collisions     bool
	Faults         string // canonical fault.Spec string ("none" = fault-free)
	Energy         string // canonical energy.Spec string ("none" = accounting off)
	Repeats        int
	BaseSeed       uint64 // repeat r runs on BaseSeed + r
	PathCap        int    // Spec.PathCap semantics (0 = recording off)
}

func (c Cell) config() (core.Config, error) {
	cfg, err := BuildConfig(c.Protocol, c.SearchDistance, AttackerSetup{
		Params:        c.Attacker,
		Strategy:      c.Strategy,
		Count:         c.AttackerCount,
		SharedHistory: c.SharedHistory,
	}, c.LossModel, c.Collisions, c.Faults, c.Energy)
	if err != nil {
		return core.Config{}, err
	}
	// Translate the campaign-level PathCap (zero value = off, PathFull =
	// record everything) onto core.Config's (zero value = record
	// everything, PathRecordingOff = off).
	switch {
	case c.PathCap == 0:
		cfg.PathCap = core.PathRecordingOff
	case c.PathCap == PathFull:
		cfg.PathCap = 0
	case c.PathCap > 0:
		cfg.PathCap = c.PathCap
	default:
		return core.Config{}, fmt.Errorf("campaign: path cap must be >= %d, got %d", PathFull, c.PathCap)
	}
	return cfg, nil
}

// AttackerSetup groups the attacker-side coordinates of a cell: the
// (R, H, M) tuple, the decision strategy by registry name (empty =
// first-heard), the team size (0 = single) and whether the team pools
// one H-window.
type AttackerSetup struct {
	Params        attacker.Params
	Strategy      string
	Count         int
	SharedHistory bool
}

// BuildConfig maps one cell's coordinates — protocol name, search
// distance, attacker setup, channel spec, collisions, fault spec, energy
// spec — onto a validated core.Config. It is the single protocol-name
// switch shared by the campaign engine and the slpdas facade.
// channelSpec uses the internal/channel grammar (which subsumes the old
// loss-model syntax); faults the fault.Parse grammar; energySpec the
// energy.Parse grammar. "" and "none" mean off for the latter two.
func BuildConfig(protoName string, searchDistance int, atk AttackerSetup, channelSpec string, collisions bool, faults, energySpec string) (core.Config, error) {
	fam, err := protocol.ByName(protoName)
	if err != nil {
		return core.Config{}, fmt.Errorf("campaign: %w", err)
	}
	cfg := core.Default()
	cfg.Protocol = fam.Name()
	cfg.SLP = fam.Name() == protocol.NameSLPDAS
	// The SD coordinate only lands in the config for families it
	// parameterises; others keep the Table I default, exactly as the
	// pre-registry switch left protectionless untouched.
	if fam.UsesSearchDistance() {
		cfg.SearchDistance = searchDistance
	}
	cfg.Attacker = atk.Params
	cfg.Strategy = atk.Strategy
	cfg.AttackerCount = atk.Count
	cfg.SharedHistory = atk.SharedHistory
	cfg.Collisions = collisions
	ch, err := channel.Parse(channelSpec)
	if err != nil {
		return core.Config{}, fmt.Errorf("campaign: %w", err)
	}
	cfg.Channel = ch.Spec()
	fs, err := fault.Parse(faults)
	if err != nil {
		return core.Config{}, fmt.Errorf("campaign: %w", err)
	}
	cfg.Faults = fs
	es, err := energy.Parse(energySpec)
	if err != nil {
		return core.Config{}, fmt.Errorf("campaign: %w", err)
	}
	cfg.Energy = es
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// Expand materialises the job matrix: the Cartesian product of all axes,
// with defaults applied, in a deterministic order (topology outermost,
// energy innermost). Repeats and the per-cell seed ranges are fixed
// here, so Expand alone determines every seed a campaign will run.
// Channel, fault and energy axis values are canonicalised through their
// Parse/String round trips here, so cells (and rows, and resume
// verification) always carry the canonical spelling regardless of how
// the axis was written.
func (s Spec) Expand() ([]Cell, error) {
	s = s.withDefaults()
	if s.Repeats < 0 {
		return nil, fmt.Errorf("campaign: repeats must be positive, got %d", s.Repeats)
	}
	chAxis := s.channelAxis()
	channelAxis := make([]string, len(chAxis))
	for i, c := range chAxis {
		m, err := channel.Parse(c)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		channelAxis[i] = m.Spec()
	}
	faultAxis := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		fs, err := fault.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		faultAxis[i] = fs.String()
	}
	energyAxis := make([]string, len(s.Energy))
	for i, e := range s.Energy {
		es, err := energy.Parse(e)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		energyAxis[i] = es.String()
	}
	var cells []Cell
	for _, top := range s.topologyAxis() {
		for _, proto := range s.Protocols {
			if _, err := protocol.ByName(proto); err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
			for _, sd := range s.SearchDistances {
				for _, atk := range s.Attackers {
					for _, strat := range s.Strategies {
						for _, count := range s.AttackerCounts {
							for _, sharedH := range s.SharedHistories {
								for _, loss := range channelAxis {
									for _, coll := range s.Collisions {
										for _, flt := range faultAxis {
											for _, en := range energyAxis {
												idx := len(cells)
												cells = append(cells, Cell{
													Index:          idx,
													Topology:       top,
													Protocol:       proto,
													SearchDistance: sd,
													Attacker:       atk,
													Strategy:       strat,
													AttackerCount:  count,
													SharedHistory:  sharedH,
													LossModel:      loss,
													Collisions:     coll,
													Faults:         flt,
													Energy:         en,
													Repeats:        s.Repeats,
													BaseSeed:       s.BaseSeed + uint64(idx)*uint64(s.Repeats),
													PathCap:        s.PathCap,
												})
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// Summary is the in-memory outcome of a campaign. Cells counts the full
// matrix; Rows holds only the cells this run executed (all of them unless
// Skip or Shard filtered some out, counted by Skipped).
type Summary struct {
	Cells    int
	Skipped  int // cells omitted by Skip / CompletedCells / Shard
	Rows     []Row
	Failures int // individual runs that errored, across all cells
}

// runner executes one repeat; tests substitute it to instrument the pool.
type runner func(g *topo.Graph, sink, source topo.NodeID, cfg core.Config, seed uint64) (*core.Result, error)

// cellState is one cell's streaming index-ordered reduction: results
// deposited by any worker in any order are folded into the accumulator
// strictly by repeat index, so the aggregate is identical whether the
// cell's repeats ran on one worker or the whole pool. Out-of-order
// arrivals park in pending (bounded by pool concurrency); folded Results
// are released immediately.
type cellState struct {
	mu       sync.Mutex
	next     int // next repeat index to fold
	repeats  int
	pending  map[int]pendingRun
	acc      *experiment.Accumulator
	failures int
	firstErr error // lowest-repeat-index error, matching the batch engine
	done     chan struct{}
}

type pendingRun struct {
	res *core.Result
	err error
}

// deposit hands repeat rep's outcome to the reducer. Exactly one call per
// repeat; the cell's done channel closes when the last repeat has folded.
func (cs *cellState) deposit(rep int, res *core.Result, err error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if rep != cs.next {
		if cs.pending == nil {
			cs.pending = make(map[int]pendingRun)
		}
		cs.pending[rep] = pendingRun{res: res, err: err}
		return
	}
	cs.fold(res, err)
	for {
		p, ok := cs.pending[cs.next]
		if !ok {
			break
		}
		delete(cs.pending, cs.next)
		cs.fold(p.res, p.err)
	}
	if cs.next == cs.repeats {
		close(cs.done)
	}
}

func (cs *cellState) fold(res *core.Result, err error) {
	if err != nil {
		cs.failures++
		if cs.firstErr == nil {
			cs.firstErr = err
		}
	} else {
		cs.acc.Add(res)
	}
	cs.next++
}

// resolvedCell pairs a cell with its materialised topology and config.
type resolvedCell struct {
	cell   Cell
	g      *topo.Graph
	sink   topo.NodeID
	source topo.NodeID
	cfg    core.Config
}

// Run expands the spec and executes every cell not excluded by Skip,
// CompletedCells or Shard, streaming one Row per executed cell to each
// sink in cell-index order as results become available.
// Failed runs are counted per row (and in Summary.Failures); the first
// run error is returned alongside the summary of everything that
// completed, mirroring experiment.Run's convention.
//
// Execution is arena-style: topologies are memoised across campaigns (see
// resolve), and each worker keeps one wired core.Network per topology,
// rewinding it with Network.Reset between repeats and across config cells
// instead of rebuilding — the per-run cost is the simulation itself, not
// its setup. Reset is pinned to be indistinguishable from fresh
// construction, so rows remain a pure function of the Spec regardless of
// worker count, arena reuse or cache warmth.
func Run(spec Spec, sinks ...Sink) (*Summary, error) {
	return run(spec, nil, sinks...)
}

// arena is one worker's pool of reusable networks, keyed by topology (one
// graph never maps to two different sink/source pairs within a campaign,
// since all three come from the same builtTopology). The wire-or-reset
// policy itself lives in experiment.RunReusable, shared with the
// experiment harness's workers.
type arena map[*topo.Graph]*core.Network

func (a arena) run(rc resolvedCell, seed uint64) (*core.Result, error) {
	net := a[rc.g]
	res, err := experiment.RunReusable(&net, rc.g, rc.sink, rc.source, rc.cfg, seed)
	if net == nil {
		// RunReusable discards a network that failed to reset; rewire on
		// the next job.
		delete(a, rc.g)
	} else {
		a[rc.g] = net
	}
	return res, err
}

func run(spec Spec, exec runner, sinks ...Sink) (*Summary, error) {
	spec = spec.withDefaults()
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return &Summary{}, nil
	}
	skip, err := spec.skipFunc()
	if err != nil {
		return nil, err
	}
	// selected marks the cells this run actually executes; skipped cells
	// keep their indices and seed ranges but get no jobs, rows or results
	// storage.
	selected := make([]bool, len(cells))
	nSelected := 0
	for i := range cells {
		if !skip(i) {
			selected[i] = true
			nSelected++
		}
	}
	if nSelected == 0 {
		return &Summary{Cells: len(cells), Skipped: len(cells)}, nil
	}

	// Resolve every selected cell's topology and config up front so a bad
	// axis value fails before any simulation starts. Topologies are
	// memoised process-wide by spec (graphs are immutable): cells share
	// them across the pool, and successive campaigns share them across
	// calls. Skipped cells stay unresolved — a resume that has most of a
	// huge matrix complete, or one shard of many, pays setup only for the
	// cells it will actually run.
	resolved := make([]resolvedCell, len(cells))
	for i, c := range cells {
		if !selected[i] {
			continue
		}
		bt, err := c.Topology.resolve()
		if err != nil {
			return nil, err
		}
		cfg, err := c.config()
		if err != nil {
			return nil, err
		}
		resolved[i] = resolvedCell{cell: c, g: bt.g, sink: bt.sink, source: bt.source, cfg: cfg}
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if total := nSelected * spec.Repeats; workers > total {
		workers = total
	}

	// One shared pool over every selected (cell, repeat) job, reduced per
	// cell by a streaming index-ordered fold: workers deposit results as
	// they finish, the reducer folds them into the cell's Accumulator
	// strictly in repeat order (out-of-order arrivals wait in a small
	// pending map bounded by pool concurrency) and frees each Result
	// immediately. Rows are therefore a pure function of the Spec
	// regardless of worker count — the fold order never depends on
	// scheduling — and a cell's memory is O(workers) Results instead of
	// O(repeats), which is what lets one 10⁵–10⁶-node cell run wide
	// without buffering every repeat's n-sized assignment.
	states := make([]*cellState, len(cells))
	for i := range cells {
		if !selected[i] {
			continue
		}
		rc := resolved[i]
		acc := experiment.NewAccumulator(experiment.Spec{
			GridSize: rc.cell.Topology.gridSize(),
			Topology: rc.g,
			Sink:     rc.sink,
			Source:   rc.source,
			Config:   rc.cfg,
			Repeats:  rc.cell.Repeats,
			BaseSeed: rc.cell.BaseSeed,
		}, rc.g)
		states[i] = &cellState{repeats: spec.Repeats, acc: acc, done: make(chan struct{})}
	}

	type job struct{ cell, rep int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns an arena of reusable networks (one per
			// topology); the instrumented exec hook used by tests bypasses
			// it.
			var nets arena
			if exec == nil {
				nets = make(arena)
			}
			for j := range jobs {
				rc := resolved[j.cell]
				seed := rc.cell.BaseSeed + uint64(j.rep)
				var res *core.Result
				var err error
				if nets != nil {
					res, err = nets.run(rc, seed)
				} else {
					res, err = exec(rc.g, rc.sink, rc.source, rc.cfg, seed)
				}
				if err != nil {
					err = fmt.Errorf("campaign: cell %d seed %d: %w", j.cell, seed, err)
				}
				states[j.cell].deposit(j.rep, res, err)
			}
		}()
	}
	go func() {
		for c := range cells {
			if !selected[c] {
				continue
			}
			for r := 0; r < spec.Repeats; r++ {
				jobs <- job{cell: c, rep: r}
			}
		}
		close(jobs)
	}()

	// abort drains the pool after a fatal sink/checkpoint failure: the
	// stream's contract is one row per executed cell, so there is no
	// point finishing the matrix.
	abort := func() {
		go func() {
			for range jobs {
			}
		}()
		wg.Wait()
	}

	// Emit rows in cell order as cells finish; earlier cells gate later
	// ones only at the sink, not in the pool.
	sum := &Summary{Cells: len(cells)}
	var firstErr error
	emitted := 0
	for i := range cells {
		if !selected[i] {
			sum.Skipped++
			continue
		}
		st := states[i]
		<-st.done
		rc := resolved[i]
		agg := st.acc.Finalize()
		agg.Failures = st.failures
		if st.firstErr != nil && firstErr == nil {
			firstErr = st.firstErr
		}
		// Release the cell's reduction state so a long campaign's memory
		// is bounded by in-flight cells, not total runs.
		states[i] = nil
		row := makeRow(rc.cell, rc.g, agg)
		sum.Rows = append(sum.Rows, row)
		sum.Failures += agg.Failures
		for _, snk := range sinks {
			if err := snk.Write(row); err != nil {
				// A sink failure is fatal: drain the pool and stop.
				abort()
				return sum, fmt.Errorf("campaign: sink: %w", err)
			}
		}
		emitted++
		if spec.CheckpointEvery > 0 && emitted%spec.CheckpointEvery == 0 {
			for _, snk := range sinks {
				cs, ok := snk.(CheckpointSink)
				if !ok {
					continue
				}
				if _, err := cs.Checkpoint(); err != nil {
					abort()
					return sum, fmt.Errorf("campaign: checkpoint: %w", err)
				}
			}
		}
		if spec.Progress != nil {
			spec.Progress(i+1, len(cells), row)
		}
	}
	wg.Wait()
	return sum, firstErr
}
