package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
)

// ulpDiff returns the number of representable float64 values between a and
// b (0 when bit-identical). NaNs and mismatched infinities count as far
// apart; equal infinities as 0.
func ulpDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		if math.IsNaN(a) && math.IsNaN(b) {
			return 0
		}
		return math.MaxUint64
	}
	if a == b {
		return 0
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.MaxUint64
	}
	// Map the float ordering onto a monotone integer ordering.
	ord := func(x float64) int64 {
		bits := int64(math.Float64bits(x))
		if bits < 0 {
			bits = math.MinInt64 - bits
		}
		return bits
	}
	oa, ob := ord(a), ord(b)
	if oa > ob {
		oa, ob = ob, oa
	}
	return uint64(ob - oa)
}

func streamOf(xs []float64) Summary {
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	return s.Summary()
}

// TestStreamMatchesBatchExactly pins the satellite contract on the
// by-construction-exact fields: N, Mean, Min and Max from Stream are
// byte-identical to Summarize on any input, because the operations and
// their order are the same.
func TestStreamMatchesBatchExactly(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	cases := [][]float64{
		nil,
		{3.25},
		{1, 2, 3, 4, 5},
		{0.1, 0.2, 0.3}, // sums that round
	}
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 1+rng.IntN(200))
		for i := range xs {
			xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.IntN(12)-6))
		}
		cases = append(cases, xs)
	}
	for i, xs := range cases {
		batch, stream := Summarize(xs), streamOf(xs)
		if batch.N != stream.N {
			t.Fatalf("case %d: N %d != %d", i, stream.N, batch.N)
		}
		for _, f := range []struct {
			name string
			b, s float64
		}{{"Mean", batch.Mean, stream.Mean}, {"Min", batch.Min, stream.Min}, {"Max", batch.Max, stream.Max}} {
			if math.Float64bits(f.b) != math.Float64bits(f.s) {
				t.Errorf("case %d: %s stream %v != batch %v (not byte-identical)", i, f.name, f.s, f.b)
			}
		}
	}
}

// TestStreamStdAdversarial pins Welford Std within 1 ULP of the two-pass
// batch estimator on the adversarial inputs of the determinism satellite:
// constant samples, alternating-sign cancellation, and 1e±300 magnitudes
// where the naive sum-of-squares overflows or underflows.
func TestStreamStdAdversarial(t *testing.T) {
	rep := func(x float64, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = x
		}
		return xs
	}
	alt := func(x float64, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			if i%2 == 1 {
				xs[i] = -x
			} else {
				xs[i] = x
			}
		}
		return xs
	}
	cases := []struct {
		name string
		xs   []float64
	}{
		{"constant-3.5", rep(3.5, 8)},
		{"constant-neg-2.25", rep(-2.25, 5)},
		{"constant-1e300", rep(1e300, 6)},
		{"constant-1e-300", rep(1e-300, 6)},
		{"alternating-1", alt(1, 2)},
		{"alternating-1-n12", alt(1, 12)},
		{"alternating-0.5", alt(0.5, 16)},
		{"alternating-1e300", alt(1e300, 8)},
		{"alternating-1e-300", alt(1e-300, 8)},
		{"mixed-magnitudes", []float64{1e300, -1e300, 1e-300, -1e-300, 0, 1e300}},
	}
	for _, tc := range cases {
		batch, stream := Summarize(tc.xs), streamOf(tc.xs)
		if d := ulpDiff(batch.Std, stream.Std); d > 1 {
			t.Errorf("%s: Std stream %v vs batch %v differ by %d ULPs", tc.name, stream.Std, batch.Std, d)
		}
		if math.Float64bits(batch.Mean) != math.Float64bits(stream.Mean) {
			t.Errorf("%s: Mean stream %v != batch %v", tc.name, stream.Mean, batch.Mean)
		}
	}
}

// TestStreamStdRandomClose sanity-checks Welford against two-pass on
// well-conditioned random data: a loose relative bound, since the two
// algorithms only agree exactly in infinite precision.
func TestStreamStdRandomClose(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 30; trial++ {
		xs := make([]float64, 2+rng.IntN(500))
		for i := range xs {
			xs[i] = 100 + rng.Float64()
		}
		batch, stream := Summarize(xs), streamOf(xs)
		if batch.Std == 0 {
			continue
		}
		if rel := math.Abs(batch.Std-stream.Std) / batch.Std; rel > 1e-10 {
			t.Errorf("trial %d: Std relative difference %g (stream %v batch %v)", trial, rel, stream.Std, batch.Std)
		}
	}
}
