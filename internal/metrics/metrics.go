// Package metrics provides the statistical plumbing for the experiment
// harness: summary statistics with confidence intervals, binomial
// proportions (capture ratio), and aligned-table / CSV rendering of
// results in the shape the paper reports them.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Summary holds the usual moments of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes sample statistics (std uses the n-1 estimator).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Stream is a bounded-memory streaming accumulator producing the same
// Summary as Summarize without retaining the sample. The mean is kept as a
// plain running sum divided at the end — the identical operations in the
// identical order as Summarize, so Mean (along with N, Min and Max) is
// byte-for-byte equal to the batch result for the same values in the same
// order. Only Std differs in representation: it comes from Welford's
// single-pass M2 recurrence instead of the two-pass corrected sum, which
// agrees with the batch estimator to within a ULP on the adversarial
// inputs pinned in stream_test.go. Row-level campaign output never
// renders Std, so a campaign can stream per-repeat metrics through this
// and stay byte-identical to the batch engine while holding O(1) state
// per series instead of one float per repeat.
type Stream struct {
	n        int
	sum      float64
	min, max float64
	mean, m2 float64 // Welford state, used only for Std
}

// Add folds one observation into the accumulator.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations folded in so far.
func (s *Stream) N() int { return s.n }

// Summary finalises the accumulated statistics.
func (s *Stream) Summary() Summary {
	out := Summary{N: s.n}
	if s.n == 0 {
		return out
	}
	out.Min, out.Max = s.min, s.max
	out.Mean = s.sum / float64(s.n)
	if s.n > 1 {
		out.Std = math.Sqrt(s.m2 / float64(s.n-1))
	}
	return out
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// Proportion is a binomial estimate: successes out of trials.
type Proportion struct {
	Successes int
	Trials    int
}

// Value returns the point estimate in [0, 1], or NaN with no trials.
func (p Proportion) Value() float64 {
	if p.Trials == 0 {
		return math.NaN()
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Percent returns the point estimate in percent.
func (p Proportion) Percent() float64 { return p.Value() * 100 }

// CI95 returns the half-width of the Wald 95% interval (in proportion
// units), adequate at the repetition counts the harness uses.
func (p Proportion) CI95() float64 {
	if p.Trials == 0 {
		return 0
	}
	v := p.Value()
	return 1.96 * math.Sqrt(v*(1-v)/float64(p.Trials))
}

// String renders "12.0% (12/100)".
func (p Proportion) String() string {
	return fmt.Sprintf("%.1f%% (%d/%d)", p.Percent(), p.Successes, p.Trials)
}

// Table accumulates rows and renders them column-aligned or as CSV.
type Table struct {
	headers  []string
	rows     [][]string
	arityErr error
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends one row; missing cells render empty. Extra cells are an
// error surfaced at render time to keep call sites simple: String appends
// the error as a trailing line and WriteCSV returns it instead of
// silently truncating the row.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) && t.arityErr == nil {
		t.arityErr = fmt.Errorf("metrics: row %d has %d cells, table has %d columns", len(t.rows), len(cells), len(t.headers))
	}
	t.rows = append(t.rows, cells)
}

// Err returns the first row-arity violation, if any.
func (t *Table) Err() error { return t.arityErr }

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	if t.arityErr != nil {
		fmt.Fprintf(&b, "error: %v\n", t.arityErr)
	}
	return b.String()
}

// WriteCSV emits the table as CSV. A row with more cells than the table
// has columns fails the whole render rather than truncating data.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.arityErr != nil {
		return t.arityErr
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	for _, row := range t.rows {
		padded := make([]string, len(t.headers))
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return fmt.Errorf("metrics: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
