package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample std of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
	if s.CI95() <= 0 {
		t.Error("CI95 not positive")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.Std != 0 || one.CI95() != 0 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestSummarizeQuickBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip pathological magnitudes whose sum overflows float64;
			// experiment metrics live far below this.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{Successes: 12, Trials: 100}
	if p.Value() != 0.12 {
		t.Errorf("Value = %v", p.Value())
	}
	if p.Percent() != 12 {
		t.Errorf("Percent = %v", p.Percent())
	}
	if p.CI95() <= 0 || p.CI95() > 0.1 {
		t.Errorf("CI95 = %v", p.CI95())
	}
	if got := p.String(); got != "12.0% (12/100)" {
		t.Errorf("String = %q", got)
	}
	empty := Proportion{}
	if !math.IsNaN(empty.Value()) {
		t.Error("empty proportion should be NaN")
	}
	if empty.CI95() != 0 {
		t.Error("empty proportion CI should be 0")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("x", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+sep+2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	// All lines padded to the same visible width per column: the value
	// column must start at the same offset in every row.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[3][idx:], "22") {
		t.Errorf("misaligned row: %q", lines[3])
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("only")
	if !strings.Contains(tb.String(), "only") {
		t.Error("short row dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("size", "ratio")
	tb.AddRow("11", "25.0")
	tb.AddRow("15", "20.0")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	want := "size,ratio\n11,25.0\n15,20.0\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddRow("a,b", "with \"quotes\"")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(b.String(), `"a,b"`) {
		t.Errorf("comma cell not quoted: %q", b.String())
	}
}

func TestTableExtraCellsSurfaceAtRenderTime(t *testing.T) {
	// Regression: String used to silently drop extra cells and WriteCSV
	// silently truncated them; the documented contract is an error
	// surfaced at render time.
	tbl := NewTable("a", "b")
	tbl.AddRow("1", "2")
	tbl.AddRow("3", "4", "5") // one cell too many
	if tbl.Err() == nil {
		t.Fatal("Err() = nil after an over-wide row")
	}
	if s := tbl.String(); !strings.Contains(s, "error:") || !strings.Contains(s, "3 cells") {
		t.Errorf("String() does not surface the arity error:\n%s", s)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err == nil {
		t.Error("WriteCSV silently accepted an over-wide row")
	}
	if buf.Len() != 0 {
		t.Errorf("WriteCSV emitted %d bytes despite the error", buf.Len())
	}
	// Valid tables are unaffected: no error line, CSV round-trips.
	ok := NewTable("a", "b")
	ok.AddRow("1") // missing cells stay fine
	ok.AddRow("2", "3")
	if ok.Err() != nil {
		t.Errorf("Err() = %v for a valid table", ok.Err())
	}
	if s := ok.String(); strings.Contains(s, "error:") {
		t.Errorf("valid table renders an error line:\n%s", s)
	}
	buf.Reset()
	if err := ok.WriteCSV(&buf); err != nil {
		t.Errorf("WriteCSV: %v", err)
	}
}
