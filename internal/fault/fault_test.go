package fault

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"slpdas/internal/topo"
)

func testEnv(t *testing.T, side int) Env {
	t.Helper()
	g, err := topo.DefaultGrid(side)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return Env{
		Graph:     g,
		Sink:      topo.GridIndex(side, side/2, side/2),
		Source:    0,
		DataStart: 10 * time.Second,
		Period:    time.Second,
		Horizon:   40 * time.Second,
	}
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
		kind      Kind
	}{
		{"none", "none", None},
		{"", "none", None},
		{"crash:0.2", "crash:0.2", Crash},
		{"  crash:0.2  ", "crash:0.2", Crash},
		{"churn:0.1:3", "churn:0.1:3", Churn},
		{"churn:0.25:1.5", "churn:0.25:1.5", Churn},
		{"link:0.05", "link:0.05", Link},
		{"blackout:2@5", "blackout:2@5", Blackout},
		{"blackout:1.5@0", "blackout:1.5@0", Blackout},
	}
	for _, c := range cases {
		spec, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if spec.Kind != c.kind {
			t.Errorf("Parse(%q).Kind = %d, want %d", c.in, spec.Kind, c.kind)
		}
		if got := spec.String(); got != c.canonical {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.canonical)
		}
		again, err := Parse(spec.String())
		if err != nil || again != spec {
			t.Errorf("Parse∘String not identity for %q: %+v vs %+v (%v)", c.in, again, spec, err)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"crash", "crash:", "crash:x", "crash:0", "crash:1.5", "crash:-0.1",
		"churn:0.2", "churn:0.2:", "churn:0.2:0", "churn:0.2:-1", "churn:x:1",
		"link:2", "link:",
		"blackout:2", "blackout:@5", "blackout:2@", "blackout:0@5", "blackout:2@-1",
		"meteor:0.5", "crash:0.2:extra:parts",
	} {
		if spec, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted as %+v, want error", in, spec)
		}
	}
}

func TestPlanPureFunctionOfSeed(t *testing.T) {
	env := testEnv(t, 7)
	spec := Spec{Kind: Churn, Rate: 0.3, MTTR: 2}
	a, err := New(spec, env, 42)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := New(spec, env, 42)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same (spec, env, seed) produced different plans")
	}
	c, err := New(spec, env, 43)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans (suspicious for rate 0.3 on 49 nodes)")
	}
}

func TestEmptySpecMintsNothing(t *testing.T) {
	env := testEnv(t, 5)
	p, err := New(Spec{}, env, 7)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !p.Empty() {
		t.Errorf("empty spec produced %d events", len(p.Events))
	}
}

func TestPlanEventsOrderedAndInWindow(t *testing.T) {
	env := testEnv(t, 9)
	for _, spec := range []Spec{
		{Kind: Crash, Rate: 0.5},
		{Kind: Churn, Rate: 0.5, MTTR: 3},
		{Kind: Link, Rate: 0.3},
		{Kind: Blackout, Radius: 2, Period: 4},
	} {
		p, err := New(spec, env, 11)
		if err != nil {
			t.Fatalf("New(%v): %v", spec, err)
		}
		if p.Empty() {
			t.Fatalf("New(%v): empty plan at these rates is wildly improbable", spec)
		}
		for i, ev := range p.Events {
			if ev.At < env.DataStart || ev.At > env.Horizon {
				t.Errorf("%v event %d at %v outside [%v, %v]", spec, i, ev.At, env.DataStart, env.Horizon)
			}
			if i > 0 && ev.At < p.Events[i-1].At {
				t.Errorf("%v events out of order at %d", spec, i)
			}
		}
		if err := p.Validate(env); err != nil {
			t.Errorf("freshly minted plan fails Validate: %v", err)
		}
	}
}

func TestCrashSparesSinkAndSource(t *testing.T) {
	env := testEnv(t, 5)
	p, err := New(Spec{Kind: Crash, Rate: 1}, env, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if want := env.Graph.Len() - 2; len(p.Events) != want {
		t.Errorf("rate-1 crash produced %d events, want %d (all but sink and source)", len(p.Events), want)
	}
	for _, ev := range p.Events {
		if ev.Node == env.Sink || ev.Node == env.Source {
			t.Errorf("crash plan kills %d (sink=%d source=%d)", ev.Node, env.Sink, env.Source)
		}
	}
}

func TestChurnRecoveryOffsetAndHorizonDrop(t *testing.T) {
	env := testEnv(t, 7)
	mttr := 2.5
	p, err := New(Spec{Kind: Churn, Rate: 1, MTTR: mttr}, env, 9)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	offset := time.Duration(mttr * float64(env.Period))
	crashAt := make(map[topo.NodeID]time.Duration)
	recovered := make(map[topo.NodeID]bool)
	for _, ev := range p.Events {
		switch ev.Op {
		case OpCrash:
			crashAt[ev.Node] = ev.At
		case OpRecover:
			recovered[ev.Node] = true
			want := crashAt[ev.Node] + offset
			if ev.At != want {
				t.Errorf("node %d recovers at %v, want crash+MTTR = %v", ev.Node, ev.At, want)
			}
			if ev.At > env.Horizon {
				t.Errorf("node %d recovery at %v past horizon %v not dropped", ev.Node, ev.At, env.Horizon)
			}
		}
	}
	for id, at := range crashAt {
		beyond := at+offset > env.Horizon
		if beyond == recovered[id] {
			t.Errorf("node %d crash at %v: recovery kept=%v, horizon=%v offset=%v", id, at, recovered[id], env.Horizon, offset)
		}
	}
}

func TestBlackoutRadiusAndTiming(t *testing.T) {
	env := testEnv(t, 9)
	spec := Spec{Kind: Blackout, Radius: 1.5, Period: 3}
	p, err := New(spec, env, 5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wantAt := env.DataStart + 3*env.Period
	if p.Empty() {
		t.Fatal("blackout always kills at least the centre node")
	}
	for _, ev := range p.Events {
		if ev.Op != OpCrash || ev.At != wantAt {
			t.Errorf("blackout event %+v, want crash at %v", ev, wantAt)
		}
	}
	// The dead set must be a disc: every victim within radius of some
	// common centre. Recover the centre as a position all victims share.
	radius := spec.Radius*env.Graph.RadioRange() + 1e-9
	found := false
	for id := topo.NodeID(0); int(id) < env.Graph.Len(); id++ {
		c := env.Graph.Position(id)
		ok := true
		for _, ev := range p.Events {
			if env.Graph.Position(ev.Node).DistanceTo(c) > radius {
				ok = false
				break
			}
		}
		if ok {
			found = true
			break
		}
	}
	if !found {
		t.Error("blackout victims are not contained in any node-centred disc of the spec radius")
	}
}

func TestBlackoutPastHorizonRejected(t *testing.T) {
	env := testEnv(t, 5)
	_, err := New(Spec{Kind: Blackout, Radius: 1, Period: 1000}, env, 1)
	if err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Errorf("blackout past horizon: err = %v, want horizon error", err)
	}
}

func TestLinkEventsNameRealEdges(t *testing.T) {
	env := testEnv(t, 7)
	p, err := New(Spec{Kind: Link, Rate: 0.5}, env, 21)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, ev := range p.Events {
		if ev.Op != OpLinkDown {
			t.Fatalf("link plan contains %v", ev.Op)
		}
		if ev.Node >= ev.Peer {
			t.Errorf("link event endpoints not canonical: %d–%d", ev.Node, ev.Peer)
		}
		adjacent := false
		for _, nb := range env.Graph.Neighbors(ev.Node) {
			if nb == ev.Peer {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Errorf("link event %d–%d is not an edge of the topology", ev.Node, ev.Peer)
		}
	}
}

func TestValidateCatchesForeignPlan(t *testing.T) {
	env := testEnv(t, 5)
	p := &Plan{Events: []Event{{At: 12 * time.Second, Op: OpCrash, Node: 999}}}
	if err := p.Validate(env); err == nil {
		t.Error("Validate accepted a crash of a nonexistent node")
	}
	p = &Plan{Events: []Event{{At: env.Horizon + time.Second, Op: OpCrash, Node: 1}}}
	if err := p.Validate(env); err == nil {
		t.Error("Validate accepted an event past the horizon")
	}
}
