// Package fault is the deterministic fault-injection subsystem: it turns a
// compact fault specification (a campaign axis like "churn:0.2:3") into a
// concrete, fully-ordered plan of timed events — node crashes, crashes
// with recovery, persistent link failures, region blackouts — as a pure
// function of (spec, environment, seed).
//
// Determinism contract: a Plan is minted from a dedicated named xrand
// stream (label "fault"), and that stream is only created when the spec is
// non-empty. The default "none" axis therefore draws nothing, perturbs no
// other consumer of the run seed, and leaves every existing golden
// byte-identical; a non-empty axis yields the same plan for the same
// (spec, env, seed) regardless of worker count, sharding or resume.
package fault

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"

	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// Kind enumerates the fault families a Spec can select.
type Kind uint8

const (
	// None injects nothing; the zero Spec.
	None Kind = iota
	// Crash fails each eligible node with probability Rate at a random
	// time in the data phase, permanently.
	Crash
	// Churn is Crash plus recovery: each crashed node rejoins after a
	// deterministic MTTR measured in data periods, forcing GCN
	// re-convergence and slot re-acquisition.
	Churn
	// Link permanently fails each link with probability Rate at a random
	// time in the data phase.
	Link
	// Blackout crashes every node within Radius radio ranges of a
	// uniformly chosen node at the start of data period Period.
	Blackout
)

// Spec is a parsed fault axis. The zero value means "no faults". Crash and
// Churn spare the sink and the source (their loss is a different
// experiment: see Blackout, which spares nobody).
type Spec struct {
	Kind   Kind
	Rate   float64 // Crash, Churn, Link: per-node / per-link failure probability
	MTTR   float64 // Churn: time to repair, in data periods
	Radius float64 // Blackout: radius, in multiples of the radio range
	Period int     // Blackout: data period index at which the region dies
}

// Empty reports whether the spec injects no faults.
func (s Spec) Empty() bool { return s.Kind == None }

// Validate checks the spec's parameters.
func (s Spec) Validate() error {
	switch s.Kind {
	case None:
		return nil
	case Crash, Link:
		if s.Rate <= 0 || s.Rate > 1 {
			return fmt.Errorf("fault: rate %g out of (0,1]", s.Rate)
		}
	case Churn:
		if s.Rate <= 0 || s.Rate > 1 {
			return fmt.Errorf("fault: rate %g out of (0,1]", s.Rate)
		}
		if s.MTTR <= 0 {
			return fmt.Errorf("fault: churn MTTR %g must be positive", s.MTTR)
		}
	case Blackout:
		if s.Radius <= 0 {
			return fmt.Errorf("fault: blackout radius %g must be positive", s.Radius)
		}
		if s.Period < 0 {
			return fmt.Errorf("fault: blackout period %d must be non-negative", s.Period)
		}
	default:
		return fmt.Errorf("fault: unknown kind %d", s.Kind)
	}
	return nil
}

// String renders the canonical axis form Parse accepts; Parse∘String is
// the identity on valid specs, so campaign cells can store the canonical
// string and resume verification can compare it.
func (s Spec) String() string {
	switch s.Kind {
	case Crash:
		return "crash:" + formatFloat(s.Rate)
	case Churn:
		return "churn:" + formatFloat(s.Rate) + ":" + formatFloat(s.MTTR)
	case Link:
		return "link:" + formatFloat(s.Rate)
	case Blackout:
		return "blackout:" + formatFloat(s.Radius) + "@" + strconv.Itoa(s.Period)
	default:
		return "none"
	}
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Parse reads one fault axis value:
//
//	none                no faults (also the empty string)
//	crash:<rate>        permanent crashes, per-node probability <rate>
//	churn:<rate>:<mttr> crashes that recover after <mttr> data periods
//	link:<rate>         permanent link failures, per-link probability <rate>
//	blackout:<r>@<p>    region death: radius <r> radio ranges, at period <p>
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return Spec{}, nil
	}
	name, rest, _ := strings.Cut(s, ":")
	var spec Spec
	switch name {
	case "crash", "link":
		rate, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad %s rate %q: %v", name, rest, err)
		}
		spec = Spec{Kind: Crash, Rate: rate}
		if name == "link" {
			spec.Kind = Link
		}
	case "churn":
		rateStr, mttrStr, ok := strings.Cut(rest, ":")
		if !ok {
			return Spec{}, fmt.Errorf("fault: churn wants churn:<rate>:<mttr>, got %q", s)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad churn rate %q: %v", rateStr, err)
		}
		mttr, err := strconv.ParseFloat(mttrStr, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad churn MTTR %q: %v", mttrStr, err)
		}
		spec = Spec{Kind: Churn, Rate: rate, MTTR: mttr}
	case "blackout":
		radStr, perStr, ok := strings.Cut(rest, "@")
		if !ok {
			return Spec{}, fmt.Errorf("fault: blackout wants blackout:<radius>@<period>, got %q", s)
		}
		radius, err := strconv.ParseFloat(radStr, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad blackout radius %q: %v", radStr, err)
		}
		period, err := strconv.Atoi(perStr)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad blackout period %q: %v", perStr, err)
		}
		spec = Spec{Kind: Blackout, Radius: radius, Period: period}
	default:
		return Spec{}, fmt.Errorf("fault: unknown fault kind %q (want none, crash:<rate>, churn:<rate>:<mttr>, link:<rate> or blackout:<r>@<p>)", name)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Op is the action one Event performs.
type Op uint8

const (
	// OpCrash fails a node: radio silent, computation stopped.
	OpCrash Op = iota + 1
	// OpRecover rejoins a previously crashed node with blank state.
	OpRecover
	// OpLinkDown permanently fails the undirected link Node–Peer.
	OpLinkDown
)

// String names the op for error messages and test output.
func (o Op) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpRecover:
		return "recover"
	case OpLinkDown:
		return "link-down"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one timed fault action.
type Event struct {
	At   time.Duration
	Op   Op
	Node topo.NodeID // crash/recover target; link endpoint A
	Peer topo.NodeID // link endpoint B (OpLinkDown only)
}

// Plan is a fully-ordered fault schedule: events sorted by
// (At, Op, Node, Peer), ready for the simulator.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Env describes the run the plan is minted for: the topology and the data
// phase's timing. Horizon is the instant the run ends; no event may land
// after it.
type Env struct {
	Graph     *topo.Graph
	Sink      topo.NodeID
	Source    topo.NodeID
	DataStart time.Duration // start of the data phase (faults strike during data)
	Period    time.Duration // one TDMA data period
	Horizon   time.Duration // end of the run; no event lands after this
}

// New expands spec into a Plan for env, drawing every random choice from
// the dedicated "fault" stream of seed. It is a pure function of its
// arguments. An empty spec returns a nil plan without minting the stream.
// Churn recoveries that would land after the horizon are dropped — the
// node stays dead, exactly as a permanent crash. A blackout whose period
// starts after the horizon is an error: the spec names a time the run
// never reaches.
func New(spec Spec, env Env, seed uint64) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Empty() {
		return nil, nil
	}
	if env.DataStart >= env.Horizon {
		return nil, fmt.Errorf("fault: data window [%v, %v) is empty", env.DataStart, env.Horizon)
	}
	rng := xrand.NewNamed(seed, "fault")
	window := int64(env.Horizon - env.DataStart)
	g := env.Graph
	var events []Event

	switch spec.Kind {
	case Crash, Churn:
		for id := topo.NodeID(0); int(id) < g.Len(); id++ {
			if id == env.Sink || id == env.Source {
				continue
			}
			if rng.Float64() >= spec.Rate {
				continue
			}
			at := env.DataStart + time.Duration(rng.Int64N(window))
			events = append(events, Event{At: at, Op: OpCrash, Node: id})
			if spec.Kind == Churn {
				recoverAt := at + time.Duration(spec.MTTR*float64(env.Period))
				if recoverAt <= env.Horizon {
					events = append(events, Event{At: recoverAt, Op: OpRecover, Node: id})
				}
			}
		}
	case Link:
		for a := topo.NodeID(0); int(a) < g.Len(); a++ {
			for _, b := range g.Neighbors(a) {
				if b <= a { // each undirected link drawn once, in canonical order
					continue
				}
				if rng.Float64() >= spec.Rate {
					continue
				}
				at := env.DataStart + time.Duration(rng.Int64N(window))
				events = append(events, Event{At: at, Op: OpLinkDown, Node: a, Peer: b})
			}
		}
	case Blackout:
		at := env.DataStart + time.Duration(spec.Period)*env.Period
		if at > env.Horizon {
			return nil, fmt.Errorf("fault: blackout at period %d (t=%v) is after the run horizon %v", spec.Period, at, env.Horizon)
		}
		centre := g.Position(topo.NodeID(rng.Int64N(int64(g.Len()))))
		radius := spec.Radius * g.RadioRange()
		for id := topo.NodeID(0); int(id) < g.Len(); id++ {
			if g.Position(id).DistanceTo(centre) <= radius {
				events = append(events, Event{At: at, Op: OpCrash, Node: id})
			}
		}
	}

	slices.SortStableFunc(events, func(a, b Event) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		if a.Op != b.Op {
			return int(a.Op) - int(b.Op)
		}
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		return int(a.Peer) - int(b.Peer)
	})
	if len(events) == 0 {
		return nil, nil
	}
	return &Plan{Events: events}, nil
}

// Validate checks every event in the plan against the environment: node
// ids must exist in the topology, link endpoints must be neighbours, and
// no event may land after the horizon. Plans minted by New are valid by
// construction; this guards hand-built plans and re-used environments.
func (p *Plan) Validate(env Env) error {
	if p == nil {
		return nil
	}
	g := env.Graph
	for _, ev := range p.Events {
		if !g.Valid(ev.Node) {
			return fmt.Errorf("fault: %s event names node %d, but the topology has %d nodes", ev.Op, ev.Node, g.Len())
		}
		if ev.Op == OpLinkDown && !g.Valid(ev.Peer) {
			return fmt.Errorf("fault: link-down event names node %d, but the topology has %d nodes", ev.Peer, g.Len())
		}
		if ev.At > env.Horizon {
			return fmt.Errorf("fault: %s event at %v is after the run horizon %v", ev.Op, ev.At, env.Horizon)
		}
	}
	return nil
}

// Window returns the first and last event times of the plan. A nil or
// empty plan returns (0, 0).
func (p *Plan) Window() (first, last time.Duration) {
	if p.Empty() {
		return 0, 0
	}
	return p.Events[0].At, p.Events[len(p.Events)-1].At
}
