package verify

import (
	"testing"

	"slpdas/internal/schedule"
	"slpdas/internal/topo"
)

// gradientLine builds the line 0-1-2-3-4 with sink 4 and slots strictly
// increasing towards the sink: the protectionless gradient an eavesdropper
// follows straight to node 0.
func gradientLine(t *testing.T) (*topo.Graph, *schedule.Assignment) {
	t.Helper()
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	a := schedule.New(g.Len(), 4)
	a.Set(0, 1)
	a.Set(1, 2)
	a.Set(2, 3)
	a.Set(3, 4)
	a.Set(4, 100) // sink slot Δ
	return g, a
}

// decoyLine builds the same line but with a slot trap: node 2 is a local
// minimum, so a first-heard attacker walks 4→3→2 and is absorbed there.
func decoyLine(t *testing.T) (*topo.Graph, *schedule.Assignment) {
	t.Helper()
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	a := schedule.New(g.Len(), 4)
	a.Set(0, 3)
	a.Set(1, 4)
	a.Set(2, 1) // decoy local minimum
	a.Set(3, 2)
	a.Set(4, 100)
	return g, a
}

func TestGradientLineCaptured(t *testing.T) {
	g, a := gradientLine(t)
	res, err := VerifySchedule(g, a, Params{R: 1, M: 1, Start: 4}, FirstHeardD, 10, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	if res.SLPAware {
		t.Fatal("gradient schedule verified SLP-aware; want capture")
	}
	if res.CapturePeriod != 4 {
		t.Errorf("CapturePeriod = %d, want 4", res.CapturePeriod)
	}
	want := []topo.NodeID{4, 3, 2, 1, 0}
	if len(res.Counterexample) != len(want) {
		t.Fatalf("counterexample = %v, want %v", res.Counterexample, want)
	}
	for i := range want {
		if res.Counterexample[i] != want[i] {
			t.Fatalf("counterexample = %v, want %v", res.Counterexample, want)
		}
	}
}

func TestCounterexampleReplays(t *testing.T) {
	g, a := gradientLine(t)
	res, err := VerifySchedule(g, a, Params{R: 1, M: 1, Start: 4}, FirstHeardD, 10, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	pc := res.Counterexample
	if pc[0] != 4 || pc[len(pc)-1] != 0 {
		t.Fatalf("counterexample endpoints: %v", pc)
	}
	for i := 0; i+1 < len(pc); i++ {
		if !g.HasEdge(pc[i], pc[i+1]) {
			t.Errorf("counterexample step %d→%d is not an edge", pc[i], pc[i+1])
		}
	}
}

func TestSafetyPeriodBoundary(t *testing.T) {
	g, a := gradientLine(t)
	p := Params{R: 1, M: 1, Start: 4}
	// Capture takes exactly 4 periods: δ = 4 captures, δ = 3 does not.
	res4, err := VerifySchedule(g, a, p, FirstHeardD, 4, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule δ=4: %v", err)
	}
	if res4.SLPAware {
		t.Error("δ=4: want capture at the boundary (period ≤ δ)")
	}
	res3, err := VerifySchedule(g, a, p, FirstHeardD, 3, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule δ=3: %v", err)
	}
	if !res3.SLPAware {
		t.Error("δ=3: want SLP-aware (capture needs 4 periods)")
	}
}

func TestDecoyAbsorbsFirstHeardAttacker(t *testing.T) {
	g, a := decoyLine(t)
	res, err := VerifySchedule(g, a, Params{R: 1, M: 1, Start: 4}, FirstHeardD, 100, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	if !res.SLPAware {
		t.Errorf("decoy schedule captured via %v", res.Counterexample)
	}
}

func TestStrongerAttackerBreaksDecoyOnlyWithEnoughR(t *testing.T) {
	g, a := decoyLine(t)
	// R=2: node 1 (slot 4) is never among the two lowest audible slots at
	// node 2 ({2:1, 3:2}), so even the nondeterministic attacker is safe.
	res2, err := VerifySchedule(g, a, Params{R: 2, M: 2, Start: 4}, AnyHeardD, 100, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule R=2: %v", err)
	}
	if !res2.SLPAware {
		t.Errorf("R=2 attacker captured via %v", res2.Counterexample)
	}
	// R=3 with two moves per period: node 1 becomes audible-and-eligible
	// (uphill move 2→1 within the period), then 1→0 captures.
	res3, err := VerifySchedule(g, a, Params{R: 3, M: 2, Start: 4}, AnyHeardD, 100, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule R=3: %v", err)
	}
	if res3.SLPAware {
		t.Error("R=3, M=2 attacker should capture through the decoy")
	}
	// With M=1 under strict Algorithm 1 semantics the uphill escape is
	// discarded (move budget spent), so the decoy holds even at R=3.
	res3m1, err := VerifySchedule(g, a, Params{R: 3, M: 1, Start: 4}, AnyHeardD, 100, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule R=3 M=1: %v", err)
	}
	if !res3m1.SLPAware {
		t.Error("R=3, M=1 attacker should stay trapped under strict semantics")
	}
}

func TestAudibleClosedNeighbourhood(t *testing.T) {
	g, a := decoyLine(t)
	cands := Audible(g, a, 2, 10)
	// Node 2 hears itself (slot 1), node 1 (slot 4) and node 3 (slot 2).
	if len(cands) != 3 {
		t.Fatalf("candidates = %v, want 3", cands)
	}
	if cands[0].Node != 2 || cands[1].Node != 3 || cands[2].Node != 1 {
		t.Errorf("candidates order = %v, want [2 3 1] by slot", cands)
	}
	// The sink never transmits: from node 3, node 4 must not be audible.
	for _, c := range Audible(g, a, 3, 10) {
		if c.Node == 4 {
			t.Error("sink appeared in the audible set")
		}
	}
	// R truncation.
	if got := Audible(g, a, 2, 1); len(got) != 1 || got[0].Node != 2 {
		t.Errorf("R=1 audible = %v, want [node 2]", got)
	}
}

func TestMovesWithinPeriodRequireLaterSlots(t *testing.T) {
	// Line with slots 0:1 1:2 2:3 3:4, sink 4. An M=2 attacker moving
	// 4→3→... : 3→2 goes to an earlier slot (already passed), so the
	// second hop must wait for the next period even with M=2. Total
	// capture: period 1 (4→3), then periods 2,3,4.
	g, a := gradientLine(t)
	res, err := VerifySchedule(g, a, Params{R: 1, M: 2, Start: 4}, AnyHeardD, 10, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	if res.SLPAware {
		t.Fatal("want capture")
	}
	if res.CapturePeriod != 4 {
		t.Errorf("CapturePeriod = %d, want 4 (downhill moves cannot chain in one period)", res.CapturePeriod)
	}
}

func TestUphillMovesChainWithinPeriod(t *testing.T) {
	// Slots increase away from the start: an M=2 attacker can take two
	// uphill hops inside one period (period 0 — Algorithm 1 only advances
	// the counter on earlier-slot moves). Line 0-1-2-3-4, start at 0
	// (slot 1), hunting node 2; R=3 so the slot-3 target is audible.
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	a := schedule.New(g.Len(), 4)
	a.Set(0, 1)
	a.Set(1, 2)
	a.Set(2, 3)
	a.Set(3, 4)
	a.Set(4, 100)
	res, err := VerifySchedule(g, a, Params{R: 3, M: 2, Start: 0}, AnyHeardD, 1, 2, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	if res.SLPAware {
		t.Fatal("want capture within one period via two uphill moves")
	}
	if res.CapturePeriod != 0 {
		t.Errorf("CapturePeriod = %d, want 0 (uphill moves stay in the opening period)", res.CapturePeriod)
	}
	// With M=1 the second uphill hop is discarded under strict semantics.
	res1, err := VerifySchedule(g, a, Params{R: 3, M: 1, Start: 0}, AnyHeardD, 1, 2, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule M=1: %v", err)
	}
	if !res1.SLPAware {
		t.Error("M=1 attacker chained two uphill moves; want trace discarded")
	}
}

func TestAllowWaitExploresDeferredMoves(t *testing.T) {
	// Same uphill hunt with M=1: Algorithm 1 as printed discards the
	// second uphill move (budget spent); AllowWait lets the attacker take
	// it next period.
	g, err := topo.Line(5, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	a := schedule.New(g.Len(), 4)
	a.Set(0, 1)
	a.Set(1, 2)
	a.Set(2, 3)
	a.Set(3, 4)
	a.Set(4, 100)
	strict, err := VerifySchedule(g, a, Params{R: 3, M: 1, Start: 0}, AnyHeardD, 5, 2, Options{})
	if err != nil {
		t.Fatalf("strict: %v", err)
	}
	if !strict.SLPAware {
		t.Error("strict semantics: uphill chain with M=1 should not capture")
	}
	wait, err := VerifySchedule(g, a, Params{R: 3, M: 1, Start: 0}, AnyHeardD, 5, 2, Options{AllowWait: true})
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if wait.SLPAware {
		t.Error("AllowWait semantics: deferred uphill move should capture")
	}
	if wait.CapturePeriod != 1 {
		t.Errorf("AllowWait CapturePeriod = %d, want 1", wait.CapturePeriod)
	}
}

func TestUnvisitedDWithHistory(t *testing.T) {
	g, a := gradientLine(t)
	res, err := VerifySchedule(g, a, Params{R: 2, M: 1, H: 1, Start: 4}, UnvisitedD, 10, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	if res.SLPAware {
		t.Error("history-assisted attacker should still capture the gradient line")
	}
}

func TestMinCapturePeriod(t *testing.T) {
	g, a := gradientLine(t)
	p := Params{R: 1, M: 1, Start: 4}
	cap4, ok, err := MinCapturePeriod(g, a, p, FirstHeardD, 0, 100, Options{})
	if err != nil {
		t.Fatalf("MinCapturePeriod: %v", err)
	}
	if !ok || cap4 != 4 {
		t.Errorf("MinCapturePeriod = %d,%v, want 4,true", cap4, ok)
	}
	gd, ad := decoyLine(t)
	_, ok, err = MinCapturePeriod(gd, ad, p, FirstHeardD, 0, 100, Options{})
	if err != nil {
		t.Fatalf("MinCapturePeriod decoy: %v", err)
	}
	if ok {
		t.Error("decoy line captured; want never")
	}
}

func TestIsSLPAwareDAS(t *testing.T) {
	// Definition 5 condition 1: a schedule that is not a weak DAS must be
	// rejected regardless of its privacy.
	gl, base := gradientLine(t)
	_, decoy := decoyLine(t)
	p := Params{R: 1, M: 1, Start: 4}
	aware, err := IsSLPAwareDAS(gl, decoy, base, p, FirstHeardD, 0, 100, Options{})
	if err != nil {
		t.Fatalf("IsSLPAwareDAS: %v", err)
	}
	if aware {
		t.Error("decoy line is not a weak DAS; Definition 5 must reject it")
	}
	// A schedule is never SLP-aware relative to itself (strict inequality).
	aware, err = IsSLPAwareDAS(gl, base, base, p, FirstHeardD, 0, 100, Options{})
	if err != nil {
		t.Fatalf("IsSLPAwareDAS self: %v", err)
	}
	if aware {
		t.Error("schedule SLP-aware vs itself; want strict improvement required")
	}

	// Positive case on a 3×3 grid (0..8, sink 4, source 0), where a decoy
	// local minimum can coexist with the weak-DAS property because routing
	// and luring can use different neighbours.
	g, err := topo.DefaultGrid(3)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	// Baseline F: gradient pulling the attacker 4→1→0 (capture period 2).
	f := schedule.New(g.Len(), 4)
	for n, s := range map[topo.NodeID]int{0: 10, 1: 20, 2: 30, 3: 21, 5: 40, 6: 31, 7: 41, 8: 39} {
		f.Set(n, s)
	}
	f.Set(4, 100)
	if !schedule.IsWeakDAS(g, f) {
		t.Fatalf("baseline should be weak DAS: %v", schedule.CheckWeakDAS(g, f))
	}
	capF, okF, err := MinCapturePeriod(g, f, Params{R: 1, M: 1, Start: 4}, FirstHeardD, 0, 100, Options{})
	if err != nil {
		t.Fatalf("MinCapturePeriod baseline: %v", err)
	}
	if !okF || capF != 2 {
		t.Fatalf("baseline capture = %d,%v, want 2,true", capF, okF)
	}
	// Fs: decoy at node 8 (via 5), still a weak DAS; the first-heard
	// attacker walks 4→5→8 and is absorbed there.
	fs := schedule.New(g.Len(), 4)
	for n, s := range map[topo.NodeID]int{0: 10, 1: 20, 2: 14, 3: 21, 5: 15, 6: 31, 7: 41, 8: 12} {
		fs.Set(n, s)
	}
	fs.Set(4, 100)
	if !schedule.IsWeakDAS(g, fs) {
		t.Fatalf("Fs should be weak DAS: %v", schedule.CheckWeakDAS(g, fs))
	}
	aware, err = IsSLPAwareDAS(g, fs, f, Params{R: 1, M: 1, Start: 4}, FirstHeardD, 0, 100, Options{})
	if err != nil {
		t.Fatalf("IsSLPAwareDAS grid: %v", err)
	}
	if !aware {
		t.Error("decoy grid schedule not recognised as SLP-aware vs baseline")
	}
}

func TestGreedyGridVerification(t *testing.T) {
	g, err := topo.DefaultGrid(11)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sink := topo.GridCentre(11)
	a, err := schedule.GreedyDAS(g, sink, 100)
	if err != nil {
		t.Fatalf("GreedyDAS: %v", err)
	}
	p := Params{R: 1, M: 1, Start: sink}
	res, err := VerifySchedule(g, a, p, FirstHeardD, 16, topo.GridTopLeft(), Options{})
	if err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	// Whatever the outcome, a returned counterexample must replay and
	// capture no earlier than the hop distance allows.
	if !res.SLPAware {
		if res.CapturePeriod < g.HopDistance(sink, topo.GridTopLeft()) {
			t.Errorf("capture period %d beats hop distance %d", res.CapturePeriod, g.HopDistance(sink, topo.GridTopLeft()))
		}
		for i := 0; i+1 < len(res.Counterexample); i++ {
			if !g.HasEdge(res.Counterexample[i], res.Counterexample[i+1]) {
				t.Fatalf("counterexample step %d not an edge", i)
			}
		}
	}
	if res.StatesExplored == 0 {
		t.Error("no states explored")
	}
}

func TestVerifyErrors(t *testing.T) {
	g, a := gradientLine(t)
	if _, err := VerifySchedule(g, a, Params{R: 0, M: 1, Start: 4}, nil, 10, 0, Options{}); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := VerifySchedule(g, a, Params{R: 1, M: 1, Start: 99}, nil, 10, 0, Options{}); err == nil {
		t.Error("invalid start accepted")
	}
	if _, err := VerifySchedule(g, a, Params{R: 1, M: 1, Start: 4}, nil, -1, 0, Options{}); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := VerifySchedule(g, a, Params{R: 1, M: 1, Start: 4}, AnyHeardD, 10, 0, Options{MaxStates: 2}); err == nil {
		t.Error("state budget not enforced")
	}
}

func TestNilDecisionDefaultsToFirstHeard(t *testing.T) {
	g, a := gradientLine(t)
	res, err := VerifySchedule(g, a, Params{R: 1, M: 1, Start: 4}, nil, 10, 0, Options{})
	if err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	if res.SLPAware {
		t.Error("default decision did not capture the gradient line")
	}
}
