package verify

import (
	"testing"
	"testing/quick"

	"slpdas/internal/schedule"
	"slpdas/internal/topo"
)

// replayTrace checks a counterexample against Algorithm 1's own validity
// rules: every step is an edge, every destination is among the R
// lowest-slot audible transmitters, and the period arithmetic reproduces
// the reported capture period within δ.
func replayTrace(g *topo.Graph, a *schedule.Assignment, p Params, trace []topo.NodeID, delta int) (int, bool) {
	if len(trace) < 2 || trace[0] != p.Start {
		return 0, false
	}
	period, moves := 0, 0
	for i := 0; i+1 < len(trace); i++ {
		cur, next := trace[i], trace[i+1]
		if !g.HasEdge(cur, next) {
			return 0, false
		}
		audible := Audible(g, a, cur, p.R)
		found := false
		for _, c := range audible {
			if c.Node == next {
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
		curAssigned := cur != a.Sink() && a.Assigned(cur)
		switch {
		case !curAssigned || a.Slot(cur) > a.Slot(next):
			period, moves = period+1, 1
		case moves < p.M:
			moves++
		default:
			return 0, false
		}
	}
	return period, period <= delta
}

// TestQuickCounterexamplesReplay: for random geometric graphs with greedy
// reference schedules, every counterexample VerifySchedule returns is a
// genuine attacker trace with the reported capture period.
func TestQuickCounterexamplesReplay(t *testing.T) {
	f := func(seed uint64, rRaw, mRaw uint8) bool {
		g, err := topo.RandomGeometric(25, 35, 35, 12, seed)
		if err != nil {
			return true // no connected layout found; skip
		}
		sink := topo.NodeID(0)
		a, err := schedule.GreedyDAS(g, sink, 300)
		if err != nil {
			return true // slot space insufficient; skip
		}
		// Source: the node farthest from the sink.
		dist := g.BFSFrom(sink)
		source := topo.NodeID(1)
		for n := range dist {
			if dist[n] > dist[source] {
				source = topo.NodeID(n)
			}
		}
		p := Params{R: int(rRaw%3) + 1, M: int(mRaw%2) + 1, Start: sink}
		delta := 3 * dist[source]
		res, err := VerifySchedule(g, a, p, AnyHeardD, delta, source, Options{})
		if err != nil {
			return false
		}
		if res.SLPAware {
			return true
		}
		period, ok := replayTrace(g, a, p, res.Counterexample, delta)
		return ok && period == res.CapturePeriod &&
			res.Counterexample[len(res.Counterexample)-1] == source
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinimalityNeverBeatsHopDistance: no counterexample can capture
// in fewer periods than the attacker can physically walk.
func TestQuickMinimalityNeverBeatsHopDistance(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := topo.RandomGeometric(20, 30, 30, 11, seed)
		if err != nil {
			return true
		}
		sink := topo.NodeID(0)
		a, err := schedule.GreedyDAS(g, sink, 300)
		if err != nil {
			return true
		}
		dist := g.BFSFrom(sink)
		source := topo.NodeID(1)
		for n := range dist {
			if dist[n] > dist[source] {
				source = topo.NodeID(n)
			}
		}
		p := Params{R: 2, M: 1, Start: sink}
		res, err := VerifySchedule(g, a, p, AnyHeardD, 4*dist[source], source, Options{})
		if err != nil {
			return false
		}
		if res.SLPAware {
			return true
		}
		// With M=1, every move costs at least... a move to a later slot
		// stays within the period, so the bound is period >= 1 (at least
		// the first move crosses into period 1 from the slotless sink) and
		// the trace length must be at least the hop distance.
		return res.CapturePeriod >= 1 && len(res.Counterexample)-1 >= dist[source]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
