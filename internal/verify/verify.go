// Package verify implements the paper's decision procedure (Algorithm 1,
// Section IV-C): a model-checking-style exhaustive exploration of every
// attacker trace that a (R, H, M, s0, D)-attacker can take against a fixed
// TDMA slot assignment. If any valid trace reaches the source within the
// safety period δ, the schedule is NOT δ-SLP-aware and the violating trace
// is returned as a counterexample; otherwise the schedule is δ-SLP-aware.
//
// Trace validity follows Algorithm 1 line by line:
//
//   - the attacker moves one hop at a time ((si, si+1) ∈ E);
//   - the destination must be among the R lowest-slot transmitters audible
//     at the current location (1HopNsWithRLowestSlots) and permitted by D;
//   - a move to a *later* slot can happen within the current period and
//     consumes one of the M per-period moves (lines 11–12); a move to an
//     *earlier* slot means that slot has already passed, so the attacker
//     waits for the next period (line 10: period+1, moves←1).
//
// Interpretation notes (documented in DESIGN.md): the audible transmitter
// set is the closed neighbourhood N(x) ∪ {x} minus the sink — the attacker
// hears the node it is sitting at, so a local slot minimum is an absorbing
// state, exactly matching the live attacker in internal/attacker. Moves to
// the current location are pruned: they can never enable an earlier
// capture.
package verify

import (
	"fmt"
	"sort"

	"slpdas/internal/schedule"
	"slpdas/internal/topo"
)

// Candidate is one audible transmitter: a node and its slot.
type Candidate struct {
	Node topo.NodeID
	Slot int
}

// DecisionSet is the set-valued D function of the decision procedure:
// given the audible candidate set B (sorted by slot, i.e. arrival order)
// and the recent-location history, it returns every location the attacker
// might move to. The exploration branches over all of them.
type DecisionSet func(candidates []Candidate, history []topo.NodeID) []topo.NodeID

// FirstHeardD models the deterministic paper attacker: move to the origin
// of the first message heard (the lowest-slot audible transmitter).
func FirstHeardD(candidates []Candidate, _ []topo.NodeID) []topo.NodeID {
	if len(candidates) == 0 {
		return nil
	}
	return []topo.NodeID{candidates[0].Node}
}

// AnyHeardD models the strongest nondeterministic attacker: it may move to
// any of the R lowest-slot audible transmitters.
func AnyHeardD(candidates []Candidate, _ []topo.NodeID) []topo.NodeID {
	out := make([]topo.NodeID, len(candidates))
	for i, c := range candidates {
		out[i] = c.Node
	}
	return out
}

// UnvisitedD is AnyHeardD restricted to locations outside the history —
// the natural use of H > 0.
func UnvisitedD(candidates []Candidate, history []topo.NodeID) []topo.NodeID {
	var out []topo.NodeID
	for _, c := range candidates {
		visited := false
		for _, h := range history {
			if h == c.Node {
				visited = true
				break
			}
		}
		if !visited {
			out = append(out, c.Node)
		}
	}
	if len(out) == 0 {
		return AnyHeardD(candidates, history)
	}
	return out
}

// Params are the attacker parameters for verification.
type Params struct {
	R     int
	H     int
	M     int
	Start topo.NodeID // s0
}

// Options tune the exploration.
type Options struct {
	// AllowWait permits the attacker to defer a later-slot move to the
	// next period when its per-period move budget is exhausted. Algorithm 1
	// as printed discards such traces; the live attacker can simply wait,
	// so enabling this explores a slightly stronger attacker.
	AllowWait bool
	// MaxStates bounds the exploration (0 = default 2,000,000).
	MaxStates int
}

// Result is the outcome of VerifySchedule. Mirroring Algorithm 1, SLPAware
// == true corresponds to (True, ⊥, δ) and SLPAware == false comes with the
// violating trace pc and its capture period p.
type Result struct {
	SLPAware       bool
	Counterexample []topo.NodeID // s0 … source; nil when SLPAware
	CapturePeriod  int           // periods used by the counterexample
	StatesExplored int
}

// state is one node of the explored transition system.
type state struct {
	node   topo.NodeID
	period int
	moves  int
	histID int // interned history ring id
}

// VerifySchedule is Algorithm 1: it decides whether assignment a is
// δ-SLP-aware for source against the given attacker on graph g, returning
// a minimal-period counterexample when it is not.
func VerifySchedule(g *topo.Graph, a *schedule.Assignment, p Params, d DecisionSet, delta int, source topo.NodeID, opts Options) (Result, error) {
	if p.R < 1 || p.M < 1 || p.H < 0 {
		return Result{}, fmt.Errorf("verify: invalid attacker params %+v", p)
	}
	if !g.Valid(p.Start) || !g.Valid(source) {
		return Result{}, fmt.Errorf("verify: invalid start %d or source %d", p.Start, source)
	}
	if delta < 0 {
		return Result{}, fmt.Errorf("verify: negative safety period %d", delta)
	}
	if d == nil {
		d = FirstHeardD
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 2_000_000
	}

	e := &explorer{
		g:       g,
		assign:  a,
		params:  p,
		decide:  d,
		delta:   delta,
		source:  source,
		opts:    opts,
		visited: make(map[state]struct{}),
		histTab: map[string]int{"": 0},
		hists:   [][]topo.NodeID{nil},
	}

	// Dijkstra-style exploration ordered by (period, moves): the first
	// time the source is dequeued yields a minimal-period counterexample.
	e.push(item{st: state{node: p.Start, period: 0, moves: 0, histID: 0}, parent: -1})
	for len(e.heap) > 0 {
		it := e.pop()
		if _, seen := e.visited[it.st]; seen {
			continue
		}
		e.visited[it.st] = struct{}{}
		e.trace = append(e.trace, it)
		self := len(e.trace) - 1

		if it.st.node == source {
			return Result{
				SLPAware:       false,
				Counterexample: e.rebuild(self),
				CapturePeriod:  it.st.period,
				StatesExplored: len(e.visited),
			}, nil
		}
		if len(e.visited) >= maxStates {
			return Result{}, fmt.Errorf("verify: state budget %d exhausted", maxStates)
		}
		e.expand(it.st, self)
	}
	return Result{SLPAware: true, CapturePeriod: delta, StatesExplored: len(e.visited)}, nil
}

type item struct {
	st     state
	parent int // index into explorer.trace, -1 for root
}

type explorer struct {
	g       *topo.Graph
	assign  *schedule.Assignment
	params  Params
	decide  DecisionSet
	delta   int
	source  topo.NodeID
	opts    Options
	visited map[state]struct{}
	heap    []item
	trace   []item
	histTab map[string]int
	hists   [][]topo.NodeID
}

// Audible computes 1HopNsWithRLowestSlots(x, F, R) over the closed
// neighbourhood: the R lowest-slot transmitters the attacker can hear from
// x. The sink never transmits and is excluded.
func Audible(g *topo.Graph, a *schedule.Assignment, x topo.NodeID, r int) []Candidate {
	neigh := g.Neighbors(x)
	cands := make([]Candidate, 0, len(neigh)+1)
	consider := func(n topo.NodeID) {
		if n == a.Sink() || !a.Assigned(n) {
			return
		}
		cands = append(cands, Candidate{Node: n, Slot: a.Slot(n)})
	}
	consider(x)
	for _, m := range neigh {
		consider(m)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Slot != cands[j].Slot {
			return cands[i].Slot < cands[j].Slot
		}
		return cands[i].Node < cands[j].Node
	})
	if len(cands) > r {
		cands = cands[:r]
	}
	return cands
}

func (e *explorer) expand(st state, parent int) {
	cands := Audible(e.g, e.assign, st.node, e.params.R)
	if len(cands) == 0 {
		return
	}
	hist := e.hists[st.histID]
	for _, next := range e.decide(cands, hist) {
		if next == st.node {
			continue // staying is absorbing; cannot enable earlier capture
		}
		if !e.g.HasEdge(st.node, next) {
			continue // line 8: attacker walks one hop at a time
		}
		// Period/move bookkeeping, Algorithm 1 lines 10–12. When the
		// current location has no slot (the attacker starts at the sink,
		// which never transmits), the first move opens the next period.
		var nper, nmov int
		curSlot, ok := e.slotOf(st.node)
		nextSlot, _ := e.slotOf(next)
		switch {
		case !ok || curSlot > nextSlot:
			// Earlier slot already passed: wait for the next period.
			nper, nmov = st.period+1, 1
		case st.moves < e.params.M:
			nper, nmov = st.period, st.moves+1
		case e.opts.AllowWait:
			nper, nmov = st.period+1, 1
		default:
			continue // line 11: move budget exhausted, trace invalid
		}
		if nper > e.delta {
			continue // cannot capture within the safety period
		}
		nh := e.pushHistory(st.histID, st.node)
		ns := state{node: next, period: nper, moves: nmov, histID: nh}
		if _, seen := e.visited[ns]; !seen {
			e.push(item{st: ns, parent: parent})
		}
	}
}

func (e *explorer) slotOf(n topo.NodeID) (int, bool) {
	if n == e.assign.Sink() || !e.assign.Assigned(n) {
		return 0, false
	}
	return e.assign.Slot(n), true
}

// pushHistory interns the ring buffer after appending loc.
func (e *explorer) pushHistory(histID int, loc topo.NodeID) int {
	if e.params.H == 0 {
		return 0
	}
	prev := e.hists[histID]
	next := make([]topo.NodeID, 0, e.params.H)
	if len(prev) == e.params.H {
		next = append(next, prev[1:]...)
	} else {
		next = append(next, prev...)
	}
	next = append(next, loc)
	key := fmt.Sprint(next)
	if id, ok := e.histTab[key]; ok {
		return id
	}
	id := len(e.hists)
	e.hists = append(e.hists, next)
	e.histTab[key] = id
	return id
}

// rebuild reconstructs the counterexample trace from parent pointers.
func (e *explorer) rebuild(idx int) []topo.NodeID {
	var rev []topo.NodeID
	for i := idx; i >= 0; i = e.trace[i].parent {
		rev = append(rev, e.trace[i].st.node)
	}
	out := make([]topo.NodeID, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// --- binary heap ordered by (period, moves, insertion) ---

func (e *explorer) push(it item) {
	e.heap = append(e.heap, it)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *explorer) pop() item {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && less(e.heap[l], e.heap[small]) {
			small = l
		}
		if r < last && less(e.heap[r], e.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
	return top
}

func less(a, b item) bool {
	if a.st.period != b.st.period {
		return a.st.period < b.st.period
	}
	return a.st.moves < b.st.moves
}

// MinCapturePeriod returns the smallest number of periods in which the
// attacker can capture source under assignment a, searching up to horizon
// periods. ok is false if no trace captures within the horizon. This is
// the capture time δ(G,P,A) of Definition 4 measured in periods, and the
// quantity compared in Definition 5.
func MinCapturePeriod(g *topo.Graph, a *schedule.Assignment, p Params, d DecisionSet, source topo.NodeID, horizon int, opts Options) (int, bool, error) {
	res, err := VerifySchedule(g, a, p, d, horizon, source, opts)
	if err != nil {
		return 0, false, err
	}
	if res.SLPAware {
		return 0, false, nil
	}
	return res.CapturePeriod, true, nil
}

// IsSLPAwareDAS implements Definition 5: Fs is a strong (resp. weak)
// SLP-aware DAS for source against the attacker iff (1) Fs satisfies the
// DAS property and (2) its capture time strictly exceeds that of the
// reference schedule F. The DAS property is checked at the weak level
// (Definition 3); callers wanting the strong variant can check
// schedule.IsStrongDAS separately.
func IsSLPAwareDAS(g *topo.Graph, fs, f *schedule.Assignment, p Params, d DecisionSet, source topo.NodeID, horizon int, opts Options) (bool, error) {
	if !schedule.IsWeakDAS(g, fs) {
		return false, nil
	}
	capFs, okFs, err := MinCapturePeriod(g, fs, p, d, source, horizon, opts)
	if err != nil {
		return false, err
	}
	capF, okF, err := MinCapturePeriod(g, f, p, d, source, horizon, opts)
	if err != nil {
		return false, err
	}
	switch {
	case !okF:
		// The baseline never captures within the horizon; Fs must also
		// never capture to be at least as private.
		return !okFs, nil
	case !okFs:
		return true, nil // Fs never captured, F did: strictly better
	default:
		return capFs > capF, nil
	}
}
