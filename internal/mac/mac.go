// Package mac implements the TDMA medium-access layer: the slot/period
// timing structure ("one given slot assignment will give rise to one
// traffic pattern") and a periodic slot task that fires a node's
// transmission opportunity once per TDMA period in its assigned slot.
package mac

import (
	"fmt"
	"time"

	"slpdas/internal/des"
)

// Timing describes the TDMA superframe: Slots slots of SlotDuration each.
// With the paper's Table I values (100 slots × 0.05 s) a period lasts 5 s.
type Timing struct {
	Slots        int
	SlotDuration time.Duration
}

// Validate reports whether the timing parameters are usable.
func (t Timing) Validate() error {
	if t.Slots <= 0 {
		return fmt.Errorf("mac: slots must be positive, got %d", t.Slots)
	}
	if t.SlotDuration <= 0 {
		return fmt.Errorf("mac: slot duration must be positive, got %v", t.SlotDuration)
	}
	return nil
}

// PeriodDuration returns the length of one TDMA period.
func (t Timing) PeriodDuration() time.Duration {
	return time.Duration(t.Slots) * t.SlotDuration
}

// SlotStart returns the absolute time (relative to epoch 0) at which the
// given slot of the given period begins.
func (t Timing) SlotStart(period, slot int) time.Duration {
	return time.Duration(period)*t.PeriodDuration() + time.Duration(slot)*t.SlotDuration
}

// PeriodOf returns the period index containing time d (d >= 0).
func (t Timing) PeriodOf(d time.Duration) int {
	return int(d / t.PeriodDuration())
}

// SlotOf returns the slot index within the period containing time d.
func (t Timing) SlotOf(d time.Duration) int {
	return int((d % t.PeriodDuration()) / t.SlotDuration)
}

// ValidSlot reports whether slot is a transmittable slot index.
func (t Timing) ValidSlot(slot int) bool {
	return slot >= 0 && slot < t.Slots
}

// SlotTask schedules one transmission opportunity per TDMA period. The
// slot is re-read at each period boundary so late slot refinements
// (Phase 3) take effect on the next period. A slot outside [0, Slots)
// skips the period — this is how the sink (slot Δ = Slots) never
// transmits.
//
// The task is its own des.Runner for the period-boundary event, and owns a
// second reusable runner for the in-period firing — the per-period cost is
// two pooled events and zero allocations, where the closure-based version
// allocated two closures per node per period.
type SlotTask struct {
	sim    *des.Simulator
	timing Timing
	epoch  time.Duration
	slot   func() int
	fire   func(period int)
	// alive, when non-nil, is consulted at each period boundary and again
	// at the slot offset: a dead node's period passes in silence while the
	// period count keeps advancing, so sequence numbers stay aligned with
	// wall-clock periods across a crash and recovery. Nil means always
	// alive — the pre-fault-injection behaviour.
	alive func() bool
	// periodHook, when non-nil, runs once at each period boundary the node
	// is alive for, before the slot is polled. Core charges idle-listening
	// energy here; the hook may kill the node (battery depletion), so
	// liveness is re-checked after it and a mid-hook death silences the
	// period's slot.
	periodHook func()
	stopped    bool
	period     int
	fireEv     fireEvent
}

// fireEvent is the in-period transmission event. Only one is ever in
// flight per task (the slot offset is strictly inside the period), so it
// is safely reused every period.
type fireEvent struct {
	st     *SlotTask
	period int
}

//slp:hotpath
func (f *fireEvent) Run() {
	if !f.st.stopped && (f.st.alive == nil || f.st.alive()) {
		f.st.fire(f.period)
	}
}

// NewSlotTask wires a slot task without starting it: the one-time half of
// StartSlotTask. Arena-style callers construct the task (and its callback
// closures) once per node and re-arm it each run with Start.
func NewSlotTask(sim *des.Simulator, slot func() int, fire func(period int)) *SlotTask {
	st := &SlotTask{sim: sim, slot: slot, fire: fire}
	st.fireEv.st = st
	return st
}

// Start (re-)arms the task: period counting restarts at 0 with the given
// timing and epoch. Restarting after the owning simulator was Reset is the
// supported reuse path — any events the previous run left behind were
// discarded by that Reset.
func (st *SlotTask) Start(timing Timing, epoch time.Duration) error {
	if err := timing.Validate(); err != nil {
		return err
	}
	if epoch < st.sim.Now() {
		return fmt.Errorf("mac: epoch %v is in the past (now %v)", epoch, st.sim.Now())
	}
	st.timing = timing
	st.epoch = epoch
	st.stopped = false
	st.period = 0
	return st.sim.ScheduleRunner(epoch, st)
}

// StartSlotTask begins per-period slot firing at absolute time epoch
// (the start of period 0). slot is polled at each period start; fire runs
// at the slot's offset within the period.
func StartSlotTask(sim *des.Simulator, timing Timing, epoch time.Duration, slot func() int, fire func(period int)) (*SlotTask, error) {
	st := NewSlotTask(sim, slot, fire)
	if err := st.Start(timing, epoch); err != nil {
		return nil, err
	}
	return st, nil
}

// Stop halts the task after the current event.
func (st *SlotTask) Stop() { st.stopped = true }

// SetAliveCheck installs the liveness probe consulted before each firing
// (see SlotTask). It is wiring, not run state: install it once alongside
// the slot and fire callbacks. A nil check means always alive.
func (st *SlotTask) SetAliveCheck(alive func() bool) { st.alive = alive }

// SetPeriodHook installs the per-period callback run at each period
// boundary the node is alive for (see SlotTask). Like the alive check it
// is wiring, not run state. A nil hook disables it.
func (st *SlotTask) SetPeriodHook(hook func()) { st.periodHook = hook }

// Period returns the index of the period currently scheduled or running.
func (st *SlotTask) Period() int { return st.period }

// Run implements des.Runner: the period-boundary event.
//
//slp:hotpath
func (st *SlotTask) Run() {
	if st.stopped {
		return
	}
	if st.alive == nil || st.alive() {
		if st.periodHook != nil {
			st.periodHook()
		}
		// Re-check: the hook may have killed the node (battery depletion),
		// and a node that died at the boundary has no slot this period.
		if st.alive == nil || st.alive() {
			s := st.slot()
			if st.timing.ValidSlot(s) {
				st.fireEv.period = st.period
				st.sim.ScheduleRunnerAfter(time.Duration(s)*st.timing.SlotDuration, &st.fireEv)
			}
		}
	}
	st.period++
	st.sim.ScheduleRunnerAfter(st.timing.PeriodDuration(), st)
}
