// Package mac implements the TDMA medium-access layer: the slot/period
// timing structure ("one given slot assignment will give rise to one
// traffic pattern") and a periodic slot task that fires a node's
// transmission opportunity once per TDMA period in its assigned slot.
package mac

import (
	"fmt"
	"time"

	"slpdas/internal/des"
)

// Timing describes the TDMA superframe: Slots slots of SlotDuration each.
// With the paper's Table I values (100 slots × 0.05 s) a period lasts 5 s.
type Timing struct {
	Slots        int
	SlotDuration time.Duration
}

// Validate reports whether the timing parameters are usable.
func (t Timing) Validate() error {
	if t.Slots <= 0 {
		return fmt.Errorf("mac: slots must be positive, got %d", t.Slots)
	}
	if t.SlotDuration <= 0 {
		return fmt.Errorf("mac: slot duration must be positive, got %v", t.SlotDuration)
	}
	return nil
}

// PeriodDuration returns the length of one TDMA period.
func (t Timing) PeriodDuration() time.Duration {
	return time.Duration(t.Slots) * t.SlotDuration
}

// SlotStart returns the absolute time (relative to epoch 0) at which the
// given slot of the given period begins.
func (t Timing) SlotStart(period, slot int) time.Duration {
	return time.Duration(period)*t.PeriodDuration() + time.Duration(slot)*t.SlotDuration
}

// PeriodOf returns the period index containing time d (d >= 0).
func (t Timing) PeriodOf(d time.Duration) int {
	return int(d / t.PeriodDuration())
}

// SlotOf returns the slot index within the period containing time d.
func (t Timing) SlotOf(d time.Duration) int {
	return int((d % t.PeriodDuration()) / t.SlotDuration)
}

// ValidSlot reports whether slot is a transmittable slot index.
func (t Timing) ValidSlot(slot int) bool {
	return slot >= 0 && slot < t.Slots
}

// SlotTask schedules one transmission opportunity per TDMA period. The
// slot is re-read at each period boundary so late slot refinements
// (Phase 3) take effect on the next period. A slot outside [0, Slots)
// skips the period — this is how the sink (slot Δ = Slots) never
// transmits.
type SlotTask struct {
	sim     *des.Simulator
	timing  Timing
	epoch   time.Duration
	slot    func() int
	fire    func(period int)
	stopped bool
	period  int
}

// StartSlotTask begins per-period slot firing at absolute time epoch
// (the start of period 0). slot is polled at each period start; fire runs
// at the slot's offset within the period.
func StartSlotTask(sim *des.Simulator, timing Timing, epoch time.Duration, slot func() int, fire func(period int)) (*SlotTask, error) {
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	if epoch < sim.Now() {
		return nil, fmt.Errorf("mac: epoch %v is in the past (now %v)", epoch, sim.Now())
	}
	st := &SlotTask{sim: sim, timing: timing, epoch: epoch, slot: slot, fire: fire}
	if _, err := sim.Schedule(epoch, st.periodStart); err != nil {
		return nil, err
	}
	return st, nil
}

// Stop halts the task after the current event.
func (st *SlotTask) Stop() { st.stopped = true }

// Period returns the index of the period currently scheduled or running.
func (st *SlotTask) Period() int { return st.period }

func (st *SlotTask) periodStart() {
	if st.stopped {
		return
	}
	period := st.period
	s := st.slot()
	if st.timing.ValidSlot(s) {
		st.sim.ScheduleAfter(time.Duration(s)*st.timing.SlotDuration, func() {
			if !st.stopped {
				st.fire(period)
			}
		})
	}
	st.period++
	st.sim.ScheduleAfter(st.timing.PeriodDuration(), st.periodStart)
}
