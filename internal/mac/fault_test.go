package mac

import (
	"testing"
	"time"

	"slpdas/internal/des"
)

// TestAliveCheckSilencesDeadPeriods: with an alive check installed, a dead
// node's periods pass in silence but the period count keeps advancing, so
// the firings after recovery carry the wall-clock period index — sequence
// numbers stay aligned across a crash.
func TestAliveCheckSilencesDeadPeriods(t *testing.T) {
	sim := des.New()
	timing := Timing{Slots: 10, SlotDuration: 10 * time.Millisecond}
	alive := true
	var fired []int
	st, err := StartSlotTask(sim, timing, 0,
		func() int { return 3 },
		func(period int) { fired = append(fired, period) })
	if err != nil {
		t.Fatalf("StartSlotTask: %v", err)
	}
	st.SetAliveCheck(func() bool { return alive })

	period := timing.PeriodDuration()
	// Dead for periods 2 and 3, alive again from period 4.
	sim.ScheduleAfter(2*period, func() { alive = false })
	sim.ScheduleAfter(4*period, func() { alive = true })
	if err := sim.RunUntil(6*period - time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	want := []int{0, 1, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired periods %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired periods %v, want %v", fired, want)
		}
	}
}

// TestAliveCheckMidPeriodCrash: a node that dies between the period
// boundary and its slot offset must not transmit in that period.
func TestAliveCheckMidPeriodCrash(t *testing.T) {
	sim := des.New()
	timing := Timing{Slots: 10, SlotDuration: 10 * time.Millisecond}
	alive := true
	fired := 0
	st, err := StartSlotTask(sim, timing, 0,
		func() int { return 5 },
		func(int) { fired++ })
	if err != nil {
		t.Fatalf("StartSlotTask: %v", err)
	}
	st.SetAliveCheck(func() bool { return alive })
	// Crash inside period 0, before slot 5's offset.
	sim.ScheduleAfter(2*timing.SlotDuration, func() { alive = false })
	if err := sim.RunUntil(timing.PeriodDuration() - time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 0 {
		t.Errorf("node fired %d times in the period it died mid-period, want 0", fired)
	}
}
