package mac

import (
	"testing"
	"time"

	"slpdas/internal/des"
)

var paperTiming = Timing{Slots: 100, SlotDuration: 50 * time.Millisecond}

func TestPeriodDurationMatchesTableI(t *testing.T) {
	// 100 slots × 0.05s = 5s per TDMA period.
	if got := paperTiming.PeriodDuration(); got != 5*time.Second {
		t.Errorf("PeriodDuration = %v, want 5s", got)
	}
}

func TestSlotStart(t *testing.T) {
	if got := paperTiming.SlotStart(0, 0); got != 0 {
		t.Errorf("SlotStart(0,0) = %v, want 0", got)
	}
	if got := paperTiming.SlotStart(2, 10); got != 10*time.Second+500*time.Millisecond {
		t.Errorf("SlotStart(2,10) = %v", got)
	}
}

func TestPeriodAndSlotOf(t *testing.T) {
	at := paperTiming.SlotStart(3, 42) + 10*time.Millisecond
	if p := paperTiming.PeriodOf(at); p != 3 {
		t.Errorf("PeriodOf = %d, want 3", p)
	}
	if s := paperTiming.SlotOf(at); s != 42 {
		t.Errorf("SlotOf = %d, want 42", s)
	}
}

func TestValidSlot(t *testing.T) {
	for slot, want := range map[int]bool{-1: false, 0: true, 99: true, 100: false} {
		if got := paperTiming.ValidSlot(slot); got != want {
			t.Errorf("ValidSlot(%d) = %v, want %v", slot, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := paperTiming.Validate(); err != nil {
		t.Errorf("Validate = %v, want nil", err)
	}
	if err := (Timing{Slots: 0, SlotDuration: time.Second}).Validate(); err == nil {
		t.Error("zero slots validated")
	}
	if err := (Timing{Slots: 10, SlotDuration: 0}).Validate(); err == nil {
		t.Error("zero slot duration validated")
	}
}

func TestSlotTaskFiresAtSlotTimes(t *testing.T) {
	sim := des.New()
	timing := Timing{Slots: 10, SlotDuration: 100 * time.Millisecond}
	epoch := 2 * time.Second
	var fires []time.Duration
	var periods []int
	_, err := StartSlotTask(sim, timing, epoch, func() int { return 3 }, func(period int) {
		fires = append(fires, sim.Now())
		periods = append(periods, period)
	})
	if err != nil {
		t.Fatalf("StartSlotTask: %v", err)
	}
	if err := sim.RunUntil(epoch + 3*timing.PeriodDuration()); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fires) != 3 {
		t.Fatalf("fired %d times, want 3", len(fires))
	}
	for i, at := range fires {
		want := epoch + timing.SlotStart(i, 3)
		if at != want {
			t.Errorf("fire %d at %v, want %v", i, at, want)
		}
		if periods[i] != i {
			t.Errorf("fire %d period = %d", i, periods[i])
		}
	}
}

func TestSlotTaskReReadsSlotEachPeriod(t *testing.T) {
	sim := des.New()
	timing := Timing{Slots: 10, SlotDuration: 100 * time.Millisecond}
	slot := 2
	var offsets []time.Duration
	_, err := StartSlotTask(sim, timing, 0, func() int { return slot }, func(period int) {
		offsets = append(offsets, sim.Now()-timing.SlotStart(period, 0))
	})
	if err != nil {
		t.Fatalf("StartSlotTask: %v", err)
	}
	// Change the slot after the first period has begun: takes effect in
	// period 1 (the Phase 3 refinement path).
	sim.ScheduleAfter(50*time.Millisecond, func() { slot = 7 })
	if err := sim.RunUntil(2 * timing.PeriodDuration()); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(offsets) != 2 {
		t.Fatalf("fired %d times, want 2", len(offsets))
	}
	if offsets[0] != 2*timing.SlotDuration {
		t.Errorf("period 0 offset = %v, want slot 2", offsets[0])
	}
	if offsets[1] != 7*timing.SlotDuration {
		t.Errorf("period 1 offset = %v, want slot 7", offsets[1])
	}
}

func TestSlotTaskSkipsInvalidSlot(t *testing.T) {
	// The sink carries slot Δ == Slots: it must never fire.
	sim := des.New()
	timing := Timing{Slots: 10, SlotDuration: 100 * time.Millisecond}
	fired := 0
	_, err := StartSlotTask(sim, timing, 0, func() int { return timing.Slots }, func(int) { fired++ })
	if err != nil {
		t.Fatalf("StartSlotTask: %v", err)
	}
	if err := sim.RunUntil(5 * timing.PeriodDuration()); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 0 {
		t.Errorf("invalid slot fired %d times, want 0", fired)
	}
}

func TestSlotTaskStop(t *testing.T) {
	sim := des.New()
	timing := Timing{Slots: 4, SlotDuration: 100 * time.Millisecond}
	fired := 0
	task, err := StartSlotTask(sim, timing, 0, func() int { return 1 }, func(int) { fired++ })
	if err != nil {
		t.Fatalf("StartSlotTask: %v", err)
	}
	sim.ScheduleAfter(timing.PeriodDuration()+10*time.Millisecond, func() { task.Stop() })
	if err := sim.RunUntil(10 * timing.PeriodDuration()); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 1 {
		t.Errorf("fired %d times after stop, want 1", fired)
	}
}

func TestSlotTaskRejectsPastEpochAndBadTiming(t *testing.T) {
	sim := des.New()
	sim.ScheduleAfter(time.Second, func() {})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := StartSlotTask(sim, paperTiming, 0, func() int { return 0 }, func(int) {}); err == nil {
		t.Error("past epoch accepted")
	}
	if _, err := StartSlotTask(sim, Timing{}, 2*time.Second, func() int { return 0 }, func(int) {}); err == nil {
		t.Error("invalid timing accepted")
	}
}
