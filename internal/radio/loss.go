package radio

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"

	"slpdas/internal/channel"
	"slpdas/internal/topo"
)

// LossModel decides, per transmission and per link, whether a frame is lost
// before reaching a receiver. Implementations must be deterministic given
// the supplied random stream.
type LossModel interface {
	// Lost reports whether the frame from a sender at distance metres is
	// lost on this link.
	Lost(dist float64, r *rand.Rand) bool
	// Name identifies the model in reports.
	Name() string
}

// Ideal is the paper's evaluation model (§VI-A): a perfectly reliable
// network — no frame is ever lost to channel effects.
type Ideal struct{}

// Lost implements LossModel; it always returns false.
func (Ideal) Lost(float64, *rand.Rand) bool { return false }

// Name implements LossModel.
func (Ideal) Name() string { return "ideal" }

// Bernoulli drops every frame independently with probability P,
// irrespective of distance.
type Bernoulli struct {
	P float64
}

// Lost implements LossModel.
func (b Bernoulli) Lost(_ float64, r *rand.Rand) bool {
	return r.Float64() < b.P
}

// Name implements LossModel.
func (b Bernoulli) Name() string { return fmt.Sprintf("bernoulli(%.2f)", b.P) }

// RSSINoise is a log-normal shadowing model substituting for the TOSSIM
// casino-lab noise trace, which is not available offline. Received power is
//
//	RSSI = TxPower − (RefLoss + 10·PathLossExp·log10(d/RefDist)) + N(0, Sigma)
//
// and the frame is lost when RSSI falls below Sensitivity. With the default
// parameters links at grid spacing (4.5 m) succeed ≈99% of the time and
// reliability decays smoothly with distance, which preserves the behaviour
// the evaluation depends on: an almost-reliable single-hop channel with
// occasional independent losses.
type RSSINoise struct {
	TxPower     float64 // dBm, default 0
	RefLoss     float64 // dB at RefDist, default 40
	RefDist     float64 // metres, default 1
	PathLossExp float64 // default 2.4
	Sigma       float64 // shadowing stddev dB, default 4
	Sensitivity float64 // dBm, default -70
}

// DefaultRSSINoise returns the calibrated casino-lab substitute.
func DefaultRSSINoise() RSSINoise {
	return RSSINoise{
		TxPower:     0,
		RefLoss:     40,
		RefDist:     1,
		PathLossExp: 2.4,
		Sigma:       4,
		Sensitivity: -70,
	}
}

// Lost implements LossModel.
func (m RSSINoise) Lost(dist float64, r *rand.Rand) bool {
	if dist < m.RefDist {
		dist = m.RefDist
	}
	pathLoss := m.RefLoss + 10*m.PathLossExp*math.Log10(dist/m.RefDist)
	rssi := m.TxPower - pathLoss + r.NormFloat64()*m.Sigma
	return rssi < m.Sensitivity
}

// Name implements LossModel.
func (m RSSINoise) Name() string { return "rssi-noise" }

// Interface compliance.
var (
	_ LossModel = Ideal{}
	_ LossModel = Bernoulli{}
	_ LossModel = RSSINoise{}
)

// lossAdapter lifts a legacy binary LossModel onto the channel.Model
// interface: no per-run state (Reset is a no-op), unit received power,
// and no capture — the binary collision window keeps that job.
type lossAdapter struct {
	lm LossModel
}

// Spec implements channel.Model with the legacy model's report name.
func (a lossAdapter) Spec() string { return a.lm.Name() }

// Reset implements channel.Model; legacy loss models hold no run state.
func (a lossAdapter) Reset(uint64) {}

// Lost implements channel.Model, delegating to the wrapped model.
//
//slp:hotpath
func (a lossAdapter) Lost(_, _ topo.NodeID, dist float64, rng *rand.Rand) bool {
	return a.lm.Lost(dist, rng)
}

// RxPowerMW implements channel.Model with a flat unit power.
func (a lossAdapter) RxPowerMW(_, _ topo.NodeID, _ float64) float64 { return 1 }

// Capture implements channel.Model; binary models never capture.
func (a lossAdapter) Capture() (channel.CaptureParams, bool) {
	return channel.CaptureParams{}, false
}

// FromLossModel adapts a legacy LossModel onto the channel interface. A
// nil model adapts to channel.Ideal.
func FromLossModel(lm LossModel) channel.Model {
	if lm == nil {
		return channel.Ideal{}
	}
	return lossAdapter{lm: lm}
}

// ParseLossModel parses the legacy binary loss-model syntax: "ideal" (or
// ""), "bernoulli:<p>" with p ∈ [0, 1], or "rssi". The full channel
// grammar — logdist path loss, shadowing, SINR capture — lives in
// internal/channel; this parser survives for the Config.Loss field and
// callers that need a LossModel value.
//
// Parsing is strict: a family name with trailing garbage ("rssi2",
// "bernoulli:0.5x") is an unknown model, never silently normalised. The
// probability must be a finite number: strconv.ParseFloat happily
// accepts "NaN" and "±Inf", and NaN in particular passes every range
// comparison while making Lost silently always-false — an ideal channel
// mislabelled as bernoulli in every result row. p = 1 is admitted as a
// legitimate total-blackout stress case: timers still fire, the run is
// bounded by simulated time, and the DES terminates normally (pinned by
// core's total-loss test).
func ParseLossModel(s string) (LossModel, error) {
	name, args, hasArgs := strings.Cut(s, ":")
	switch name {
	case "", "ideal":
		if hasArgs {
			return nil, fmt.Errorf("radio: loss model %q takes no arguments", s)
		}
		return Ideal{}, nil
	case "rssi":
		if hasArgs {
			return nil, fmt.Errorf("radio: loss model %q takes no arguments", s)
		}
		return DefaultRSSINoise(), nil
	case "bernoulli":
		if !hasArgs {
			return nil, fmt.Errorf("radio: bernoulli needs a probability (bernoulli:<p>)")
		}
		p, err := strconv.ParseFloat(args, 64)
		if err != nil || math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			return nil, fmt.Errorf("radio: bad bernoulli probability in %q (want a finite p in [0, 1])", s)
		}
		return Bernoulli{P: p}, nil
	default:
		return nil, fmt.Errorf("radio: unknown loss model %q", s)
	}
}
