package radio

import (
	"testing"

	"slpdas/internal/des"
	"slpdas/internal/topo"
)

func benchMedium(b *testing.B, opts ...Option) (*des.Simulator, *topo.Graph, *Medium) {
	b.Helper()
	g, err := topo.DefaultGrid(11)
	if err != nil {
		b.Fatal(err)
	}
	sim := des.New()
	m := New(sim, g, 1, opts...)
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		m.SetReceiver(n, func(topo.NodeID, []byte) {})
	}
	return sim, g, m
}

func benchBroadcast(b *testing.B, opts ...Option) {
	sim, g, m := benchMedium(b, opts...)
	centre := topo.GridCentre(11)
	payload := make([]byte, 32)
	_ = g
	fire := func() { m.Broadcast(centre, payload) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ScheduleAfter(0, fire)
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcast measures one broadcast→delivery cycle at a 4-degree
// grid node, collisions off — the dominant event pattern of every run.
func BenchmarkBroadcast(b *testing.B) { benchBroadcast(b) }

// BenchmarkBroadcastCollisions is the same cycle with the receiver-side
// collision tracker enabled.
func BenchmarkBroadcastCollisions(b *testing.B) { benchBroadcast(b, WithCollisions(true)) }

// BenchmarkBroadcastObserved adds an in-range eavesdropper, covering the
// observer-scan path the attacker exercises on every transmission.
func BenchmarkBroadcastObserved(b *testing.B) {
	sim, g, m := benchMedium(b)
	centre := topo.GridCentre(11)
	m.AddObserver(nopObserver{pos: g.Position(centre)})
	payload := make([]byte, 32)
	fire := func() { m.Broadcast(centre, payload) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ScheduleAfter(0, fire)
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
