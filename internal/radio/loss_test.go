package radio

import (
	"math/rand/v2"
	"strings"
	"testing"
)

// TestParseLossModel pins the accepted grammar, and in particular the
// regression where strconv.ParseFloat let "bernoulli:NaN" through: NaN
// fails both range comparisons, and r.Float64() < NaN is always false, so
// the model silently behaved as ideal while reporting itself bernoulli.
func TestParseLossModel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string // expected Name(); "" = must error
	}{
		{"", "ideal"},
		{"ideal", "ideal"},
		{"rssi", "rssi-noise"},
		{"bernoulli:0", "bernoulli(0.00)"},
		{"bernoulli:0.5", "bernoulli(0.50)"},
		// p = 1 is the documented total-blackout stress case.
		{"bernoulli:1", "bernoulli(1.00)"},
		{"bernoulli:1.0", "bernoulli(1.00)"},
		// Non-finite probabilities must be rejected, in every spelling
		// ParseFloat accepts.
		{"bernoulli:NaN", ""},
		{"bernoulli:nan", ""},
		{"bernoulli:+Inf", ""},
		{"bernoulli:-Inf", ""},
		{"bernoulli:Inf", ""},
		{"bernoulli:-0.1", ""},
		{"bernoulli:1.0001", ""},
		{"bernoulli:", ""},
		{"bernoulli:x", ""},
		{"bogus", ""},
		// Trailing garbage must be rejected, not silently truncated: a typo
		// like "bernoulli:0.5x" must not quietly run at some other rate, and
		// "rssi2"/"ideal:1" are not spellings of anything.
		{"bernoulli:0.5x", ""},
		{"bernoulli:0.5:", ""},
		{"bernoulli:0.5:0.5", ""},
		{"rssi2", ""},
		{"rssi:", ""},
		{"rssi:1", ""},
		{"ideal:1", ""},
		{"ideal:", ""},
		{"idealx", ""},
		{" ideal", ""},
		{"ideal ", ""},
	} {
		m, err := ParseLossModel(tc.in)
		if tc.want == "" {
			if err == nil {
				t.Errorf("ParseLossModel(%q) accepted, got %s", tc.in, m.Name())
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseLossModel(%q): %v", tc.in, err)
			continue
		}
		if m.Name() != tc.want {
			t.Errorf("ParseLossModel(%q).Name() = %q, want %q", tc.in, m.Name(), tc.want)
		}
	}
}

// TestBernoulliExtremes: the admitted bounds really mean what they say —
// p=0 never loses a frame, p=1 loses every frame.
func TestBernoulliExtremes(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		if (Bernoulli{P: 0}).Lost(1, r) {
			t.Fatal("bernoulli:0 lost a frame")
		}
		if !(Bernoulli{P: 1}).Lost(1, r) {
			t.Fatal("bernoulli:1 delivered a frame")
		}
	}
}

// FuzzParseLossModel: no input may yield a model with a non-finite or
// out-of-range probability, and bernoulli acceptance must match the
// documented p ∈ [0, 1].
func FuzzParseLossModel(f *testing.F) {
	for _, s := range []string{"ideal", "rssi", "bernoulli:0.5", "bernoulli:NaN", "bernoulli:+Inf", "bernoulli:1", "bernoulli:1e-3"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseLossModel(s)
		if err != nil {
			return
		}
		b, ok := m.(Bernoulli)
		if !ok {
			return
		}
		if !(b.P >= 0 && b.P <= 1) { // NaN fails this form too
			t.Errorf("ParseLossModel(%q) produced p=%v outside [0,1]", s, b.P)
		}
		if !strings.HasPrefix(s, "bernoulli:") {
			t.Errorf("ParseLossModel(%q) produced a Bernoulli from a non-bernoulli spelling", s)
		}
	})
}
