// Package radio simulates the shared wireless medium: broadcast over the
// unit-disk connectivity of a topology, pluggable physical channels from
// internal/channel, a receiver-side collision model — binary windows, or
// SINR capture when the channel provides received powers — per-node
// energy charging through an EnergyMeter, and eavesdropper taps through
// which the attacker overhears transmissions. Together with internal/des
// it replaces the TOSSIM radio stack used by the paper's evaluation.
//
// The broadcast→delivery path is the simulator's hottest loop, so it is
// built to allocate nothing in steady state: per-neighbour deliveries and
// per-broadcast eavesdropper scans are typed des.Runner events drawn from
// free lists, and payload bytes live in refcounted pooled buffers shared by
// every delivery of one broadcast. The SINR accumulator keeps that
// discipline: contention is float accumulation into per-receiver arrays,
// and the capture verdict at delivery is branch-and-multiply only.
package radio

import (
	"fmt"
	"math/rand/v2"
	"time"

	"slpdas/internal/channel"
	"slpdas/internal/des"
	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// IEEE 802.15.4-flavoured timing defaults: 250 kbit/s payload rate plus a
// fixed synchronisation overhead per frame.
const (
	// DefaultBitrate is the payload bitrate in bits per second.
	DefaultBitrate = 250_000
	// DefaultFrameOverhead is the preamble/SFD/PHY-header airtime.
	DefaultFrameOverhead = 160 * time.Microsecond
	// DefaultPropagationDelay is the (negligible) propagation latency.
	DefaultPropagationDelay = time.Microsecond
)

// Receiver consumes frames delivered to a node. The payload slice is owned
// by the medium's buffer pool and is only valid for the duration of the
// call; receivers that keep payload bytes must copy them.
type Receiver func(from topo.NodeID, payload []byte)

// Observation is what an eavesdropper perceives about one transmission:
// who transmitted, from where, and when — never the payload (the paper
// assumes encrypted content; only context leaks).
type Observation struct {
	At    time.Duration // time the transmission ended (fully observed)
	From  topo.NodeID
	Pos   topo.Point
	Bytes int
}

// Observer is notified of every transmission whose sender is within radio
// range of the observer.
//
// Audibility convention: a transmission is judged at the moment it ends —
// the instant the Observation is delivered. The observer set and each
// observer's Location() are read then, so an observer that relocates while
// a frame is on the air hears it (or not) according to where it is when
// the frame completes, consistently with Observation.At, which is also the
// end-of-transmission time.
type Observer interface {
	// Location returns the observer's current position.
	Location() topo.Point
	// Overhear is called once per audible transmission.
	Overhear(obs Observation)
}

// Stats aggregates medium-level counters for the overhead experiment.
type Stats struct {
	Broadcasts     uint64 // frames transmitted
	BytesSent      uint64 // payload bytes transmitted
	Deliveries     uint64 // frame receptions delivered to receivers
	LossDrops      uint64 // receptions dropped by the loss model
	CollisionDrops uint64 // receptions dropped by collisions
	CaptureWins    uint64 // receptions delivered despite interference (SINR capture)
	SINRDrops      uint64 // receptions dropped by the SINR capture test
}

// EnergyMeter is charged by the medium for radio activity: once per
// transmitted frame at the sender, once per reception window at each
// in-range receiver — whether or not the frame survives corruption, since
// the radio pays for listening either way. A nil meter disables charging.
// core.Network implements this to drive battery depletion.
type EnergyMeter interface {
	// ChargeTx bills node n for transmitting a payload of `bytes` bytes.
	ChargeTx(n topo.NodeID, bytes int)
	// ChargeRx bills node n for receiving a payload of `bytes` bytes.
	ChargeRx(n topo.NodeID, bytes int)
}

// Medium is the shared broadcast channel. It is not safe for concurrent
// use; the simulator is single-threaded by design.
type Medium struct {
	sim        *des.Simulator // lint:immutable: simulator wiring, fixed at construction
	g          *topo.Graph    // lint:immutable: topology wiring, fixed at construction
	ch         channel.Model
	collisions bool
	sinr       bool                  // capture model active (derived from ch)
	capture    channel.CaptureParams // cached ch.Capture() parameters
	meter      EnergyMeter
	pcg        rand.PCG      // owned so Reset can reseed rng in place
	rng        *rand.Rand    // lint:immutable: wraps &pcg; Reset reseeds the pcg in place
	bitrate    int           // lint:immutable: PHY parameter, fixed at construction
	overhead   time.Duration // lint:immutable: PHY parameter, fixed at construction
	propDelay  time.Duration // lint:immutable: PHY parameter, fixed at construction

	receivers []Receiver // lint:immutable: registration wiring, rebuilt only when the node set changes
	disabled  []bool
	// downLinks holds failed links keyed by packed (min, max) node-ID pair.
	// Lookups are guarded by len(downLinks) != 0, so the no-link-fault fast
	// path never touches the map.
	downLinks map[uint64]bool
	// observers is kept ordered by id so the scan at each transmission end
	// visits live observers in registration order — deterministic, and
	// O(live observers) rather than O(ids ever issued).
	observers []observerEntry
	nextObsID int

	// Collision window state, per receiving node: rxEnd is the end of the
	// latest reception window, rxLatest the delivery owning it. rxLatest is
	// only consulted while rxEnd > now, i.e. while that delivery is still
	// in the air, so it can never reach back into the pool. Under SINR
	// capture, rxSum accumulates the total received power of the open
	// window and rxBest tracks the strongest single reception in it.
	rxEnd    []time.Duration
	rxLatest []*delivery
	rxSum    []float64
	rxBest   []float64

	freeDeliveries []*delivery // lint:immutable: free list; pooled objects carry no cross-run state
	freeScans      []*obsScan  // lint:immutable: free list; pooled objects carry no cross-run state
	freeFrames     []*frame    // lint:immutable: free list; pooled objects carry no cross-run state
	// scanScratch is the reusable observer snapshot each obsScan iterates,
	// so Overhear callbacks may add/remove observers without corrupting
	// the walk.
	scanScratch []observerEntry // lint:immutable: scratch, overwritten before every use

	stats Stats
}

type observerEntry struct {
	id  int
	obs Observer
}

// frame is one broadcast's payload, shared by every delivery of that
// broadcast and returned to the pool when the last reference drops.
type frame struct {
	buf  []byte
	refs int
}

// delivery is the typed, pooled reception event: one per (broadcast,
// in-range neighbour), scheduled at the end of the reception window.
type delivery struct {
	m         *Medium
	f         *frame
	from, to  topo.NodeID
	corrupted bool
	power     float64 // received power in mW; set only under SINR capture
}

// Run implements des.Runner: the frame arrives at d.to. A reception only
// counts if both endpoints are still up and the link is still intact at
// the end of the reception window: a sender that died mid-frame stopped
// keying the carrier, so the tail of its frame never arrives, and a
// receiver that died mid-frame has no stack left to accept it. The energy
// meter is billed before the corruption verdict — the radio pays for
// listening whether or not the frame survives — and a receiver whose
// battery dies on that very charge pays but does not consume, hence the
// second disabled check before the receiver callback.
//
//slp:hotpath
func (d *delivery) Run() {
	m := d.m
	if !m.disabled[d.to] && !m.disabled[d.from] && !m.linkDown(d.from, d.to) {
		if m.meter != nil {
			m.meter.ChargeRx(d.to, len(d.f.buf))
		}
		switch {
		case d.corrupted:
			m.stats.CollisionDrops++
		case m.sinr && !m.sinrClears(d):
			m.stats.SINRDrops++
		default:
			if recv := m.receivers[d.to]; recv != nil && !m.disabled[d.to] {
				m.stats.Deliveries++
				recv(d.from, d.f.buf)
			}
		}
	}
	if m.rxLatest[d.to] == d {
		m.rxLatest[d.to] = nil
	}
	m.releaseFrame(d.f)
	d.f = nil
	m.freeDeliveries = append(m.freeDeliveries, d)
}

// sinrClears applies the capture test at the end of d's reception window:
// the frame survives iff its received power beats threshold × (noise +
// interference), where interference is every other reception summed into
// the window at d.to. A win over non-zero interference is a capture.
//
//slp:hotpath
func (m *Medium) sinrClears(d *delivery) bool {
	interference := m.rxSum[d.to] - d.power
	if interference < 0 {
		interference = 0
	}
	if d.power < m.capture.ThresholdMW*(m.capture.NoiseMW+interference) {
		return false
	}
	if interference > 0 {
		m.stats.CaptureWins++
	}
	return true
}

// contend folds a new reception into the SINR window open at d.to. The
// strongest reception in the window stays a candidate (its final verdict
// is sinrClears at delivery, once the whole window's interference is
// known); every weaker one is corrupted outright — it cannot beat a
// stronger co-channel signal whatever else arrives.
//
//slp:hotpath
func (m *Medium) contend(d *delivery, now, endAt time.Duration) {
	to := d.to
	if m.rxEnd[to] <= now {
		// Fresh window: this reception opens it.
		m.rxSum[to] = d.power
		m.rxBest[to] = d.power
		m.rxLatest[to] = d
		m.rxEnd[to] = endAt
		return
	}
	m.rxSum[to] += d.power
	if d.power > m.rxBest[to] {
		if cur := m.rxLatest[to]; cur != nil {
			cur.corrupted = true
		}
		m.rxBest[to] = d.power
		m.rxLatest[to] = d
	} else {
		d.corrupted = true
	}
	if endAt > m.rxEnd[to] {
		m.rxEnd[to] = endAt
	}
}

// obsScan is the pooled end-of-transmission eavesdropper scan: one per
// broadcast, delivering Observations to every observer in range.
type obsScan struct {
	m     *Medium
	from  topo.NodeID
	pos   topo.Point
	bytes int
}

// Run implements des.Runner: the transmission just ended; observers within
// range of the sender (at their position now) overhear it. Collisions do
// not hide the fact that a node keyed up: direction finding works on the
// carrier, not the payload. The observer set is snapshotted before the
// callbacks run, so an Overhear that adds or removes observers affects
// later transmissions, not the one being delivered. A sender that died
// while the frame was on the air stopped keying the carrier, so the
// transmission never completes and is not observed.
//
//slp:hotpath
func (s *obsScan) Run() {
	m := s.m
	if m.disabled[s.from] {
		m.freeScans = append(m.freeScans, s)
		return
	}
	obs := Observation{At: m.sim.Now(), From: s.from, Pos: s.pos, Bytes: s.bytes}
	audible := m.g.RadioRange() + 1e-9
	m.scanScratch = append(m.scanScratch[:0], m.observers...)
	for _, oe := range m.scanScratch {
		if s.pos.DistanceTo(oe.obs.Location()) <= audible {
			oe.obs.Overhear(obs)
		}
	}
	m.freeScans = append(m.freeScans, s)
}

// Option configures the medium.
type Option func(*Medium)

// WithChannel selects the physical channel model (default channel.Ideal).
func WithChannel(ch channel.Model) Option {
	return func(r *Medium) { r.ch = ch }
}

// WithLossModel selects a legacy binary loss model, adapted onto the
// channel interface (default Ideal). Kept for the pre-channel-registry
// call sites; new code should use WithChannel.
func WithLossModel(m LossModel) Option {
	return func(r *Medium) { r.ch = FromLossModel(m) }
}

// WithEnergyMeter attaches the per-node energy meter charged for every
// transmission and reception (default nil: charging off).
func WithEnergyMeter(em EnergyMeter) Option {
	return func(r *Medium) { r.meter = em }
}

// WithCollisions enables receiver-side collision corruption: two
// temporally overlapping transmissions audible at the same node destroy
// both receptions there.
func WithCollisions(enabled bool) Option {
	return func(r *Medium) { r.collisions = enabled }
}

// WithBitrate overrides the payload bitrate in bits per second.
func WithBitrate(bps int) Option {
	return func(r *Medium) { r.bitrate = bps }
}

// New builds a medium over graph g driven by sim, deriving its random
// stream from seed.
func New(sim *des.Simulator, g *topo.Graph, seed uint64, opts ...Option) *Medium {
	m := &Medium{
		sim:       sim,
		g:         g,
		ch:        channel.Ideal{},
		bitrate:   DefaultBitrate,
		overhead:  DefaultFrameOverhead,
		propDelay: DefaultPropagationDelay,
		receivers: make([]Receiver, g.Len()),
		disabled:  make([]bool, g.Len()),
		rxEnd:     make([]time.Duration, g.Len()),
		rxLatest:  make([]*delivery, g.Len()),
		rxSum:     make([]float64, g.Len()),
		rxBest:    make([]float64, g.Len()),
	}
	m.pcg.Seed(xrand.SeedsNamed(seed, "radio"))
	m.rng = xrand.Wrap(&m.pcg)
	for _, o := range opts {
		o(m)
	}
	m.capture, m.sinr = m.ch.Capture()
	m.ch.Reset(seed)
	return m
}

// Reset rewinds the medium for a fresh run on the same graph: the random
// stream is reseeded in place, the channel model swapped for the new run's
// configuration (and itself Reset to the new seed so per-link shadowing
// redraws), and all per-run state — failed nodes, collision windows, SINR
// accumulators, observers, counters — cleared. Registered receivers
// survive (they are wiring, not run state), as do the event, frame and
// scan pools, which is the point: a Reset medium broadcasts with warm
// pools from its first frame. The owning simulator must be Reset
// alongside so in-flight delivery events from the previous run are
// discarded. A nil channel selects channel.Ideal, mirroring New's
// default; a nil meter disables energy charging.
func (m *Medium) Reset(seed uint64, ch channel.Model, collisions bool, meter EnergyMeter) {
	if ch == nil {
		ch = channel.Ideal{}
	}
	m.ch = ch
	m.collisions = collisions
	m.meter = meter
	m.capture, m.sinr = ch.Capture()
	ch.Reset(seed)
	m.pcg.Seed(xrand.SeedsNamed(seed, "radio"))
	for i := range m.disabled {
		m.disabled[i] = false
		m.rxEnd[i] = 0
		m.rxLatest[i] = nil
		m.rxSum[i] = 0
		m.rxBest[i] = 0
	}
	clear(m.downLinks)
	m.observers = m.observers[:0]
	m.nextObsID = 0
	m.stats = Stats{}
}

// SetReceiver registers the frame consumer for node n.
func (m *Medium) SetReceiver(n topo.NodeID, r Receiver) {
	m.receivers[n] = r
}

// DisableNode fails node n: it no longer transmits or receives. Used for
// failure-injection experiments.
func (m *Medium) DisableNode(n topo.NodeID) { m.disabled[n] = true }

// EnableNode undoes DisableNode: node n transmits and receives again.
// Frames that were on the air while it was down stay lost — only
// transmissions whose reception window ends after the node is back count.
func (m *Medium) EnableNode(n topo.NodeID) { m.disabled[n] = false }

// NodeDisabled reports whether n has been failed.
func (m *Medium) NodeDisabled(n topo.NodeID) bool { return m.disabled[n] }

// linkKey packs an undirected link into a map key, ordering the endpoints
// so (a,b) and (b,a) address the same link.
func linkKey(a, b topo.NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// linkDown reports whether the undirected link a–b has been failed. The
// length guard keeps the common no-link-fault path free of map lookups.
//
//slp:hotpath
func (m *Medium) linkDown(a, b topo.NodeID) bool {
	return len(m.downLinks) != 0 && m.downLinks[linkKey(a, b)]
}

// DisableLink fails the undirected link a–b: frames no longer cross it in
// either direction, while both endpoints keep exchanging frames with their
// other neighbours. Used for persistent link-fault injection.
func (m *Medium) DisableLink(a, b topo.NodeID) {
	if m.downLinks == nil {
		m.downLinks = make(map[uint64]bool)
	}
	m.downLinks[linkKey(a, b)] = true
}

// EnableLink undoes DisableLink for the undirected link a–b.
func (m *Medium) EnableLink(a, b topo.NodeID) {
	delete(m.downLinks, linkKey(a, b))
}

// LinkDisabled reports whether the undirected link a–b has been failed.
func (m *Medium) LinkDisabled(a, b topo.NodeID) bool { return m.linkDown(a, b) }

// AddObserver registers an eavesdropper and returns an id usable with
// RemoveObserver.
func (m *Medium) AddObserver(o Observer) int {
	id := m.nextObsID
	m.nextObsID++
	m.observers = append(m.observers, observerEntry{id: id, obs: o})
	return id
}

// RemoveObserver unregisters an eavesdropper. Transmissions still on the
// air no longer reach it: audibility is evaluated at transmission end (see
// Observer).
func (m *Medium) RemoveObserver(id int) {
	for i, oe := range m.observers {
		if oe.id == id {
			m.observers = append(m.observers[:i], m.observers[i+1:]...)
			return
		}
	}
}

// Airtime returns the on-air duration of a payload of the given size.
//
//slp:hotpath
func (m *Medium) Airtime(bytes int) time.Duration {
	return m.overhead + time.Duration(bytes*8)*time.Second/time.Duration(m.bitrate)
}

// Stats returns a copy of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// --- pools ---

//slp:hotpath
func (m *Medium) getFrame(payload []byte) *frame {
	var f *frame
	if n := len(m.freeFrames); n > 0 {
		f = m.freeFrames[n-1]
		m.freeFrames[n-1] = nil
		m.freeFrames = m.freeFrames[:n-1]
	} else {
		f = &frame{}
	}
	f.buf = append(f.buf[:0], payload...)
	f.refs = 1 // the broadcast's own reference, dropped once fan-out ends
	return f
}

//slp:hotpath
func (m *Medium) releaseFrame(f *frame) {
	if f.refs--; f.refs == 0 {
		m.freeFrames = append(m.freeFrames, f)
	}
}

//slp:hotpath
func (m *Medium) getDelivery(f *frame, from, to topo.NodeID) *delivery {
	var d *delivery
	if n := len(m.freeDeliveries); n > 0 {
		d = m.freeDeliveries[n-1]
		m.freeDeliveries[n-1] = nil
		m.freeDeliveries = m.freeDeliveries[:n-1]
	} else {
		d = &delivery{m: m}
	}
	f.refs++
	d.f = f
	d.from = from
	d.to = to
	d.corrupted = false
	return d
}

//slp:hotpath
func (m *Medium) getScan(from topo.NodeID, pos topo.Point, bytes int) *obsScan {
	var s *obsScan
	if n := len(m.freeScans); n > 0 {
		s = m.freeScans[n-1]
		m.freeScans[n-1] = nil
		m.freeScans = m.freeScans[:n-1]
	} else {
		s = &obsScan{m: m}
	}
	s.from = from
	s.pos = pos
	s.bytes = bytes
	return s
}

// Broadcast transmits payload from node `from` to every node within radio
// range. Delivery happens at now + airtime + propagation. The payload
// slice is copied; callers may reuse their buffer. Steady state, the whole
// fan-out allocates nothing: deliveries, observer scans and payload
// buffers are recycled through the medium's pools.
//
//slp:hotpath
func (m *Medium) Broadcast(from topo.NodeID, payload []byte) {
	if !m.g.Valid(from) {
		//lint:ignore hotpath cold panic path, only reached on caller bugs
		panic(fmt.Sprintf("radio: broadcast from invalid node %d", from))
	}
	if m.disabled[from] {
		return
	}
	if m.meter != nil {
		m.meter.ChargeTx(from, len(payload))
		if m.disabled[from] {
			// The battery died keying up this very frame: the carrier
			// never formed, so nothing is transmitted or observed.
			return
		}
	}
	m.stats.Broadcasts++
	m.stats.BytesSent += uint64(len(payload))

	now := m.sim.Now()
	airtime := m.Airtime(len(payload))
	delay := airtime + m.propDelay
	endAt := now + delay
	senderPos := m.g.Position(from)
	f := m.getFrame(payload)

	// Schedule deliveries to in-range nodes, applying loss and collisions.
	for _, to := range m.g.Neighbors(from) {
		if m.disabled[to] || m.linkDown(from, to) {
			continue
		}
		dist := senderPos.DistanceTo(m.g.Position(to))
		if m.ch.Lost(from, to, dist, m.rng) {
			m.stats.LossDrops++
			continue
		}
		d := m.getDelivery(f, from, to)
		if m.sinr {
			d.power = m.ch.RxPowerMW(from, to, dist)
			m.contend(d, now, endAt)
		} else if m.collisions {
			if m.rxEnd[to] > now {
				// Overlaps the reception window still open at `to`. Every
				// reception in the air here is pairwise-overlapping with
				// the new one; all but the latest-ending were corrupted on
				// arrival, so corrupting that one plus the newcomer keeps
				// the invariant "a clean in-flight reception is the sole
				// in-flight reception".
				d.corrupted = true
				if cur := m.rxLatest[to]; cur != nil {
					cur.corrupted = true
				}
				if endAt > m.rxEnd[to] {
					m.rxEnd[to] = endAt
					m.rxLatest[to] = d
				}
			} else {
				m.rxEnd[to] = endAt
				m.rxLatest[to] = d
			}
		}
		m.sim.ScheduleRunnerAfter(delay, d)
	}

	// Eavesdroppers: one scan event at end of transmission, where both the
	// observer set and observer positions are evaluated (see Observer).
	// Scheduled unconditionally — an observer registered while the frame
	// is on the air must hear it, as the convention promises.
	m.sim.ScheduleRunnerAfter(delay, m.getScan(from, senderPos, len(payload)))

	m.releaseFrame(f)
}
