// Package radio simulates the shared wireless medium: broadcast over the
// unit-disk connectivity of a topology, configurable loss models, a
// receiver-side collision model, and eavesdropper taps through which the
// attacker overhears transmissions. Together with internal/des it replaces
// the TOSSIM radio stack used by the paper's evaluation.
package radio

import (
	"fmt"
	"math/rand/v2"
	"time"

	"slpdas/internal/des"
	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

// IEEE 802.15.4-flavoured timing defaults: 250 kbit/s payload rate plus a
// fixed synchronisation overhead per frame.
const (
	// DefaultBitrate is the payload bitrate in bits per second.
	DefaultBitrate = 250_000
	// DefaultFrameOverhead is the preamble/SFD/PHY-header airtime.
	DefaultFrameOverhead = 160 * time.Microsecond
	// DefaultPropagationDelay is the (negligible) propagation latency.
	DefaultPropagationDelay = time.Microsecond
)

// Receiver consumes frames delivered to a node.
type Receiver func(from topo.NodeID, payload []byte)

// Observation is what an eavesdropper perceives about one transmission:
// who transmitted, from where, and when — never the payload (the paper
// assumes encrypted content; only context leaks).
type Observation struct {
	At    time.Duration // time the transmission ended (fully observed)
	From  topo.NodeID
	Pos   topo.Point
	Bytes int
}

// Observer is notified of every transmission whose sender is within radio
// range of the observer's current position.
type Observer interface {
	// Location returns the observer's current position.
	Location() topo.Point
	// Overhear is called once per audible transmission.
	Overhear(obs Observation)
}

// Stats aggregates medium-level counters for the overhead experiment.
type Stats struct {
	Broadcasts     uint64 // frames transmitted
	BytesSent      uint64 // payload bytes transmitted
	Deliveries     uint64 // frame receptions delivered to receivers
	LossDrops      uint64 // receptions dropped by the loss model
	CollisionDrops uint64 // receptions dropped by collisions
}

// Medium is the shared broadcast channel. It is not safe for concurrent
// use; the simulator is single-threaded by design.
type Medium struct {
	sim        *des.Simulator
	g          *topo.Graph
	loss       LossModel
	collisions bool
	rng        *rand.Rand
	bitrate    int
	overhead   time.Duration
	propDelay  time.Duration

	receivers []Receiver
	disabled  []bool
	observers map[int]Observer
	nextObsID int

	// rxBusy tracks, per node, the end time of the latest reception overlap
	// window and whether the current window is corrupted.
	rxEnd       []time.Duration
	rxCorrupted []bool
	rxPending   []*pendingRx

	stats Stats
}

type pendingRx struct {
	corrupted bool
}

// Option configures the medium.
type Option func(*Medium)

// WithLossModel selects the channel loss model (default Ideal).
func WithLossModel(m LossModel) Option {
	return func(r *Medium) { r.loss = m }
}

// WithCollisions enables receiver-side collision corruption: two
// temporally overlapping transmissions audible at the same node destroy
// both receptions there.
func WithCollisions(enabled bool) Option {
	return func(r *Medium) { r.collisions = enabled }
}

// WithBitrate overrides the payload bitrate in bits per second.
func WithBitrate(bps int) Option {
	return func(r *Medium) { r.bitrate = bps }
}

// New builds a medium over graph g driven by sim, deriving its random
// stream from seed.
func New(sim *des.Simulator, g *topo.Graph, seed uint64, opts ...Option) *Medium {
	m := &Medium{
		sim:         sim,
		g:           g,
		loss:        Ideal{},
		rng:         xrand.NewNamed(seed, "radio"),
		bitrate:     DefaultBitrate,
		overhead:    DefaultFrameOverhead,
		propDelay:   DefaultPropagationDelay,
		receivers:   make([]Receiver, g.Len()),
		disabled:    make([]bool, g.Len()),
		observers:   make(map[int]Observer),
		rxEnd:       make([]time.Duration, g.Len()),
		rxCorrupted: make([]bool, g.Len()),
		rxPending:   make([]*pendingRx, g.Len()),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// SetReceiver registers the frame consumer for node n.
func (m *Medium) SetReceiver(n topo.NodeID, r Receiver) {
	m.receivers[n] = r
}

// DisableNode fails node n: it no longer transmits or receives. Used for
// failure-injection experiments.
func (m *Medium) DisableNode(n topo.NodeID) { m.disabled[n] = true }

// NodeDisabled reports whether n has been failed.
func (m *Medium) NodeDisabled(n topo.NodeID) bool { return m.disabled[n] }

// AddObserver registers an eavesdropper and returns an id usable with
// RemoveObserver.
func (m *Medium) AddObserver(o Observer) int {
	id := m.nextObsID
	m.nextObsID++
	m.observers[id] = o
	return id
}

// RemoveObserver unregisters an eavesdropper.
func (m *Medium) RemoveObserver(id int) { delete(m.observers, id) }

// Airtime returns the on-air duration of a payload of the given size.
func (m *Medium) Airtime(bytes int) time.Duration {
	return m.overhead + time.Duration(bytes*8)*time.Second/time.Duration(m.bitrate)
}

// Stats returns a copy of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// Broadcast transmits payload from node `from` to every node within radio
// range. Delivery happens at now + airtime + propagation. The payload
// slice is copied; callers may reuse their buffer.
func (m *Medium) Broadcast(from topo.NodeID, payload []byte) {
	if !m.g.Valid(from) {
		panic(fmt.Sprintf("radio: broadcast from invalid node %d", from))
	}
	if m.disabled[from] {
		return
	}
	m.stats.Broadcasts++
	m.stats.BytesSent += uint64(len(payload))

	buf := append([]byte(nil), payload...)
	now := m.sim.Now()
	airtime := m.Airtime(len(buf))
	endAt := now + airtime + m.propDelay
	senderPos := m.g.Position(from)

	// Schedule deliveries to in-range nodes, applying loss and collisions.
	for _, to := range m.g.Neighbors(from) {
		to := to
		if m.disabled[to] {
			continue
		}
		if m.loss.Lost(senderPos.DistanceTo(m.g.Position(to)), m.rng) {
			m.stats.LossDrops++
			continue
		}
		rx := &pendingRx{}
		if m.collisions {
			if m.rxEnd[to] > now {
				// Overlapping with an ongoing reception: both corrupted.
				rx.corrupted = true
				if m.rxPending[to] != nil {
					m.rxPending[to].corrupted = true
				}
				if endAt > m.rxEnd[to] {
					m.rxEnd[to] = endAt
					m.rxPending[to] = rx
				}
			} else {
				m.rxEnd[to] = endAt
				m.rxPending[to] = rx
			}
		}
		m.sim.ScheduleAfter(airtime+m.propDelay, func() {
			if m.disabled[to] {
				return
			}
			if rx.corrupted {
				m.stats.CollisionDrops++
				return
			}
			if recv := m.receivers[to]; recv != nil {
				m.stats.Deliveries++
				recv(from, buf)
			}
		})
	}

	// Eavesdroppers: anyone within radio range of the sender observes the
	// transmission (collisions do not hide the fact that a node keyed up;
	// direction finding works on the carrier, not the payload). Iterate in
	// id order so event scheduling stays deterministic.
	for id := 0; id < m.nextObsID; id++ {
		obs, ok := m.observers[id]
		if !ok {
			continue
		}
		if senderPos.DistanceTo(obs.Location()) <= m.g.RadioRange()+1e-9 {
			size := len(buf)
			m.sim.ScheduleAfter(airtime+m.propDelay, func() {
				obs.Overhear(Observation{At: m.sim.Now(), From: from, Pos: senderPos, Bytes: size})
			})
		}
	}
}
