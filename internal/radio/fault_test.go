package radio

import (
	"testing"
	"time"

	"slpdas/internal/topo"
)

// midFlight returns a time strictly inside the reception window of a
// payload broadcast at t=0.
func midFlight(m *Medium, bytes int) time.Duration {
	return (m.Airtime(bytes) + m.propDelay) / 2
}

// TestSenderDiesMidFrameDropsTail pins the crash semantics the fault
// subsystem builds on: a sender that dies while its frame is on the air
// stops keying the carrier, so the tail of the frame never arrives and the
// reception must not be delivered.
func TestSenderDiesMidFrameDropsTail(t *testing.T) {
	sim, _, m := newTestMedium(t, 3)
	payload := make([]byte, 50)
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	sim.ScheduleAfter(0, func() { m.Broadcast(0, payload) })
	sim.ScheduleAfter(midFlight(m, len(payload)), func() { m.DisableNode(0) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 0 {
		t.Errorf("delivered %d receptions from a sender that died mid-frame, want 0", delivered)
	}
	if got := m.Stats().Deliveries; got != 0 {
		t.Errorf("Stats().Deliveries = %d, want 0", got)
	}
}

// TestReceiverDiesMidFlightDropsReception pins the receiver side: an
// in-flight reception at a node that dies before the reception window ends
// must not count.
func TestReceiverDiesMidFlightDropsReception(t *testing.T) {
	sim, _, m := newTestMedium(t, 3)
	payload := make([]byte, 50)
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	sim.ScheduleAfter(0, func() { m.Broadcast(0, payload) })
	sim.ScheduleAfter(midFlight(m, len(payload)), func() { m.DisableNode(1) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 0 {
		t.Errorf("delivered %d receptions at a receiver that died mid-flight, want 0", delivered)
	}
}

type recordingObserver struct {
	at  topo.Point
	got []Observation
}

func (o *recordingObserver) Location() topo.Point     { return o.at }
func (o *recordingObserver) Overhear(obs Observation) { o.got = append(o.got, obs) }

// TestSenderDiesMidFrameNotObserved: direction finding works on the
// carrier, and a dead sender's carrier stopped — the attacker must not
// finish observing a transmission whose sender died mid-frame.
func TestSenderDiesMidFrameNotObserved(t *testing.T) {
	sim, g, m := newTestMedium(t, 3)
	obs := &recordingObserver{at: g.Position(0)}
	m.AddObserver(obs)
	payload := make([]byte, 50)
	sim.ScheduleAfter(0, func() { m.Broadcast(0, payload) })
	sim.ScheduleAfter(midFlight(m, len(payload)), func() { m.DisableNode(0) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(obs.got) != 0 {
		t.Errorf("observer overheard %d transmissions from a sender that died mid-frame, want 0", len(obs.got))
	}
}

// TestEnableNodeRestoresTraffic: EnableNode undoes DisableNode, and only
// frames broadcast after re-enablement are delivered.
func TestEnableNodeRestoresTraffic(t *testing.T) {
	sim, _, m := newTestMedium(t, 3)
	payload := make([]byte, 10)
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	m.DisableNode(0)
	sim.ScheduleAfter(0, func() { m.Broadcast(0, payload) }) // suppressed: sender down
	sim.ScheduleAfter(time.Millisecond, func() { m.EnableNode(0) })
	sim.ScheduleAfter(2*time.Millisecond, func() { m.Broadcast(0, payload) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d receptions, want exactly the post-recovery broadcast", delivered)
	}
	if m.NodeDisabled(0) {
		t.Error("NodeDisabled(0) still true after EnableNode")
	}
}

// TestDisableLinkBlocksBothDirections: a failed link carries no frames in
// either direction while the endpoints keep talking to other neighbours.
func TestDisableLinkBlocksBothDirections(t *testing.T) {
	sim, g, m := newTestMedium(t, 3)
	centre := topo.GridIndex(3, 1, 1)
	right := topo.GridIndex(3, 1, 2)
	up := topo.GridIndex(3, 0, 1)
	received := make(map[topo.NodeID]int)
	for _, n := range []topo.NodeID{centre, right, up} {
		n := n
		m.SetReceiver(n, func(topo.NodeID, []byte) { received[n]++ })
	}
	m.DisableLink(centre, right)
	if !m.LinkDisabled(right, centre) {
		t.Fatal("LinkDisabled not symmetric")
	}
	payload := make([]byte, 10)
	sim.ScheduleAfter(0, func() { m.Broadcast(centre, payload) })
	sim.ScheduleAfter(time.Millisecond, func() { m.Broadcast(right, payload) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if received[right] != 0 {
		t.Errorf("frame crossed the failed link centre→right %d times", received[right])
	}
	if received[centre] != 0 {
		t.Errorf("frame crossed the failed link right→centre %d times", received[centre])
	}
	if received[up] != 1 {
		t.Errorf("unrelated neighbour received %d frames, want 1", received[up])
	}
	_ = g
}

// TestLinkFailsMidFlightDropsFrame: a link that fails while a frame is on
// the air loses that frame — the reception window ends on a dead link.
func TestLinkFailsMidFlightDropsFrame(t *testing.T) {
	sim, _, m := newTestMedium(t, 3)
	payload := make([]byte, 50)
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	sim.ScheduleAfter(0, func() { m.Broadcast(0, payload) })
	sim.ScheduleAfter(midFlight(m, len(payload)), func() { m.DisableLink(0, 1) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 0 {
		t.Errorf("delivered %d receptions across a link that failed mid-flight, want 0", delivered)
	}
}

// TestEnableLinkRestoresLink: EnableLink reopens a failed link.
func TestEnableLinkRestoresLink(t *testing.T) {
	sim, _, m := newTestMedium(t, 3)
	payload := make([]byte, 10)
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	m.DisableLink(0, 1)
	m.EnableLink(1, 0) // symmetric undo
	sim.ScheduleAfter(0, func() { m.Broadcast(0, payload) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d receptions after EnableLink, want 1", delivered)
	}
}

// TestResetClearsDownLinks: link faults are run state, cleared by Reset.
func TestResetClearsDownLinks(t *testing.T) {
	sim, _, m := newTestMedium(t, 3)
	m.DisableLink(0, 1)
	m.Reset(1, nil, false, nil)
	if m.LinkDisabled(0, 1) {
		t.Error("link fault survived Reset")
	}
	payload := make([]byte, 10)
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	sim.ScheduleAfter(0, func() { m.Broadcast(0, payload) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d receptions after Reset, want 1", delivered)
	}
}
