package radio

import (
	"testing"
	"time"

	"slpdas/internal/channel"
	"slpdas/internal/des"
	"slpdas/internal/topo"
)

// sinrMedium builds a line topology driven under a parsed channel spec.
func sinrMedium(t *testing.T, n int, spacing, radioRange float64, spec string) (*des.Simulator, *Medium) {
	t.Helper()
	g, err := topo.Line(n, spacing, radioRange)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	ch, err := channel.Parse(spec)
	if err != nil {
		t.Fatalf("channel.Parse(%q): %v", spec, err)
	}
	sim := des.New()
	return sim, New(sim, g, 1, WithChannel(ch))
}

// TestSINRCaptureStrongerFrameSurvives: two simultaneous transmissions at
// the same receiver, one from 4.5m and one from 9m away. Under the binary
// collision model both would die; under SINR capture the near frame's
// power exceeds threshold × (noise + far frame), so it is delivered and
// counted as a capture win, while the weaker frame is corrupted.
// Exponent 2.4 gives a power ratio of 2^2.4 ≈ 5.3 against the sinr:3
// threshold of 10^0.3 ≈ 2.0; sigma 0 keeps powers deterministic.
func TestSINRCaptureStrongerFrameSurvives(t *testing.T) {
	// Line 0-1-2-3 at 4.5m spacing, range 9m: node 1 hears node 0 at
	// 4.5m and node 3 at 9m.
	sim, m := sinrMedium(t, 4, 4.5, 9, "logdist:2.4:0@sinr:3")
	var got []topo.NodeID
	m.SetReceiver(1, func(from topo.NodeID, _ []byte) { got = append(got, from) })
	sim.ScheduleAfter(0, func() {
		m.Broadcast(0, []byte{1})
		m.Broadcast(3, []byte{2})
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("node 1 received from %v, want the stronger frame from node 0 only", got)
	}
	st := m.Stats()
	if st.CaptureWins == 0 {
		t.Error("no capture win counted for the surviving frame")
	}
	if st.CollisionDrops == 0 {
		t.Error("the out-powered frame was not corrupted")
	}
}

// TestSINRNearEqualPowersBothDrop: two equidistant simultaneous senders.
// Neither frame's power can beat threshold × (noise + the other), so the
// window delivers nothing: the weaker-or-equal newcomer corrupts on
// contention and the window owner fails the capture test at delivery.
func TestSINRNearEqualPowersBothDrop(t *testing.T) {
	// Line 0-1-2 at 4.5m spacing, range 4.5m: node 1 hears both ends at
	// exactly 4.5m.
	sim, m := sinrMedium(t, 3, 4.5, 4.5, "logdist:2.4:0@sinr:3")
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	sim.ScheduleAfter(0, func() {
		m.Broadcast(0, []byte{1})
		m.Broadcast(2, []byte{2})
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d frames through a symmetric collision, want 0", delivered)
	}
	st := m.Stats()
	if st.SINRDrops != 1 {
		t.Errorf("SINRDrops = %d, want 1 (the window owner failing capture)", st.SINRDrops)
	}
	if st.CollisionDrops != 1 {
		t.Errorf("CollisionDrops = %d, want 1 (the contention loser)", st.CollisionDrops)
	}
	if st.CaptureWins != 0 {
		t.Errorf("CaptureWins = %d, want 0", st.CaptureWins)
	}
}

// TestSINRLoneFrameDelivers: with no interference the capture test
// reduces to power ≥ threshold × noise, which any in-sensitivity frame
// passes by a huge margin — SINR must not tax uncontended traffic.
func TestSINRLoneFrameDelivers(t *testing.T) {
	sim, m := sinrMedium(t, 2, 4.5, 4.5, "logdist:2.4:0@sinr:3")
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	sim.ScheduleAfter(0, func() { m.Broadcast(0, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if st := m.Stats(); st.CaptureWins != 0 || st.SINRDrops != 0 {
		t.Errorf("lone frame produced CaptureWins=%d SINRDrops=%d, want 0/0", st.CaptureWins, st.SINRDrops)
	}
}

// testMeter records energy charges and can kill a node mid-charge the way
// core.Network does on battery depletion.
type testMeter struct {
	m        *Medium
	txCalls  []int // payload bytes per ChargeTx
	rxCalls  []int // payload bytes per ChargeRx
	killTxAt int   // kill the sender on the n-th ChargeTx (1-based; 0 = never)
}

func (em *testMeter) ChargeTx(n topo.NodeID, bytes int) {
	em.txCalls = append(em.txCalls, bytes)
	if em.killTxAt > 0 && len(em.txCalls) == em.killTxAt {
		em.m.DisableNode(n)
	}
}

func (em *testMeter) ChargeRx(n topo.NodeID, bytes int) {
	em.rxCalls = append(em.rxCalls, bytes)
}

// TestEnergyMeterChargesTxAndRx: one broadcast on a 2-node line bills the
// sender once and the receiver once, both for the payload size, and the
// receiver is billed even when the frame is corrupted — the radio pays
// for listening regardless of the verdict.
func TestEnergyMeterChargesTxAndRx(t *testing.T) {
	g, err := topo.Line(2, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	sim := des.New()
	em := &testMeter{}
	m := New(sim, g, 1, WithEnergyMeter(em))
	em.m = m
	m.SetReceiver(1, func(topo.NodeID, []byte) {})
	sim.ScheduleAfter(0, func() { m.Broadcast(0, []byte{1, 2, 3}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(em.txCalls) != 1 || em.txCalls[0] != 3 {
		t.Errorf("ChargeTx calls = %v, want one charge of 3 bytes", em.txCalls)
	}
	if len(em.rxCalls) != 1 || em.rxCalls[0] != 3 {
		t.Errorf("ChargeRx calls = %v, want one charge of 3 bytes", em.rxCalls)
	}
}

// TestEnergyMeterChargesRxForCorruptedFrames: colliding frames are still
// paid for by every receiver in range.
func TestEnergyMeterChargesRxForCorruptedFrames(t *testing.T) {
	g, err := topo.Line(3, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	sim := des.New()
	em := &testMeter{}
	m := New(sim, g, 1, WithCollisions(true), WithEnergyMeter(em))
	em.m = m
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	sim.ScheduleAfter(0, func() {
		m.Broadcast(0, []byte{1})
		m.Broadcast(2, []byte{2})
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d frames through a collision, want 0", delivered)
	}
	if len(em.rxCalls) != 2 {
		t.Errorf("ChargeRx calls = %d, want 2: both corrupted receptions are paid for", len(em.rxCalls))
	}
}

// TestEnergyMeterSelfKillOnTx: when the ChargeTx callback depletes the
// sender (as core.Network's battery does), the carrier never forms — no
// frame counted, nothing delivered, nothing observed.
func TestEnergyMeterSelfKillOnTx(t *testing.T) {
	g, err := topo.Line(2, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	sim := des.New()
	em := &testMeter{killTxAt: 1}
	m := New(sim, g, 1, WithEnergyMeter(em))
	em.m = m
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	heard := 0
	obsID := m.AddObserver(&staticObserver{pos: g.Position(0), heard: &heard})
	defer m.RemoveObserver(obsID)
	sim.ScheduleAfter(0, func() { m.Broadcast(0, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(em.txCalls) != 1 {
		t.Fatalf("ChargeTx calls = %d, want 1: the fatal keying attempt is still billed", len(em.txCalls))
	}
	if delivered != 0 || heard != 0 || len(em.rxCalls) != 0 {
		t.Errorf("delivered=%d heard=%d rxCharges=%d after a tx self-kill, want all 0", delivered, heard, len(em.rxCalls))
	}
	if st := m.Stats(); st.Broadcasts != 0 {
		t.Errorf("Broadcasts = %d, want 0: the carrier never formed", st.Broadcasts)
	}
}

type staticObserver struct {
	pos   topo.Point
	heard *int
}

func (o *staticObserver) Location() topo.Point { return o.pos }
func (o *staticObserver) Overhear(Observation) { *o.heard++ }

// TestSINRWindowResetBetweenPeriods: sequential, non-overlapping frames
// through an SINR channel never interfere — each opens a fresh window.
func TestSINRWindowResetBetweenPeriods(t *testing.T) {
	sim, m := sinrMedium(t, 2, 4.5, 4.5, "logdist:2.4:0@sinr:3")
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Second
		if _, err := sim.Schedule(at, func() { m.Broadcast(0, []byte{7}) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 10 {
		t.Fatalf("delivered = %d, want 10", delivered)
	}
	if st := m.Stats(); st.SINRDrops != 0 || st.CollisionDrops != 0 {
		t.Errorf("sequential frames produced SINRDrops=%d CollisionDrops=%d, want 0/0", st.SINRDrops, st.CollisionDrops)
	}
}
