package radio

import (
	"math"
	"testing"
	"time"

	"slpdas/internal/des"
	"slpdas/internal/topo"
	"slpdas/internal/xrand"
)

func newTestMedium(t *testing.T, side int, opts ...Option) (*des.Simulator, *topo.Graph, *Medium) {
	t.Helper()
	g, err := topo.DefaultGrid(side)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sim := des.New()
	return sim, g, New(sim, g, 1, opts...)
}

func TestBroadcastReachesOnlyNeighbours(t *testing.T) {
	sim, g, m := newTestMedium(t, 5)
	received := make(map[topo.NodeID][]byte)
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		n := n
		m.SetReceiver(n, func(from topo.NodeID, payload []byte) {
			received[n] = payload
		})
	}
	centre := topo.GridIndex(5, 2, 2)
	sim.ScheduleAfter(0, func() { m.Broadcast(centre, []byte{1, 2, 3}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(received) != 4 {
		t.Fatalf("received by %d nodes, want the 4 cardinal neighbours", len(received))
	}
	for _, n := range g.Neighbors(centre) {
		if string(received[n]) != "\x01\x02\x03" {
			t.Errorf("neighbour %d payload = %v", n, received[n])
		}
	}
	if _, self := received[centre]; self {
		t.Error("sender received its own broadcast")
	}
}

func TestAirtimeScalesWithPayload(t *testing.T) {
	_, _, m := newTestMedium(t, 3)
	small := m.Airtime(10)
	big := m.Airtime(100)
	if big <= small {
		t.Errorf("airtime(100)=%v <= airtime(10)=%v", big, small)
	}
	// 100 bytes at 250kbps = 3.2ms payload time plus overhead.
	want := DefaultFrameOverhead + 3200*time.Microsecond
	if big != want {
		t.Errorf("airtime(100) = %v, want %v", big, want)
	}
}

func TestDeliveryDelayedByAirtime(t *testing.T) {
	sim, _, m := newTestMedium(t, 3)
	var deliveredAt time.Duration
	m.SetReceiver(1, func(topo.NodeID, []byte) { deliveredAt = sim.Now() })
	payload := make([]byte, 50)
	sim.ScheduleAfter(0, func() { m.Broadcast(0, payload) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := m.Airtime(50) + DefaultPropagationDelay
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestBernoulliLossRate(t *testing.T) {
	g, err := topo.Line(2, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	sim := des.New()
	m := New(sim, g, 1, WithLossModel(Bernoulli{P: 0.3}))
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	const trials = 5000
	for i := 0; i < trials; i++ {
		at := time.Duration(i) * time.Second
		if _, err := sim.Schedule(at, func() { m.Broadcast(0, []byte{9}) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rate := float64(delivered) / trials
	if math.Abs(rate-0.7) > 0.03 {
		t.Errorf("delivery rate = %.3f, want ≈0.70", rate)
	}
	if m.Stats().LossDrops != uint64(trials-delivered) {
		t.Errorf("LossDrops = %d, want %d", m.Stats().LossDrops, trials-delivered)
	}
}

func TestIdealLossless(t *testing.T) {
	sim, _, m := newTestMedium(t, 2)
	delivered := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { delivered++ })
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Second
		if _, err := sim.Schedule(at, func() { m.Broadcast(0, []byte{1}) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 100 {
		t.Errorf("delivered = %d, want 100", delivered)
	}
}

func TestRSSINoiseMonotonicInDistance(t *testing.T) {
	model := DefaultRSSINoise()
	r := xrand.NewNamed(3, "rssi-test")
	lossAt := func(d float64) float64 {
		lost := 0
		const trials = 4000
		for i := 0; i < trials; i++ {
			if model.Lost(d, r) {
				lost++
			}
		}
		return float64(lost) / trials
	}
	near := lossAt(4.5)
	far := lossAt(30)
	if near > 0.05 {
		t.Errorf("loss at 4.5m = %.3f, want <5%%", near)
	}
	if far < near {
		t.Errorf("loss at 30m (%.3f) < loss at 4.5m (%.3f); want monotone increase", far, near)
	}
}

func TestCollisionCorruptsBothFrames(t *testing.T) {
	// Line 0-1-2: node 1 hears both 0 and 2. Simultaneous transmissions
	// must collide at 1 but node 0 and 2 (each hearing only one frame)
	// still receive.
	g, err := topo.Line(3, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	sim := des.New()
	m := New(sim, g, 1, WithCollisions(true))
	got := map[topo.NodeID]int{}
	for n := topo.NodeID(0); n < 3; n++ {
		n := n
		m.SetReceiver(n, func(topo.NodeID, []byte) { got[n]++ })
	}
	sim.ScheduleAfter(0, func() {
		m.Broadcast(0, make([]byte, 20))
		m.Broadcast(2, make([]byte, 20))
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got[1] != 0 {
		t.Errorf("middle node received %d frames, want 0 (collision)", got[1])
	}
	if m.Stats().CollisionDrops != 2 {
		t.Errorf("CollisionDrops = %d, want 2", m.Stats().CollisionDrops)
	}
}

func TestNoCollisionWhenSeparatedInTime(t *testing.T) {
	g, err := topo.Line(3, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	sim := des.New()
	m := New(sim, g, 1, WithCollisions(true))
	count := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { count++ })
	sim.ScheduleAfter(0, func() { m.Broadcast(0, make([]byte, 20)) })
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(2, make([]byte, 20)) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 2 {
		t.Errorf("received %d, want 2 (no temporal overlap)", count)
	}
}

func TestThreeTransmissionTailOverlap(t *testing.T) {
	// Node 4 (centre of a 3×3 grid) hears three receptions:
	//
	//	A (long)  |------------------|
	//	B (short)    |----|
	//	C (late)            |----|
	//
	// A↔B overlap, so both are corrupted. C starts after B has already
	// ended but still inside A's tail, so C and A are corrupted — C must
	// not be charged against the (already delivered) B, and B's earlier
	// corruption must not leak onto receptions that never overlapped it.
	// All three frames die; CollisionDrops counts each one.
	g, err := topo.DefaultGrid(3)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sim := des.New()
	m := New(sim, g, 1, WithCollisions(true))
	centre := topo.GridIndex(3, 1, 1)
	got := 0
	m.SetReceiver(centre, func(topo.NodeID, []byte) { got++ })
	// Fail the corner nodes so the three senders' frames meet only at the
	// centre and the global drop counter isolates that receiver.
	for _, corner := range []topo.NodeID{0, 2, 6, 8} {
		m.DisableNode(corner)
	}
	n := g.Neighbors(centre) // 4 cardinal neighbours, sorted

	// A: 500 bytes ≈ 16.2 ms airtime. B at 2 ms: 100 bytes ≈ 3.4 ms.
	// C at 8 ms (after B ended at ~5.4 ms, inside A's tail): 100 bytes.
	sim.ScheduleAfter(0, func() { m.Broadcast(n[0], make([]byte, 500)) })
	sim.ScheduleAfter(2*time.Millisecond, func() { m.Broadcast(n[1], make([]byte, 100)) })
	sim.ScheduleAfter(8*time.Millisecond, func() { m.Broadcast(n[2], make([]byte, 100)) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 0 {
		t.Errorf("centre received %d frames, want 0 (all three overlap pairwise with A)", got)
	}
	if drops := m.Stats().CollisionDrops; drops != 3 {
		t.Errorf("CollisionDrops = %d, want 3", drops)
	}
}

func TestTailTransmissionAfterWindowCloses(t *testing.T) {
	// Same shape, but C starts after A's window has fully closed: C must
	// arrive clean even though the collision state at the receiver was
	// touched twice before.
	g, err := topo.DefaultGrid(3)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sim := des.New()
	m := New(sim, g, 1, WithCollisions(true))
	centre := topo.GridIndex(3, 1, 1)
	got := 0
	m.SetReceiver(centre, func(topo.NodeID, []byte) { got++ })
	for _, corner := range []topo.NodeID{0, 2, 6, 8} {
		m.DisableNode(corner)
	}
	n := g.Neighbors(centre)

	sim.ScheduleAfter(0, func() { m.Broadcast(n[0], make([]byte, 500)) })
	sim.ScheduleAfter(2*time.Millisecond, func() { m.Broadcast(n[1], make([]byte, 100)) })
	sim.ScheduleAfter(30*time.Millisecond, func() { m.Broadcast(n[2], make([]byte, 100)) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 1 {
		t.Errorf("centre received %d frames, want 1 (only the late clean frame)", got)
	}
	if drops := m.Stats().CollisionDrops; drops != 2 {
		t.Errorf("CollisionDrops = %d, want 2", drops)
	}
}

func TestCollisionsDisabledByDefault(t *testing.T) {
	g, err := topo.Line(3, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	sim := des.New()
	m := New(sim, g, 1)
	count := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { count++ })
	sim.ScheduleAfter(0, func() {
		m.Broadcast(0, make([]byte, 20))
		m.Broadcast(2, make([]byte, 20))
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 2 {
		t.Errorf("received %d, want 2 with collisions disabled", count)
	}
}

type fixedObserver struct {
	pos  topo.Point
	seen []Observation
}

func (o *fixedObserver) Location() topo.Point    { return o.pos }
func (o *fixedObserver) Overhear(ob Observation) { o.seen = append(o.seen, ob) }

type nopObserver struct{ pos topo.Point }

func (o nopObserver) Location() topo.Point { return o.pos }
func (o nopObserver) Overhear(Observation) {}

func TestObserverHearsOnlyInRange(t *testing.T) {
	sim, g, m := newTestMedium(t, 5)
	nearSink := &fixedObserver{pos: g.Position(topo.GridIndex(5, 2, 2))}
	farAway := &fixedObserver{pos: topo.Point{X: 1000, Y: 1000}}
	m.AddObserver(nearSink)
	m.AddObserver(farAway)
	// A neighbour of the centre transmits.
	sim.ScheduleAfter(0, func() { m.Broadcast(topo.GridIndex(5, 2, 1), []byte{1, 2}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(nearSink.seen) != 1 {
		t.Fatalf("near observer heard %d transmissions, want 1", len(nearSink.seen))
	}
	obs := nearSink.seen[0]
	if obs.From != topo.GridIndex(5, 2, 1) || obs.Bytes != 2 {
		t.Errorf("observation = %+v", obs)
	}
	if len(farAway.seen) != 0 {
		t.Errorf("far observer heard %d transmissions, want 0", len(farAway.seen))
	}
}

func TestObserverHearsColocatedSender(t *testing.T) {
	sim, g, m := newTestMedium(t, 5)
	at := topo.GridIndex(5, 1, 1)
	obs := &fixedObserver{pos: g.Position(at)}
	m.AddObserver(obs)
	sim.ScheduleAfter(0, func() { m.Broadcast(at, []byte{7}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(obs.seen) != 1 {
		t.Errorf("co-located observer heard %d, want 1 (hears the node it sits at)", len(obs.seen))
	}
}

func TestRemoveObserver(t *testing.T) {
	sim, g, m := newTestMedium(t, 3)
	obs := &fixedObserver{pos: g.Position(0)}
	id := m.AddObserver(obs)
	m.RemoveObserver(id)
	sim.ScheduleAfter(0, func() { m.Broadcast(0, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(obs.seen) != 0 {
		t.Errorf("removed observer still heard %d transmissions", len(obs.seen))
	}
}

func TestMovingObserverJudgedAtTransmissionEnd(t *testing.T) {
	// Regression: audibility used to be evaluated against the observer's
	// position at transmit start while Observation.At is the transmission
	// end, so an observer relocating mid-frame was judged at a position it
	// no longer occupied. The convention (see Observer) is end-of-
	// transmission: where the observer is when the frame completes decides
	// whether it hears the frame.
	sim, g, m := newTestMedium(t, 5)
	sender := topo.GridIndex(5, 2, 2)
	inRange := g.Position(sender)
	outOfRange := topo.Point{X: 1000, Y: 1000}

	leaving := &fixedObserver{pos: inRange}
	arriving := &fixedObserver{pos: outOfRange}
	m.AddObserver(leaving)
	m.AddObserver(arriving)

	payload := make([]byte, 200) // several ms on the air
	sim.ScheduleAfter(0, func() { m.Broadcast(sender, payload) })
	// Mid-frame, the two observers swap positions.
	sim.ScheduleAfter(m.Airtime(len(payload))/2, func() {
		leaving.pos = outOfRange
		arriving.pos = inRange
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(leaving.seen) != 0 {
		t.Errorf("observer that left mid-frame heard %d transmissions, want 0", len(leaving.seen))
	}
	if len(arriving.seen) != 1 {
		t.Errorf("observer that arrived mid-frame heard %d transmissions, want 1", len(arriving.seen))
	}
	if len(arriving.seen) == 1 {
		want := m.Airtime(len(payload)) + DefaultPropagationDelay
		if arriving.seen[0].At != want {
			t.Errorf("Observation.At = %v, want transmission end %v", arriving.seen[0].At, want)
		}
	}
}

func TestObserverRemovedMidFrameHearsNothing(t *testing.T) {
	// Same convention, applied to the observer set: removal while a frame
	// is on the air takes effect before the frame completes.
	sim, g, m := newTestMedium(t, 5)
	sender := topo.GridIndex(5, 2, 2)
	obs := &fixedObserver{pos: g.Position(sender)}
	id := m.AddObserver(obs)
	payload := make([]byte, 200)
	sim.ScheduleAfter(0, func() { m.Broadcast(sender, payload) })
	sim.ScheduleAfter(m.Airtime(len(payload))/2, func() { m.RemoveObserver(id) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(obs.seen) != 0 {
		t.Errorf("observer removed mid-frame heard %d transmissions, want 0", len(obs.seen))
	}
}

func TestObserverAddedMidFrameHearsFrame(t *testing.T) {
	// Converse of removal: the observer set is read at transmission end,
	// even when it was empty when the frame was keyed up.
	sim, g, m := newTestMedium(t, 5)
	sender := topo.GridIndex(5, 2, 2)
	obs := &fixedObserver{pos: g.Position(sender)}
	payload := make([]byte, 200)
	sim.ScheduleAfter(0, func() { m.Broadcast(sender, payload) })
	sim.ScheduleAfter(m.Airtime(len(payload))/2, func() { m.AddObserver(obs) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(obs.seen) != 1 {
		t.Errorf("observer added mid-frame heard %d transmissions, want 1", len(obs.seen))
	}
}

// selfRemovingObserver unregisters itself on its first observation.
type selfRemovingObserver struct {
	m     *Medium
	id    int
	pos   topo.Point
	heard int
}

func (o *selfRemovingObserver) Location() topo.Point { return o.pos }
func (o *selfRemovingObserver) Overhear(Observation) {
	o.heard++
	o.m.RemoveObserver(o.id)
}

func TestRemoveObserverFromOverhearKeepsScanIntact(t *testing.T) {
	// Removing an observer from inside its own Overhear must not skip or
	// double-deliver to the observers after it in the scan order.
	sim, g, m := newTestMedium(t, 5)
	sender := topo.GridIndex(5, 2, 2)
	pos := g.Position(sender)
	first := &selfRemovingObserver{m: m, pos: pos}
	first.id = m.AddObserver(first)
	second := &fixedObserver{pos: pos}
	third := &fixedObserver{pos: pos}
	m.AddObserver(second)
	m.AddObserver(third)

	sim.ScheduleAfter(0, func() { m.Broadcast(sender, []byte{1}) })
	sim.ScheduleAfter(time.Second, func() { m.Broadcast(sender, []byte{2}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first.heard != 1 {
		t.Errorf("self-removing observer heard %d, want 1 (gone for the second frame)", first.heard)
	}
	if len(second.seen) != 2 || len(third.seen) != 2 {
		t.Errorf("later observers heard %d and %d, want 2 each (no skip, no double delivery)",
			len(second.seen), len(third.seen))
	}
}

func TestBroadcastSteadyStateAllocFree(t *testing.T) {
	g, err := topo.DefaultGrid(5)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sim := des.New()
	m := New(sim, g, 1, WithCollisions(true))
	for n := topo.NodeID(0); int(n) < g.Len(); n++ {
		m.SetReceiver(n, func(topo.NodeID, []byte) {})
	}
	centre := topo.GridIndex(5, 2, 2)
	m.AddObserver(nopObserver{pos: g.Position(centre)})
	payload := make([]byte, 32)
	fire := func() { m.Broadcast(centre, payload) }

	// Warm the event, delivery, scan and frame pools.
	for i := 0; i < 16; i++ {
		sim.ScheduleAfter(0, fire)
		if err := sim.Run(); err != nil {
			t.Fatalf("warmup Run: %v", err)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		sim.ScheduleAfter(0, fire)
		if err := sim.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}); allocs != 0 {
		t.Errorf("Broadcast→delivery steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestDisabledNodeNeitherSendsNorReceives(t *testing.T) {
	sim, _, m := newTestMedium(t, 2)
	count := 0
	m.SetReceiver(1, func(topo.NodeID, []byte) { count++ })
	m.DisableNode(1)
	sim.ScheduleAfter(0, func() { m.Broadcast(0, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 0 {
		t.Error("disabled node received a frame")
	}
	if !m.NodeDisabled(1) {
		t.Error("NodeDisabled(1) = false")
	}
	// Disabled sender transmits nothing.
	before := m.Stats().Broadcasts
	sim.ScheduleAfter(0, func() { m.Broadcast(1, []byte{1}) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Stats().Broadcasts != before {
		t.Error("disabled node transmitted")
	}
}

func TestStatsCounters(t *testing.T) {
	sim, _, m := newTestMedium(t, 2)
	m.SetReceiver(1, func(topo.NodeID, []byte) {})
	sim.ScheduleAfter(0, func() { m.Broadcast(0, make([]byte, 10)) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := m.Stats()
	if s.Broadcasts != 1 || s.BytesSent != 10 || s.Deliveries != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPayloadCopiedNotAliased(t *testing.T) {
	sim, _, m := newTestMedium(t, 2)
	var got []byte
	m.SetReceiver(1, func(_ topo.NodeID, p []byte) { got = p })
	buf := []byte{1, 2, 3}
	sim.ScheduleAfter(0, func() {
		m.Broadcast(0, buf)
		buf[0] = 99 // mutate after broadcast
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got[0] != 1 {
		t.Error("delivered payload aliased the caller's buffer")
	}
}

func TestLossModelNames(t *testing.T) {
	if (Ideal{}).Name() != "ideal" {
		t.Error("Ideal name")
	}
	if (Bernoulli{P: 0.25}).Name() != "bernoulli(0.25)" {
		t.Errorf("Bernoulli name = %q", Bernoulli{P: 0.25}.Name())
	}
	if DefaultRSSINoise().Name() != "rssi-noise" {
		t.Error("RSSINoise name")
	}
}

// TestMediumResetClearsRunState: Reset rewinds failed nodes, observers,
// collision windows and counters, swaps the channel model, and reseeds
// the loss stream so a reset medium replays a fresh medium's draws —
// while registered receivers (wiring) survive.
func TestMediumResetClearsRunState(t *testing.T) {
	g, err := topo.Line(3, 4.5, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	m := New(sim, g, 1, WithCollisions(true))
	var got int
	m.SetReceiver(1, func(topo.NodeID, []byte) { got++ })
	obs := &fixedObserver{pos: g.Position(0)}
	m.AddObserver(obs)
	m.DisableNode(2)
	m.Broadcast(0, []byte{1, 2, 3})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 || len(obs.seen) != 1 {
		t.Fatalf("pre-reset run: deliveries=%d observations=%d", got, len(obs.seen))
	}

	sim.Reset()
	m.Reset(1, nil, true, nil)
	if m.NodeDisabled(2) {
		t.Errorf("DisableNode survived Reset")
	}
	if st := m.Stats(); st != (Stats{}) {
		t.Errorf("stats survived Reset: %+v", st)
	}
	obs.seen = nil
	m.Broadcast(0, []byte{1, 2, 3})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(obs.seen) != 0 {
		t.Errorf("observer survived Reset: heard %d", len(obs.seen))
	}
	if got != 2 {
		t.Errorf("receiver wiring did not survive Reset: deliveries=%d", got)
	}
	if st := m.Stats(); st.Broadcasts != 1 || st.Deliveries != 1 {
		t.Errorf("post-reset stats: %+v", st)
	}
}
