// Package experiment is the evaluation harness of Section VI: it runs
// repeated simulations across seeds (in parallel, each fully independent
// and deterministic), aggregates capture ratio, capture time, message
// overhead and schedule quality, and renders the series of Figure 5 and
// the overhead comparison.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"slpdas/internal/core"
	"slpdas/internal/metrics"
	"slpdas/internal/topo"
	"slpdas/internal/wire"
)

// Spec describes one experimental cell: a topology, protocol config and
// repetition count.
type Spec struct {
	// GridSize is the side of the square grid (source top-left, sink
	// centre, as §VI-A). Build other layouts with Topology instead.
	GridSize int
	// Topology overrides GridSize with an explicit graph; Sink and Source
	// must then be set.
	Topology *topo.Graph
	Sink     topo.NodeID
	Source   topo.NodeID

	Config  core.Config
	Repeats int
	// BaseSeed separates experiment batches; run r uses BaseSeed + r.
	BaseSeed uint64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// ResolveTopology materialises the spec's topology: the explicit graph
// when set, otherwise the paper's default grid with sink at the centre and
// source top-left.
func (s Spec) ResolveTopology() (*topo.Graph, topo.NodeID, topo.NodeID, error) {
	if s.Topology != nil {
		return s.Topology, s.Sink, s.Source, nil
	}
	g, err := topo.DefaultGrid(s.GridSize)
	if err != nil {
		return nil, 0, 0, err
	}
	return g, topo.GridCentre(s.GridSize), topo.GridTopLeft(), nil
}

// RunSingle executes one fully deterministic simulation of cfg on a
// resolved topology at the given seed. It is the unit of work behind Run
// and the campaign engine's shared worker pool.
func RunSingle(g *topo.Graph, sink, source topo.NodeID, cfg core.Config, seed uint64) (*core.Result, error) {
	net, err := core.NewNetwork(g, sink, source, cfg, seed)
	if err != nil {
		return nil, err
	}
	return net.Run()
}

// RunReusable is RunSingle over a caller-held reusable network slot: a nil
// *net wires a fresh network into the slot, later calls rewind it with
// Reset. A network that fails to reset (bad per-cell config) is discarded
// — the slot is nilled — so the next run starts from clean wiring. This is
// the single wire-or-reset policy shared by this package's workers and the
// campaign engine's per-topology arenas.
func RunReusable(net **core.Network, g *topo.Graph, sink, source topo.NodeID, cfg core.Config, seed uint64) (*core.Result, error) {
	if *net == nil {
		n, err := core.NewNetwork(g, sink, source, cfg, seed)
		if err != nil {
			return nil, err
		}
		*net = n
		return n.Run()
	}
	if err := (*net).Reset(cfg, seed); err != nil {
		*net = nil
		return nil, err
	}
	return (*net).Run()
}

// AggregateResults summarises already-computed per-run results of one
// cell. Nil entries (failed runs) are skipped; callers account failures
// separately. Exposed so external schedulers (internal/campaign) can run
// repeats through their own pool and still share the aggregation logic.
func AggregateResults(spec Spec, g *topo.Graph, results []*core.Result) *Aggregate {
	return aggregate(spec, g, results)
}

// Accumulator folds the per-run Results of one cell into an Aggregate one
// result at a time, in repeat order, so a scheduler can summarise a cell
// without ever holding all of its Results in memory — the campaign
// engine's streaming reduction feeds each result in as it arrives and
// frees it immediately, which is what makes 10⁵–10⁶-node cells feasible
// (one Result carries an n-sized slot assignment).
//
// With KeepResults set the accumulator retains every added Result and
// finalises with the batch metrics.Summarize — bit-for-bit the historical
// aggregate, for callers that walk Aggregate.Results afterwards (figure
// rendering, the fig5a compat golden). Without it the series stream
// through metrics.Stream: N, Mean, Min and Max stay byte-identical to the
// batch path (Stream reproduces Summarize's exact operation order for
// those), only Summary.Std's low bits may differ — and no row-level
// campaign output renders Std.
type Accumulator struct {
	spec Spec
	agg  *Aggregate

	// KeepResults retains added Results on the Aggregate and switches
	// finalisation to batch Summarize. Set it before the first Add.
	KeepResults bool

	capPeriods, ctrlMsgs, ctrlBytes, totMsgs, changed, deliveries, latency series
	attackerMoves                                                          series
	nodesFailed, nodesRecovered, repair                                    series
	delivBefore, delivDuring, delivAfter                                   series
	captureWins, energyTotal, energyMax, energyDeaths                      series
	firstDeath, lifetime                                                   series
	byType                                                                 map[wire.Type]*series
}

// series accumulates one metric either as the raw sample (batch mode) or
// as streaming state, depending on the owning Accumulator's mode.
type series struct {
	xs     []float64
	stream metrics.Stream
}

func (s *series) add(x float64, keep bool) {
	if keep {
		s.xs = append(s.xs, x)
	} else {
		s.stream.Add(x)
	}
}

func (s *series) summary(keep bool) metrics.Summary {
	if keep {
		return metrics.Summarize(s.xs)
	}
	return s.stream.Summary()
}

// NewAccumulator prepares an empty aggregate for one cell.
func NewAccumulator(spec Spec, g *topo.Graph) *Accumulator {
	agg := &Aggregate{
		Protocol:       protocolLabel(spec.Config),
		Nodes:          g.Len(),
		GridSize:       spec.GridSize,
		Repeats:        spec.Repeats,
		Strategy:       spec.Config.StrategyLabel(),
		Attackers:      spec.Config.Attackers(),
		SharedHistory:  spec.Config.SharedHistory,
		MessagesByType: make(map[wire.Type]metrics.Summary),
	}
	agg.Name = fmt.Sprintf("%s/%s", g.Name(), agg.Protocol)
	return &Accumulator{spec: spec, agg: agg, byType: make(map[wire.Type]*series)}
}

// Add folds one run's result in. Nil results (failed runs) are ignored;
// callers account failures separately, as with AggregateResults. Results
// must be added in repeat order for byte-identical aggregates.
func (a *Accumulator) Add(r *core.Result) {
	if r == nil {
		return
	}
	if a.KeepResults {
		a.agg.Results = append(a.agg.Results, r)
	}
	a.agg.CaptureRatio.Trials++
	a.agg.ScheduleValid.Trials++
	if r.Captured {
		a.agg.CaptureRatio.Successes++
		a.capPeriods.add(r.CapturePeriods, a.KeepResults)
	}
	if r.ScheduleValid() {
		a.agg.ScheduleValid.Successes++
	}
	if a.spec.Config.HasSearchPhase() {
		a.agg.SearchSucceeded.Trials++
		if r.ChangedNodes > 0 {
			a.agg.SearchSucceeded.Successes++
		}
	}
	a.ctrlMsgs.add(float64(r.ControlMessages()), a.KeepResults)
	a.ctrlBytes.add(float64(r.ControlBytes()), a.KeepResults)
	a.totMsgs.add(float64(r.TotalMessages()), a.KeepResults)
	a.changed.add(float64(r.ChangedNodes), a.KeepResults)
	a.deliveries.add(float64(r.SourceDeliveries), a.KeepResults)
	if l := r.MeanDeliveryLatency(); l >= 0 {
		a.latency.add(l, a.KeepResults)
	}
	if len(r.AttackerMoves) > 0 {
		var moves int
		for _, m := range r.AttackerMoves {
			moves += m
		}
		a.attackerMoves.add(float64(moves)/float64(len(r.AttackerMoves)), a.KeepResults)
	}
	a.nodesFailed.add(float64(r.NodesFailed), a.KeepResults)
	a.nodesRecovered.add(float64(r.NodesRecovered), a.KeepResults)
	// RepairPeriods is -1 when no repair was observed (always, for
	// fault-free runs); like latency, only observed repairs are averaged.
	if r.RepairPeriods >= 0 {
		a.repair.add(r.RepairPeriods, a.KeepResults)
	}
	a.delivBefore.add(r.DeliveryBefore, a.KeepResults)
	a.delivDuring.add(r.DeliveryDuring, a.KeepResults)
	a.delivAfter.add(r.DeliveryAfter, a.KeepResults)
	a.agg.Partitions.Trials++
	if r.PartitionDetected {
		a.agg.Partitions.Successes++
	}
	a.captureWins.add(float64(r.RadioStats.CaptureWins), a.KeepResults)
	a.energyTotal.add(r.EnergyTotalMJ, a.KeepResults)
	a.energyMax.add(r.EnergyMaxMJ, a.KeepResults)
	a.energyDeaths.add(float64(r.EnergyDeaths), a.KeepResults)
	// FirstDeathPeriod and LifetimePeriods are -1 sentinels for energy-off
	// runs (and, for first death, runs where no battery ran out); like
	// latency and repair, only observed values are averaged.
	if r.FirstDeathPeriod >= 0 {
		a.firstDeath.add(r.FirstDeathPeriod, a.KeepResults)
	}
	if r.LifetimePeriods >= 0 {
		a.lifetime.add(r.LifetimePeriods, a.KeepResults)
	}
	//lint:ignore mapiter independent per-type series updates, order-free
	for t, s := range r.Messages {
		bt := a.byType[t]
		if bt == nil {
			bt = &series{}
			a.byType[t] = bt
		}
		bt.add(float64(s.Count), a.KeepResults)
	}
}

// Finalize summarises everything added so far and returns the aggregate.
func (a *Accumulator) Finalize() *Aggregate {
	a.agg.CapturePeriods = a.capPeriods.summary(a.KeepResults)
	a.agg.ControlMessages = a.ctrlMsgs.summary(a.KeepResults)
	a.agg.ControlBytes = a.ctrlBytes.summary(a.KeepResults)
	a.agg.TotalMessages = a.totMsgs.summary(a.KeepResults)
	a.agg.ChangedNodes = a.changed.summary(a.KeepResults)
	a.agg.SourceDeliveries = a.deliveries.summary(a.KeepResults)
	a.agg.DeliveryLatency = a.latency.summary(a.KeepResults)
	a.agg.AttackerMoves = a.attackerMoves.summary(a.KeepResults)
	a.agg.NodesFailed = a.nodesFailed.summary(a.KeepResults)
	a.agg.NodesRecovered = a.nodesRecovered.summary(a.KeepResults)
	a.agg.RepairPeriods = a.repair.summary(a.KeepResults)
	a.agg.DeliveryBefore = a.delivBefore.summary(a.KeepResults)
	a.agg.DeliveryDuring = a.delivDuring.summary(a.KeepResults)
	a.agg.DeliveryAfter = a.delivAfter.summary(a.KeepResults)
	a.agg.CaptureWins = a.captureWins.summary(a.KeepResults)
	a.agg.EnergyTotal = a.energyTotal.summary(a.KeepResults)
	a.agg.EnergyMax = a.energyMax.summary(a.KeepResults)
	a.agg.EnergyDeaths = a.energyDeaths.summary(a.KeepResults)
	a.agg.FirstDeathPeriod = a.firstDeath.summary(a.KeepResults)
	a.agg.LifetimePeriods = a.lifetime.summary(a.KeepResults)
	//lint:ignore mapiter map-to-map copy keyed by the same key, order-free
	for t, s := range a.byType {
		a.agg.MessagesByType[t] = s.summary(a.KeepResults)
	}
	return a.agg
}

// Aggregate is the summary of one experimental cell.
type Aggregate struct {
	Name     string
	Protocol string
	Nodes    int
	GridSize int
	Repeats  int

	// Attacker-team coordinates of the cell.
	Strategy      string
	Attackers     int
	SharedHistory bool

	CaptureRatio    metrics.Proportion
	CapturePeriods  metrics.Summary // over captured runs only
	ScheduleValid   metrics.Proportion
	SearchSucceeded metrics.Proportion // SLP only: a CHANGE path was laid
	ChangedNodes    metrics.Summary

	// Per-run traffic, split by class.
	ControlMessages metrics.Summary
	ControlBytes    metrics.Summary
	TotalMessages   metrics.Summary
	MessagesByType  map[wire.Type]metrics.Summary

	// Convergecast health.
	SourceDeliveries metrics.Summary
	DeliveryLatency  metrics.Summary

	// Attacker mobility: per-run mean relocation count across the team
	// (from Result.AttackerMoves, which survives even with walk recording
	// capped or off).
	AttackerMoves metrics.Summary

	// Fault-injection degradation (zero-valued summaries for fault-free
	// cells; RepairPeriods averages only runs that observed a repair).
	NodesFailed    metrics.Summary
	NodesRecovered metrics.Summary
	RepairPeriods  metrics.Summary
	DeliveryBefore metrics.Summary
	DeliveryDuring metrics.Summary
	DeliveryAfter  metrics.Summary
	// Partitions is the fraction of runs that ended source↔sink
	// partitioned (one of them dead, or no alive path between them).
	Partitions metrics.Proportion

	// Physical-layer and energy verdicts (zero-valued summaries for cells
	// without SINR capture or energy accounting; FirstDeathPeriod and
	// LifetimePeriods average only runs that observed the event — the -1
	// sentinels are excluded like RepairPeriods).
	CaptureWins      metrics.Summary
	EnergyTotal      metrics.Summary // per-run network total, mJ
	EnergyMax        metrics.Summary // per-run hottest node, mJ
	EnergyDeaths     metrics.Summary
	FirstDeathPeriod metrics.Summary
	LifetimePeriods  metrics.Summary

	Failures int // runs that returned an error
	Results  []*core.Result
}

// Run executes the spec: Repeats independent simulations on distinct
// seeds, in parallel. Every run that errors is counted and the first
// error is returned alongside the aggregate of the successful runs.
func Run(spec Spec) (*Aggregate, error) {
	if spec.Repeats <= 0 {
		return nil, fmt.Errorf("experiment: repeats must be positive, got %d", spec.Repeats)
	}
	g, sink, source, err := spec.ResolveTopology()
	if err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Repeats {
		workers = spec.Repeats
	}

	results := make([]*core.Result, spec.Repeats)
	errs := make([]error, spec.Repeats)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Arena: each worker wires one network on its first repeat and
			// replays it via Reset for the rest — Reset is pinned to produce
			// results identical to a fresh NewNetwork, so output stays a pure
			// function of the spec regardless of worker count.
			var net *core.Network
			for r := range jobs {
				seed := spec.BaseSeed + uint64(r)
				res, err := RunReusable(&net, g, sink, source, spec.Config, seed)
				if err != nil {
					errs[r] = fmt.Errorf("experiment: seed %d: %w", seed, err)
					continue
				}
				results[r] = res
			}
		}()
	}
	for r := 0; r < spec.Repeats; r++ {
		jobs <- r
	}
	close(jobs)
	wg.Wait()

	agg := aggregate(spec, g, results)
	var firstErr error
	for _, e := range errs {
		if e != nil {
			agg.Failures++
			if firstErr == nil {
				firstErr = e
			}
		}
	}
	return agg, firstErr
}

func aggregate(spec Spec, g *topo.Graph, results []*core.Result) *Aggregate {
	acc := NewAccumulator(spec, g)
	acc.KeepResults = true
	for _, r := range results {
		acc.Add(r)
	}
	return acc.Finalize()
}

// protocolLabel names the configured routing family for aggregates,
// resolving through the protocol registry so added families label
// themselves. Families parameterised by SearchDistance carry it as a
// suffix (e.g. "slp-das-sd3"), matching the pre-registry labels.
func protocolLabel(c core.Config) string {
	fam, err := c.ProtocolFamily()
	if err != nil {
		return c.ProtocolName()
	}
	if fam.UsesSearchDistance() {
		return fmt.Sprintf("%s-sd%d", fam.Label(), c.SearchDistance)
	}
	return fam.Label()
}

// MessageTypes returns the types present, sorted, for stable rendering.
func (a *Aggregate) MessageTypes() []wire.Type {
	out := make([]wire.Type, 0, len(a.MessagesByType))
	for t := range a.MessagesByType {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
