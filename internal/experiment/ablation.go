package experiment

import (
	"fmt"
	"sort"

	"slpdas/internal/attacker"
	"slpdas/internal/core"
	"slpdas/internal/metrics"
	"slpdas/internal/radio"
	"slpdas/internal/topo"
	"slpdas/internal/verify"
)

// SearchDistancePoint is one cell of the SD ablation (DESIGN.md A1).
type SearchDistancePoint struct {
	SearchDistance int
	CaptureRatio   metrics.Proportion
	ChangedNodes   metrics.Summary
}

// SearchDistanceSweep measures SLP DAS capture ratio across search
// distances on one grid size — the design-choice study behind the paper's
// choice of SD ∈ {3, 5}.
func SearchDistanceSweep(gridSize int, distances []int, repeats int, baseSeed uint64, workers int) ([]SearchDistancePoint, error) {
	if len(distances) == 0 {
		distances = []int{1, 2, 3, 4, 5, 6, 7}
	}
	out := make([]SearchDistancePoint, 0, len(distances))
	for _, sd := range distances {
		agg, err := Run(Spec{
			GridSize: gridSize,
			Config:   core.DefaultSLP(sd),
			Repeats:  repeats,
			BaseSeed: baseSeed,
			Workers:  workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: sd sweep at %d: %w", sd, err)
		}
		out = append(out, SearchDistancePoint{
			SearchDistance: sd,
			CaptureRatio:   agg.CaptureRatio,
			ChangedNodes:   agg.ChangedNodes,
		})
	}
	return out, nil
}

// SearchDistanceTable renders the sweep.
func SearchDistanceTable(points []SearchDistancePoint) *metrics.Table {
	t := metrics.NewTable("search distance", "capture ratio", "changed nodes")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.SearchDistance),
			p.CaptureRatio.String(),
			fmt.Sprintf("%.1f", p.ChangedNodes.Mean),
		)
	}
	return t
}

// AttackerPoint is one cell of the attacker-strength ablation
// (DESIGN.md A2): the exhaustive worst case of Algorithm 1 over one
// settled schedule.
type AttackerPoint struct {
	Params         verify.Params
	Captured       bool
	CapturePeriod  int
	StatesExplored int
}

// AttackerSweep builds one schedule with the given config and seed, then
// verifies it against every attacker parameterisation using the
// nondeterministic any-heard decision set.
func AttackerSweep(gridSize int, cfg core.Config, seed uint64, params []verify.Params) ([]AttackerPoint, error) {
	g, err := topo.DefaultGrid(gridSize)
	if err != nil {
		return nil, err
	}
	sink, source := topo.GridCentre(gridSize), topo.GridTopLeft()
	net, err := core.NewNetwork(g, sink, source, cfg, seed)
	if err != nil {
		return nil, err
	}
	assignment, err := net.RunSetup()
	if err != nil {
		return nil, err
	}
	delta := int(net.SafetyPeriods())
	out := make([]AttackerPoint, 0, len(params))
	for _, p := range params {
		p.Start = sink
		res, err := verify.VerifySchedule(g, assignment, p, verify.AnyHeardD, delta, source, verify.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiment: attacker sweep %+v: %w", p, err)
		}
		out = append(out, AttackerPoint{
			Params:         p,
			Captured:       !res.SLPAware,
			CapturePeriod:  res.CapturePeriod,
			StatesExplored: res.StatesExplored,
		})
	}
	return out, nil
}

// AttackerTable renders the sweep.
func AttackerTable(points []AttackerPoint) *metrics.Table {
	t := metrics.NewTable("attacker (R,H,M)", "verdict", "states")
	for _, p := range points {
		verdict := "δ-SLP-aware"
		if p.Captured {
			verdict = fmt.Sprintf("captured in %d periods", p.CapturePeriod)
		}
		t.AddRow(
			fmt.Sprintf("(%d,%d,%d)", p.Params.R, p.Params.H, p.Params.M),
			verdict,
			fmt.Sprintf("%d", p.StatesExplored),
		)
	}
	return t
}

// StrategyPoint is one cell of the simulated attacker-strategy study:
// capture ratio and time for one (strategy, team size) coordinate.
type StrategyPoint struct {
	Strategy       string
	Attackers      int
	SharedHistory  bool
	CaptureRatio   metrics.Proportion
	CapturePeriods metrics.Summary // over captured runs only
}

// StrategySweep measures one base config against every named strategy at
// each team size — the Monte-Carlo counterpart of AttackerSweep's
// exhaustive verification, and the per-strategy capture ratio/time series
// behind the attacker panel. Empty strategies defaults to the full
// registry; empty counts defaults to a single attacker.
func StrategySweep(gridSize int, base core.Config, strategies []string, counts []int, repeats int, baseSeed uint64, workers int) ([]StrategyPoint, error) {
	if len(strategies) == 0 {
		strategies = attacker.StrategyNames()
	}
	if len(counts) == 0 {
		counts = []int{1}
	}
	out := make([]StrategyPoint, 0, len(strategies)*len(counts))
	for _, s := range strategies {
		for _, count := range counts {
			cfg := base
			cfg.Strategy = s
			cfg.AttackerCount = count
			agg, err := Run(Spec{
				GridSize: gridSize,
				Config:   cfg,
				Repeats:  repeats,
				BaseSeed: baseSeed,
				Workers:  workers,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: strategy sweep %s x%d: %w", s, count, err)
			}
			out = append(out, StrategyPoint{
				Strategy:       s,
				Attackers:      count,
				SharedHistory:  cfg.SharedHistory,
				CaptureRatio:   agg.CaptureRatio,
				CapturePeriods: agg.CapturePeriods,
			})
		}
	}
	return out, nil
}

// StrategyTable renders the sweep.
func StrategyTable(points []StrategyPoint) *metrics.Table {
	t := metrics.NewTable("strategy", "attackers", "capture ratio", "mean capture periods")
	for _, p := range points {
		periods := "-"
		if p.CapturePeriods.N > 0 {
			periods = fmt.Sprintf("%.1f", p.CapturePeriods.Mean)
		}
		t.AddRow(p.Strategy, fmt.Sprintf("%d", p.Attackers), p.CaptureRatio.String(), periods)
	}
	return t
}

// LossModelPoint is one cell of the channel ablation (DESIGN.md A3).
type LossModelPoint struct {
	Model         string
	CaptureRatio  metrics.Proportion
	ScheduleValid metrics.Proportion
}

// LossModelSweep measures SLP DAS robustness across channel models.
func LossModelSweep(gridSize, searchDistance, repeats int, baseSeed uint64, workers int, models map[string]radio.LossModel) ([]LossModelPoint, error) {
	if models == nil {
		models = map[string]radio.LossModel{
			"ideal":          radio.Ideal{},
			"bernoulli-0.05": radio.Bernoulli{P: 0.05},
			"rssi-noise":     radio.DefaultRSSINoise(),
		}
	}
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	// Sort for deterministic output order.
	sort.Strings(names)
	out := make([]LossModelPoint, 0, len(models))
	for _, name := range names {
		cfg := core.DefaultSLP(searchDistance)
		cfg.Loss = models[name]
		agg, err := Run(Spec{
			GridSize: gridSize,
			Config:   cfg,
			Repeats:  repeats,
			BaseSeed: baseSeed,
			Workers:  workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: loss sweep %q: %w", name, err)
		}
		out = append(out, LossModelPoint{
			Model:         name,
			CaptureRatio:  agg.CaptureRatio,
			ScheduleValid: agg.ScheduleValid,
		})
	}
	return out, nil
}

// LossModelTable renders the sweep.
func LossModelTable(points []LossModelPoint) *metrics.Table {
	t := metrics.NewTable("channel model", "capture ratio", "valid schedules")
	for _, p := range points {
		t.AddRow(p.Model, p.CaptureRatio.String(), p.ScheduleValid.String())
	}
	return t
}
