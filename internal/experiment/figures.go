package experiment

import (
	"fmt"
	"math"
	"time"

	"slpdas/internal/core"
	"slpdas/internal/metrics"
	"slpdas/internal/wire"
)

// Figure5Point is one x-position of Figure 5: capture ratios for both
// protocols at one network size.
type Figure5Point struct {
	GridSize       int
	Protectionless metrics.Proportion
	SLP            metrics.Proportion
	// Aggregates carry the full per-cell data for deeper reporting.
	ProtectionlessAgg *Aggregate
	SLPAgg            *Aggregate
}

// Reduction returns 1 − SLP/protectionless capture ratio (the paper's
// headline is ≈50%); NaN when the baseline never captured.
func (p Figure5Point) Reduction() float64 {
	base := p.Protectionless.Value()
	if base == 0 || math.IsNaN(base) {
		return math.NaN()
	}
	return 1 - p.SLP.Value()/base
}

// Figure5 reproduces Figure 5(a) (SD=3) or 5(b) (SD=5): capture ratio vs
// network size for protectionless DAS and SLP DAS.
type Figure5 struct {
	SearchDistance int
	Points         []Figure5Point
}

// Figure5Spec parameterises the reproduction.
type Figure5Spec struct {
	GridSizes      []int // paper: 11, 15, 21
	SearchDistance int   // paper: 3 (a) or 5 (b)
	Repeats        int
	BaseSeed       uint64
	Workers        int
	// Mutate, when non-nil, adjusts each cell's config (used by the
	// ablation benches for loss models and attacker strength).
	Mutate func(*core.Config)
}

// RunFigure5 executes the full sweep.
func RunFigure5(spec Figure5Spec) (*Figure5, error) {
	if len(spec.GridSizes) == 0 {
		spec.GridSizes = []int{11, 15, 21}
	}
	fig := &Figure5{SearchDistance: spec.SearchDistance}
	for _, size := range spec.GridSizes {
		protCfg := core.Default()
		slpCfg := core.DefaultSLP(spec.SearchDistance)
		if spec.Mutate != nil {
			spec.Mutate(&protCfg)
			spec.Mutate(&slpCfg)
			slpCfg.SLP = true
		}
		prot, err := Run(Spec{GridSize: size, Config: protCfg, Repeats: spec.Repeats, BaseSeed: spec.BaseSeed, Workers: spec.Workers})
		if err != nil {
			return nil, fmt.Errorf("experiment: fig5 size %d protectionless: %w", size, err)
		}
		slp, err := Run(Spec{GridSize: size, Config: slpCfg, Repeats: spec.Repeats, BaseSeed: spec.BaseSeed, Workers: spec.Workers})
		if err != nil {
			return nil, fmt.Errorf("experiment: fig5 size %d slp: %w", size, err)
		}
		fig.Points = append(fig.Points, Figure5Point{
			GridSize:          size,
			Protectionless:    prot.CaptureRatio,
			SLP:               slp.CaptureRatio,
			ProtectionlessAgg: prot,
			SLPAgg:            slp,
		})
	}
	return fig, nil
}

// Table renders the figure as the paper's bar groups: one row per network
// size with both protocols' capture ratios.
func (f *Figure5) Table() *metrics.Table {
	t := metrics.NewTable("network size", "protectionless capture %", "slp-das capture %", "reduction %")
	for _, p := range f.Points {
		red := "n/a"
		if r := p.Reduction(); !math.IsNaN(r) {
			red = fmt.Sprintf("%.0f%%", r*100)
		}
		t.AddRow(
			fmt.Sprintf("%d", p.GridSize),
			fmt.Sprintf("%.1f ±%.1f", p.Protectionless.Percent(), p.Protectionless.CI95()*100),
			fmt.Sprintf("%.1f ±%.1f", p.SLP.Percent(), p.SLP.CI95()*100),
			red,
		)
	}
	return t
}

// OverheadComparison quantifies the paper's "negligible message overhead"
// claim: per-protocol traffic split by message type.
type OverheadComparison struct {
	GridSize       int
	Protectionless *Aggregate
	SLP            *Aggregate
}

// RunOverhead measures both protocols on one grid size.
func RunOverhead(size, searchDistance, repeats int, baseSeed uint64, workers int) (*OverheadComparison, error) {
	prot, err := Run(Spec{GridSize: size, Config: core.Default(), Repeats: repeats, BaseSeed: baseSeed, Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("experiment: overhead protectionless: %w", err)
	}
	slp, err := Run(Spec{GridSize: size, Config: core.DefaultSLP(searchDistance), Repeats: repeats, BaseSeed: baseSeed, Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("experiment: overhead slp: %w", err)
	}
	return &OverheadComparison{GridSize: size, Protectionless: prot, SLP: slp}, nil
}

// Table renders mean per-run control message counts by type, the per-
// period data rate (identical for both protocols by design: one frame per
// node per period) and the extra control cost of the SLP protocol. Raw
// per-run DATA totals are not comparable because captured runs end early.
func (o *OverheadComparison) Table() *metrics.Table {
	t := metrics.NewTable("message type", "protectionless (msgs/run)", "slp-das (msgs/run)", "extra")
	types := []wire.Type{wire.TypeHello, wire.TypeDissem, wire.TypeSearch, wire.TypeChange}
	for _, typ := range types {
		p := o.Protectionless.MessagesByType[typ]
		s := o.SLP.MessagesByType[typ]
		t.AddRow(
			typ.String(),
			fmt.Sprintf("%.1f", p.Mean),
			fmt.Sprintf("%.1f", s.Mean),
			fmt.Sprintf("%+.1f", s.Mean-p.Mean),
		)
	}
	extra := o.SLP.ControlMessages.Mean - o.Protectionless.ControlMessages.Mean
	t.AddRow("CONTROL TOTAL",
		fmt.Sprintf("%.1f", o.Protectionless.ControlMessages.Mean),
		fmt.Sprintf("%.1f", o.SLP.ControlMessages.Mean),
		fmt.Sprintf("%+.1f (%.2f%% of all traffic)", extra,
			100*extra/o.Protectionless.TotalMessages.Mean),
	)
	t.AddRow("DATA (msgs/period)",
		fmt.Sprintf("%.1f", meanDataRate(o.Protectionless)),
		fmt.Sprintf("%.1f", meanDataRate(o.SLP)),
		"equal by design",
	)
	return t
}

func meanDataRate(a *Aggregate) float64 {
	var sum float64
	var n int
	for _, r := range a.Results {
		if rate := r.DataMessagesPerPeriod(); rate > 0 {
			sum += rate
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TableI renders the parameter table of the paper from live config values,
// so the documentation can never drift from the implementation.
func TableI() *metrics.Table {
	def := core.Default()
	t := metrics.NewTable("parameter", "symbol", "value")
	secs := func(d time.Duration) string { return fmt.Sprintf("%gs", d.Seconds()) }
	t.AddRow("Source Period", "Psrc", secs(def.SourcePeriod))
	t.AddRow("Slot Period", "Pslot", secs(def.SlotPeriod))
	t.AddRow("Dissemination Period", "Pdiss", secs(def.DisseminationPeriod))
	t.AddRow("Number of Slots", "slots", fmt.Sprintf("%d", def.Slots))
	t.AddRow("Minimum Setup Periods", "MSP", fmt.Sprintf("%d", def.MinimumSetupPeriods))
	t.AddRow("Neighbour Discovery Periods", "NDP", fmt.Sprintf("%d", def.NeighbourDiscoveryPeriods))
	t.AddRow("Dissemination Timeout", "DT", fmt.Sprintf("%d", def.DisseminationTimeout))
	t.AddRow("Search Distance", "SD", "3, 5")
	t.AddRow("Change Length", "CL", "Δss − SD")
	t.AddRow("Safety Factor", "Cs", fmt.Sprintf("%g", def.SafetyFactor))
	return t
}
