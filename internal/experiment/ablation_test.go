package experiment

import (
	"strings"
	"testing"

	"slpdas/internal/core"
	"slpdas/internal/radio"
	"slpdas/internal/verify"
)

func TestSearchDistanceSweep(t *testing.T) {
	points, err := SearchDistanceSweep(5, []int{1, 2}, 3, 31, 0)
	if err != nil {
		t.Fatalf("SearchDistanceSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.CaptureRatio.Trials != 3 {
			t.Errorf("sd %d: trials = %d", p.SearchDistance, p.CaptureRatio.Trials)
		}
	}
	tbl := SearchDistanceTable(points).String()
	if !strings.Contains(tbl, "search distance") || !strings.Contains(tbl, "changed nodes") {
		t.Errorf("table = %q", tbl)
	}
}

func TestSearchDistanceSweepDefaults(t *testing.T) {
	points, err := SearchDistanceSweep(5, nil, 1, 3, 0)
	if err != nil {
		t.Fatalf("SearchDistanceSweep: %v", err)
	}
	if len(points) != 7 {
		t.Errorf("default sweep has %d points, want 7", len(points))
	}
}

func TestAttackerSweepMonotoneInStrength(t *testing.T) {
	params := []verify.Params{
		{R: 1, H: 0, M: 1},
		{R: 3, H: 0, M: 2},
	}
	points, err := AttackerSweep(7, core.DefaultSLP(2), 3, params)
	if err != nil {
		t.Fatalf("AttackerSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// A strictly stronger attacker explores at least as many states and
	// captures whenever the weaker one does.
	if points[1].StatesExplored < points[0].StatesExplored {
		t.Errorf("stronger attacker explored fewer states: %d < %d",
			points[1].StatesExplored, points[0].StatesExplored)
	}
	if points[0].Captured && !points[1].Captured {
		t.Error("weaker attacker captured where the stronger one did not")
	}
	tbl := AttackerTable(points).String()
	if !strings.Contains(tbl, "(1,0,1)") {
		t.Errorf("table = %q", tbl)
	}
}

func TestLossModelSweep(t *testing.T) {
	points, err := LossModelSweep(5, 2, 2, 9, 0, map[string]radio.LossModel{
		"ideal":     radio.Ideal{},
		"bern-0.05": radio.Bernoulli{P: 0.05},
	})
	if err != nil {
		t.Fatalf("LossModelSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Deterministic alphabetical order.
	if points[0].Model != "bern-0.05" || points[1].Model != "ideal" {
		t.Errorf("order = %s, %s", points[0].Model, points[1].Model)
	}
	tbl := LossModelTable(points).String()
	if !strings.Contains(tbl, "channel model") {
		t.Errorf("table = %q", tbl)
	}
}

func TestLossModelSweepDefaults(t *testing.T) {
	points, err := LossModelSweep(5, 2, 1, 9, 0, nil)
	if err != nil {
		t.Fatalf("LossModelSweep: %v", err)
	}
	if len(points) != 3 {
		t.Errorf("default sweep has %d points, want 3", len(points))
	}
}
