package experiment

import (
	"strings"
	"testing"

	"slpdas/internal/core"
	"slpdas/internal/radio"
	"slpdas/internal/verify"
)

func TestSearchDistanceSweep(t *testing.T) {
	points, err := SearchDistanceSweep(5, []int{1, 2}, 3, 31, 0)
	if err != nil {
		t.Fatalf("SearchDistanceSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.CaptureRatio.Trials != 3 {
			t.Errorf("sd %d: trials = %d", p.SearchDistance, p.CaptureRatio.Trials)
		}
	}
	tbl := SearchDistanceTable(points).String()
	if !strings.Contains(tbl, "search distance") || !strings.Contains(tbl, "changed nodes") {
		t.Errorf("table = %q", tbl)
	}
}

func TestSearchDistanceSweepDefaults(t *testing.T) {
	points, err := SearchDistanceSweep(5, nil, 1, 3, 0)
	if err != nil {
		t.Fatalf("SearchDistanceSweep: %v", err)
	}
	if len(points) != 7 {
		t.Errorf("default sweep has %d points, want 7", len(points))
	}
}

func TestAttackerSweepMonotoneInStrength(t *testing.T) {
	params := []verify.Params{
		{R: 1, H: 0, M: 1},
		{R: 3, H: 0, M: 2},
	}
	points, err := AttackerSweep(7, core.DefaultSLP(2), 3, params)
	if err != nil {
		t.Fatalf("AttackerSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// A strictly stronger attacker explores at least as many states and
	// captures whenever the weaker one does.
	if points[1].StatesExplored < points[0].StatesExplored {
		t.Errorf("stronger attacker explored fewer states: %d < %d",
			points[1].StatesExplored, points[0].StatesExplored)
	}
	if points[0].Captured && !points[1].Captured {
		t.Error("weaker attacker captured where the stronger one did not")
	}
	tbl := AttackerTable(points).String()
	if !strings.Contains(tbl, "(1,0,1)") {
		t.Errorf("table = %q", tbl)
	}
}

func TestLossModelSweep(t *testing.T) {
	points, err := LossModelSweep(5, 2, 2, 9, 0, map[string]radio.LossModel{
		"ideal":     radio.Ideal{},
		"bern-0.05": radio.Bernoulli{P: 0.05},
	})
	if err != nil {
		t.Fatalf("LossModelSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Deterministic alphabetical order.
	if points[0].Model != "bern-0.05" || points[1].Model != "ideal" {
		t.Errorf("order = %s, %s", points[0].Model, points[1].Model)
	}
	tbl := LossModelTable(points).String()
	if !strings.Contains(tbl, "channel model") {
		t.Errorf("table = %q", tbl)
	}
}

func TestLossModelSweepDefaults(t *testing.T) {
	points, err := LossModelSweep(5, 2, 1, 9, 0, nil)
	if err != nil {
		t.Fatalf("LossModelSweep: %v", err)
	}
	if len(points) != 3 {
		t.Errorf("default sweep has %d points, want 3", len(points))
	}
}

func TestStrategySweepCoversRegistryAndCounts(t *testing.T) {
	points, err := StrategySweep(5, core.Default(), []string{"first-heard", "random-walk"}, []int{1, 2}, 2, 1, 0)
	if err != nil {
		t.Fatalf("StrategySweep: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4 (2 strategies x 2 counts)", len(points))
	}
	want := []struct {
		s string
		n int
	}{{"first-heard", 1}, {"first-heard", 2}, {"random-walk", 1}, {"random-walk", 2}}
	for i, p := range points {
		if p.Strategy != want[i].s || p.Attackers != want[i].n {
			t.Errorf("point %d = (%s, %d), want %+v", i, p.Strategy, p.Attackers, want[i])
		}
		if p.CaptureRatio.Trials != 2 {
			t.Errorf("point %d trials = %d, want 2", i, p.CaptureRatio.Trials)
		}
	}
	tbl := StrategyTable(points)
	if tbl.Len() != 4 {
		t.Errorf("table rows = %d, want 4", tbl.Len())
	}
	// Defaulting pulls in the whole registry.
	all, err := StrategySweep(5, core.Default(), nil, nil, 1, 1, 0)
	if err != nil {
		t.Fatalf("StrategySweep defaults: %v", err)
	}
	if len(all) < 7 {
		t.Errorf("default sweep covers %d strategies, want the registry (>= 7)", len(all))
	}
}

func TestAggregateCarriesAttackerCoordinates(t *testing.T) {
	cfg := core.Default()
	cfg.Strategy = "cautious"
	cfg.AttackerCount = 3
	cfg.SharedHistory = true
	agg, err := Run(Spec{GridSize: 5, Config: cfg, Repeats: 1, BaseSeed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if agg.Strategy != "cautious" || agg.Attackers != 3 || !agg.SharedHistory {
		t.Errorf("aggregate coordinates = (%s, %d, %v), want (cautious, 3, true)",
			agg.Strategy, agg.Attackers, agg.SharedHistory)
	}
}
