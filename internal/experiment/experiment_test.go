package experiment

import (
	"math"
	"strings"
	"testing"

	"slpdas/internal/core"
	"slpdas/internal/topo"
	"slpdas/internal/wire"
)

// smallSpec keeps experiment tests fast: a 5×5 grid and few repeats.
func smallSpec(slp bool, repeats int) Spec {
	cfg := core.Default()
	if slp {
		cfg = core.DefaultSLP(2)
	}
	return Spec{GridSize: 5, Config: cfg, Repeats: repeats, BaseSeed: 77}
}

func TestRunAggregatesAllRepeats(t *testing.T) {
	agg, err := Run(smallSpec(false, 6))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if agg.CaptureRatio.Trials != 6 {
		t.Errorf("trials = %d, want 6", agg.CaptureRatio.Trials)
	}
	if agg.Failures != 0 {
		t.Errorf("failures = %d", agg.Failures)
	}
	if len(agg.Results) != 6 {
		t.Errorf("results = %d", len(agg.Results))
	}
	if agg.ScheduleValid.Successes != 6 {
		t.Errorf("valid schedules = %d/6", agg.ScheduleValid.Successes)
	}
	if agg.TotalMessages.Mean <= 0 {
		t.Error("no traffic aggregated")
	}
	if agg.Nodes != 25 {
		t.Errorf("nodes = %d", agg.Nodes)
	}
	if !strings.Contains(agg.Name, "grid-5x5") {
		t.Errorf("name = %q", agg.Name)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	spec1 := smallSpec(true, 5)
	spec1.Workers = 1
	specN := smallSpec(true, 5)
	specN.Workers = 4
	a, err := Run(spec1)
	if err != nil {
		t.Fatalf("Run workers=1: %v", err)
	}
	b, err := Run(specN)
	if err != nil {
		t.Fatalf("Run workers=4: %v", err)
	}
	if a.CaptureRatio != b.CaptureRatio {
		t.Errorf("capture ratio differs by worker count: %v vs %v", a.CaptureRatio, b.CaptureRatio)
	}
	if a.TotalMessages.Mean != b.TotalMessages.Mean {
		t.Errorf("traffic differs by worker count")
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	if _, err := Run(Spec{GridSize: 5, Config: core.Default(), Repeats: 0}); err == nil {
		t.Error("zero repeats accepted")
	}
	if _, err := Run(Spec{GridSize: 1, Config: core.Default(), Repeats: 1}); err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestRunExplicitTopology(t *testing.T) {
	g, err := topo.Line(6, 4.5, 4.5)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	agg, err := Run(Spec{
		Topology: g,
		Sink:     5,
		Source:   0,
		Config:   core.Default(),
		Repeats:  3,
		BaseSeed: 5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if agg.Nodes != 6 {
		t.Errorf("nodes = %d", agg.Nodes)
	}
	// On a line the gradient leads straight to the source.
	if agg.CaptureRatio.Successes == 0 {
		t.Error("line topology: expected captures along the only gradient")
	}
}

func TestFigure5SmallSweep(t *testing.T) {
	fig, err := RunFigure5(Figure5Spec{
		GridSizes:      []int{5},
		SearchDistance: 2,
		Repeats:        8,
		BaseSeed:       11,
	})
	if err != nil {
		t.Fatalf("RunFigure5: %v", err)
	}
	if len(fig.Points) != 1 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	p := fig.Points[0]
	if p.ProtectionlessAgg == nil || p.SLPAgg == nil {
		t.Fatal("missing aggregates")
	}
	tbl := fig.Table().String()
	if !strings.Contains(tbl, "network size") || !strings.Contains(tbl, "5") {
		t.Errorf("table = %q", tbl)
	}
}

func TestFigure5MutateHook(t *testing.T) {
	called := 0
	_, err := RunFigure5(Figure5Spec{
		GridSizes:      []int{5},
		SearchDistance: 2,
		Repeats:        2,
		BaseSeed:       3,
		Mutate: func(c *core.Config) {
			called++
			c.Attacker.R = 1
		},
	})
	if err != nil {
		t.Fatalf("RunFigure5: %v", err)
	}
	if called != 2 {
		t.Errorf("mutate called %d times, want 2 (both protocols)", called)
	}
}

func TestReductionMath(t *testing.T) {
	p := Figure5Point{}
	p.Protectionless.Successes, p.Protectionless.Trials = 20, 100
	p.SLP.Successes, p.SLP.Trials = 10, 100
	if r := p.Reduction(); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("Reduction = %v, want 0.5", r)
	}
	zero := Figure5Point{}
	zero.Protectionless.Trials = 10
	zero.SLP.Trials = 10
	if !math.IsNaN(zero.Reduction()) {
		t.Error("Reduction with zero baseline should be NaN")
	}
}

func TestOverheadComparison(t *testing.T) {
	o, err := RunOverhead(5, 2, 4, 21, 0)
	if err != nil {
		t.Fatalf("RunOverhead: %v", err)
	}
	tbl := o.Table().String()
	for _, want := range []string{"HELLO", "DISSEM", "SEARCH", "CHANGE", "CONTROL TOTAL", "DATA (msgs/period)"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("overhead table missing %q:\n%s", want, tbl)
		}
	}
	// Protectionless sends no SEARCH or CHANGE at all.
	if s := o.Protectionless.MessagesByType[wire.TypeSearch]; s.Mean != 0 {
		t.Errorf("protectionless sent SEARCH: %v", s)
	}
	if c := o.Protectionless.MessagesByType[wire.TypeChange]; c.Mean != 0 {
		t.Errorf("protectionless sent CHANGE: %v", c)
	}
}

func TestTableIMatchesConfig(t *testing.T) {
	tbl := TableI().String()
	for _, want := range []string{"Psrc", "5.5s", "Pslot", "0.05s", "Pdiss", "0.5s", "100", "80", "Δss − SD", "1.5"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table I missing %q:\n%s", want, tbl)
		}
	}
}

func TestAggregateMessageTypesSorted(t *testing.T) {
	agg, err := Run(smallSpec(true, 2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	types := agg.MessageTypes()
	for i := 1; i < len(types); i++ {
		if types[i-1] >= types[i] {
			t.Errorf("types not sorted: %v", types)
		}
	}
}
