package lint

import (
	"go/ast"
	"go/types"

	"slpdas/internal/lint/analysis"
)

// MapIter flags `for range` over a map in simulation packages. Map
// iteration order is randomized per run of the process, so any map range
// that feeds scheduling, accumulation or output ordering silently breaks
// the byte-identical-sweeps contract — the classic determinism killer this
// codebase has already paid for once (the pre-PR 2 Ninfo map + sort.Slice
// hot site).
//
// Two shapes are recognized as safe and allowed without a pragma:
//
//   - collect-then-sort: every statement of the loop body appends to local
//     slices, and each of those slices is passed to a sort.* or slices.*
//     call later in the same function. Order nondeterminism is introduced
//     and then destroyed.
//   - drain: the body is exactly `delete(m, k)` on the ranged map — order
//     cannot matter when every element is removed.
//
// Anything else needs an explicit `//lint:ignore mapiter <reason>`.
var MapIter = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags range-over-map in simulation packages unless the keys are collected and sorted before use",
	Run:  runMapIter,
}

func runMapIter(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkMapRanges(pass, body)
			return true
		})
	}
	return nil
}

// checkMapRanges reports unsafe map ranges directly inside body (nested
// function literals are visited as their own bodies by the caller).
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // visited separately; sort context differs
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if isDrainLoop(pass, rs) || isCollectThenSort(pass, rs, body) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"range over map %s: iteration order is nondeterministic in a simulation package; collect and sort the keys, or annotate //lint:ignore mapiter <reason>",
			exprString(pass, rs.X))
		return true
	})
}

// isDrainLoop recognizes `for k := range m { delete(m, k) }`.
func isDrainLoop(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	es, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "delete" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	return sameObject(pass, call.Args[0], rs.X) && sameObject(pass, call.Args[1], rs.Key)
}

// isCollectThenSort recognizes loops whose whole body appends to local
// slices that are each sorted later in the enclosing function body.
func isCollectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	var collected []types.Object
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
			return false
		}
		base, ok := call.Args[0].(*ast.Ident)
		if !ok || objectOf(pass, base) == nil || objectOf(pass, base) != objectOf(pass, lhs) {
			return false
		}
		collected = append(collected, objectOf(pass, lhs))
	}
	if len(collected) == 0 {
		return false
	}
	for _, obj := range collected {
		if !sortedAfter(pass, obj, rs, enclosing) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj is passed (anywhere in an argument
// expression) to a sort.* or slices.* call positioned after the range
// statement within the enclosing body.
func sortedAfter(pass *analysis.Pass, obj types.Object, rs *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && objectOf(pass, id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func objectOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// sameObject reports whether two expressions are uses of one identifier's
// object.
func sameObject(pass *analysis.Pass, a, b ast.Expr) bool {
	ai, ok := a.(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := b.(*ast.Ident)
	if !ok {
		return false
	}
	ao, bo := objectOf(pass, ai), objectOf(pass, bi)
	return ao != nil && ao == bo
}

// exprString renders small expressions for messages without importing
// go/printer: identifiers and selector chains cover the practical cases.
func exprString(pass *analysis.Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(pass, x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(pass, x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(pass, x.X) + "[...]"
	default:
		return "expression"
	}
}
