package lint

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
	"sync"

	"slpdas/internal/lint/analysis"
)

// Pragma escape hatches. Each analyzer encodes a contract with legitimate
// exceptions; the exceptions are annotated in the source so they are
// visible in review and greppable later:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses the named analyzers' findings on the same line, or — when the
// pragma stands on its own line — on the line directly below it. The
// reason is mandatory: a suppression nobody can justify is a finding.
//
//	// lint:immutable[: <reason>]
//
// on a struct field declaration exempts that field from the resetcomplete
// contract: the field is wiring or cross-run state that Reset deliberately
// preserves.
const (
	ignorePragma    = "lint:ignore"
	immutablePragma = "lint:immutable"
)

// ignoreSite is one parsed //lint:ignore pragma.
type ignoreSite struct {
	analyzers map[string]bool
	ownLine   bool // pragma is alone on its line: applies to the next line
}

// pragmaIndex maps file -> line -> pragma for one package's files.
type pragmaIndex map[*token.File]map[int]ignoreSite

// indexPragmas scans every comment of every file for //lint:ignore
// pragmas. Malformed pragmas (no analyzer list or no reason) are reported
// as findings themselves via report, so they cannot silently suppress
// nothing.
func indexPragmas(fset *token.FileSet, files []*ast.File, report func(analysis.Diagnostic)) pragmaIndex {
	idx := pragmaIndex{}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePragma) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePragma))
				parts := strings.Fields(rest)
				if len(parts) < 2 {
					report(analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed //lint:ignore pragma: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				site := ignoreSite{analyzers: map[string]bool{}}
				for _, name := range strings.Split(parts[0], ",") {
					site.analyzers[strings.TrimSpace(name)] = true
				}
				pos := fset.Position(c.Pos())
				// The pragma is "own line" when nothing but whitespace
				// precedes it on its line.
				lineStart := tf.LineStart(pos.Line)
				site.ownLine = strings.TrimSpace(contentBetween(tf, lineStart, c.Pos())) == ""
				if idx[tf] == nil {
					idx[tf] = map[int]ignoreSite{}
				}
				idx[tf][pos.Line] = site
			}
		}
	}
	return idx
}

// contentBetween is a best-effort read of the source between two positions
// of one file; used only to classify a pragma as own-line vs trailing.
func contentBetween(tf *token.File, from, to token.Pos) string {
	// Positions map 1:1 onto the file's byte offsets.
	a, b := tf.Offset(from), tf.Offset(to)
	if a < 0 || b < a {
		return ""
	}
	src := fileBytes(tf)
	if src == nil || b > len(src) {
		return ""
	}
	return string(src[a:b])
}

// fileBytes returns the source of tf, read from disk and cached. Pragma
// classification is the only consumer; a file that cannot be re-read
// degrades to trailing-pragma semantics, never to a crash.
var fileBytesCache sync.Map // *token.File -> []byte

func fileBytes(tf *token.File) []byte {
	if v, ok := fileBytesCache.Load(tf); ok {
		return v.([]byte)
	}
	src, err := os.ReadFile(tf.Name())
	if err != nil || len(src) != tf.Size() {
		src = nil
	}
	fileBytesCache.Store(tf, src)
	return src
}

// suppressed reports whether a diagnostic of analyzer name at pos is
// covered by an ignore pragma on its line or the line above.
func (idx pragmaIndex) suppressed(fset *token.FileSet, name string, pos token.Pos) bool {
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	lines := idx[tf]
	if lines == nil {
		return false
	}
	line := fset.Position(pos).Line
	if site, ok := lines[line]; ok && site.analyzers[name] {
		return true
	}
	if site, ok := lines[line-1]; ok && site.ownLine && site.analyzers[name] {
		return true
	}
	return false
}

// hasImmutableMark reports whether a struct field carries the
// lint:immutable annotation in its doc or trailing comment.
func hasImmutableMark(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, immutablePragma) {
				return true
			}
		}
	}
	return false
}
