// Package load type-checks Go packages for the slplint analyzers using
// only the standard library: `go list -deps -json` enumerates the target
// packages and their full import closure in dependency order, and each
// package is then parsed and type-checked from source with go/types. The
// usual tool for this is golang.org/x/tools/go/packages; the repo vendors
// no third-party modules, and for a module whose only dependencies are the
// standard library the from-source pipeline is small and fully
// deterministic.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package with its syntax retained.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's maps for Files.
	Info *types.Info
}

// Program is the result of a Load: the shared FileSet, the target packages
// (those matching the patterns, in `go list` order), and the type-checked
// import closure backing them.
type Program struct {
	Fset    *token.FileSet
	Targets []*Package

	byPath map[string]*types.Package
}

// Importer returns an importer resolving every package of the program's
// closure by import path. Used by the analysistest harness to type-check
// fixture files against the same dependency set.
func (p *Program) Importer() types.Importer {
	return mapImporter(p.byPath)
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("load: package %q not in the type-checked closure", path)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates patterns (e.g. "./...") relative to dir, type-checks the
// packages and their whole import closure from source, and returns the
// targets with syntax and type information attached.
func Load(dir string, patterns ...string) (*Program, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: map[string]*types.Package{"unsafe": types.Unsafe},
	}
	imp := mapImporter(prog.byPath)

	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			// Assembly- or test-only package; nothing to check.
			if !lp.DepOnly {
				continue
			}
			return nil, fmt.Errorf("load: %s: no Go files", lp.ImportPath)
		}

		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}

		info := newInfo()
		conf := types.Config{
			Importer: imp,
			// Dependencies are checked from source; tolerate nothing. A
			// type error anywhere is a hard stop: analyzers must never run
			// over partial type information.
		}
		tpkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", lp.ImportPath, err)
		}
		prog.byPath[lp.ImportPath] = tpkg

		if !lp.DepOnly {
			prog.Targets = append(prog.Targets, &Package{
				Path:  lp.ImportPath,
				Dir:   lp.Dir,
				Files: files,
				Types: tpkg,
				Info:  info,
			})
		}
	}
	return prog, nil
}

// Check type-checks one already-parsed package (used by the analysistest
// harness for fixture files) against the program importer imp.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// goList shells out to the go command for package enumeration: it is the
// one authority on build constraints, file lists and dependency order.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO off: the simulator has no cgo, and from-source type-checking
	// must not see cgo-generated files.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
