package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"slpdas/internal/lint/analysis"
)

// hotPathMark is the doc-comment annotation naming a function part of a
// zero-allocs/op steady-state path (the Broadcast→delivery fan-out, the
// DES runner scheduling, the GCN dispatch loop). slpbench gates these
// paths at 0 allocs/op against the committed baseline; the analyzer
// rejects the allocation patterns that would break that gate before a
// benchmark ever runs.
const hotPathMark = "slp:hotpath"

// HotPath checks functions annotated `//slp:hotpath` for the four
// allocation sources the zero-alloc discipline bans:
//
//   - function literals (every closure is a heap allocation once it
//     escapes into the scheduler);
//   - fmt.* calls (interface boxing plus formatting state; error paths
//     that genuinely need one carry a //lint:ignore hotpath pragma);
//   - implicit interface boxing: passing, assigning or returning a
//     non-pointer concrete value where an interface is expected (pointer,
//     map, chan and func values are exempt — storing those in an
//     interface does not allocate);
//   - append to a fresh, capacity-less local slice (var x []T / x := []T{}),
//     which grows by reallocation in the steady state instead of reusing a
//     pooled or pre-sized buffer.
//
// Escape hatch: `//lint:ignore hotpath <reason>` on the offending line.
var HotPath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //slp:hotpath must not allocate: no closures, fmt, interface boxing, or uncapped fresh-slice appends",
	Run:  runHotPath,
}

func runHotPath(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotPathMark(fd.Doc) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func hasHotPathMark(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), hotPathMark) {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	freshSlices := collectFreshSlices(pass, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure literal in //slp:hotpath function %s: allocates per call; schedule a pooled des.Runner instead", fd.Name.Name)
			return false // the literal's own body is cold until annotated
		case *ast.CallExpr:
			checkHotCall(pass, fd, x, freshSlices)
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true // tuple assignment; no per-expression pairing
			}
			for i, lhs := range x.Lhs {
				checkBoxing(pass, fd, pass.TypeOf(lhs), x.Rhs[i], "assignment")
			}
		case *ast.ReturnStmt:
			sig, ok := pass.TypeOf(fd.Name).(*types.Signature)
			if !ok || sig.Results() == nil || len(x.Results) != sig.Results().Len() {
				return true
			}
			for i, res := range x.Results {
				checkBoxing(pass, fd, sig.Results().At(i).Type(), res, "return")
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, freshSlices map[types.Object]bool) {
	// fmt.* calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s in //slp:hotpath function %s: formats through interfaces and allocates", sel.Sel.Name, fd.Name.Name)
				return
			}
		}
	}

	// Builtins: append on a fresh uncapped slice; other builtins are free.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" && len(call.Args) > 0 {
				if base, ok := call.Args[0].(*ast.Ident); ok && freshSlices[objectOf(pass, base)] {
					pass.Reportf(call.Pos(),
						"append to fresh uncapped slice %s in //slp:hotpath function %s: grows by reallocation; make it with capacity or reuse a pooled buffer", base.Name, fd.Name.Name)
				}
			}
			return
		}
	}

	// Explicit conversion to an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkBoxing(pass, fd, tv.Type, call.Args[0], "conversion")
		return
	}

	// Implicit boxing at the call boundary.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, fd, pt, arg, "argument")
	}
}

// checkBoxing reports when a concrete, non-pointer-shaped value meets an
// interface-typed slot.
func checkBoxing(pass *analysis.Pass, fd *ast.FuncDecl, dst types.Type, src ast.Expr, context string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	st := pass.TypeOf(src)
	if st == nil || types.IsInterface(st) {
		return
	}
	if basic, ok := st.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	switch st.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return // pointer-shaped: stored in the interface word, no allocation
	}
	pass.Reportf(src.Pos(),
		"interface boxing in //slp:hotpath function %s: %s converts %s to %s and may allocate; keep hot values concrete or pointer-shaped",
		fd.Name.Name, context, st.String(), dst.String())
}

// collectFreshSlices finds local slice variables declared with no
// capacity: `var x []T`, `x := []T{}`, or `x := make([]T, 0)`.
func collectFreshSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	note := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					note(name)
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(x.Rhs) {
					continue
				}
				if isUncappedSliceExpr(pass, x.Rhs[i]) {
					note(id)
				}
			}
		}
		return true
	})
	return fresh
}

// isUncappedSliceExpr matches `[]T{}` (empty literal), `[]T(nil)` and
// `make([]T, 0)` — slice origins with zero capacity.
func isUncappedSliceExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		_, isSlice := pass.TypeOf(x).Underlying().(*types.Slice)
		return isSlice && len(x.Elts) == 0
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(x.Args) != 2 {
			return false
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		if _, isSlice := pass.TypeOf(x).Underlying().(*types.Slice); !isSlice {
			return false
		}
		tv, ok := pass.TypesInfo.Types[x.Args[1]]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	case *ast.Ident:
		return x.Name == "nil"
	}
	return false
}
