// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface the slplint analyzers need. The
// repo vendors no third-party modules (the toolchain image is the whole
// build environment), so the driver, the analyzers and the analysistest
// harness are built directly on go/ast and go/types instead. The shapes
// mirror x/tools deliberately: if the repo ever grows the real dependency,
// the analyzers port by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name used in diagnostics and
// pragma suppression, a doc string, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore pragmas.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run performs the check on one package and reports findings through
	// the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed non-test files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression/object maps.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
