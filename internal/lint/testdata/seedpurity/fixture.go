// Fixture for the seedpurity analyzer: wall-clock reads, math/rand and
// crypto/rand imports and math/rand/v2 package-function calls are flagged;
// referencing rand types as owned state is allowed.
package fixture

import (
	crand "crypto/rand" // want "import of crypto/rand"
	mrand "math/rand"   // want "import of math/rand"
	"math/rand/v2"
	"time"
)

// owned holds reseedable generator state — type references are fine.
type owned struct {
	pcg rand.PCG
	rng *rand.Rand
}

// draw uses a method on owned state, not a package function. Not flagged.
func draw(o *owned) int {
	return o.rng.IntN(6)
}

// wallClock reads the wall clock twice — both flagged.
func wallClock() time.Duration {
	start := time.Now()      // want "time.Now in a simulation package"
	return time.Since(start) // want "time.Since in a simulation package"
}

// virtualTime uses time only for arithmetic and construction. Not flagged.
func virtualTime(d time.Duration) time.Duration {
	return d + 3*time.Millisecond
}

// mint constructs a generator with package functions instead of xrand.
func mint(seed uint64) *rand.Rand {
	pcg := rand.NewPCG(seed, 1) // want "rand.NewPCG in a simulation package"
	return rand.New(pcg)        // want "rand.New in a simulation package"
}

// v1Global draws from math/rand's shared global state.
func v1Global() int {
	return mrand.Int() // want "rand.Int in a simulation package"
}

// entropy uses crypto/rand; the import is the finding, reported above.
func entropy(b []byte) {
	_, _ = crand.Read(b)
}

// suppressedClock carries the pragma on its own line above the read.
func suppressedClock() time.Duration {
	//lint:ignore seedpurity coarse progress logging only, never in results
	return time.Since(time.Unix(0, 0))
}
