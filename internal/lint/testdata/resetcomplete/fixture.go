// Fixture for the resetcomplete analyzer, reproducing the arena bug class
// the PR 4 tests catch dynamically: a constructor/Reset pair where a newly
// added field is forgotten by Reset and leaks the previous run's value.
package fixture

type config struct{ n int }

// arena is the bug reproduction: `added` came later and Reset was not
// updated.
type arena struct {
	runs    int
	scratch []byte
	added   int     // want "field arena.added is not written"
	wiring  *config // lint:immutable: fixed at construction
}

func newArena(c *config) *arena {
	a := &arena{wiring: c}
	a.Reset()
	return a
}

func (a *arena) Reset() {
	a.runs = 0
	a.scratch = a.scratch[:0]
}

// table delegates its own rewind — a method call on a field counts as a
// write of that field.
type table struct{ m map[int]int }

func (t *table) reset() { clear(t.m) }

// machine resets completely through a helper method: direct assignment,
// field-method delegation and a builtin clear destination all count.
type machine struct {
	seq   uint64
	tbl   table
	stats [4]int
}

func newMachine() *machine {
	m := &machine{tbl: table{m: map[int]int{}}}
	m.Reset()
	return m
}

func (m *machine) Reset() {
	m.rewind()
}

func (m *machine) rewind() {
	m.seq = 0
	m.tbl.reset()
	clear(m.stats[:])
}

// box assigns the whole struct — trivially complete.
type box struct {
	a, b int
}

func newBox() *box { return new(box) }

func (b *box) Reset() { *b = box{} }

// external has a Reset but is never constructed in this package — out of
// the arena contract, not checked.
type external struct {
	x int
}

func (e *external) Reset() {}

// cache keeps warm state across runs on purpose, suppressed by a field
// pragma rather than the lint:immutable annotation.
type cache struct {
	//lint:ignore resetcomplete warm entries survive runs by design, results never read them
	warm map[int]int
	n    int
}

func newCache() *cache { return &cache{warm: map[int]int{}} }

func (c *cache) Reset() { c.n = 0 }

// holder forgets its embedded struct.
type base struct{ x int }

type holder struct {
	base // want "embedded field holder.base is not written"
	n    int
}

func newHolder() *holder { return &holder{} }

func (h *holder) Reset() { h.n = 0 }
