// Fixture for the mapiter analyzer: unsafe ranges are flagged, the two
// recognized safe idioms (collect-then-sort, drain) pass, and pragma
// suppression works with production semantics.
package fixture

import "sort"

type counters map[string]int

// sum iterates a map and folds order-sensitively visible state — flagged.
func sum(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "range over map m"
		out = append(out, v)
	}
	return out
}

// namedType ranges a named map type — still flagged.
func namedType(c counters) {
	for k := range c { // want "range over map c"
		_ = k
	}
}

// inClosure ranges a map inside a function literal — flagged there.
func inClosure(m map[string]int) func() []int {
	return func() []int {
		var vs []int
		for _, v := range m { // want "range over map m"
			vs = append(vs, v)
		}
		return vs
	}
}

// keysSorted is the canonical safe idiom: collect, then destroy the
// nondeterminism with a sort. Not flagged.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// drain removes every element — order cannot matter. Not flagged.
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// overSlice ranges a slice — maps only. Not flagged.
func overSlice(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// suppressedTrailing carries the pragma on the offending line.
func suppressedTrailing(m map[string]int) int {
	n := 0
	for range m { //lint:ignore mapiter commutative count, order-free
		n++
	}
	return n
}

// suppressedOwnLine carries the pragma on its own line above.
func suppressedOwnLine(m map[string]int) int {
	n := 0
	//lint:ignore mapiter commutative count, order-free
	for range m {
		n++
	}
	return n
}

// wrongAnalyzer names a different analyzer — does not suppress mapiter.
func wrongAnalyzer(m map[string]int) {
	//lint:ignore hotpath reason that does not cover mapiter
	for k := range m { // want "range over map m"
		_ = k
	}
}

// malformed has no reason: the pragma itself is a finding and suppresses
// nothing.
func malformed(m map[string]int) int {
	n := 0
	//lint:ignore mapiter
	for range m { // want-1 "malformed //lint:ignore pragma" want "range over map m"
		n++
	}
	return n
}
