// Fixture for the hotpath analyzer: functions annotated //slp:hotpath must
// not contain closure literals, fmt calls, interface boxing of concrete
// values, or appends to fresh uncapped slices. Unannotated functions are
// never checked.
package fixture

import "fmt"

type runner interface{ run() }

type task struct{ n int }

func (t task) run() {}

func consume(r runner) {}

func sink(args ...any) {}

//slp:hotpath
func closure(fn func()) {
	go func() { fn() }() // want "closure literal"
}

//slp:hotpath
func format(id int) {
	fmt.Println("id", id) // want "fmt.Println"
}

//slp:hotpath
func boxArg(t task) {
	consume(t)  // want "interface boxing"
	consume(&t) // pointer-shaped: stored in the interface word, allowed
}

//slp:hotpath
func boxReturn(t task) runner {
	return t // want "interface boxing"
}

//slp:hotpath
func boxAssign(t task) {
	var r runner
	r = t // want "interface boxing"
	r.run()
}

//slp:hotpath
func boxConversion(t task) {
	_ = runner(t) // want "interface boxing"
}

//slp:hotpath
func boxVariadic(t task) {
	sink(t) // want "interface boxing"
}

//slp:hotpath
func forward(args []any) {
	sink(args...) // forwarding a slice: no per-element boxing
}

//slp:hotpath
func grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "append to fresh uncapped slice out"
	}
	return out
}

//slp:hotpath
func growCapped(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

//slp:hotpath
func appendParam(buf []byte, b byte) []byte {
	return append(buf, b) // caller-owned buffer: allowed
}

//slp:hotpath
func coldError(ok bool) error {
	if !ok {
		//lint:ignore hotpath cold error path, only reached on caller bugs
		return fmt.Errorf("bad state")
	}
	return nil
}

// accumulator mirrors the SINR contention fold in the radio delivery
// path: indexed float accumulation, compare-and-swap of the strongest
// entry, and a threshold verdict — all branch-and-multiply, nothing that
// may allocate.
type accumulator struct {
	sum, best []float64
	threshold float64
	noise     float64
	wins      uint64
}

//slp:hotpath
func (a *accumulator) fold(to int, power float64) {
	a.sum[to] += power
	if power > a.best[to] {
		a.best[to] = power
	}
}

//slp:hotpath
func (a *accumulator) clears(to int, power float64) bool {
	interference := a.sum[to] - power
	if interference < 0 {
		interference = 0
	}
	if power < a.threshold*(a.noise+interference) {
		return false
	}
	if interference > 0 {
		a.wins++
	}
	return true
}

// foldTraced shows the shapes the delivery path must not grow: logging a
// capture verdict and collecting per-window samples into a fresh slice
// both allocate per delivery.
//
//slp:hotpath
func (a *accumulator) foldTraced(to int, power float64) []float64 {
	fmt.Println("fold", to, power) // want "fmt.Println"
	var samples []float64
	for i := range a.sum {
		samples = append(samples, a.sum[i]) // want "append to fresh uncapped slice samples"
	}
	return samples
}

// unmarked is not annotated; nothing in it is checked.
func unmarked() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("%d", 1))
	return parts[0]
}
