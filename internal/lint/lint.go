// Package lint is slplint: a suite of custom static analyzers encoding
// this repository's simulation contracts — determinism of output order
// (mapiter), seed purity of all randomness (seedpurity), completeness of
// arena Reset methods (resetcomplete) and allocation discipline of
// annotated hot paths (hotpath). The runtime tests catch violations only
// on the configurations they exercise; the analyzers prove the contracts
// at the source level for every configuration at once.
//
// See DESIGN.md "Static invariants" for each analyzer's contract and its
// escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"slpdas/internal/lint/analysis"
	"slpdas/internal/lint/load"
)

// Analyzers returns the slplint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{MapIter, SeedPurity, ResetComplete, HotPath}
}

// simPackages are the packages whose code runs inside a simulation and
// must therefore be deterministic: every draw seed-derived, every output
// ordering independent of map iteration. The mapiter and seedpurity
// analyzers apply only here; resetcomplete and hotpath apply everywhere
// (they are driven by the code's own Reset methods and //slp:hotpath
// annotations).
var simPackages = map[string]bool{
	"slpdas/internal/core":       true,
	"slpdas/internal/des":        true,
	"slpdas/internal/radio":      true,
	"slpdas/internal/channel":    true,
	"slpdas/internal/energy":     true,
	"slpdas/internal/gcn":        true,
	"slpdas/internal/mac":        true,
	"slpdas/internal/protocol":   true,
	"slpdas/internal/attacker":   true,
	"slpdas/internal/topo":       true,
	"slpdas/internal/campaign":   true,
	"slpdas/internal/experiment": true,
	"slpdas/internal/schedule":   true,
	"slpdas/internal/wire":       true,
	"slpdas/internal/metrics":    true,
}

// IsSimPackage reports whether the mapiter/seedpurity determinism gates
// apply to the given import path.
func IsSimPackage(path string) bool { return simPackages[path] }

// simGated reports whether an analyzer is restricted to sim packages.
func simGated(a *analysis.Analyzer) bool {
	return a == MapIter || a == SeedPurity
}

// Finding is one reported violation, position rendered for humans and
// machines alike.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Config selects what to check.
type Config struct {
	// Dir is the directory go list runs from (the module root or below).
	Dir string
	// Patterns are go package patterns; defaults to ./... when empty.
	Patterns []string
	// Enabled restricts the suite to the named analyzers; nil or empty
	// runs all of them.
	Enabled map[string]bool
}

// Run loads the requested packages and applies the suite, returning every
// unsuppressed finding sorted by position. A non-nil error means the
// analysis could not run (load or type-check failure), not that findings
// exist.
func Run(cfg Config) ([]Finding, error) {
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := load.Load(cfg.Dir, patterns...)
	if err != nil {
		return nil, err
	}

	var findings []Finding
	for _, pkg := range prog.Targets {
		diags, err := checkPackage(prog.Fset, pkg, cfg.Enabled)
		if err != nil {
			return nil, err
		}
		findings = append(findings, diags...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// checkPackage runs the enabled analyzers over one package and applies
// pragma suppression.
func checkPackage(fset *token.FileSet, pkg *load.Package, enabled map[string]bool) ([]Finding, error) {
	var findings []Finding
	emit := func(name string, d analysis.Diagnostic) {
		pos := fset.Position(d.Pos)
		findings = append(findings, Finding{
			Analyzer: name,
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
		})
	}

	// Malformed pragmas are findings in their own right, attributed to a
	// pseudo-analyzer so they are never themselves suppressible.
	pragmas := indexPragmas(fset, pkg.Files, func(d analysis.Diagnostic) {
		emit("pragma", d)
	})

	for _, a := range Analyzers() {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		if simGated(a) && !IsSimPackage(pkg.Path) {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			if pragmas.suppressed(fset, name, d.Pos) {
				return
			}
			emit(name, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return findings, nil
}

// RunAnalyzer applies one analyzer to an already-type-checked package,
// with the same pragma-suppression semantics as the full driver. The
// analysistest harness runs fixtures through this so suppression paths are
// tested with production semantics.
func RunAnalyzer(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	var findings []Finding
	emit := func(name string, d analysis.Diagnostic) {
		pos := fset.Position(d.Pos)
		findings = append(findings, Finding{
			Analyzer: name,
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
		})
	}
	pragmas := indexPragmas(fset, files, func(d analysis.Diagnostic) { emit("pragma", d) })
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report: func(d analysis.Diagnostic) {
			if pragmas.suppressed(fset, a.Name, d.Pos) {
				return
			}
			emit(a.Name, d)
		},
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		return findings[i].Col < findings[j].Col
	})
	return findings, nil
}

// ParseEnabled turns a comma-separated analyzer list into the Enabled set,
// validating the names against the suite.
func ParseEnabled(list string) (map[string]bool, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	valid := map[string]bool{}
	for _, a := range Analyzers() {
		valid[a.Name] = true
	}
	out := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have mapiter, seedpurity, resetcomplete, hotpath)", name)
		}
		out[name] = true
	}
	return out, nil
}
