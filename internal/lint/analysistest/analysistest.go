// Package analysistest runs slplint analyzers over source fixtures with
// inline expectations, mirroring golang.org/x/tools's analysistest on top
// of the repo's stdlib-only analysis framework. A fixture is a directory
// holding one Go package; lines that should produce a diagnostic carry a
//
//	// want "regexp"
//
// comment on the same line. An optional signed offset targets a nearby
// line — `want-1 "re"` expects the diagnostic one line above the comment —
// which is how fixtures pin findings on lines that cannot carry a comment
// of their own (e.g. a malformed pragma line, whose whole tail *is* the
// pragma). Several want clauses may share one comment.
//
// Fixtures run through lint.RunAnalyzer, so `//lint:ignore` suppression
// and malformed-pragma reporting behave exactly as in the production
// driver; suppression paths are therefore tested end to end, not mocked.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"slpdas/internal/lint"
	"slpdas/internal/lint/analysis"
	"slpdas/internal/lint/load"
)

// wantRe matches one expectation clause inside a comment.
var wantRe = regexp.MustCompile(`want([+-][0-9]+)?[ \t]+"([^"]*)"`)

// expectation is one parsed want clause.
type expectation struct {
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// failImporter rejects every import; used for fixtures that import
// nothing, where spinning up a go list closure would be waste.
type failImporter struct{}

func (failImporter) Import(path string) (*types.Package, error) {
	return nil, &importError{path}
}

type importError struct{ path string }

func (e *importError) Error() string {
	return "analysistest: fixture imports " + strconv.Quote(e.path) + "; pass it as a dep to Run"
}

// Run type-checks the fixture package in dir — resolving imports against
// the type-checked closure of deps — applies the analyzer via
// lint.RunAnalyzer, and reports every mismatch between produced findings
// and want expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir string, deps ...string) {
	t.Helper()

	fset := token.NewFileSet()
	var imp types.Importer = failImporter{}
	if len(deps) > 0 {
		prog, err := load.Load("", deps...)
		if err != nil {
			t.Fatalf("loading fixture deps %v: %v", deps, err)
		}
		fset = prog.Fset
		imp = prog.Importer()
	}

	files, err := parseFixture(fset, dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", dir, err)
	}
	pkg, info, err := load.Check(fset, "fixture", files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	findings, err := lint.RunAnalyzer(a, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	expected := collectWants(t, fset, files)

	for _, f := range findings {
		// Wants may anchor on the message alone or the trailing
		// "[analyzer]" tag, matching Finding.String's rendering.
		haystack := f.Message + " [" + f.Analyzer + "]"
		if !claim(expected[f.File], f.Line, haystack) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, exps := range expected {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: expected finding matching %q, got none", file, e.line, e.raw)
			}
		}
	}
}

// claim marks the first unmatched expectation on the finding's line whose
// regexp matches, reporting whether one existed.
func claim(exps []*expectation, line int, haystack string) bool {
	for _, e := range exps {
		if !e.matched && e.line == line && e.re.MatchString(haystack) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseFixture parses every .go file of the fixture directory, comments
// retained (both the analyzers' annotations and the want clauses live
// there).
func parseFixture(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, ent.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// collectWants scans every comment for want clauses, keyed by filename as
// rendered in findings.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	expected := map[string][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					offset := 0
					if m[1] != "" {
						offset, _ = strconv.Atoi(m[1])
					}
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[2], err)
					}
					expected[pos.Filename] = append(expected[pos.Filename], &expectation{
						line: pos.Line + offset,
						re:   re,
						raw:  m[2],
					})
				}
			}
		}
	}
	return expected
}
