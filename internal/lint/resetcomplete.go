package lint

import (
	"go/ast"
	"go/types"

	"slpdas/internal/lint/analysis"
)

// ResetComplete proves the fresh-vs-reset no-drift contract structurally:
// for every struct type that is constructed in its package and carries a
// pointer-receiver Reset (or reset) method, each field must either be
// written by that method — directly, or inside another method of the same
// type the reset calls on its receiver — or be annotated
// `// lint:immutable[: reason]` on its declaration. "Written" means the
// field is the target of an assignment, ++/--, an index/star assignment
// through it, a clear()/copy() destination, has its address taken, or is
// the receiver of a method call (pcg.Seed, table.reset, ...). A field the
// reset path never touches is exactly the "added a field, forgot the
// rewind" bug class the PR 4 arena tests catch only on the configs they
// run; here it is an error on every build.
//
// A reset that assigns the whole struct (*s = T{...}) trivially satisfies
// every field.
//
// Escape hatches: the per-field `// lint:immutable` annotation for wiring
// and deliberately-preserved cross-run state, or `//lint:ignore
// resetcomplete <reason>` on the field line.
var ResetComplete = &analysis.Analyzer{
	Name: "resetcomplete",
	Doc:  "every field of a constructed type with a Reset method must be written on the reset path or annotated // lint:immutable",
	Run:  runResetComplete,
}

func runResetComplete(pass *analysis.Pass) error {
	// Index this package's method declarations by receiver type name.
	methods := map[string]map[string]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			name := recvTypeName(fd.Recv.List[0].Type)
			if name == "" {
				continue
			}
			if methods[name] == nil {
				methods[name] = map[string]*ast.FuncDecl{}
			}
			methods[name][fd.Name.Name] = fd
		}
	}

	// Types constructed in this package (composite literal or new(T)):
	// only those participate in the arena contract. A Reset on a type the
	// package never instantiates (e.g. an interface impl built elsewhere)
	// is out of scope.
	constructed := map[string]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if name := namedTypeName(pass, pass.TypeOf(x)); name != "" {
					constructed[name] = true
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" && len(x.Args) == 1 {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if name := namedTypeName(pass, pass.TypeOf(x.Args[0])); name != "" {
							constructed[name] = true
						}
					}
				}
			}
			return true
		})
	}

	// Walk the struct declarations and check each (type, Reset) pair.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || !constructed[ts.Name.Name] {
					continue
				}
				reset := findReset(methods[ts.Name.Name])
				if reset == nil {
					continue
				}
				checkReset(pass, ts.Name.Name, st, reset, methods[ts.Name.Name])
			}
		}
	}
	return nil
}

// findReset picks the type's reset entry point: Reset preferred, reset
// accepted; pointer receiver required (a value receiver cannot rewind).
func findReset(ms map[string]*ast.FuncDecl) *ast.FuncDecl {
	for _, name := range []string{"Reset", "reset"} {
		if fd, ok := ms[name]; ok {
			if _, ptr := fd.Recv.List[0].Type.(*ast.StarExpr); ptr {
				return fd
			}
		}
	}
	return nil
}

func checkReset(pass *analysis.Pass, typeName string, st *ast.StructType, reset *ast.FuncDecl, ms map[string]*ast.FuncDecl) {
	w := &resetWalker{pass: pass, methods: ms, touched: map[string]bool{}, visited: map[*ast.FuncDecl]bool{}}
	w.walkMethod(reset)
	if w.fullReset {
		return
	}
	for _, field := range st.Fields.List {
		if hasImmutableMark(field) {
			continue
		}
		names := field.Names
		if len(names) == 0 {
			// Embedded field: known by its type name.
			if name := embeddedName(field.Type); name != "" && !w.touched[name] {
				pass.Reportf(field.Pos(),
					"embedded field %s.%s is not written by (*%s).%s; rewind it or annotate // lint:immutable: <why>",
					typeName, name, typeName, reset.Name.Name)
			}
			continue
		}
		for _, name := range names {
			if name.Name == "_" || w.touched[name.Name] {
				continue
			}
			pass.Reportf(name.Pos(),
				"field %s.%s is not written by (*%s).%s: a run after Reset would inherit the previous run's value; rewind it or annotate // lint:immutable: <why>",
				typeName, name.Name, typeName, reset.Name.Name)
		}
	}
}

// resetWalker accumulates the fields written on the reset path, following
// same-type method calls on the receiver transitively.
type resetWalker struct {
	pass      *analysis.Pass
	methods   map[string]*ast.FuncDecl
	touched   map[string]bool
	visited   map[*ast.FuncDecl]bool
	fullReset bool
}

func (w *resetWalker) walkMethod(fd *ast.FuncDecl) {
	if w.visited[fd] || fd.Body == nil {
		return
	}
	w.visited[fd] = true
	recv := receiverObject(w.pass, fd)
	if recv == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if star, ok := lhs.(*ast.StarExpr); ok {
					if id, ok := star.X.(*ast.Ident); ok && objectOf(w.pass, id) == recv {
						w.fullReset = true
						continue
					}
				}
				w.touch(recv, lhs)
			}
		case *ast.IncDecStmt:
			w.touch(recv, x.X)
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				w.touch(recv, x.X)
			}
		case *ast.CallExpr:
			w.walkCall(recv, x)
		}
		return true
	})
}

// walkCall handles the three call shapes that extend the reset path:
// builtin clear/copy on a field, a method call on a field (the field owns
// its rewind), and a same-type method call on the receiver (recursed
// into).
func (w *resetWalker) walkCall(recv types.Object, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "clear":
				if len(call.Args) == 1 {
					w.touch(recv, call.Args[0])
				}
			case "copy":
				if len(call.Args) == 2 {
					w.touch(recv, call.Args[0])
				}
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok && objectOf(w.pass, id) == recv {
		// s.method(...) — same-type call: its writes count.
		if callee, ok := w.methods[sel.Sel.Name]; ok {
			w.walkMethod(callee)
		}
		return
	}
	// s.field.Method(...) or deeper: the first selector after the receiver
	// is a field delegating its own rewind (pcg.Seed, ninfo.reset, ...).
	w.touch(recv, sel.X)
}

// touch records the receiver field at the root of expr, if any: peels
// index, slice, star and selector layers down to `recv.field`.
func (w *resetWalker) touch(recv types.Object, expr ast.Expr) {
	for {
		switch x := expr.(type) {
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.ParenExpr:
			expr = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && objectOf(w.pass, id) == recv {
				w.touched[x.Sel.Name] = true
				return
			}
			expr = x.X
		default:
			return
		}
	}
}

// receiverObject resolves the receiver identifier's object.
func receiverObject(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return nil
	}
	return pass.TypesInfo.Defs[names[0]]
}

// recvTypeName extracts the named type of a method receiver expression.
func recvTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(x.X)
	case *ast.IndexListExpr:
		return recvTypeName(x.X)
	default:
		return ""
	}
}

// namedTypeName returns the local name of t when it is (a pointer to) a
// named type declared in the package under analysis.
func namedTypeName(pass *analysis.Pass, t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() != pass.Pkg {
		return ""
	}
	return obj.Name()
}

// embeddedName returns the field name an embedded type declares.
func embeddedName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StarExpr:
		return embeddedName(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	default:
		return ""
	}
}
