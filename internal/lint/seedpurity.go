package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"slpdas/internal/lint/analysis"
)

// SeedPurity enforces the repo's randomness contract in simulation
// packages: a run is a pure function of its seed, with every stream
// derived through internal/xrand's labelled SplitMix64 mixing
// (`BaseSeed + cell·Repeats + repeat` at the campaign layer, named
// component streams below it). Concretely it flags:
//
//   - time.Now / time.Since — wall-clock reads; simulation time is the
//     DES clock, and wall time in a result is nondeterminism by
//     definition;
//   - any import of math/rand (v1) — its global generator is shared
//     mutable state;
//   - any import of crypto/rand — cryptographic entropy is never
//     reproducible;
//   - calls to math/rand/v2 package functions (rand.New, rand.NewPCG,
//     rand.IntN, ...) — constructing or drawing from a generator must go
//     through internal/xrand so the stream has a stable label and survives
//     arena Reset reseeding. Referencing math/rand/v2 *types* (rand.Rand,
//     rand.PCG as owned reseedable state) is fine: state may live
//     anywhere, streams may only be minted by xrand.
//
// Escape hatch: `//lint:ignore seedpurity <reason>`.
var SeedPurity = &analysis.Analyzer{
	Name: "seedpurity",
	Doc:  "forces all randomness and time through internal/xrand streams and the DES clock in simulation packages",
	Run:  runSeedPurity,
}

func runSeedPurity(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand":
				pass.Reportf(imp.Pos(),
					"import of math/rand: the v1 global generator is shared mutable state; derive streams via internal/xrand")
			case "crypto/rand":
				pass.Reportf(imp.Pos(),
					"import of crypto/rand: cryptographic entropy is not reproducible; simulation randomness must be seed-derived via internal/xrand")
			}
		}

		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					pass.Reportf(sel.Pos(),
						"time.%s in a simulation package: wall-clock time is nondeterministic; use the DES virtual clock", sel.Sel.Name)
				}
			case "math/rand/v2", "math/rand":
				if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFunc {
					pass.Reportf(sel.Pos(),
						"rand.%s in a simulation package: mint generators and draws through internal/xrand named streams", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
