package lint_test

import (
	"strings"
	"testing"

	"slpdas/internal/lint"
	"slpdas/internal/lint/analysistest"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, lint.MapIter, "testdata/mapiter", "sort")
}

func TestSeedPurity(t *testing.T) {
	analysistest.Run(t, lint.SeedPurity, "testdata/seedpurity",
		"time", "math/rand", "math/rand/v2", "crypto/rand")
}

func TestResetComplete(t *testing.T) {
	analysistest.Run(t, lint.ResetComplete, "testdata/resetcomplete")
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, lint.HotPath, "testdata/hotpath", "fmt")
}

func TestParseEnabled(t *testing.T) {
	enabled, err := lint.ParseEnabled("mapiter, hotpath")
	if err != nil {
		t.Fatal(err)
	}
	if !enabled["mapiter"] || !enabled["hotpath"] || len(enabled) != 2 {
		t.Fatalf("ParseEnabled: got %v", enabled)
	}
	if _, err := lint.ParseEnabled("mapiter,nonsense"); err == nil {
		t.Fatal("ParseEnabled accepted an unknown analyzer name")
	}
	if enabled, err := lint.ParseEnabled("  "); err != nil || enabled != nil {
		t.Fatalf("ParseEnabled on blank input: got %v, %v", enabled, err)
	}
}

func TestFindingString(t *testing.T) {
	f := lint.Finding{Analyzer: "mapiter", File: "x.go", Line: 3, Col: 7, Message: "boom"}
	if got, want := f.String(), "x.go:3:7: boom [mapiter]"; got != want {
		t.Fatalf("Finding.String: got %q, want %q", got, want)
	}
}

func TestIsSimPackage(t *testing.T) {
	if !lint.IsSimPackage("slpdas/internal/core") {
		t.Fatal("internal/core must be determinism-gated")
	}
	if lint.IsSimPackage("slpdas/internal/xrand") {
		t.Fatal("internal/xrand is the randomness authority, not a gated consumer")
	}
	if lint.IsSimPackage("slpdas/internal/lint") {
		t.Fatal("the linter itself is not simulation code")
	}
}

// TestSuiteCleanOnOwnRepo is the self-hosting gate: the analyzers must
// pass over the whole module, so a regression in either the tree or an
// analyzer's precision fails here before CI's slplint job runs.
func TestSuiteCleanOnOwnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module closure; skipped in -short")
	}
	findings, err := lint.Run(lint.Config{Dir: "../..", Patterns: []string{"./..."}})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if len(findings) > 0 {
		var b strings.Builder
		for _, f := range findings {
			b.WriteString("\n  " + f.String())
		}
		t.Fatalf("slplint must be clean on its own repository; findings:%s", b.String())
	}
}
