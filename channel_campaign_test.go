package slpdas_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"slpdas"
	"slpdas/internal/campaign"
)

// channelCampaignSpec crosses the new channel and energy axes with the
// fault and protocol axes: a shadowed SINR channel, battery-powered nodes,
// fault-free and churn cells, both protocols. Per-link shadowing redraws
// per repeat from the cell seed and batteries deplete mid-run, so any leak
// of worker scheduling, arena reuse or shard order into the channel or
// energy state diverges here.
func channelCampaignSpec(workers int) campaign.Spec {
	return campaign.Spec{
		GridSizes:       []int{5},
		SearchDistances: []int{2},
		Protocols:       []string{"protectionless", "slp"},
		Channels:        []string{"logdist:2.4:4@sinr:3"},
		Faults:          []string{"none", "churn:0.25:2"},
		Energy:          []string{"battery:8"},
		Repeats:         6,
		BaseSeed:        13,
		Workers:         workers,
	}
}

func renderChannelCampaign(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := campaign.NewJSONL(&buf)
	if _, err := slpdas.RunCampaign(spec, sink); err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// TestChannelEnergyCampaignDeterministic pins the tentpole determinism
// criterion for the physical-layer axes: a campaign sweeping channels ×
// faults × protocols with batteries live is byte-identical across 1, 2, 4
// and 8 workers, across a 2-way shard+merge, and across a kill+resume —
// all against the single-worker reference. The non-vacuity guards prove
// the new physics actually fired: SINR captures occurred and batteries
// actually depleted nodes.
func TestChannelEnergyCampaignDeterministic(t *testing.T) {
	want := renderChannelCampaign(t, channelCampaignSpec(1))
	if !strings.Contains(string(want), `"loss_model":"logdist:2.4:4@sinr:3"`) {
		t.Fatalf("rows do not carry the canonical channel coordinate:\n%s", want)
	}
	if !strings.Contains(string(want), `"energy":"battery:8"`) {
		t.Fatalf("rows do not carry the canonical energy coordinate:\n%s", want)
	}
	rows, err := campaign.ReadJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	var deaths float64
	for _, r := range rows {
		deaths += r.EnergyDeaths
		if r.EnergyTotal <= 0 {
			t.Fatalf("cell %d reports zero energy spend; the meter is vacuous", r.Cell)
		}
		if r.CaptureWins <= 0 {
			t.Fatalf("cell %d reports zero SINR captures; the capture path is vacuous", r.Cell)
		}
	}
	if deaths <= 0 {
		t.Fatalf("no cell reports battery depletions; the energy-death path is vacuous:\n%s", want)
	}

	for _, workers := range []int{2, 4, 8} {
		if got := renderChannelCampaign(t, channelCampaignSpec(workers)); !bytes.Equal(got, want) {
			t.Errorf("workers=%d output diverged:\n--- got ---\n%s\n--- want ---\n%s", workers, got, want)
		}
	}

	// Shard 2 ways under different worker counts, merge, compare.
	srcs := make([]io.Reader, 2)
	for i := range srcs {
		spec := channelCampaignSpec(1 + i*3)
		spec.Shard = campaign.Shard{Index: i, Count: 2}
		srcs[i] = bytes.NewReader(renderChannelCampaign(t, spec))
	}
	var merged bytes.Buffer
	if _, err := campaign.MergeJSONL(&merged, srcs...); err != nil {
		t.Fatalf("MergeJSONL: %v", err)
	}
	if !bytes.Equal(merged.Bytes(), want) {
		t.Errorf("2-shard merged output diverged:\n--- got ---\n%s\n--- want ---\n%s", merged.Bytes(), want)
	}

	// Kill mid-file and resume: recover completed cells from the torn
	// prefix, append the rest, and the file must match the reference.
	for _, cut := range []int{0, len(want) / 2, len(want) - 2} {
		completed, valid, err := campaign.ScanCompleted(bytes.NewReader(want[:cut]))
		if err != nil {
			t.Fatalf("cut %d: ScanCompleted: %v", cut, err)
		}
		file := bytes.NewBuffer(append([]byte(nil), want[:valid]...))
		spec := channelCampaignSpec(4)
		spec.Skip = func(cell int) bool { return completed[cell] }
		sink := campaign.NewJSONL(file)
		if _, err := slpdas.RunCampaign(spec, sink); err != nil {
			t.Fatalf("cut %d: resume: %v", cut, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		if !bytes.Equal(file.Bytes(), want) {
			t.Errorf("cut %d: resumed file diverged:\n--- got ---\n%s\n--- want ---\n%s", cut, file.Bytes(), want)
		}
	}
}

// TestChannelEnergyResumeVerification: ScanResumable accepts the very file
// a channel+energy spec produced, and rejects it under a different energy
// axis — the energy coordinate is part of resume verification.
func TestChannelEnergyResumeVerification(t *testing.T) {
	out := renderChannelCampaign(t, channelCampaignSpec(2))
	completed, _, err := channelCampaignSpec(2).ScanResumable(bytes.NewReader(out), "jsonl")
	if err != nil {
		t.Fatalf("ScanResumable rejected its own output: %v", err)
	}
	if len(completed) != 4 {
		t.Errorf("recovered %d cells, want 4", len(completed))
	}
	other := channelCampaignSpec(2)
	other.Energy = []string{"battery:100"}
	if _, _, err := other.ScanResumable(bytes.NewReader(out), "jsonl"); err == nil {
		t.Error("ScanResumable accepted a file with a different energy axis")
	} else if !strings.Contains(err.Error(), "energy") {
		t.Errorf("mismatch error does not name the energy coordinate: %v", err)
	}
}
